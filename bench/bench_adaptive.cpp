// Ablation — routing adaptivity under congestion.
//
// The paper's design space runs from ODR (one path, lowest table cost,
// deadlock-free with datelines) through UDR (s! paths, fault tolerance) to
// fully adaptive minimal routing.  This bench quantifies the congestion
// side: simulated complete-exchange makespans for source-routed ODR/UDR
// versus hop-by-hop minimal-adaptive forwarding (random and queue-aware),
// plus the routing-table footprint each design needs.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

std::vector<Demand> demands_of(const Placement& p) {
  std::vector<Demand> demands;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes())
      if (src != dst) demands.push_back(Demand{src, dst, 0});
  return demands;
}

void print_tables() {
  bench_banner("Ablation: adaptivity vs congestion (complete exchange)",
               "makespan of source-routed ODR/UDR vs hop-by-hop minimal "
               "adaptive (random / least-queue)");
  Table table({"d", "k", "t", "|P|", "ODR", "UDR", "adaptive rnd",
               "adaptive least-q"});
  OdrRouter odr;
  UdrRouter udr;
  for (const auto& [d, k, t] :
       std::vector<std::tuple<i32, i32, i32>>{{2, 6, 1},
                                              {2, 8, 2},
                                              {2, 10, 2},
                                              {3, 4, 2}}) {
    Torus torus(d, k);
    const Placement p = multiple_linear_placement(torus, t);
    const auto demands = demands_of(p);
    const SimMetrics odr_m = NetworkSim(torus).run(
        complete_exchange_traffic(torus, p, odr, 5).messages);
    const SimMetrics udr_m = NetworkSim(torus).run(
        complete_exchange_traffic(torus, p, udr, 5).messages);
    const SimMetrics rnd_m =
        AdaptiveNetworkSim(torus, AdaptivePolicy::RandomMinimal)
            .run(demands, 5);
    const SimMetrics lq_m =
        AdaptiveNetworkSim(torus, AdaptivePolicy::LeastQueue)
            .run(demands, 5);
    table.add_row({fmt(static_cast<long long>(d)),
                   fmt(static_cast<long long>(k)),
                   fmt(static_cast<long long>(t)),
                   fmt(static_cast<long long>(p.size())),
                   fmt(static_cast<long long>(odr_m.cycles)),
                   fmt(static_cast<long long>(udr_m.cycles)),
                   fmt(static_cast<long long>(rnd_m.cycles)),
                   fmt(static_cast<long long>(lq_m.cycles))});
  }
  table.print(std::cout);

  std::cout << "\nRouting-table footprint (T_6^2, linear placement):\n\n";
  {
    Torus torus(2, 6);
    const Placement p = linear_placement(torus);
    Table cost({"router", "entries", "worst node"});
    for (RouterKind kind :
         {RouterKind::Odr, RouterKind::Udr, RouterKind::Adaptive}) {
      const auto router = make_router(kind);
      RoutingTable rt(torus, p, *router);
      cost.add_row({router->name(), fmt(rt.num_entries()),
                    fmt(rt.max_entries_per_node())});
    }
    cost.print(std::cout);
  }
  std::cout << std::endl;
}

void BM_AdaptiveSimLeastQueue(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  const auto demands = demands_of(p);
  for (auto _ : state) {
    const SimMetrics m =
        AdaptiveNetworkSim(torus, AdaptivePolicy::LeastQueue)
            .run(demands, 5);
    benchmark::DoNotOptimize(m.cycles);
  }
}

void BM_RoutingTableCompile(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  UdrRouter udr;
  for (auto _ : state) {
    RoutingTable rt(torus, p, udr);
    benchmark::DoNotOptimize(rt.num_entries());
  }
}

BENCHMARK(BM_AdaptiveSimLeastQueue)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RoutingTableCompile)->Arg(6)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
