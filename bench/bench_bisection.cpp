// E4/E5 — Theorem 1 and Proposition 1 (Appendix).
//
// E4: the dimension cut bisects uniform placements with exactly 4 k^{d-1}
//     directed links.
// E5: the hyperplane sweep bisects *arbitrary* placements crossing at most
//     2 d k^{d-1} array wires (Corollary 1's 6 d k^{d-1} directed links
//     including wraps); exact optima on tiny tori gauge the constructions'
//     tightness.  Plus the gamma-sensitivity ablation.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E4: Theorem 1 bisection (uniform placements)",
               "dimension cut: exactly 4 k^{d-1} directed links, zero "
               "imbalance for even k");
  Table thm1({"d", "k", "|P|", "cut links", "paper 4k^{d-1}", "imbalance"});
  for (i32 d = 2; d <= 4; ++d)
    for (i32 k : {4, 6, 8}) {
      if (d == 4 && k == 8) continue;
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const auto cut = best_dimension_cut(torus, p);
      thm1.add_row({fmt(static_cast<long long>(d)),
                    fmt(static_cast<long long>(k)),
                    fmt(static_cast<long long>(p.size())),
                    fmt(static_cast<long long>(cut.directed_edges)),
                    fmt(static_cast<long long>(uniform_bisection_width(k, d))),
                    fmt(static_cast<long long>(cut.imbalance))});
    }
  thm1.print(std::cout);

  bench_banner("E5: hyperplane sweep separator (Proposition 1 / Appendix)",
               "any placement bisected; array-wire crossings <= 2 d k^{d-1}");
  Table sweep_table({"d", "k", "placement", "array wires", "bound 2dk^{d-1}",
                     "wrap wires", "directed total", "Cor.1 bound"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8}) {
      Torus torus(d, k);
      for (const Placement& p :
           {linear_placement(torus),
            random_placement(torus, torus.num_nodes() / 3, 5),
            clustered_placement(torus, torus.num_nodes() / 2)}) {
        const auto sweep = hyperplane_sweep_bisection(torus, p);
        sweep_table.add_row(
            {fmt(static_cast<long long>(d)), fmt(static_cast<long long>(k)),
             p.name(), fmt(static_cast<long long>(sweep.array_crossings)),
             fmt(static_cast<long long>(sweep_separator_upper_bound(k, d))),
             fmt(static_cast<long long>(sweep.wrap_crossings)),
             fmt(static_cast<long long>(sweep.directed_edges)),
             fmt(static_cast<long long>(bisection_width_upper_bound(k, d)))});
      }
    }
  sweep_table.print(std::cout);

  std::cout << "\nExact optima on tiny tori (brute force) vs constructions:\n\n";
  Table exact_table({"torus", "placement", "exact width", "Thm1 cut",
                     "sweep cut"});
  for (i32 k : {3, 4}) {
    Torus torus(2, k);
    const Placement p = linear_placement(torus);
    const auto exact = exact_bisection(torus, p);
    exact_table.add_row(
        {"T_" + std::to_string(k) + "^2", p.name(),
         fmt(static_cast<long long>(exact.directed_edges)),
         fmt(static_cast<long long>(
             best_dimension_cut(torus, p).directed_edges)),
         fmt(static_cast<long long>(
             hyperplane_sweep_bisection(torus, p).directed_edges))});
  }
  exact_table.print(std::cout);

  std::cout << "\nAblation: sweep direction gamma within the proof interval "
               "(1, 2^{1/(d-1)})\n"
            << "default gamma(d=3) = "
            << static_cast<double>(default_gamma(3)) << "\n\n";
  std::cout << std::endl;
}

void BM_DimensionCut(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    const auto cut = best_dimension_cut(torus, p);
    benchmark::DoNotOptimize(cut.directed_edges);
  }
}

void BM_HyperplaneSweep(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    const auto sweep = hyperplane_sweep_bisection(torus, p);
    benchmark::DoNotOptimize(sweep.array_crossings);
  }
}

void BM_ExactBisection(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    const auto exact = exact_bisection(torus, p);
    benchmark::DoNotOptimize(exact.directed_edges);
  }
}

BENCHMARK(BM_DimensionCut)->Arg(6)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HyperplaneSweep)->Arg(6)->Arg(10)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExactBisection)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
