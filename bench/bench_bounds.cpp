// E3/E6 — the lower-bound landscape (eq. (1), Lemma 1, eq. (8), Section 4).
//
// E3: every bound evaluated on real placements, against measured E_max for
//     both routers — every bound must sit below every measurement.
// E6: the dimension-independent improved bound c^2 k^{d-1}/8 against the
//     Blaum bound (|P|-1)/2d as d grows: the crossover the paper proves.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E3: lower bounds vs measured loads (eq. 1, Lemma 1, eq. 8)",
               "every bound <= measured E_max for every placement/router");
  Table table({"d", "k", "t", "blaum", "bisection", "improved", "best",
               "E_max ODR", "E_max UDR"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8})
      for (i32 t = 1; t <= 2; ++t) {
        Torus torus(d, k);
        const Placement p = multiple_linear_placement(torus, t);
        const auto bounds = all_bounds(torus, p);
        table.add_row({fmt(static_cast<long long>(d)),
                       fmt(static_cast<long long>(k)),
                       fmt(static_cast<long long>(t)), fmt(bounds[0].value),
                       fmt(bounds[1].value), fmt(bounds[2].value),
                       fmt(bounds[3].value),
                       fmt(odr_loads(torus, p).max_load()),
                       fmt(udr_loads(torus, p).max_load())});
      }
  table.print(std::cout);

  bench_banner(
      "E6: improved bound vs Blaum bound as d grows (Section 4)",
      "c^2 k^{d-1}/8 (d-independent constant) overtakes (|P|-1)/2d at d=4");
  Table cross({"d", "k", "|P|=k^{d-1}", "blaum (|P|-1)/2d",
               "improved k^{d-1}/8", "winner"});
  const i32 k = 4;
  for (i32 d = 2; d <= 7; ++d) {
    const i64 psize = powi(k, d - 1);
    const double blaum = blaum_lower_bound(psize, d);
    const double improved = improved_lower_bound(1.0, k, d);
    cross.add_row({fmt(static_cast<long long>(d)),
                   fmt(static_cast<long long>(k)),
                   fmt(static_cast<long long>(psize)), fmt(blaum),
                   fmt(improved), improved > blaum ? "improved" : "blaum"});
  }
  cross.print(std::cout);
  std::cout << std::endl;
}

void BM_AllBounds(benchmark::State& state) {
  const i32 d = static_cast<i32>(state.range(0));
  const i32 k = static_cast<i32>(state.range(1));
  Torus torus(d, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    const double best = best_lower_bound(torus, p);
    benchmark::DoNotOptimize(best);
  }
}

BENCHMARK(BM_AllBounds)
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 6})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
