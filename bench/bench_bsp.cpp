// E14 — BSP h-relations and hotspot contrast (Section 1's BSP motivation).
//
// The paper motivates linear load through BSP: a placement with linear
// load can realize h-relations in O(h) time.  We simulate h-relations on
// the linear placement and estimate the BSP gap g = makespan / h, which
// must flatten as h grows; the fully populated torus's g keeps growing
// with k while the linear placement's does not.  A hotspot run shows the
// opposite regime (receiver-bound, not network-bound).

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E14: BSP h-relations on the optimal placement",
               "gap estimate g = makespan/h flattens in h; g stays level "
               "in k for linear placements, grows for full population");
  UdrRouter udr;

  Table hsweep({"d", "k", "|P|", "h", "makespan", "g = makespan/h"});
  for (i32 k : {6, 8}) {
    Torus torus(2, k);
    const Placement p = linear_placement(torus);
    for (i64 h : {1, 2, 4, 8, 16}) {
      const auto traffic = h_relation_traffic(torus, p, udr, h, 37);
      const SimMetrics m = NetworkSim(torus).run(traffic.messages);
      hsweep.add_row({"2", fmt(static_cast<long long>(k)),
                      fmt(static_cast<long long>(p.size())),
                      fmt(static_cast<long long>(h)),
                      fmt(static_cast<long long>(m.cycles)),
                      fmt(static_cast<double>(m.cycles) /
                          static_cast<double>(h))});
    }
  }
  hsweep.print(std::cout);

  std::cout << "\nGap vs network size at h = 8 (linear vs full):\n\n";
  Table gsweep({"k", "g linear", "g full"});
  for (i32 k : {4, 6, 8}) {
    Torus torus(2, k);
    const Placement lin = linear_placement(torus);
    const Placement full = full_population(torus);
    const auto lin_traffic = h_relation_traffic(torus, lin, udr, 8, 41);
    const auto full_traffic = h_relation_traffic(torus, full, udr, 8, 41);
    const double g_lin =
        static_cast<double>(NetworkSim(torus).run(lin_traffic.messages).cycles) / 8.0;
    const double g_full =
        static_cast<double>(NetworkSim(torus).run(full_traffic.messages).cycles) /
        8.0;
    gsweep.add_row({fmt(static_cast<long long>(k)), fmt(g_lin, 2),
                    fmt(g_full, 2)});
  }
  gsweep.print(std::cout);

  std::cout << "\nHotspot contrast (all processors send to one target, "
               "T_8^2 linear placement):\n\n";
  {
    Torus torus(2, 8);
    const Placement p = linear_placement(torus);
    const auto traffic = hotspot_traffic(torus, p, udr, p.nodes()[0], 43);
    const SimMetrics m = NetworkSim(torus).run(traffic.messages);
    Table hot({"messages", "makespan", "peak queue"});
    hot.add_row({fmt(static_cast<long long>(m.injected)),
                 fmt(static_cast<long long>(m.cycles)),
                 fmt(static_cast<long long>(m.max_queue_depth))});
    hot.print(std::cout);
  }
  std::cout << std::endl;
}

void BM_HRelation(benchmark::State& state) {
  const i64 h = state.range(0);
  Torus torus(2, 8);
  const Placement p = linear_placement(torus);
  UdrRouter udr;
  const auto traffic = h_relation_traffic(torus, p, udr, h, 37);
  for (auto _ : state) {
    const SimMetrics m = NetworkSim(torus).run(traffic.messages);
    benchmark::DoNotOptimize(m.cycles);
  }
}

BENCHMARK(BM_HRelation)->Arg(1)->Arg(8)->Arg(32)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
