// Shared scaffolding for the experiment benches.
//
// Every bench binary regenerates one experiment of DESIGN.md's index: it
// first prints the paper-vs-measured table for that experiment (the
// "rows/series the paper reports"), then runs google-benchmark timings of
// the underlying computation.  TP_BENCH_MAIN wires the two together.
//
// Observability: setting TP_OBS=1 in the environment enables the global
// metrics registry for the run, and the bench prints the accumulated
// counters/histograms after the timing section — library counters (path
// enumerations, pairs evaluated, sim cycles, ...) land next to the wall
// times.  TP_OBS_STATS=<path> additionally appends the snapshot as a JSON
// line (the same format as the CLI's --stats-json).  NOTE: enabling the
// registry perturbs the timings by the recording cost; leave TP_OBS unset
// for clean numbers.
//
// Profiling: TP_PROF=1 turns the in-process phase/sampling profiler on
// for the whole run and prints the phase cost table after the timing
// section; TP_PROF=<path> additionally writes collapsed stacks
// (flamegraph input) to <path>.  Same caveat as TP_OBS: the phase
// push/pop cost is inside the timed regions, so leave it unset for
// numbers meant for benchstat gating.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/analysis/table.h"
#include "src/obs/obs.h"

#define TP_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                               \
    ::tp::bench_obs_init();                                       \
    print_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
      return 1;                                                   \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    ::tp::bench_obs_report();                                     \
    ::tp::bench_prof_report();                                    \
    return 0;                                                     \
  }

namespace tp {

inline void bench_banner(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Enables the metrics registry when TP_OBS is set in the environment,
/// and the in-process profiler when TP_PROF is set (TP_PROF=<path> also
/// selects a collapsed-stack output file, reported by bench_obs_report).
inline void bench_obs_init() {
  if (std::getenv("TP_OBS") != nullptr) obs::registry().set_enabled(true);
  if (std::getenv("TP_PROF") != nullptr)
    obs::profiler().start(obs::ProfilerConfig{});
}

/// Prints the accumulated registry contents (and appends a JSON line to
/// $TP_OBS_STATS if set).  No-op when the registry is disabled.
inline void bench_obs_report() {
  if (!obs::registry().enabled()) return;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  std::cout << "\n--- observability counters (TP_OBS) ---\n";
  Table table({"metric", "value"});
  for (const auto& [name, v] : snap.counters)
    table.add_row({name, fmt(static_cast<long long>(v))});
  for (const auto& [name, v] : snap.gauges)
    table.add_row({name, fmt(static_cast<long long>(v))});
  for (const auto& [name, h] : snap.histograms)
    table.add_row(
        {name, "n=" + fmt(static_cast<long long>(h.count)) +
                   " mean=" + fmt(h.mean(), 2) +
                   " p50=" + fmt(h.percentile(0.50), 2) +
                   " p95=" + fmt(h.percentile(0.95), 2) +
                   " max=" + fmt(static_cast<long long>(h.max))});
  table.print(std::cout);
  if (const char* path = std::getenv("TP_OBS_STATS"))
    obs::export_json(snap, path, /*append=*/true);
}

/// Prints the profiler's phase table (and writes collapsed stacks when
/// TP_PROF names a file).  No-op when TP_PROF was unset at init.
inline void bench_prof_report() {
  if (!obs::profiler().enabled()) return;
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  std::cout << "\n--- phase profile (TP_PROF) ---\n"
            << obs::format_phase_table(report);
  const char* path = std::getenv("TP_PROF");
  if (path != nullptr && std::strcmp(path, "1") != 0 && *path != '\0') {
    std::ofstream folded(path);
    if (folded.good()) {
      obs::write_collapsed(report, folded);
      std::cout << "wrote collapsed stacks to " << path << "\n";
    }
  }
}

}  // namespace tp
