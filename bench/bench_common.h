// Shared scaffolding for the experiment benches.
//
// Every bench binary regenerates one experiment of DESIGN.md's index: it
// first prints the paper-vs-measured table for that experiment (the
// "rows/series the paper reports"), then runs google-benchmark timings of
// the underlying computation.  TP_BENCH_MAIN wires the two together.

#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "src/analysis/table.h"

#define TP_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                               \
    print_fn();                                                   \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
      return 1;                                                   \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }

namespace tp {

inline void bench_banner(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace tp
