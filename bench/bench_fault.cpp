// E11 — fault tolerance (Section 7).
//
// Sweeps the number of failed wires on T_8^2 and T_5^3 and reports the
// fraction of processor pairs each router can still serve, averaged over
// several fault samples.  The paper's claim: UDR's s! paths give it
// genuine fault tolerance where single-path ODR degrades immediately.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

double mean_routable(const Torus& torus, const Placement& p,
                     const Router& router, i64 failures, int samples) {
  double sum = 0.0;
  for (int s = 0; s < samples; ++s)
    sum += routable_pair_fraction(torus, p, router,
                                  sample_wire_faults(torus, failures,
                                                     static_cast<u64>(s)));
  return sum / samples;
}

void print_tables() {
  bench_banner("E11: routability under link faults (Section 7)",
               "fraction of ordered pairs with a surviving path, mean over "
               "5 fault samples");
  OdrRouter odr;
  UdrRouter udr;
  const int samples = 5;
  for (const auto& [d, k] : std::vector<std::pair<i32, i32>>{{2, 8}, {3, 5}}) {
    Torus torus(d, k);
    const Placement p = linear_placement(torus);
    std::cout << "T_" << k << "^" << d << ", |P| = " << p.size() << ", "
              << torus.num_undirected_edges() << " wires:\n";
    Table table({"failed wires", "ODR routable", "UDR routable",
                 "UDR advantage"});
    for (i64 f : {1, 2, 4, 8, 16}) {
      const double o = mean_routable(torus, p, odr, f, samples);
      const double u = mean_routable(torus, p, udr, f, samples);
      table.add_row({fmt(static_cast<long long>(f)), fmt(o, 4), fmt(u, 4),
                     fmt(u - o, 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
}

void BM_RoutableFraction(benchmark::State& state) {
  Torus torus(2, 8);
  const Placement p = linear_placement(torus);
  UdrRouter udr;
  const EdgeSet faults = sample_wire_faults(torus, state.range(0), 3);
  for (auto _ : state) {
    const double frac = routable_pair_fraction(torus, p, udr, faults);
    benchmark::DoNotOptimize(frac);
  }
}

BENCHMARK(BM_RoutableFraction)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
