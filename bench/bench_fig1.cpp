// E1 — Figure 1: the 3-processor placement on T_3^2.
//
// Regenerates the figure's data: which links the routing algorithm
// highlights (positive load) and the per-link loads, for ODR and UDR.

#include "bench/bench_common.h"
#include "src/analysis/grid_render.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E1: Figure 1 — placement of three processors on T_3^2",
               "linear placement {(0,0),(1,2),(2,1)}; highlighted links = "
               "links with positive load");
  Torus torus(2, 3);
  const Placement p = linear_placement(torus);
  std::cout << render_placement(torus, p) << "\n";

  Table table({"router", "links used", "E_max", "total load", "mean load"});
  const LoadMap odr = odr_loads(torus, p);
  const LoadMap udr = udr_loads(torus, p);
  const LoadMap adaptive = adaptive_loads(torus, p);
  for (const auto& [name, loads] :
       {std::pair<const char*, const LoadMap*>{"ODR", &odr},
        {"UDR", &udr},
        {"ADAPTIVE", &adaptive}}) {
    table.add_row({name,
                   fmt(static_cast<long long>(loads->num_loaded_edges())),
                   fmt(loads->max_load()), fmt(loads->total_load()),
                   fmt(loads->mean_load())});
  }
  table.print(std::cout);
  std::cout << "\nODR loads on the grid:\n"
            << render_loads(torus, p, odr) << std::endl;
}

void BM_Fig1Loads(benchmark::State& state) {
  Torus torus(2, 3);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    const LoadMap loads = odr_loads(torus, p);
    benchmark::DoNotOptimize(loads.max_load());
  }
}

BENCHMARK(BM_Fig1Loads)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
