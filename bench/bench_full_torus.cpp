// E2 — the motivating claim of Section 1: fully populated tori have
// superlinear maximum load.
//
// Measures E_max of the complete exchange on fully populated T_k^d and
// compares with the bisection argument's k^{d+1}/8, alongside the linear
// placement's flat E_max/|P| — the series that justifies partial
// population.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E2: fully populated torus load (Section 1)",
               "full: E_max > k^{d+1}/8, ratio E_max/|P| grows with k; "
               "linear placement: ratio flat");
  for (i32 d = 2; d <= 3; ++d) {
    std::cout << "d = " << d << ":\n";
    Table table({"k", "|P| full", "E_max full", "k^{d+1}/8",
                 "ratio full", "|P| lin", "E_max lin", "ratio lin"});
    for (i32 k : {4, 6, 8, (d == 2 ? 10 : 8)}) {
      Torus torus(d, k);
      const Placement full = full_population(torus);
      const Placement lin = linear_placement(torus);
      const double full_emax = odr_loads(torus, full).max_load();
      const double lin_emax = odr_loads(torus, lin).max_load();
      table.add_row(
          {fmt(static_cast<long long>(k)),
           fmt(static_cast<long long>(full.size())), fmt(full_emax),
           fmt(full_torus_load_lower_bound(k, d)),
           fmt(full_emax / static_cast<double>(full.size())),
           fmt(static_cast<long long>(lin.size())), fmt(lin_emax),
           fmt(lin_emax / static_cast<double>(lin.size()))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
}

void BM_FullTorusLoads(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = full_population(torus);
  double emax = 0.0;
  for (auto _ : state) {
    emax = odr_loads(torus, p).max_load();
    benchmark::DoNotOptimize(emax);
  }
  state.counters["E_max"] = emax;
}

BENCHMARK(BM_FullTorusLoads)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
