// E8 — Theorem 3: multiple linear placements with ODR.
//
// For t = 1..4 and a k sweep: measured E_max against the t^2 k^{d-1}
// bound, and the E_max/|P| ratio, which must stay bounded as k grows for
// every fixed t (that is the theorem's linearity claim).

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E8: multiple linear placements with ODR (Theorem 3)",
               "measured E_max <= t^2 k^{d-1}; E_max/|P| bounded in k for "
               "fixed t");

  for (i32 d = 2; d <= 3; ++d) {
    std::cout << "d = " << d << ":\n";
    Table table({"t", "k", "|P|", "E_max", "Thm3 bound t^2 k^{d-1}",
                 "E_max/|P|"});
    for (i32 t = 1; t <= 4; ++t)
      for (i32 k : {4, 6, 8, 10}) {
        if (t > k) continue;
        Torus torus(d, k);
        const Placement p = multiple_linear_placement(torus, t);
        const double emax = odr_loads(torus, p).max_load();
        table.add_row({fmt(static_cast<long long>(t)),
                       fmt(static_cast<long long>(k)),
                       fmt(static_cast<long long>(p.size())), fmt(emax),
                       fmt(multiple_odr_upper(t, k, d)),
                       fmt(emax / static_cast<double>(p.size()))});
      }
    table.print(std::cout);
    std::cout << "\n";
  }
}

void BM_MultipleLinearOdr(benchmark::State& state) {
  const i32 t_mult = static_cast<i32>(state.range(0));
  const i32 k = static_cast<i32>(state.range(1));
  Torus torus(3, k);
  const Placement p = multiple_linear_placement(torus, t_mult);
  double emax = 0.0;
  for (auto _ : state) {
    emax = odr_loads(torus, p).max_load();
    benchmark::DoNotOptimize(emax);
  }
  state.counters["E_max"] = emax;
  state.counters["P"] = static_cast<double>(p.size());
}

BENCHMARK(BM_MultipleLinearOdr)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
