// E7 — Theorem 2 and the Section 6.1 exact count.
//
// Regenerates the paper's ODR load analysis on the all-ones linear
// placement: for every (d, k) in the sweep, the exact measured maximum
// load over interior-dimension links against the paper's closed form
//   k even:  k^{d-1}/8 + k^{d-2}/4        k odd:  k^{d-1}/8 - k^{d-3}/8
// and the overall maximum against this reproduction's boundary-dimension
// form floor(k/2) k^{d-2}.  Includes the tie-break ablation (canonical +
// versus both directions) for even k.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E7: ODR on linear placements (Theorem 2, Section 6.1)",
               "measured == paper closed form on interior dims; overall max "
               "= floor(k/2)k^{d-2} (boundary dims); all linear in |P|");

  Table table({"d", "k", "|P|", "E_max measured", "interior measured",
               "paper interior form", "overall form", "E_max/|P|",
               "Thm2 bound k^{d-1}"});
  for (i32 d = 2; d <= 4; ++d) {
    for (i32 k = 3; k <= (d == 2 ? 16 : d == 3 ? 12 : 6); ++k) {
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const LoadMap loads = odr_loads(torus, p);
      const double interior =
          d >= 3 ? loads.max_load_in_dim(torus, 1) : 0.0;
      table.add_row(
          {fmt(static_cast<long long>(d)), fmt(static_cast<long long>(k)),
           fmt(static_cast<long long>(p.size())), fmt(loads.max_load()),
           d >= 3 ? fmt(interior) : "n/a",
           d >= 3 ? fmt(odr_linear_emax(k, d)) : "n/a (needs d>=3)",
           fmt(odr_linear_emax_overall(k, d)),
           fmt(loads.max_load() / static_cast<double>(p.size())),
           fmt(odr_linear_emax_upper(k, d))});
    }
  }
  table.print(std::cout);

  std::cout << "\nAblation: tie-break rule on even k (canonical + vs both "
               "directions)\n\n";
  Table ablation({"d", "k", "E_max (+ only)", "E_max (both)", "ratio"});
  for (i32 k : {4, 6, 8, 10}) {
    Torus torus(3, k);
    const Placement p = linear_placement(torus);
    const double plus = odr_loads(torus, p, TieBreak::PositiveOnly).max_load();
    const double both =
        odr_loads(torus, p, TieBreak::BothDirections).max_load();
    ablation.add_row({"3", fmt(static_cast<long long>(k)), fmt(plus),
                      fmt(both), fmt(both / plus)});
  }
  ablation.print(std::cout);
  std::cout << std::endl;
}

void BM_OdrLoads(benchmark::State& state) {
  const i32 d = static_cast<i32>(state.range(0));
  const i32 k = static_cast<i32>(state.range(1));
  Torus torus(d, k);
  const Placement p = linear_placement(torus);
  double emax = 0.0;
  for (auto _ : state) {
    const LoadMap loads = odr_loads(torus, p);
    emax = loads.max_load();
    benchmark::DoNotOptimize(emax);
  }
  state.counters["E_max"] = emax;
  state.counters["P"] = static_cast<double>(p.size());
  state.counters["pairs_per_s"] = benchmark::Counter(
      static_cast<double>(p.size() * (p.size() - 1)),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_OdrLoads)
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({3, 6})
    ->Args({3, 10})
    ->Args({4, 5})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
