// E15 — how good is the linear placement really? (placement-space search)
//
// The paper proves the linear placement asymptotically optimal.  Here we
// search the space of same-size placements: exhaustively where C(N, m)
// permits, by simulated annealing beyond that, and compare the best found
// E_max with the linear placement's — on every instance we can afford,
// nothing beats the diagonal.

#include "bench/bench_common.h"
#include "src/core/optimize.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E15: search over same-size placements (beyond the paper)",
               "minimum E_max over all / annealed placements of size "
               "k^{d-1} vs the linear placement");

  Table table({"torus", "|P|", "method", "candidates", "best E_max",
               "linear E_max", "Blaum bound"});
  // Exhaustive where feasible.
  for (i32 k : {3, 4, 5}) {
    Torus torus(2, k);
    const double linear = odr_loads(torus, linear_placement(torus)).max_load();
    const SearchResult best =
        exhaustive_best_placement(torus, k, RouterKind::Odr);
    table.add_row({"T_" + std::to_string(k) + "^2", fmt(k), "exhaustive",
                   fmt(best.evaluated), fmt(best.emax), fmt(linear),
                   fmt(blaum_lower_bound(k, 2))});
  }
  // Annealing beyond enumeration.
  for (i32 k : {6, 8}) {
    Torus torus(2, k);
    const double linear = odr_loads(torus, linear_placement(torus)).max_load();
    const SearchResult best =
        anneal_placement(torus, k, RouterKind::Odr, 3000, 17);
    table.add_row({"T_" + std::to_string(k) + "^2", fmt(k), "anneal",
                   fmt(best.evaluated), fmt(best.emax), fmt(linear),
                   fmt(blaum_lower_bound(k, 2))});
  }
  {
    Torus torus(3, 3);
    const double linear = odr_loads(torus, linear_placement(torus)).max_load();
    const SearchResult best =
        anneal_placement(torus, 9, RouterKind::Odr, 2000, 23);
    table.add_row({"T_3^3", "9", "anneal", fmt(best.evaluated),
                   fmt(best.emax), fmt(linear),
                   fmt(blaum_lower_bound(9, 3))});
  }
  table.print(std::cout);
  std::cout << "\nNo searched placement beats the linear placement's "
               "E_max; on the exhaustive rows the diagonal is provably "
               "optimal for its size.\n"
            << std::endl;
}

void BM_ExhaustiveSearch(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  for (auto _ : state) {
    const SearchResult best =
        exhaustive_best_placement(torus, k, RouterKind::Odr);
    benchmark::DoNotOptimize(best.emax);
  }
}

void BM_Annealing(benchmark::State& state) {
  Torus torus(2, static_cast<i32>(state.range(0)));
  for (auto _ : state) {
    const SearchResult best = anneal_placement(
        torus, state.range(0), RouterKind::Odr, 500, 17);
    benchmark::DoNotOptimize(best.emax);
  }
}

BENCHMARK(BM_ExhaustiveSearch)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_Annealing)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
