// E13 — eq. (9): placements larger than Theta(k^{d-1}) cannot keep the
// load linear.
//
// Grows the multiplicity t *with* k (t = k/2, i.e. |P| = k^d/2) and shows
// E_max/|P| rising without bound, while fixed-t families stay flat — the
// size ceiling the paper derives from the bisection argument.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E13: maximum optimal placement size (eq. 9)",
               "fixed t: E_max/|P| flat in k.  t growing with k (|P| = "
               "Theta(k^d)): ratio diverges");
  Table table({"k", "family", "t", "|P|", "E_max", "E_max/|P|"});
  for (i32 k : {4, 6, 8, 10, 12}) {
    Torus torus(2, k);
    // Fixed-size family: t = 1.
    {
      const Placement p = multiple_linear_placement(torus, 1);
      const double emax = odr_loads(torus, p).max_load();
      table.add_row({fmt(static_cast<long long>(k)), "t = 1", "1",
                     fmt(static_cast<long long>(p.size())), fmt(emax),
                     fmt(emax / static_cast<double>(p.size()))});
    }
    // Oversized family: t = k/2, |P| = k^2/2.
    {
      const i32 t = k / 2;
      const Placement p = multiple_linear_placement(torus, t);
      const double emax = odr_loads(torus, p).max_load();
      table.add_row({fmt(static_cast<long long>(k)), "t = k/2",
                     fmt(static_cast<long long>(t)),
                     fmt(static_cast<long long>(p.size())), fmt(emax),
                     fmt(emax / static_cast<double>(p.size()))});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe oversized family's E_max/|P| grows ~k/8 (superlinear "
               "load), matching the eq. (9) ceiling: only Theta(k^{d-1}) "
               "processors can enjoy linear load.\n"
            << std::endl;
}

void BM_OversizedLoads(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = multiple_linear_placement(torus, k / 2);
  double emax = 0.0;
  for (auto _ : state) {
    emax = odr_loads(torus, p).max_load();
    benchmark::DoNotOptimize(emax);
  }
  state.counters["ratio"] = emax / static_cast<double>(p.size());
}

BENCHMARK(BM_OversizedLoads)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
