// Ablation bench — implementation design choices of the load analyzer.
//
//   * UDR subset-weight accumulation vs s!-order enumeration (identical
//     loads; the subset method trades factorial for 2^s)
//   * load-computation cost scaling in |P| for each router
//   * reference (Definition 4 literal) vs specialized fast paths

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("Ablation: UDR load algorithms agree",
               "subset-weight fast path == s! enumeration (max |diff| "
               "reported)");
  Table table({"d", "k", "max abs diff", "E_max"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 5}) {
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const LoadMap fast = udr_loads(torus, p);
      const LoadMap slow = udr_loads_enumerated(torus, p);
      table.add_row({fmt(static_cast<long long>(d)),
                     fmt(static_cast<long long>(k)),
                     fmt(fast.max_abs_diff(slow), 12), fmt(fast.max_load())});
    }
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_UdrSubsetWeights(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(udr_loads(torus, p).max_load());
  }
}

void BM_UdrEnumerated(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(udr_loads_enumerated(torus, p).max_load());
  }
}

void BM_OdrReference(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  OdrRouter odr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_loads(torus, p, odr).max_load());
  }
}

void BM_OdrFast(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(odr_loads(torus, p).max_load());
  }
}

void BM_OdrParallel(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  const i32 threads = static_cast<i32>(state.range(1));
  Torus torus(3, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        odr_loads_parallel(torus, p, threads).max_load());
  }
  state.counters["threads"] = threads;
}

void BM_AdaptiveLoads(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adaptive_loads(torus, p).max_load());
  }
}

BENCHMARK(BM_UdrSubsetWeights)->Arg(4)->Arg(6)->Arg(8)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_UdrEnumerated)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OdrReference)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OdrFast)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_OdrParallel)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdaptiveLoads)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
