// E16 — latency vs offered load: where the network saturates.
//
// Open-loop random traffic at increasing injection rates, the standard
// interconnect evaluation curve.  A placement with smaller E_max per
// message sustains higher injection rates before latency diverges; the
// linear placement under UDR saturates last, the fully populated torus
// first — the dynamic face of the paper's load bounds.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

double mean_latency_at(const Torus& torus, const Placement& p,
                       const Router& router, double rate, i64 horizon) {
  const auto traffic =
      random_rate_traffic(torus, p, router, rate, horizon, 71);
  const SimMetrics m = NetworkSim(torus).run(traffic.messages);
  return m.mean_latency;
}

void print_tables() {
  bench_banner("E16: mean latency vs injection rate (open-loop traffic)",
               "messages per processor per cycle over 400 cycles; latency "
               "divergence marks saturation");
  Torus torus(2, 8);
  const Placement lin = linear_placement(torus);
  const Placement full = full_population(torus);
  OdrRouter odr;
  UdrRouter udr;
  const i64 horizon = 400;

  Table table({"rate", "linear+ODR", "linear+UDR", "full+ODR"});
  for (double rate : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    table.add_row({fmt(rate, 2),
                   fmt(mean_latency_at(torus, lin, odr, rate, horizon), 2),
                   fmt(mean_latency_at(torus, lin, udr, rate, horizon), 2),
                   fmt(mean_latency_at(torus, full, odr, rate, horizon), 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe fully populated torus's latency grows sharply at "
               "rates the partially\npopulated design absorbs easily — "
               "fewer injectors per link capacity.\n"
            << std::endl;
}

void BM_SaturationRun(benchmark::State& state) {
  Torus torus(2, 8);
  const Placement p = linear_placement(torus);
  UdrRouter udr;
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const auto traffic = random_rate_traffic(torus, p, udr, rate, 300, 71);
  for (auto _ : state) {
    const SimMetrics m = NetworkSim(torus).run(traffic.messages);
    benchmark::DoNotOptimize(m.mean_latency);
  }
}

BENCHMARK(BM_SaturationRun)->Arg(10)->Arg(50)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
