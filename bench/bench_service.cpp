// E-service — the query engine: cache hits vs cold plans, coalescing.
//
// The service answers (d, k, t, router) design queries through a sharded
// LRU cache with in-flight coalescing.  The table contrasts a cold miss
// (full plan + exact load computation) with a warm hit (one lock + list
// splice) and shows the dedup a coalesced 64-client burst achieves; the
// timing section backs the same three paths with wall times.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/thread_annotations.h"
#include "src/service/service.h"

namespace tp {
namespace {

std::string bench_tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

service::QueryKey load_key(i32 d, i32 k) {
  Radices radices;
  for (i32 i = 0; i < d; ++i) radices.push_back(k);
  return service::make_query_key(radices, 1, RouterKind::Odr,
                                 service::QueryOp::Load);
}

void print_tables() {
  bench_banner("E-service: plan query engine (cache + coalescing)",
               "a warm hit skips the whole computation; N identical "
               "concurrent requests compute once");
  Table table({"query", "cold plans", "warm plans", "64-client plans",
               "64-client dedup"});
  for (const auto& [d, k] :
       std::vector<std::pair<i32, i32>>{{2, 16}, {3, 8}}) {
    const service::QueryKey key = load_key(d, k);

    service::Engine cold;
    cold.run({key});
    const i64 cold_plans = cold.stats().plans_computed;
    cold.run({key});
    const i64 warm_plans = cold.stats().plans_computed - cold_plans;

    service::EngineConfig config;
    config.threads = 4;
    service::Engine burst(config);
    std::vector<tp::Thread> clients;
    clients.reserve(64);
    for (int i = 0; i < 64; ++i)
      clients.emplace_back([&burst, &key] { burst.run({key}); });
    for (auto& c : clients) c.join();
    const service::EngineStats s = burst.stats();

    table.add_row({key.str(), fmt(static_cast<long long>(cold_plans)),
                   fmt(static_cast<long long>(warm_plans)),
                   fmt(static_cast<long long>(s.plans_computed)),
                   fmt(static_cast<long long>(s.cache_hits + s.coalesced)) +
                       "/64"});
  }
  table.print(std::cout);
  std::cout << std::endl;
}

// Cold miss: every iteration hits a fresh engine, so the full plan +
// exact-load computation runs each time.
void BM_ServiceColdMiss(benchmark::State& state) {
  const service::QueryKey key = load_key(2, static_cast<i32>(state.range(0)));
  for (auto _ : state) {
    service::Engine engine;
    const service::Response r = engine.run({key});
    benchmark::DoNotOptimize(r.result);
  }
}

// Warm hit: the engine is primed once; iterations measure the cache path
// (submit -> shard lock -> LRU splice -> fulfilled ticket).
void BM_ServiceWarmHit(benchmark::State& state) {
  const service::QueryKey key = load_key(2, static_cast<i32>(state.range(0)));
  service::Engine engine;
  engine.run({key});
  for (auto _ : state) {
    const service::Response r = engine.run({key});
    benchmark::DoNotOptimize(r.result);
  }
}

// Coalesced burst: 64 clients hammer one key on a fresh engine.  The
// throughput number is requests answered per unit time; plans_computed
// stays 1 per iteration.
void BM_ServiceCoalesced64(benchmark::State& state) {
  const service::QueryKey key = load_key(2, static_cast<i32>(state.range(0)));
  i64 plans = 0;
  for (auto _ : state) {
    service::EngineConfig config;
    config.threads = 4;
    service::Engine engine(config);
    std::vector<service::Engine::Ticket> tickets;
    tickets.reserve(64);
    for (int i = 0; i < 64; ++i) tickets.push_back(engine.submit({key}));
    for (auto& t : tickets) benchmark::DoNotOptimize(t.wait().ok);
    plans = engine.stats().plans_computed;
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["requests"] =
      benchmark::Counter(64, benchmark::Counter::kIsIterationInvariantRate);
}

// Snapshot save: serializing a warm cache (CRC framing + fsync + atomic
// rename) — the cost the periodic saver pays per interval.
void BM_SnapshotSave(benchmark::State& state) {
  service::PlanCache cache(16, 4);
  for (i64 i = 0; i < state.range(0); ++i) {
    const service::QueryKey key = load_key(2, 8 + 2 * static_cast<i32>(i));
    cache.put(key, std::make_shared<service::QueryResult>(
                       service::compute_query(key)));
  }
  const std::string path =
      bench_tmp("bench_snapshot_save.snap");
  i64 bytes = 0;
  for (auto _ : state)
    bytes = service::save_cache_snapshot(cache, path).bytes;
  state.counters["bytes"] = static_cast<double>(bytes);
  std::remove(path.c_str());
}

// Snapshot load: parse + verify (per-record and whole-file CRCs, key hash
// cross-checks) + re-insert — the cost a warm boot adds to startup.
void BM_SnapshotLoad(benchmark::State& state) {
  service::PlanCache cache(16, 4);
  for (i64 i = 0; i < state.range(0); ++i) {
    const service::QueryKey key = load_key(2, 8 + 2 * static_cast<i32>(i));
    cache.put(key, std::make_shared<service::QueryResult>(
                       service::compute_query(key)));
  }
  const std::string path =
      bench_tmp("bench_snapshot_load.snap");
  service::save_cache_snapshot(cache, path);
  for (auto _ : state) {
    service::PlanCache warmed(16, 4);
    benchmark::DoNotOptimize(
        service::load_cache_snapshot(warmed, path).entries);
  }
  std::remove(path.c_str());
}

// Full warm boot: engine construction with --cache-load semantics — pool
// spawn + snapshot load + teardown.
void BM_WarmBoot(benchmark::State& state) {
  {
    service::EngineConfig config;
    config.threads = 2;
    config.snapshot_path =
        bench_tmp("bench_warm_boot.snap");
    service::Engine primer(config);
    for (i64 i = 0; i < state.range(0); ++i)
      primer.run({load_key(2, 8 + 2 * static_cast<i32>(i))});
    primer.save_snapshot();
  }
  const std::string path = bench_tmp("bench_warm_boot.snap");
  for (auto _ : state) {
    service::EngineConfig config;
    config.threads = 2;
    config.snapshot_path = path;
    config.snapshot_load = true;
    service::Engine engine(config);
    benchmark::DoNotOptimize(engine.snapshot_status().warm_entries);
  }
  std::remove(path.c_str());
}

// JSONL batch end-to-end: parse + submit + collect + render for a
// 100-request file with 10 unique keys.
void BM_ServiceBatch100(benchmark::State& state) {
  std::string input;
  for (int i = 0; i < 100; ++i)
    input += "{\"op\":\"load\",\"d\":2,\"k\":" + std::to_string(4 + i % 5) +
             ",\"router\":\"" + ((i / 5) % 2 == 0 ? "odr" : "udr") + "\"}\n";
  for (auto _ : state) {
    service::EngineConfig config;
    config.threads = 4;
    service::Engine engine(config);
    std::istringstream in(input);
    std::ostringstream out;
    benchmark::DoNotOptimize(service::run_batch(engine, in, out));
  }
}

BENCHMARK(BM_ServiceColdMiss)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceWarmHit)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceCoalesced64)->Arg(16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotSave)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotLoad)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WarmBoot)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceBatch100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
