// E12 — packet-level throughput: the load numbers predict real congestion.
//
// Simulates complete exchanges on the cycle-accurate store-and-forward
// network and compares makespans: fully populated vs linear placement, ODR
// vs UDR.  The makespan tracks E_max (the busiest link serializes), which
// is how the paper's abstract load connects to delivered throughput.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E12: simulated complete-exchange makespan (Section 1 "
               "motivation)",
               "makespan >= E_max; full population superlinear, linear "
               "placement flat");
  Table table({"d", "k", "placement", "router", "|P|", "messages",
               "makespan", "E_max", "makespan/E_max", "bottleneck util"});
  OdrRouter odr;
  UdrRouter udr;
  for (const auto& [d, k] :
       std::vector<std::pair<i32, i32>>{{2, 6}, {2, 8}, {2, 10}, {3, 4}}) {
    Torus torus(d, k);
    struct Config {
      Placement placement;
      const Router* router;
      const char* router_name;
    };
    const std::vector<Config> configs = {
        {full_population(torus), &odr, "ODR"},
        {linear_placement(torus), &odr, "ODR"},
        {linear_placement(torus), &udr, "UDR"},
    };
    for (const Config& cfg : configs) {
      const auto traffic =
          complete_exchange_traffic(torus, cfg.placement, *cfg.router, 13);
      const SimMetrics metrics = NetworkSim(torus).run(traffic.messages);
      const double emax =
          (cfg.router_name[0] == 'O'
               ? odr_loads(torus, cfg.placement)
               : udr_loads(torus, cfg.placement))
              .max_load();
      table.add_row(
          {fmt(static_cast<long long>(d)), fmt(static_cast<long long>(k)),
           cfg.placement.name(), cfg.router_name,
           fmt(static_cast<long long>(cfg.placement.size())),
           fmt(static_cast<long long>(metrics.injected)),
           fmt(static_cast<long long>(metrics.cycles)), fmt(emax, 2),
           fmt(static_cast<double>(metrics.cycles) / emax, 2),
           fmt(metrics.bottleneck_utilization(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << std::endl;
}

void BM_SimulateCompleteExchange(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(torus, p, odr, 13);
  i64 cycles = 0;
  for (auto _ : state) {
    const SimMetrics metrics = NetworkSim(torus).run(traffic.messages);
    cycles = metrics.cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["makespan"] = static_cast<double>(cycles);
}

BENCHMARK(BM_SimulateCompleteExchange)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
