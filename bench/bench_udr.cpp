// E9/E10 — Theorems 4 and 5: UDR load on linear and multiple linear
// placements.
//
// For each (d, k): measured E_max against the paper's 2^{d-1} k^{d-1}
// bound (Theorem 4), the per-pair path count s!, and for multiplicities
// t = 1..3 the Theorem 5 bound t^2 2^{d-1} k^{d-1}.  Also shows UDR's
// load-flattening against ODR — the fault-tolerance dividend.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"

namespace tp {
namespace {

void print_tables() {
  bench_banner("E9: UDR on linear placements (Theorem 4)",
               "measured E_max < 2^{d-1} k^{d-1}; linear in |P|");

  Table table({"d", "k", "|P|", "E_max UDR", "Thm4 bound", "E_max ODR",
               "UDR/ODR", "E_max/|P|"});
  for (i32 d = 2; d <= 4; ++d) {
    for (i32 k = 3; k <= (d == 2 ? 12 : d == 3 ? 10 : 5); ++k) {
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const double udr = udr_loads(torus, p).max_load();
      const double odr = odr_loads(torus, p).max_load();
      table.add_row({fmt(static_cast<long long>(d)),
                     fmt(static_cast<long long>(k)),
                     fmt(static_cast<long long>(p.size())), fmt(udr),
                     fmt(udr_linear_emax_upper(k, d)), fmt(odr),
                     fmt(udr / odr),
                     fmt(udr / static_cast<double>(p.size()))});
    }
  }
  table.print(std::cout);

  bench_banner("E10: UDR on multiple linear placements (Theorem 5)",
               "measured E_max < t^2 2^{d-1} k^{d-1} for every fixed t");
  Table multi({"d", "k", "t", "|P|", "E_max UDR", "Thm5 bound", "E_max/|P|"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8})
      for (i32 t = 1; t <= 3; ++t) {
        Torus torus(d, k);
        const Placement p = multiple_linear_placement(torus, t);
        const double emax = udr_loads(torus, p).max_load();
        multi.add_row({fmt(static_cast<long long>(d)),
                       fmt(static_cast<long long>(k)),
                       fmt(static_cast<long long>(t)),
                       fmt(static_cast<long long>(p.size())), fmt(emax),
                       fmt(multiple_udr_upper(t, k, d)),
                       fmt(emax / static_cast<double>(p.size()))});
      }
  multi.print(std::cout);
  std::cout << std::endl;
}

void BM_UdrLoadsSubsetWeights(benchmark::State& state) {
  const i32 d = static_cast<i32>(state.range(0));
  const i32 k = static_cast<i32>(state.range(1));
  Torus torus(d, k);
  const Placement p = linear_placement(torus);
  double emax = 0.0;
  for (auto _ : state) {
    emax = udr_loads(torus, p).max_load();
    benchmark::DoNotOptimize(emax);
  }
  state.counters["E_max"] = emax;
}

BENCHMARK(BM_UdrLoadsSubsetWeights)
    ->Args({2, 8})
    ->Args({2, 12})
    ->Args({3, 6})
    ->Args({3, 8})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
