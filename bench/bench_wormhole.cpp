// Ablation — wormhole deadlock vs the dateline discipline, and the
// throughput cost of virtual channels.
//
// Dynamic counterpart of the channel-dependency analysis: the same
// traffic under three VC policies, plus wormhole complete-exchange
// makespans for the paper's linear-placement design.

#include "bench/bench_common.h"
#include "src/core/torusplace.h"
#include "src/simulate/wormhole.h"

namespace tp {
namespace {

std::vector<Path> ring_shift(const Torus& t, i64 shift) {
  OdrRouter odr;
  std::vector<Path> traffic;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    traffic.push_back(
        odr.canonical_path(t, n, mod_norm(n + shift, t.num_nodes())));
  return traffic;
}

std::vector<Path> exchange_paths(const Torus& t, const Placement& p) {
  OdrRouter odr;
  std::vector<Path> traffic;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes())
      if (src != dst) traffic.push_back(odr.canonical_path(t, src, dst));
  return traffic;
}

void print_tables() {
  bench_banner("Ablation: wormhole deadlock vs dateline VCs",
               "cyclic ring traffic (8-flit messages) under three VC "
               "policies; static CDG verdicts alongside");
  Table table({"torus", "traffic", "policy", "outcome", "delivered",
               "cycles"});
  struct Case {
    const char* name;
    VcPolicy policy;
    i32 vcs;
  };
  const std::vector<Case> cases = {{"single VC", VcPolicy::SingleVc, 1},
                                   {"any-free x2", VcPolicy::AnyFree, 2},
                                   {"dateline x2", VcPolicy::Dateline, 2}};
  for (i32 k : {4, 6, 8}) {
    Torus ring(1, k);
    const auto traffic = ring_shift(ring, k / 2);
    for (const Case& c : cases) {
      WormholeConfig config;
      config.vcs_per_link = c.vcs;
      config.buffer_flits = 2;
      config.message_flits = 8;
      config.policy = c.policy;
      config.stall_threshold = 2000;
      const WormholeResult r = WormholeSim(ring, config).run(traffic);
      table.add_row({"ring k=" + std::to_string(k),
                     "shift k/2", c.name,
                     r.deadlocked ? "DEADLOCK" : "drained",
                     fmt(r.delivered), fmt(r.cycles)});
    }
  }
  table.print(std::cout);

  std::cout << "\nWormhole complete exchange, linear placement + ODR + "
               "dateline VCs:\n\n";
  Table exchange({"d", "k", "|P|", "flits/msg", "cycles", "cycles/|P|"});
  for (i32 k : {4, 6}) {
    Torus torus(2, k);
    const Placement p = linear_placement(torus);
    const auto traffic = exchange_paths(torus, p);
    for (i64 flits : {1, 4, 8}) {
      WormholeConfig config;
      config.message_flits = flits;
      config.policy = VcPolicy::Dateline;
      config.stall_threshold = 100000;
      const WormholeResult r = WormholeSim(torus, config).run(traffic);
      exchange.add_row(
          {fmt(2), fmt(k), fmt(p.size()), fmt(flits), fmt(r.cycles),
           fmt(static_cast<double>(r.cycles) /
               static_cast<double>(p.size()), 2)});
    }
  }
  exchange.print(std::cout);
  std::cout << std::endl;
}

void BM_WormholeExchange(benchmark::State& state) {
  const i32 k = static_cast<i32>(state.range(0));
  Torus torus(2, k);
  const Placement p = linear_placement(torus);
  const auto traffic = exchange_paths(torus, p);
  WormholeConfig config;
  config.message_flits = 4;
  config.policy = VcPolicy::Dateline;
  config.stall_threshold = 100000;
  for (auto _ : state) {
    const WormholeResult r = WormholeSim(torus, config).run(traffic);
    benchmark::DoNotOptimize(r.cycles);
  }
}

BENCHMARK(BM_WormholeExchange)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tp

TP_BENCH_MAIN(tp::print_tables)
