# Asserts that FILE is a non-empty, well-formed collapsed-stack file:
# every line is "<frame>[;<frame>...] <weight>" with an integer weight > 0
# (the format flamegraph.pl and speedscope ingest directly).
#
# Usage: cmake -DFILE=<path> -P check_collapsed.cmake

if(NOT EXISTS "${FILE}")
  message(FATAL_ERROR "collapsed output '${FILE}' was not written")
endif()

file(STRINGS "${FILE}" lines)
list(LENGTH lines n)
if(n EQUAL 0)
  message(FATAL_ERROR "collapsed output '${FILE}' is empty")
endif()

foreach(line IN LISTS lines)
  if(NOT line MATCHES "^[^ ]+ [1-9][0-9]*$")
    message(FATAL_ERROR "malformed collapsed-stack line: '${line}'")
  endif()
endforeach()

message(STATUS "collapsed output ok: ${n} stack(s) in ${FILE}")
