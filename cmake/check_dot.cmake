# lint_arch ctest: the committed docs/module-graph.dot must match what
# tp_lint extracts from the tree, so the rendered architecture diagram
# can never silently drift from reality.
#
# Variables:
#   TP_LINT  path to the built tp_lint binary
#   ROOT     repo root (PROJECT_SOURCE_DIR)
#   OUT      scratch path for the freshly extracted DOT
execute_process(
  COMMAND ${TP_LINT} --root ${ROOT} --dot ${OUT} .
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tp_lint must exit 0 on the real tree (got ${rc}):\n${out}${err}")
endif()
file(READ ${ROOT}/docs/module-graph.dot want)
file(READ ${OUT} got)
if(NOT got STREQUAL want)
  message(FATAL_ERROR
    "docs/module-graph.dot drifted from the observed include graph.\n"
    "--- extracted ---\n${got}\n--- committed ---\n${want}\n"
    "If the dependency change is intentional: update allowed_edges() in\n"
    "src/lint/include_graph.cpp (with rationale), then regenerate with\n"
    "  ./build/tools/tp_lint --root . --dot docs/module-graph.dot .")
endif()
