# Runs a command and asserts its exact exit code (and optionally that its
# combined output matches a regex).  ctest's PASS_REGULAR_EXPRESSION
# overrides the exit-code check entirely, so tests that pin the CLI's
# exit-code contract (0 ok / 2 usage / 3 internal) go through this script.
#
# Variables:
#   CMD     semicolon-separated command line to run
#   EXPECT  required exact exit code
#   MATCH   optional regex the combined stdout+stderr must match
#   STDIN   optional file fed to the command's standard input (for the
#           JSONL serve/batch front-ends)
if(DEFINED STDIN)
  execute_process(
    COMMAND ${CMD}
    INPUT_FILE ${STDIN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
else()
  execute_process(
    COMMAND ${CMD}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
endif()
set(all "${out}${err}")
if(NOT rc EQUAL ${EXPECT})
  message(FATAL_ERROR
    "exit code ${rc}, expected ${EXPECT}\ncommand: ${CMD}\noutput:\n${all}")
endif()
if(DEFINED MATCH AND NOT all MATCHES "${MATCH}")
  message(FATAL_ERROR
    "output does not match \"${MATCH}\"\ncommand: ${CMD}\noutput:\n${all}")
endif()
