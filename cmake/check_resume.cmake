# Kill-restart-resume contract for checkpointed runs (docs/durability.md):
#
#   1. golden   — run CMD uncheckpointed; must exit 0.  Its stdout is the
#                 reference output.
#   2. crash    — run CMD --checkpoint DIR with TP_CHECKPOINT_CRASH_AFTER
#                 set, so the CRASH_AFTER-th recorded cell raises SIGKILL
#                 mid-run.  Must NOT exit 0 (the whole point is dying).
#   3. resume   — run CMD --checkpoint DIR again.  Must exit 0, report the
#                 resumed cells on stderr, and produce stdout byte-identical
#                 to the golden run.
#
# Variables:
#   CMD          semicolon-separated command line (without --checkpoint)
#   DIR          checkpoint directory (removed first for a clean slate)
#   CRASH_AFTER  which record() call the crash run dies on

file(REMOVE_RECURSE "${DIR}")

execute_process(
  COMMAND ${CMD}
  RESULT_VARIABLE golden_rc
  OUTPUT_VARIABLE golden_out
  ERROR_VARIABLE golden_err)
if(NOT golden_rc EQUAL 0)
  message(FATAL_ERROR
    "golden run failed (${golden_rc})\ncommand: ${CMD}\n${golden_out}${golden_err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env TP_CHECKPOINT_CRASH_AFTER=${CRASH_AFTER}
          ${CMD} --checkpoint "${DIR}"
  RESULT_VARIABLE crash_rc
  OUTPUT_VARIABLE crash_out
  ERROR_VARIABLE crash_err)
if(crash_rc EQUAL 0)
  message(FATAL_ERROR
    "crash run exited 0 — TP_CHECKPOINT_CRASH_AFTER=${CRASH_AFTER} did not "
    "kill it\ncommand: ${CMD} --checkpoint ${DIR}\n${crash_out}${crash_err}")
endif()

execute_process(
  COMMAND ${CMD} --checkpoint "${DIR}"
  RESULT_VARIABLE resume_rc
  OUTPUT_VARIABLE resume_out
  ERROR_VARIABLE resume_err)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR
    "resume run failed (${resume_rc})\ncommand: ${CMD} --checkpoint ${DIR}\n"
    "${resume_out}${resume_err}")
endif()
if(NOT resume_err MATCHES "checkpoint: resumed [1-9][0-9]* completed cell")
  message(FATAL_ERROR
    "resume run did not report resumed cells\nstderr:\n${resume_err}")
endif()
if(NOT resume_out STREQUAL golden_out)
  message(FATAL_ERROR
    "resumed stdout differs from the uninterrupted run\n"
    "--- golden ---\n${golden_out}\n--- resumed ---\n${resume_out}")
endif()
