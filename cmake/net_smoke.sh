#!/usr/bin/env bash
# End-to-end TCP smoke for the network front-end (docs/networking.md):
#
#   1. start `serve --tcp 127.0.0.1:0` in the background and wait for the
#      resolved endpoint to land in the --port-file,
#   2. drive it with a short closed-loop loadgen run, which must report
#      zero errors and zero torn responses,
#   3. SIGTERM the server and assert a graceful drain: exit code 0 and
#      the "graceful shutdown" line on stderr.
#
# Usage: net_smoke.sh <torusplace-binary> <scratch-dir>
set -u

CLI="$1"
DIR="$2"
rm -rf "$DIR"
mkdir -p "$DIR"
PORT_FILE="$DIR/endpoint"

fail() {
  echo "net_smoke: $1" >&2
  echo "--- server stderr ---" >&2
  cat "$DIR/server.err" >&2 || true
  echo "--- loadgen output ---" >&2
  cat "$DIR/loadgen.out" >&2 || true
  kill -KILL "$SERVER_PID" 2> /dev/null || true
  exit 1
}

"$CLI" serve --tcp 127.0.0.1:0 --port-file "$PORT_FILE" \
  2> "$DIR/server.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$SERVER_PID" 2> /dev/null || fail "server died before binding"
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "no endpoint in --port-file after 10s"
ADDR="$(cat "$PORT_FILE")"

"$CLI" loadgen --connect "$ADDR" --clients 4 --duration-ms 1500 \
  --warmup-ms 300 --universe 8 > "$DIR/loadgen.out" ||
  fail "loadgen exited non-zero"
grep -q "errors 0 " "$DIR/loadgen.out" || fail "loadgen saw errors"
grep -q "torn 0 " "$DIR/loadgen.out" || fail "loadgen saw torn responses"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "server exited $RC after SIGTERM"
grep -q "graceful shutdown" "$DIR/server.err" ||
  fail "no graceful-shutdown line on server stderr"

echo "net_smoke: ok ($(grep 'qps' "$DIR/loadgen.out" | head -1 | tr -s ' '))"
exit 0
