// Estimating the BSP gap of a placement+routing design.
//
// Valiant's BSP model charges g cycles of bandwidth per message in an
// h-relation; a design with linear communication load realizes h-relations
// in ~g·h cycles with g independent of the machine size.  This example
// measures g empirically: it simulates h-relations of growing h on the
// linear placement and on the fully populated torus and fits
// g = makespan / h at large h.
//
// Build & run:  ./build/examples/bsp_gap

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

namespace {

double gap_estimate(const tp::Torus& torus, const tp::Placement& p,
                    const tp::Router& router, tp::i64 h) {
  const auto traffic = tp::h_relation_traffic(torus, p, router, h, 97);
  const tp::SimMetrics m = tp::NetworkSim(torus).run(traffic.messages);
  return static_cast<double>(m.cycles) / static_cast<double>(h);
}

}  // namespace

int main() {
  using namespace tp;
  UdrRouter udr;
  const i64 h_large = 32;

  std::cout << "BSP gap estimates (h-relation makespan / h at h = "
            << h_large << ", UDR routing)\n\n";
  Table table({"k", "|P| linear", "g linear", "|P| full", "g full"});
  for (i32 k : {4, 6, 8, 10}) {
    Torus torus(2, k);
    const Placement lin = linear_placement(torus);
    const Placement full = full_population(torus);
    table.add_row({fmt(k), fmt(lin.size()),
                   fmt(gap_estimate(torus, lin, udr, h_large), 2),
                   fmt(full.size()),
                   fmt(gap_estimate(torus, full, udr, h_large), 2)});
  }
  table.print(std::cout);

  std::cout << "\nConvergence of the estimate in h (T_8^2, linear "
               "placement):\n\n";
  Table conv({"h", "makespan", "g = makespan/h"});
  Torus torus(2, 8);
  const Placement lin = linear_placement(torus);
  for (i64 h : {1, 2, 4, 8, 16, 32, 64}) {
    const auto traffic = h_relation_traffic(torus, lin, udr, h, 97);
    const SimMetrics m = NetworkSim(torus).run(traffic.messages);
    conv.add_row({fmt(h), fmt(m.cycles),
                  fmt(static_cast<double>(m.cycles) / static_cast<double>(h), 3)});
  }
  conv.print(std::cout);

  std::cout << "\nThe linear placement's g settles to a machine-size-"
               "independent constant;\nthe fully populated torus's g grows "
               "with k — the BSP reading of the\npaper's linear-load "
               "requirement.\n";
  return 0;
}
