// Watching wormhole deadlock happen — and the dateline fix.
//
// The static analysis (src/routing/deadlock.h) says: on a torus the
// channel-dependency graph of dimension-ordered routing is cyclic over
// physical channels and acyclic with two dateline virtual channels.  This
// demo makes that dynamic: the same cyclic ring traffic is run through
// the flit-level wormhole simulator under three VC policies, and the
// single-VC / undisciplined configurations genuinely wedge.
//
// Build & run:  ./build/examples/deadlock_demo

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"
#include "src/simulate/wormhole.h"

int main() {
  using namespace tp;

  Torus ring(1, 6);
  OdrRouter odr;
  // Every node sends an 8-flit message halfway around the ring.
  std::vector<Path> traffic;
  for (NodeId n = 0; n < ring.num_nodes(); ++n)
    traffic.push_back(
        odr.canonical_path(ring, n, mod_norm(n + 3, ring.num_nodes())));

  std::cout << "6-node ring, every node sends 8 flits to the opposite "
               "node (3 hops each).\n\n";

  // First the static verdicts.
  const Placement everyone = full_population(ring);
  std::cout << "static analysis: physical CDG cyclic = "
            << fmt_bool(has_cycle(physical_channel_graph(ring, everyone, odr)))
            << ", dateline CDG cyclic = "
            << fmt_bool(has_cycle(dateline_channel_graph(ring, everyone, odr)))
            << "\n\n";

  Table table({"VC policy", "VCs", "outcome", "delivered", "cycles",
               "stuck messages"});
  struct Case {
    const char* name;
    VcPolicy policy;
    i32 vcs;
  };
  for (const Case& c : {Case{"single VC", VcPolicy::SingleVc, 1},
                        Case{"2 VCs, any free", VcPolicy::AnyFree, 2},
                        Case{"2 VCs, dateline", VcPolicy::Dateline, 2}}) {
    WormholeConfig config;
    config.vcs_per_link = c.vcs;
    config.buffer_flits = 2;
    config.message_flits = 8;
    config.policy = c.policy;
    config.stall_threshold = 1000;
    WormholeSim sim(ring, config);
    const WormholeResult result = sim.run(traffic);
    table.add_row({c.name, fmt(c.vcs),
                   result.deadlocked ? "DEADLOCK" : "drained",
                   fmt(result.delivered), fmt(result.cycles),
                   fmt(result.stuck_messages)});
  }
  table.print(std::cout);

  std::cout << "\nOwnership of a virtual channel lasts until the tail "
               "leaves, so the wrap-around\ncloses a cyclic wait; the "
               "dateline discipline orders the channels and breaks it.\n"
               "UDR cannot be protected this way (its dateline CDG stays "
               "cyclic — see\n`torusplace deadlock --router udr`): "
               "fault tolerance costs deadlock freedom\nunless paths are "
               "restricted or more VCs are spent.\n";
  return 0;
}
