// Fault tolerance of UDR vs ODR (Section 7).
//
// Fails an increasing number of wires in T_8^2 and reports, for each
// router, the fraction of processor pairs that can still communicate and
// the delivered-message count of a complete exchange simulated over the
// degraded network.
//
// Build & run:  ./build/examples/fault_tolerance

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

int main() {
  using namespace tp;

  const i32 d = 2, k = 8;
  Torus torus(d, k);
  const Placement p = linear_placement(torus);
  OdrRouter odr;
  UdrRouter udr;
  AdaptiveMinimalRouter adaptive;

  std::cout << "Fault tolerance on T_" << k << "^" << d << ", placement "
            << p.name() << " (|P| = " << p.size() << ", "
            << torus.num_undirected_edges() << " wires)\n\n";

  Table table({"failed wires", "ODR routable", "UDR routable",
               "ADAPTIVE routable", "UDR delivered", "UDR makespan"});
  for (i64 failures : {0, 1, 2, 4, 8, 16, 32}) {
    const EdgeSet faults = sample_wire_faults(torus, failures, /*seed=*/7);
    const double odr_frac = routable_pair_fraction(torus, p, odr, faults);
    const double udr_frac = routable_pair_fraction(torus, p, udr, faults);
    const double ad_frac =
        routable_pair_fraction(torus, p, adaptive, faults);

    const auto traffic =
        complete_exchange_traffic(torus, p, udr, /*seed=*/11, &faults);
    NetworkSim sim(torus, &faults);
    const SimMetrics metrics = sim.run(traffic.messages);

    table.add_row({fmt(static_cast<long long>(failures)), fmt(odr_frac, 4),
                   fmt(udr_frac, 4), fmt(ad_frac, 4),
                   fmt(static_cast<long long>(metrics.delivered)),
                   fmt(static_cast<long long>(metrics.cycles))});
  }
  table.print(std::cout);

  std::cout
      << "\nUDR keeps pairs connected (s! alternative paths) long after\n"
         "ODR's single path per pair starts failing; fully adaptive\n"
         "routing is the upper envelope.\n";
  return 0;
}
