// Figure 1 of the paper: a placement of three processors on T_3^2 with the
// links on the specified shortest paths highlighted.
//
// We reconstruct the figure with the all-ones linear placement
// {p : p1 + p2 = 0 (mod 3)} = {(0,0), (1,2), (2,1)} — three processors on
// the anti-diagonal — route the complete exchange with ODR, and print both
// the placement grid and the per-link loads (a link with positive load is
// exactly a "highlighted" link in the figure).
//
// Build & run:  ./build/examples/fig1_render

#include <iostream>

#include "src/analysis/grid_render.h"
#include "src/core/torusplace.h"

int main() {
  using namespace tp;

  Torus torus(2, 3);
  const Placement p = linear_placement(torus);

  std::cout << "Figure 1 — three processors on T_3^2 (placement "
            << p.name() << ")\n\n";
  std::cout << render_placement(torus, p) << "\n";

  std::cout << "Processors:";
  for (NodeId n : p.nodes()) std::cout << " " << torus.node_str(n);
  std::cout << "\n\n";

  const LoadMap odr = odr_loads(torus, p);
  std::cout << "Per-link loads under ODR (positive load = highlighted link "
               "in Fig. 1):\n\n"
            << render_loads(torus, p, odr) << "\n";

  std::cout << "links used: " << odr.num_loaded_edges() << " of "
            << torus.num_directed_edges() << " directed links\n";
  std::cout << "E_max = " << odr.max_load() << " (Blaum bound "
            << blaum_lower_bound(p.size(), 2) << ")\n\n";

  const LoadMap udr = udr_loads(torus, p);
  std::cout << "Under UDR the same traffic spreads over more links:\n";
  std::cout << "links used: " << udr.num_loaded_edges() << ", E_max = "
            << udr.max_load() << "\n";
  return 0;
}
