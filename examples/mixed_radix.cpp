// Section 8's generalization: placements on mixed-radix tori.
//
// The paper analyzes T_k^d with one radix k.  Real machines are often
// T_{k1 x k2 x ...} (e.g. 8x4 or 16x8x4).  The diagonal placement carries
// over: fix a dimension j and put a processor where
// p_j = c + sum of the other coordinates (mod k_j).  This example builds
// it on a few unequal-radix tori and shows the paper's program still
// works: uniformity along some dimension, the Theorem 1-style bisection,
// and linear load under ODR and UDR.
//
// Build & run:  ./build/examples/mixed_radix

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

int main() {
  using namespace tp;

  std::cout << "Diagonal placements on mixed-radix tori\n\n";
  Table table({"torus", "anchor dim", "|P|", "uniform dims", "E_max ODR",
               "E_max UDR", "E_max/|P|", "Thm1-cut links", "balanced"});

  const std::vector<Radices> shapes = {
      Radices{4, 8}, Radices{6, 4}, Radices{4, 6, 3}, Radices{8, 4, 4}};
  for (const Radices& shape : shapes) {
    Torus torus(shape);
    std::string shape_str;
    for (std::size_t i = 0; i < shape.size(); ++i) {
      if (i > 0) shape_str += "x";
      shape_str += std::to_string(shape[i]);
    }
    // Anchor the diagonal on the last dimension.
    const i32 anchor = torus.dims() - 1;
    const Placement p = diagonal_placement_mixed(torus, anchor);

    std::string uniform_str;
    for (i32 dim : uniform_dimensions(torus, p))
      uniform_str += std::to_string(dim) + " ";

    const double odr = odr_loads(torus, p).max_load();
    const double udr = udr_loads(torus, p).max_load();
    const auto cut = best_dimension_cut(torus, p);

    table.add_row({shape_str, fmt(anchor), fmt(p.size()), uniform_str,
                   fmt(odr), fmt(udr),
                   fmt(odr / static_cast<double>(p.size())),
                   fmt(cut.directed_edges),
                   fmt_bool(cut.imbalance <= 1)});
  }
  table.print(std::cout);

  std::cout << "\nThe placement stays uniform along every non-anchor "
               "dimension, the two-boundary\ncut still bisects it, and "
               "E_max/|P| stays near the equal-radix value of 1/2 —\n"
               "the paper's construction survives unequal radices.\n";
  return 0;
}
