// Interactive explorer: analyze any (d, k, t, router) combination from the
// command line.
//
//   placement_explorer [d] [k] [t] [odr|udr|adaptive]
//
// Prints the plan summary, measured loads, every lower bound, the
// Theorem 1 bisection, and the hyperplane-sweep separator for the chosen
// design — everything the paper says about that configuration, on demand.
//
// Build & run:  ./build/examples/placement_explorer 3 6 1 odr

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

namespace {

tp::RouterKind parse_router(const std::string& s) {
  if (s == "udr") return tp::RouterKind::Udr;
  if (s == "adaptive") return tp::RouterKind::Adaptive;
  return tp::RouterKind::Odr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tp;

  const i32 d = argc > 1 ? std::atoi(argv[1]) : 3;
  const i32 k = argc > 2 ? std::atoi(argv[2]) : 6;
  const i32 t = argc > 3 ? std::atoi(argv[3]) : 1;
  const RouterKind kind =
      parse_router(argc > 4 ? argv[4] : std::string("odr"));

  Torus torus(d, k);
  const PlacementPlan plan = plan_placement(torus, t, kind);
  std::cout << plan.summary << "\n\n";

  const LoadMap loads = measure_loads(torus, plan.placement, kind);
  Table load_table({"quantity", "value"});
  load_table.add_row({"measured E_max", fmt(loads.max_load())});
  load_table.add_row({"mean link load", fmt(loads.mean_load())});
  load_table.add_row(
      {"loaded links", fmt(static_cast<long long>(loads.num_loaded_edges()))});
  load_table.add_row(
      {"total load", fmt(loads.total_load())});
  load_table.add_row({"E_max / |P|",
                      fmt(loads.max_load() /
                          static_cast<double>(plan.placement.size()))});
  load_table.print(std::cout);

  std::cout << "\nLower bounds (any shortest-path router):\n";
  Table bound_table({"bound", "value", "applicable", "note"});
  for (const BoundValue& b : all_bounds(torus, plan.placement))
    bound_table.add_row({b.name, fmt(b.value), fmt_bool(b.applicable),
                         b.note});
  bound_table.print(std::cout);

  std::cout << "\nBisection with respect to the placement:\n";
  const auto cut = best_dimension_cut(torus, plan.placement);
  std::cout << "  Theorem 1 dimension cut: dim " << cut.dim << ", "
            << cut.directed_edges << " directed links, imbalance "
            << cut.imbalance << " (paper: " << uniform_bisection_width(k, d)
            << ")\n";
  const auto sweep = hyperplane_sweep_bisection(torus, plan.placement);
  std::cout << "  Hyperplane sweep: " << sweep.array_crossings
            << " array wires + " << sweep.wrap_crossings
            << " wrap wires crossed (Appendix bound "
            << sweep_separator_upper_bound(k, d) << " array wires)\n";
  return 0;
}
