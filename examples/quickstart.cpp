// Quickstart: plan the paper's optimal placement on T_8^3, measure the
// exact maximum link load under complete exchange, and compare it with the
// closed form and the lower bounds.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

int main() {
  using namespace tp;

  const i32 d = 3, k = 8;
  Torus torus(d, k);

  std::cout << "torusplace quickstart — T_" << k << "^" << d << " ("
            << torus.num_nodes() << " nodes, " << torus.num_directed_edges()
            << " directed links)\n\n";

  // Plan the optimal design: linear placement + ODR.
  PlacementPlan plan = plan_placement(torus, /*t=*/1, RouterKind::Odr);
  std::cout << plan.summary << "\n\n";

  // Measure the exact loads under all-to-all personalized communication.
  LoadMap loads = measure_loads(torus, plan.placement, plan.router_kind);

  Table table({"quantity", "value"});
  table.add_row({"|P|", fmt(static_cast<long long>(plan.placement.size()))});
  table.add_row({"measured E_max", fmt(loads.max_load())});
  table.add_row({"paper closed form k^2/8 + k/4", fmt(odr_linear_emax(k, d))});
  table.add_row({"Theorem 2 upper bound k^{d-1}", fmt(odr_linear_emax_upper(k, d))});
  table.add_row({"Blaum bound (|P|-1)/2d", fmt(blaum_lower_bound(plan.placement.size(), d))});
  table.add_row({"improved bound k^{d-1}/8", fmt(improved_lower_bound(1.0, k, d))});
  table.add_row({"total load", fmt(loads.total_load())});
  table.add_row({"sum of Lee distances", fmt(expected_total_load(torus, plan.placement))});
  table.print(std::cout);

  // The same design with fault-tolerant UDR routing.
  PlacementPlan udr_plan = plan_placement(torus, /*t=*/1, RouterKind::Udr);
  LoadMap udr = measure_loads(torus, udr_plan.placement, udr_plan.router_kind);
  std::cout << "\nUDR E_max = " << udr.max_load() << "  (Theorem 4 bound: < "
            << udr_linear_emax_upper(k, d) << ")\n";

  return 0;
}
