// Why partially populated tori (Section 1), demonstrated on the wire.
//
// Simulates a complete exchange in T_k^2, once with every node populated
// and once with the linear placement, and reports how the makespan scales
// with the number of processors.  The fully populated torus needs
// superlinearly more cycles per processor; the linear placement's
// cycles-per-processor stays flat — the throughput argument that motivates
// the whole paper.
//
// Build & run:  ./build/examples/throughput_sim

#include <iostream>

#include "src/analysis/table.h"
#include "src/core/torusplace.h"

int main() {
  using namespace tp;

  OdrRouter odr;
  std::cout << "Complete-exchange makespan, fully populated vs linear "
               "placement (T_k^2, ODR)\n\n";

  Table table({"k", "|P| full", "cycles full", "cyc/|P| full", "|P| lin",
               "cycles lin", "cyc/|P| lin"});
  for (i32 k : {4, 6, 8, 10}) {
    Torus torus(2, k);

    const Placement full = full_population(torus);
    const auto full_traffic = complete_exchange_traffic(torus, full, odr, 1);
    const SimMetrics full_metrics =
        NetworkSim(torus).run(full_traffic.messages);

    const Placement lin = linear_placement(torus);
    const auto lin_traffic = complete_exchange_traffic(torus, lin, odr, 1);
    const SimMetrics lin_metrics =
        NetworkSim(torus).run(lin_traffic.messages);

    table.add_row(
        {fmt(static_cast<long long>(k)),
         fmt(static_cast<long long>(full.size())),
         fmt(static_cast<long long>(full_metrics.cycles)),
         fmt(static_cast<double>(full_metrics.cycles) /
                 static_cast<double>(full.size()),
             2),
         fmt(static_cast<long long>(lin.size())),
         fmt(static_cast<long long>(lin_metrics.cycles)),
         fmt(static_cast<double>(lin_metrics.cycles) /
                 static_cast<double>(lin.size()),
             2)});
  }
  table.print(std::cout);

  std::cout << "\ncycles/|P| grows with k for the fully populated torus\n"
               "(superlinear load) but stays level for the linear placement\n"
               "(the paper's linear-load guarantee at work).\n";
  return 0;
}
