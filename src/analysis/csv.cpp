#include "src/analysis/csv.h"

#include <fstream>
#include <ostream>

#include "src/analysis/table.h"
#include "src/util/error.h"

namespace tp {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(cells[i]);
  }
  os << '\n';
}

void write_csv(std::ostream& os, const Table& table) {
  write_csv_row(os, table.headers());
  for (const auto& row : table.rows()) write_csv_row(os, row);
}

void save_csv(const std::string& path, const Table& table) {
  std::ofstream os(path);
  TP_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  write_csv(os, table);
  TP_REQUIRE(os.good(), "write to '" + path + "' failed");
}

}  // namespace tp
