// CSV export for experiment results.
//
// Benches and the CLI can persist their tables as RFC-4180 CSV so sweeps
// can be plotted or diffed outside the binary.  Quoting is applied only
// when a field needs it.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tp {

class Table;

/// Quotes a single CSV field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

/// Writes one CSV row.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

/// Writes a Table (header + rows) as CSV.
void write_csv(std::ostream& os, const Table& table);

/// Writes a Table to a file; throws tp::Error if the file cannot be
/// opened.
void save_csv(const std::string& path, const Table& table);

}  // namespace tp
