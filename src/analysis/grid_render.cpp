#include "src/analysis/grid_render.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/table.h"
#include "src/util/error.h"

namespace tp {

namespace {

void require_2d(const Torus& torus) {
  TP_REQUIRE(torus.dims() == 2, "grid rendering requires a 2-D torus");
}

/// Larger of the two directed loads across the wire leaving `n` along
/// `dim` in the + direction.
double wire_load(const Torus& torus, const LoadMap& loads, NodeId n,
                 i32 dim) {
  const EdgeId fwd = torus.edge_id(n, dim, Dir::Pos);
  return std::max(loads[fwd], loads[torus.reverse_edge(fwd)]);
}

}  // namespace

std::string render_placement(const Torus& torus, const Placement& p) {
  require_2d(torus);
  p.check_torus(torus);
  const i32 rows = torus.radix(0), cols = torus.radix(1);
  std::ostringstream os;
  for (i32 r = 0; r < rows; ++r) {
    for (i32 c = 0; c < cols; ++c) {
      const NodeId n = torus.node_id(Coord{r, c});
      os << (p.contains(n) ? "[*]" : "[ ]");
      if (c + 1 < cols) os << "--";
    }
    os << '\n';
    if (r + 1 < rows) {
      for (i32 c = 0; c < cols; ++c) {
        os << " | ";
        if (c + 1 < cols) os << "  ";
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string render_loads(const Torus& torus, const Placement& p,
                         const LoadMap& loads) {
  require_2d(torus);
  p.check_torus(torus);
  const i32 rows = torus.radix(0), cols = torus.radix(1);
  std::ostringstream os;

  // Wrap loads along dimension 1 (from last column back to column 0).
  for (i32 r = 0; r < rows; ++r) {
    // Node row with horizontal link loads.
    for (i32 c = 0; c < cols; ++c) {
      const NodeId n = torus.node_id(Coord{r, c});
      os << (p.contains(n) ? "[*]" : "[ ]");
      if (c + 1 < cols)
        os << "-" << fmt(wire_load(torus, loads, n, 1), 1) << "-";
    }
    {
      const NodeId last = torus.node_id(Coord{r, cols - 1});
      os << "  ~" << fmt(wire_load(torus, loads, last, 1), 1) << "~";
    }
    os << '\n';
    // Vertical link loads between this row and the next (or the wrap).
    if (r + 1 < rows) {
      for (i32 c = 0; c < cols; ++c) {
        const NodeId n = torus.node_id(Coord{r, c});
        os << fmt(wire_load(torus, loads, n, 0), 1);
        if (c + 1 < cols) os << "    ";
      }
      os << '\n';
    }
  }
  // Wrap loads along dimension 0 (from last row back to row 0).
  for (i32 c = 0; c < cols; ++c) {
    const NodeId n = torus.node_id(Coord{rows - 1, c});
    os << "~" << fmt(wire_load(torus, loads, n, 0), 1);
    if (c + 1 < cols) os << "  ";
  }
  os << "  (~x~ = wrap link load)\n";
  return os.str();
}

}  // namespace tp
