// ASCII rendering of 2-dimensional tori: placements (Figure 1 of the
// paper) and per-link load heat maps.  Dimension 0 runs down the page,
// dimension 1 across it.

#pragma once

#include <string>

#include "src/load/load_map.h"
#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/torus/torus.h"

namespace tp {

/// Draws the torus grid marking processor nodes '[*]' and empty routing
/// nodes '[ ]'.  Requires dims() == 2.
std::string render_placement(const Torus& torus, const Placement& p);

/// Draws the grid with each link annotated by its load (one decimal),
/// highlighting loaded links the way Figure 1 highlights used links.
/// Wrap links are shown on the border.  Requires dims() == 2.
std::string render_loads(const Torus& torus, const Placement& p,
                         const LoadMap& loads);

}  // namespace tp
