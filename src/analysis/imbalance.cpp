#include "src/analysis/imbalance.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace tp {

ImbalanceReport analyze_imbalance(const Torus& torus, const LoadMap& loads,
                                  std::size_t top_n) {
  TP_REQUIRE(loads.num_edges() == torus.num_directed_edges(),
             "load map sized for a different torus");

  ImbalanceReport report;
  report.total_links = loads.num_edges();
  report.by_dim.resize(static_cast<std::size_t>(torus.dims()));
  for (i32 dim = 0; dim < torus.dims(); ++dim)
    report.by_dim[static_cast<std::size_t>(dim)].dim = dim;

  double sum = 0.0;
  double sum_sq = 0.0;
  std::vector<EdgeId> ranked;
  for (EdgeId e = 0; e < loads.num_edges(); ++e) {
    const double w = loads[e];
    sum += w;
    sum_sq += w * w;
    report.max_load = std::max(report.max_load, w);
    if (w > 1e-12) {
      ++report.loaded_links;
      ranked.push_back(e);
    }
    const Link link = torus.link(e);
    DimLoadSummary& d = report.by_dim[static_cast<std::size_t>(link.dim)];
    d.total += w;
    d.max = std::max(d.max, w);
    (link.dir == Dir::Pos ? d.pos_total : d.neg_total) += w;
  }

  const auto n = static_cast<double>(loads.num_edges());
  report.mean_load = n > 0.0 ? sum / n : 0.0;
  if (report.mean_load > 0.0) {
    // Population variance; clamp tiny negative rounding residue.
    const double var =
        std::max(0.0, sum_sq / n - report.mean_load * report.mean_load);
    report.cov = std::sqrt(var) / report.mean_load;
    report.max_to_mean = report.max_load / report.mean_load;
  }

  std::sort(ranked.begin(), ranked.end(), [&](EdgeId a, EdgeId b) {
    if (loads[a] != loads[b]) return loads[a] > loads[b];
    return a < b;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);
  report.hotspots.reserve(ranked.size());
  for (EdgeId e : ranked) {
    const Link link = torus.link(e);
    report.hotspots.push_back(
        {e, loads[e], link.dim, link.dir, torus.edge_str(e)});
  }
  return report;
}

std::vector<ResidualEntry> load_residuals(const Torus& torus,
                                          const LoadMap& measured,
                                          const LoadMap& predicted,
                                          std::size_t top_n) {
  TP_REQUIRE(measured.num_edges() == torus.num_directed_edges() &&
                 predicted.num_edges() == torus.num_directed_edges(),
             "load maps sized for a different torus");

  std::vector<EdgeId> ranked;
  for (EdgeId e = 0; e < measured.num_edges(); ++e)
    if (std::abs(measured[e] - predicted[e]) > 1e-12) ranked.push_back(e);
  std::sort(ranked.begin(), ranked.end(), [&](EdgeId a, EdgeId b) {
    const double ra = std::abs(measured[a] - predicted[a]);
    const double rb = std::abs(measured[b] - predicted[b]);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);

  std::vector<ResidualEntry> out;
  out.reserve(ranked.size());
  for (EdgeId e : ranked)
    out.push_back({e, measured[e], predicted[e], measured[e] - predicted[e],
                   torus.edge_str(e)});
  return out;
}

LoadMap probe_load_map(const Torus& torus, const obs::LinkProbe& probe,
                       double scale) {
  TP_REQUIRE(probe.num_links() == torus.num_directed_edges(),
             "link probe sized for a different torus");
  LoadMap loads(torus);
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    const i64 f = probe.link(e).forwards;
    if (f != 0) loads.add(e, static_cast<double>(f) * scale);
  }
  return loads;
}

Table hotspot_table(const ImbalanceReport& report) {
  Table table({"rank", "link", "dim", "dir", "load"});
  i64 rank = 1;
  for (const LinkLoadEntry& h : report.hotspots) {
    table.add_row({fmt(rank++), h.label, fmt(h.dim),
                   h.dir == Dir::Pos ? "+" : "-", fmt(h.load)});
  }
  return table;
}

Table residual_table(const std::vector<ResidualEntry>& residuals) {
  Table table({"link", "measured", "predicted", "residual"});
  for (const ResidualEntry& r : residuals)
    table.add_row(
        {r.label, fmt(r.measured), fmt(r.predicted), fmt(r.residual)});
  return table;
}

}  // namespace tp
