// Hotspot and imbalance analysis of per-link loads.
//
// The paper's lower bounds speak about E_max, the busiest link; this
// module answers the follow-up questions an experimenter asks next:
// WHICH links are the busy ones (coordinates, dimension, direction), how
// unbalanced is the whole load distribution (coefficient of variation,
// max-to-mean ratio), and how far does a measured simulation load deviate
// from the analytic E(l) prediction (residual table).
//
// probe_load_map() is the bridge from the runtime telemetry layer
// (obs::LinkProbe, which is deliberately torus-free — see obs/linkprobe.h)
// back into the analytic LoadMap domain, so measured loads flow through
// the same rendering and analysis paths as predicted ones.

#pragma once

#include <string>
#include <vector>

#include "src/analysis/table.h"
#include "src/load/load_map.h"
#include "src/obs/linkprobe.h"
#include "src/torus/torus.h"

namespace tp {

/// One link in the hotspot ranking.
struct LinkLoadEntry {
  EdgeId edge = 0;
  double load = 0.0;
  i32 dim = 0;
  Dir dir = Dir::Pos;
  std::string label;  ///< torus.edge_str(edge): "(x,y) ->+d (x',y')" style
};

/// Aggregate loads of one dimension (both directions).
struct DimLoadSummary {
  i32 dim = 0;
  double total = 0.0;      ///< sum of E(l) over the dimension's links
  double max = 0.0;        ///< busiest link in the dimension
  double pos_total = 0.0;  ///< + direction share of `total`
  double neg_total = 0.0;  ///< - direction share of `total`
};

/// Everything analyze_imbalance() computes about a load map.
struct ImbalanceReport {
  /// Top-N links by load, descending; ties broken by edge id (ascending)
  /// so the ranking is deterministic.
  std::vector<LinkLoadEntry> hotspots;
  std::vector<DimLoadSummary> by_dim;  ///< one entry per dimension

  double max_load = 0.0;   ///< E_max
  double mean_load = 0.0;  ///< mean over ALL links, idle ones included
  /// Coefficient of variation (stddev / mean) over ALL links; 0 when the
  /// map carries no load.  A perfectly balanced placement has CoV 0.
  double cov = 0.0;
  double max_to_mean = 0.0;  ///< E_max / mean; 0 when the map is empty
  i64 loaded_links = 0;      ///< links with load > 1e-12
  i64 total_links = 0;
};

/// Ranks links and summarizes the load distribution.  `top_n` bounds the
/// hotspot list; links with zero load are never listed.
ImbalanceReport analyze_imbalance(const Torus& torus, const LoadMap& loads,
                                  std::size_t top_n = 10);

/// One row of the measured-vs-predicted comparison.
struct ResidualEntry {
  EdgeId edge = 0;
  double measured = 0.0;
  double predicted = 0.0;
  double residual = 0.0;  ///< measured - predicted
  std::string label;
};

/// Top-N links by |measured - predicted|, descending (ties by edge id).
/// Both maps must describe the same torus.
std::vector<ResidualEntry> load_residuals(const Torus& torus,
                                          const LoadMap& measured,
                                          const LoadMap& predicted,
                                          std::size_t top_n = 10);

/// Converts probe forward counts into a LoadMap: load(l) = forwards(l) *
/// scale.  Use scale = 1/flits_per_message to compare a flit-serialized
/// simulation against the paper's unit-load E(l).  The probe must be sized
/// for `torus`.
LoadMap probe_load_map(const Torus& torus, const obs::LinkProbe& probe,
                       double scale = 1.0);

/// Renders the hotspot ranking as an aligned text table
/// (rank / link / dim / dir / load columns).
Table hotspot_table(const ImbalanceReport& report);

/// Renders a residual list as an aligned text table.
Table residual_table(const std::vector<ResidualEntry>& residuals);

}  // namespace tp
