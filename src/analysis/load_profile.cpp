#include "src/analysis/load_profile.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp {

std::vector<DirectionProfile> load_profile(const Torus& torus,
                                           const LoadMap& loads) {
  TP_REQUIRE(loads.num_edges() == torus.num_directed_edges(),
             "load map covers a different torus");
  std::vector<DirectionProfile> profiles;
  for (i32 dim = 0; dim < torus.dims(); ++dim) {
    for (Dir dir : {Dir::Pos, Dir::Neg}) {
      DirectionProfile prof;
      prof.dim = dim;
      prof.dir = dir;
      i64 count = 0;
      for (NodeId n = 0; n < torus.num_nodes(); ++n) {
        const double v = loads[torus.edge_id(n, dim, dir)];
        prof.max_load = std::max(prof.max_load, v);
        prof.total_load += v;
        ++count;
      }
      prof.mean_load =
          count > 0 ? prof.total_load / static_cast<double>(count) : 0.0;
      profiles.push_back(prof);
    }
  }
  return profiles;
}

double direction_asymmetry(const Torus& torus, const LoadMap& loads,
                           i32 dim) {
  TP_REQUIRE(dim >= 0 && dim < torus.dims(), "dimension out of range");
  double pos = 0.0, neg = 0.0;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    pos += loads[torus.edge_id(n, dim, Dir::Pos)];
    neg += loads[torus.edge_id(n, dim, Dir::Neg)];
  }
  if (pos == 0.0 && neg == 0.0) return 1.0;
  TP_REQUIRE(neg > 0.0, "all load in one direction: asymmetry undefined");
  return pos / neg;
}

}  // namespace tp
