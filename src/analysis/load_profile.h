// Structural profiles of a load map: per-dimension and per-direction
// statistics.
//
// The canonical tie-break sends every half-way correction in the +
// direction, so on even-k tori the + links of a dimension carry more
// traffic than the - links; the profile quantifies that asymmetry and the
// boundary-vs-interior dimension split behind the E7 finding.

#pragma once

#include <vector>

#include "src/load/load_map.h"
#include "src/torus/torus.h"

namespace tp {

/// Load statistics for one (dimension, direction) link class.
struct DirectionProfile {
  i32 dim = 0;
  Dir dir = Dir::Pos;
  double max_load = 0.0;
  double mean_load = 0.0;
  double total_load = 0.0;
};

/// Profiles every (dimension, direction) class of the torus.
std::vector<DirectionProfile> load_profile(const Torus& torus,
                                           const LoadMap& loads);

/// Ratio of + to - total load in the given dimension (1.0 = symmetric).
/// Returns 1.0 when the dimension carries no load at all.
double direction_asymmetry(const Torus& torus, const LoadMap& loads,
                           i32 dim);

}  // namespace tp
