#include "src/analysis/resilience.h"

#include <algorithm>
#include <fstream>

#include "src/obs/json.h"
#include "src/obs/linkprobe.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"
#include "src/util/checked_io.h"
#include "src/util/error.h"
#include "src/util/parallel.h"

namespace tp {

namespace {

/// Busiest link's measured forwards — the degraded counterpart of E_max.
double probe_emax(const obs::LinkProbe& probe) {
  i64 best = 0;
  for (const obs::LinkCounters& c : probe.links())
    best = std::max(best, c.forwards);
  return static_cast<double>(best);
}

/// One complete-exchange run.  A null schedule (or an empty one) runs the
/// fault-free baseline; recovery reroutes through `router` otherwise.
SimMetrics run_exchange(const Torus& torus,
                        const std::vector<SimMessage>& messages,
                        const FaultSchedule* schedule, const Router& router,
                        const ResilienceConfig& config,
                        obs::LinkProbe* probe) {
  SimConfig sim_config;
  sim_config.probe = probe;
  if (schedule != nullptr) {
    sim_config.recovery.schedule = schedule;
    sim_config.recovery.reroute_router = &router;
    sim_config.recovery.max_retries = config.max_retries;
    sim_config.recovery.backoff_base = config.backoff_base;
    sim_config.recovery.seed = config.recovery_seed;
  }
  NetworkSim sim(torus, nullptr, sim_config);
  return sim.run(messages);
}

}  // namespace

DegradationReport degradation_report(const Torus& torus, const Placement& p,
                                     const Router& router,
                                     const FaultSchedule& schedule,
                                     const ResilienceConfig& config) {
  TP_REQUIRE(p.size() >= 2,
             "degradation analysis needs at least two processors");
  const TrafficResult traffic =
      complete_exchange_traffic(torus, p, router, config.traffic_seed);

  obs::LinkProbe baseline_probe(torus.num_directed_edges(), torus.dims());
  const SimMetrics baseline = run_exchange(torus, traffic.messages, nullptr,
                                           router, config, &baseline_probe);
  obs::LinkProbe degraded_probe(torus.num_directed_edges(), torus.dims());
  const SimMetrics degraded = run_exchange(torus, traffic.messages, &schedule,
                                           router, config, &degraded_probe);

  DegradationReport r;
  r.router_name = router.name();
  r.injected = degraded.injected;
  r.delivered = degraded.delivered;
  r.dropped = degraded.dropped;
  r.retries = degraded.retries;
  r.rerouted = degraded.rerouted;
  r.fail_events = degraded.fail_events;
  r.repair_events = degraded.repair_events;
  r.delivered_fraction =
      degraded.injected > 0
          ? static_cast<double>(degraded.delivered) /
                static_cast<double>(degraded.injected)
          : 1.0;
  r.baseline_cycles = baseline.cycles;
  r.cycles = degraded.cycles;
  r.completion_inflation =
      baseline.cycles > 0 ? static_cast<double>(degraded.cycles) /
                                static_cast<double>(baseline.cycles)
                          : 1.0;
  r.baseline_emax = probe_emax(baseline_probe);
  r.degraded_emax = probe_emax(degraded_probe);
  r.emax_inflation =
      r.baseline_emax > 0.0 ? r.degraded_emax / r.baseline_emax : 1.0;
  return r;
}

i64 resilience_horizon(const Torus& torus, const Placement& p,
                       const Router& router, const ResilienceConfig& config) {
  // The fault window defaults to the design's own fault-free makespan so
  // every rate stresses the active phase of the exchange.
  if (config.horizon > 0) return config.horizon;
  const TrafficResult traffic =
      complete_exchange_traffic(torus, p, router, config.traffic_seed);
  const i64 makespan =
      run_exchange(torus, traffic.messages, nullptr, router, config, nullptr)
          .cycles;
  return std::max<i64>(makespan, 1);
}

std::vector<DegradationReport> resilience_sweep(
    const Torus& torus, const Placement& p, const Router& router,
    const std::vector<double>& fault_rates, const ResilienceConfig& config) {
  TP_REQUIRE(!fault_rates.empty(), "resilience sweep needs fault rates");
  for (double rate : fault_rates)
    TP_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "fault rate must be a probability in [0, 1]");

  const i64 horizon = resilience_horizon(torus, p, router, config);

  std::vector<DegradationReport> curve;
  curve.reserve(fault_rates.size());
  for (double rate : fault_rates) {
    const FaultSchedule schedule = FaultSchedule::bernoulli(
        torus, rate, config.repair_prob, horizon, config.schedule_seed);
    DegradationReport r =
        degradation_report(torus, p, router, schedule, config);
    r.fault_rate = rate;
    curve.push_back(std::move(r));
  }
  return curve;
}

std::vector<WireCriticality> wire_criticality(const Torus& torus,
                                              const Placement& p,
                                              const Router& router,
                                              const ResilienceConfig& config,
                                              i32 threads) {
  TP_REQUIRE(p.size() >= 2,
             "criticality analysis needs at least two processors");
  TP_REQUIRE(threads >= 1, "need at least one thread");
  const TrafficResult traffic =
      complete_exchange_traffic(torus, p, router, config.traffic_seed);

  std::vector<EdgeId> wires;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    if (torus.undirected_id(e) == e) wires.push_back(e);

  // One independent single-fault run per wire; a static block partition
  // over the wire list gives every thread count the same per-wire results.
  std::vector<WireCriticality> out(wires.size());
  parallel_for_blocks(
      static_cast<i64>(wires.size()), threads,
      [&](i32 /*worker*/, i64 begin, i64 end) {
        for (i64 i = begin; i < end; ++i) {
          const EdgeId wire = wires[static_cast<std::size_t>(i)];
          const FaultSchedule schedule =
              FaultSchedule::single_wire(torus, wire);
          const SimMetrics m = run_exchange(torus, traffic.messages,
                                            &schedule, router, config,
                                            nullptr);
          WireCriticality& w = out[static_cast<std::size_t>(i)];
          w.wire = wire;
          w.dropped = m.dropped;
          w.rerouted = m.rerouted;
          w.delivered_fraction =
              m.injected > 0 ? static_cast<double>(m.delivered) /
                                   static_cast<double>(m.injected)
                             : 1.0;
        }
      });

  std::stable_sort(out.begin(), out.end(),
                   [](const WireCriticality& a, const WireCriticality& b) {
                     if (a.delivered_fraction != b.delivered_fraction)
                       return a.delivered_fraction < b.delivered_fraction;
                     if (a.dropped != b.dropped) return a.dropped > b.dropped;
                     return a.wire < b.wire;
                   });
  return out;
}

std::string encode_degradation_report(const DegradationReport& r) {
  util::ByteBuffer buf;
  buf.put_string(r.router_name);
  buf.put_f64(r.fault_rate);
  buf.put_i64(r.injected);
  buf.put_i64(r.delivered);
  buf.put_i64(r.dropped);
  buf.put_i64(r.retries);
  buf.put_i64(r.rerouted);
  buf.put_i64(r.fail_events);
  buf.put_i64(r.repair_events);
  buf.put_f64(r.delivered_fraction);
  buf.put_i64(r.baseline_cycles);
  buf.put_i64(r.cycles);
  buf.put_f64(r.completion_inflation);
  buf.put_f64(r.baseline_emax);
  buf.put_f64(r.degraded_emax);
  buf.put_f64(r.emax_inflation);
  return buf.data();
}

DegradationReport decode_degradation_report(std::string_view payload) {
  util::ByteView view(payload);
  DegradationReport r;
  r.router_name = view.get_string();
  r.fault_rate = view.get_f64();
  r.injected = view.get_i64();
  r.delivered = view.get_i64();
  r.dropped = view.get_i64();
  r.retries = view.get_i64();
  r.rerouted = view.get_i64();
  r.fail_events = view.get_i64();
  r.repair_events = view.get_i64();
  r.delivered_fraction = view.get_f64();
  r.baseline_cycles = view.get_i64();
  r.cycles = view.get_i64();
  r.completion_inflation = view.get_f64();
  r.baseline_emax = view.get_f64();
  r.degraded_emax = view.get_f64();
  r.emax_inflation = view.get_f64();
  TP_REQUIRE(view.empty(), "degradation report: trailing bytes");
  return r;
}

std::string degradation_json_line(const DegradationReport& r) {
  obs::JsonValue line = obs::JsonValue::object();
  line.set("router", obs::JsonValue(r.router_name));
  line.set("fault_rate", obs::JsonValue(r.fault_rate));
  line.set("injected", obs::JsonValue(r.injected));
  line.set("delivered", obs::JsonValue(r.delivered));
  line.set("dropped", obs::JsonValue(r.dropped));
  line.set("retries", obs::JsonValue(r.retries));
  line.set("rerouted", obs::JsonValue(r.rerouted));
  line.set("fail_events", obs::JsonValue(r.fail_events));
  line.set("repair_events", obs::JsonValue(r.repair_events));
  line.set("delivered_fraction", obs::JsonValue(r.delivered_fraction));
  line.set("baseline_cycles", obs::JsonValue(r.baseline_cycles));
  line.set("cycles", obs::JsonValue(r.cycles));
  line.set("completion_inflation", obs::JsonValue(r.completion_inflation));
  line.set("baseline_emax", obs::JsonValue(r.baseline_emax));
  line.set("degraded_emax", obs::JsonValue(r.degraded_emax));
  line.set("emax_inflation", obs::JsonValue(r.emax_inflation));
  return line.dump();
}

std::string resilience_jsonl(const std::vector<DegradationReport>& curve) {
  std::string out;
  for (const DegradationReport& r : curve) {
    out += degradation_json_line(r);
    out += '\n';
  }
  return out;
}

void export_resilience_jsonl(const std::vector<DegradationReport>& curve,
                             const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  TP_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  os << resilience_jsonl(curve);
  TP_REQUIRE(os.good(), "write to '" + path + "' failed");
}

}  // namespace tp
