// Graceful-degradation analysis under dynamic wire faults.
//
// The paper's Section 7 argument is qualitative: richer path sets (UDR's
// s! paths per pair, or full minimal adaptivity) keep the network
// functional when wires fail, while ODR's single canonical path per pair
// makes every wire a single point of failure for the pairs routed across
// it.  This module makes the claim measurable.  A complete exchange is
// simulated twice over the same sampled paths — once fault-free, once
// under a FaultSchedule with retry/reroute recovery — and the two runs are
// compared: what fraction of messages still arrived, how much the
// completion time inflated, and how much the busiest link's measured load
// (the degraded E_max, read from an obs::LinkProbe) grew as traffic
// squeezed around the dead wires.
//
// wire_criticality ranks individual wires by the damage their loss causes
// (delivered-fraction under that single permanent fault); for ODR the
// dropped count per wire equals the number of ordered pairs whose unique
// canonical path crosses it, which is exactly count_unroutable_pairs of
// fault.h — the tests pin that identity.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/simulate/fault_schedule.h"
#include "src/torus/torus.h"

namespace tp {

/// Knobs shared by every resilience analysis.
struct ResilienceConfig {
  u64 traffic_seed = 1;    ///< complete-exchange path sampling
  u64 schedule_seed = 7;   ///< Bernoulli fault-timeline generation
  u64 recovery_seed = 11;  ///< reroute path re-sampling inside the sims
  i64 max_retries = 8;     ///< per-message retry budget
  i64 backoff_base = 1;    ///< first backoff wait; doubles per retry
  double repair_prob = 0.0;  ///< per-cycle repair probability (0 = permanent)
  i64 horizon = 0;  ///< fault-event window; 0 = the fault-free makespan
};

/// One degraded run compared against its fault-free baseline.
struct DegradationReport {
  std::string router_name;
  double fault_rate = 0.0;  ///< per-wire per-cycle failure probability
  i64 injected = 0;
  i64 delivered = 0;
  i64 dropped = 0;   ///< retry budgets exhausted (== unroutable pairs
                     ///< when the faults are one permanent wire)
  i64 retries = 0;
  i64 rerouted = 0;
  i64 fail_events = 0;
  i64 repair_events = 0;
  double delivered_fraction = 1.0;  ///< delivered / injected
  i64 baseline_cycles = 0;          ///< fault-free makespan
  i64 cycles = 0;                   ///< degraded makespan
  double completion_inflation = 1.0;  ///< cycles / baseline_cycles
  double baseline_emax = 0.0;  ///< busiest link's forwards, fault-free
  double degraded_emax = 0.0;  ///< busiest link's forwards, degraded
  double emax_inflation = 1.0;
};

/// Simulates the complete exchange of `p` twice — fault-free, then under
/// `schedule` with retry/reroute recovery through `router` — and reports
/// the degradation.  Deterministic given the config seeds.
DegradationReport degradation_report(const Torus& torus, const Placement& p,
                                     const Router& router,
                                     const FaultSchedule& schedule,
                                     const ResilienceConfig& config = {});

/// The fault-event window resilience_sweep uses: config.horizon when
/// positive, otherwise the design's own fault-free makespan (at least 1).
/// Exposed so checkpointed sweeps (tools CLI --checkpoint) can compute
/// individual (rate, router) cells identically to an uninterrupted
/// resilience_sweep call.
i64 resilience_horizon(const Torus& torus, const Placement& p,
                       const Router& router,
                       const ResilienceConfig& config = {});

/// Degradation curve across Bernoulli fault rates: one report per rate,
/// each over FaultSchedule::bernoulli(rate, repair_prob, horizon).  A rate
/// of 0 produces an empty schedule and must reproduce the baseline
/// exactly (the zero-overhead-when-disabled check).
std::vector<DegradationReport> resilience_sweep(
    const Torus& torus, const Placement& p, const Router& router,
    const std::vector<double>& fault_rates,
    const ResilienceConfig& config = {});

/// Exact binary round trip of one report (doubles travel as raw bit
/// patterns), used by the resilience checkpoint journal so a resumed
/// curve is byte-identical to an uninterrupted one.  decode throws
/// tp::Error on malformed input.
std::string encode_degradation_report(const DegradationReport& r);
DegradationReport decode_degradation_report(std::string_view payload);

/// One wire's ranking entry: the outcome of the complete exchange when
/// that wire alone fails permanently at cycle 0.
struct WireCriticality {
  EdgeId wire = 0;  ///< canonical undirected id (torus.undirected_id)
  double delivered_fraction = 1.0;
  i64 dropped = 0;
  i64 rerouted = 0;
};

/// Ranks every wire of the torus, most critical (lowest delivered
/// fraction, then most drops, then lowest id) first.  The per-wire runs
/// are independent and execute on `threads` workers; the result is
/// identical for any thread count.
std::vector<WireCriticality> wire_criticality(
    const Torus& torus, const Placement& p, const Router& router,
    const ResilienceConfig& config = {}, i32 threads = 1);

/// One report as a single JSON line (stable key order, JSONL-ready).
std::string degradation_json_line(const DegradationReport& r);

/// The whole curve as JSONL (one line per report, in order).
std::string resilience_jsonl(const std::vector<DegradationReport>& curve);

/// Writes resilience_jsonl(curve) to `path` (replacing the file).
void export_resilience_jsonl(const std::vector<DegradationReport>& curve,
                             const std::string& path);

}  // namespace tp
