#include "src/analysis/stats_merge.h"

#include <algorithm>
#include <fstream>
#include <istream>

#include "src/obs/json.h"
#include "src/util/error.h"

namespace tp {

void append_stats_rows(std::vector<std::vector<std::string>>& rows,
                       const std::string& source, std::istream& in) {
  std::string line;
  i64 record = 0;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const obs::JsonValue root = obs::parse_json(line);
    if (const obs::JsonValue* counters = root.find("counters"))
      for (const auto& [name, v] : counters->members())
        rows.push_back({source, fmt(record), "counter", name,
                        fmt(v.as_int()), "", "", "", "", "", "", ""});
    if (const obs::JsonValue* gauges = root.find("gauges"))
      for (const auto& [name, v] : gauges->members())
        rows.push_back({source, fmt(record), "gauge", name, fmt(v.as_int()),
                        "", "", "", "", "", "", ""});
    if (const obs::JsonValue* hists = root.find("histograms"))
      for (const auto& [name, h] : hists->members()) {
        const auto field = [&](const char* key) -> const obs::JsonValue& {
          const obs::JsonValue* v = h.find(key);
          TP_REQUIRE(v != nullptr, "stats dump histogram missing field '" +
                                       std::string(key) + "': " + source);
          return *v;
        };
        rows.push_back({source, fmt(record), "histogram", name, "",
                        fmt(field("count").as_int()), fmt(field("sum").as_int()),
                        fmt(field("min").as_int()), fmt(field("max").as_int()),
                        fmt(field("mean").as_number(), 6),
                        fmt(field("p50").as_number(), 6),
                        fmt(field("p95").as_number(), 6)});
      }
    ++record;
  }
}

Table merge_stats_dumps(const std::vector<std::string>& inputs) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    TP_REQUIRE(in.good(), "cannot open stats dump: " + path);
    append_stats_rows(rows, path, in);
  }
  // Deterministic order regardless of input listing or JSON member order.
  // The record column is numeric, so compare it as a number, not a string.
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
              if (a[0] != b[0]) return a[0] < b[0];
              const i64 ra = std::stoll(a[1]);
              const i64 rb = std::stoll(b[1]);
              if (ra != rb) return ra < rb;
              if (a[2] != b[2]) return a[2] < b[2];
              return a[3] < b[3];
            });
  Table t({"source", "record", "kind", "metric", "value", "count", "sum",
           "min", "max", "mean", "p50", "p95"});
  for (std::vector<std::string>& row : rows) t.add_row(std::move(row));
  return t;
}

}  // namespace tp
