// Merging TP_OBS stats dumps (JSONL) into one flat metrics table.
//
// `torusplace --stats-json` and TP_OBS_STATS write one JSON object per
// line (counters / gauges / histograms — see obs/export.h).  This module
// merges any number of such dumps into a single table with one row per
// metric, histogram summaries flattened into columns, ready for
// save_csv().
//
// Output order is deterministic: rows are sorted by (source, record,
// kind, metric), independent of the order the inputs were listed in and
// of member order inside the JSON objects.  That makes stats.csv diffable
// across regenerations.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/analysis/table.h"

namespace tp {

/// Parses one stats dump from `in` (JSONL; blank lines skipped) and
/// appends rows to `rows`, tagged with `source`.  Each row has the merged
/// table's 12 cells: source, record, kind, metric, value, count, sum,
/// min, max, mean, p50, p95.  Throws tp::Error on malformed input.
void append_stats_rows(std::vector<std::vector<std::string>>& rows,
                       const std::string& source, std::istream& in);

/// Reads every dump file and returns the merged, sorted table.
/// Throws tp::Error if a file cannot be opened or parsed.
Table merge_stats_dumps(const std::vector<std::string>& inputs);

}  // namespace tp
