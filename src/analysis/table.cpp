#include "src/analysis/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/error.h"

namespace tp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TP_REQUIRE(cells.size() == headers_.size(),
             "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_markdown(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (const auto& cell : cells) os << ' ' << cell << " |";
    os << '\n';
  };
  line(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_bool(bool value) { return value ? "yes" : "no"; }

}  // namespace tp
