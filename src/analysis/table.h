// Column-aligned text tables for experiment output.
//
// Benches and examples print paper-vs-measured rows through this class so
// every experiment reports in the same format (plain aligned text or
// GitHub markdown).

#pragma once

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace tp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Aligned plain-text rendering.
  void print(std::ostream& os) const;

  /// GitHub-markdown rendering.
  void print_markdown(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("3.250").
std::string fmt(double value, int precision = 3);

/// Integer formatting (any integral type).
template <typename T>
  requires std::integral<T>
std::string fmt(T value) {
  return std::to_string(value);
}

/// "yes"/"no".
std::string fmt_bool(bool value);

}  // namespace tp
