#include "src/bisection/cut.h"

#include "src/util/error.h"

namespace tp {

Cut::Cut(const Torus& torus, std::vector<bool> side) : side_(std::move(side)) {
  TP_REQUIRE(static_cast<i64>(side_.size()) == torus.num_nodes(),
             "one side entry per node required");
}

i64 Cut::directed_cut_size(const Torus& torus) const {
  i64 count = 0;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    const Link l = torus.link(e);
    if (side_[static_cast<std::size_t>(l.tail)] !=
        side_[static_cast<std::size_t>(l.head)])
      ++count;
  }
  return count;
}

i64 Cut::undirected_cut_size(const Torus& torus) const {
  i64 count = 0;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    if (torus.undirected_id(e) != e) continue;  // count each wire once
    const Link l = torus.link(e);
    if (side_[static_cast<std::size_t>(l.tail)] !=
        side_[static_cast<std::size_t>(l.head)])
      ++count;
  }
  return count;
}

std::pair<i64, i64> Cut::processor_split(const Torus& torus,
                                         const Placement& p) const {
  p.check_torus(torus);
  i64 a = 0, b = 0;
  for (NodeId n : p.nodes())
    (side_[static_cast<std::size_t>(n)] ? b : a) += 1;
  return {a, b};
}

bool Cut::bisects(const Torus& torus, const Placement& p) const {
  const auto [a, b] = processor_split(torus, p);
  return (a > b ? a - b : b - a) <= 1;
}

EdgeSet Cut::crossing_edges(const Torus& torus) const {
  EdgeSet set(torus);
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    const Link l = torus.link(e);
    if (side_[static_cast<std::size_t>(l.tail)] !=
        side_[static_cast<std::size_t>(l.head)])
      set.insert(e);
  }
  return set;
}

std::pair<i64, i64> Cut::node_split() const {
  i64 a = 0, b = 0;
  for (bool s : side_) (s ? b : a) += 1;
  return {a, b};
}

}  // namespace tp
