// Cuts and bisections of a torus with respect to a placement
// (Definitions 7 and 8 of the paper).
//
// A Cut is a two-sided node partition; its edge set is every directed link
// crossing between the sides.  The *bisection width with respect to a
// placement P* is the minimum directed-cut size over partitions that split
// P's processors equally (within one).

#pragma once

#include <utility>
#include <vector>

#include "src/placement/placement.h"
#include "src/torus/graph.h"
#include "src/torus/torus.h"

namespace tp {

/// A node partition of a torus into side A (false) and side B (true).
class Cut {
 public:
  /// `side` must have one entry per torus node.
  Cut(const Torus& torus, std::vector<bool> side);

  const std::vector<bool>& side() const { return side_; }
  bool side_of(NodeId n) const { return side_.at(static_cast<std::size_t>(n)); }

  /// Number of directed links crossing the partition (both directions of a
  /// wire count separately; the paper's Theorem 1 counts this quantity).
  i64 directed_cut_size(const Torus& torus) const;

  /// Number of wires (undirected edges) crossing the partition.
  i64 undirected_cut_size(const Torus& torus) const;

  /// Processor counts on (side A, side B).
  std::pair<i64, i64> processor_split(const Torus& torus,
                                      const Placement& p) const;

  /// True when the processor counts differ by at most one.
  bool bisects(const Torus& torus, const Placement& p) const;

  /// The crossing links as an EdgeSet (for connectivity checks: removing
  /// them must disconnect side A from side B).
  EdgeSet crossing_edges(const Torus& torus) const;

  /// Node counts on (side A, side B).
  std::pair<i64, i64> node_split() const;

 private:
  std::vector<bool> side_;
};

}  // namespace tp
