#include "src/bisection/dimension_cut.h"

#include "src/placement/uniformity.h"
#include "src/util/error.h"

namespace tp {

DimensionCutResult dimension_cut(const Torus& torus, const Placement& p,
                                 i32 dim) {
  p.check_torus(torus);
  TP_REQUIRE(dim >= 0 && dim < torus.dims(), "dimension out of range");
  const i32 k = torus.radix(dim);
  const auto layer = subtorus_counts(torus, p, dim);

  // Prefix sums over layers; processors in layers (a, b] (cyclically).
  std::vector<i64> prefix(static_cast<std::size_t>(k) + 1, 0);
  for (i32 v = 0; v < k; ++v)
    prefix[static_cast<std::size_t>(v) + 1] =
        prefix[static_cast<std::size_t>(v)] + layer[static_cast<std::size_t>(v)];
  const i64 total = prefix[static_cast<std::size_t>(k)];

  // Boundaries sit between layer b and b+1 (mod k).  Choosing boundaries
  // (a, b) with a < b puts layers a+1..b on side A.
  i64 best_imbalance = -1;
  i32 best_a = 0, best_b = 0;
  for (i32 a = 0; a < k; ++a) {
    for (i32 b = a + 1; b < k; ++b) {
      const i64 in_a = prefix[static_cast<std::size_t>(b) + 1] -
                       prefix[static_cast<std::size_t>(a) + 1];
      const i64 imbalance =
          in_a * 2 > total ? in_a * 2 - total : total - in_a * 2;
      if (best_imbalance < 0 || imbalance < best_imbalance) {
        best_imbalance = imbalance;
        best_a = a;
        best_b = b;
      }
    }
  }
  TP_ASSERT(best_imbalance >= 0, "no boundary pair found");

  std::vector<bool> side(static_cast<std::size_t>(torus.num_nodes()), false);
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    const i32 v = torus.coord_of(n, dim);
    side[static_cast<std::size_t>(n)] = (v > best_a && v <= best_b);
  }
  DimensionCutResult result{Cut(torus, std::move(side)), dim, best_a, best_b,
                            0, best_imbalance};
  result.directed_edges = result.cut.directed_cut_size(torus);
  return result;
}

DimensionCutResult best_dimension_cut(const Torus& torus, const Placement& p) {
  std::optional<DimensionCutResult> best;
  for (i32 dim = 0; dim < torus.dims(); ++dim) {
    auto r = dimension_cut(torus, p, dim);
    if (!best || r.imbalance < best->imbalance ||
        (r.imbalance == best->imbalance &&
         r.directed_edges < best->directed_edges))
      best.emplace(std::move(r));
  }
  return *best;
}

}  // namespace tp
