// Theorem 1's constructive bisection.
//
// For a placement that is uniform along some dimension, removing the links
// between consecutive principal subtori at two positions (0|1 and
// k/2 | k/2+1 in the paper's proof) splits T_k^d into two parts with equal
// numbers of processors while cutting exactly 4 k^{d-1} directed links.
//
// The implementation generalizes the proof slightly: it searches all pairs
// of layer boundaries along the chosen dimension (via prefix sums, O(k^2))
// and returns the pair that balances the placement best, so it also yields
// the best two-boundary cut for placements that are *not* uniform.  For a
// uniform placement and even k it reproduces the theorem exactly.

#pragma once

#include <optional>

#include "src/bisection/cut.h"

namespace tp {

/// Result of the two-boundary layer cut along one dimension.
struct DimensionCutResult {
  Cut cut;                 ///< side A = layers in (first, second]
  i32 dim = 0;             ///< dimension the layers are stacked along
  i32 first_boundary = 0;  ///< cut between layers first and first+1 (mod k)
  i32 second_boundary = 0; ///< cut between layers second and second+1 (mod k)
  i64 directed_edges = 0;  ///< directed links removed
  i64 imbalance = 0;       ///< |#processors(A) - #processors(B)|
};

/// Best two-boundary cut along `dim`.
DimensionCutResult dimension_cut(const Torus& torus, const Placement& p,
                                 i32 dim);

/// Best two-boundary cut over all dimensions (the Theorem 1 bisection when
/// the placement is uniform along any dimension and its layer count is
/// even-splittable).
DimensionCutResult best_dimension_cut(const Torus& torus, const Placement& p);

}  // namespace tp
