#include "src/bisection/exact_bisection.h"

#include <vector>

#include "src/util/error.h"

namespace tp {

ExactBisectionResult exact_bisection(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  const i64 n = torus.num_nodes();
  TP_REQUIRE(n <= 24, "exact bisection limited to 24 nodes");
  TP_REQUIRE(p.size() >= 1, "cannot bisect an empty placement");

  // Precompute undirected adjacency as (u, v) wire list with multiplicity
  // (radix-2 dimensions have parallel wires).
  struct Wire {
    i32 u, v;
  };
  std::vector<Wire> wires;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    if (torus.undirected_id(e) != e) continue;
    const Link l = torus.link(e);
    wires.push_back({static_cast<i32>(l.tail), static_cast<i32>(l.head)});
  }

  std::uint32_t proc_mask = 0;
  for (NodeId node : p.nodes()) proc_mask |= (1u << node);
  const int proc_count = static_cast<int>(p.size());

  i64 best_cut = -1;
  std::uint32_t best_mask = 0;
  // Fix node 0 on side A to halve the search space.
  const std::uint32_t limit = 1u << (n - 1);
  for (std::uint32_t half_mask = 0; half_mask < limit; ++half_mask) {
    const std::uint32_t mask = half_mask << 1;  // node 0 stays on side A
    const int in_b = __builtin_popcount(mask & proc_mask);
    const int in_a = proc_count - in_b;
    if (in_a - in_b > 1 || in_b - in_a > 1) continue;
    i64 cut = 0;
    for (const Wire& w : wires)
      cut += (((mask >> w.u) ^ (mask >> w.v)) & 1u) ? 2 : 0;  // directed
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best_mask = mask;
    }
  }
  TP_ASSERT(best_cut >= 0, "no balanced partition found");

  std::vector<bool> side(static_cast<std::size_t>(n), false);
  for (i64 i = 0; i < n; ++i)
    side[static_cast<std::size_t>(i)] = ((best_mask >> i) & 1u) != 0;
  ExactBisectionResult result{Cut(torus, std::move(side)), best_cut};
  return result;
}

}  // namespace tp
