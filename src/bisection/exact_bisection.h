// Exact bisection width with respect to a placement, by exhaustive search.
//
// Feasible only for tiny tori (the node count is capped at 24, i.e. ~2^23
// candidate partitions), but invaluable for validating the constructive
// cuts: the exact optimum can never exceed the Theorem 1 or sweep cut, and
// on small instances we can see how tight the constructions are.

#pragma once

#include <optional>

#include "src/bisection/cut.h"

namespace tp {

/// Result of the exhaustive search.
struct ExactBisectionResult {
  Cut cut;                ///< an optimal bisecting partition
  i64 directed_edges = 0; ///< the bisection width w.r.t. the placement
};

/// Minimum directed-cut size over all node partitions splitting the
/// placement within one processor.  Requires torus.num_nodes() <= 24.
ExactBisectionResult exact_bisection(const Torus& torus, const Placement& p);

}  // namespace tp
