#include "src/bisection/hyperplane_sweep.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "src/util/error.h"

namespace tp {

long double default_gamma(i32 dims) {
  TP_REQUIRE(dims >= 1, "dimension out of range");
  if (dims == 1) return 1.0L;  // unused: d=1 sweep is a plain coordinate sort
  const long double hi =
      std::pow(2.0L, 1.0L / static_cast<long double>(dims - 1));
  // Midpoint nudged by an irrational fraction of the interval so the
  // powers 1, γ, ..., γ^{d-1} stay rationally independent in practice.
  const long double frac = 0.5L + 0.1L * (std::numbers::pi_v<long double> - 3.0L);
  return 1.0L + (hi - 1.0L) * frac;
}

namespace {

struct Scored {
  long double score;
  NodeId node;
};

/// Scores every node by the (unnormalized) sweep direction; returns false
/// if two nodes collide (γ not generic enough for this torus).
bool score_nodes(const Torus& torus, long double gamma,
                 std::vector<Scored>& out) {
  const i32 d = torus.dims();
  SmallVec<long double, kMaxDims> weight(static_cast<std::size_t>(d), 1.0L);
  for (std::size_t i = 1; i < weight.size(); ++i)
    weight[i] = weight[i - 1] * gamma;

  out.clear();
  out.reserve(static_cast<std::size_t>(torus.num_nodes()));
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    long double s = 0.0L;
    for (i32 dim = 0; dim < d; ++dim)
      s += weight[static_cast<std::size_t>(dim)] * torus.coord_of(n, dim);
    out.push_back({s, n});
  }
  std::sort(out.begin(), out.end(), [](const Scored& a, const Scored& b) {
    return a.score < b.score;
  });
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i].score == out[i - 1].score) return false;
  return true;
}

}  // namespace

SweepResult hyperplane_sweep_bisection(const Torus& torus,
                                       const Placement& p) {
  p.check_torus(torus);
  TP_REQUIRE(p.size() >= 1, "cannot bisect an empty placement");

  std::vector<Scored> scored;
  long double gamma = default_gamma(torus.dims());
  bool ok = false;
  for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
    ok = score_nodes(torus, gamma, scored);
    if (!ok) gamma += 1e-7L * static_cast<long double>(attempt + 1);
  }
  TP_REQUIRE(ok, "no collision-free sweep direction found");

  // Sweep: stop once side A holds floor(|P|/2) processors.
  const i64 half = p.size() / 2;
  std::vector<bool> side(static_cast<std::size_t>(torus.num_nodes()), true);
  i64 seen = 0;
  for (const Scored& s : scored) {
    if (seen == half) break;
    side[static_cast<std::size_t>(s.node)] = false;  // side A
    if (p.contains(s.node)) ++seen;
  }
  TP_ASSERT(seen == half, "sweep failed to collect half of the placement");

  SweepResult result{Cut(torus, std::move(side)), 0, 0, 0, gamma};
  // Classify each crossed wire as an array edge or a torus wrap edge.
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    if (torus.undirected_id(e) != e) continue;
    const Link l = torus.link(e);
    if (result.cut.side_of(l.tail) == result.cut.side_of(l.head)) continue;
    const i32 a = torus.coord_of(l.tail, l.dim);
    const i32 b = torus.coord_of(l.head, l.dim);
    const bool wrap = (a - b != 1) && (b - a != 1);
    (wrap ? result.wrap_crossings : result.array_crossings) += 1;
  }
  result.directed_edges = result.cut.directed_cut_size(torus);
  return result;
}

}  // namespace tp
