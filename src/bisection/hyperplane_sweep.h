// The Appendix's hyperplane-sweep separator (proof of Proposition 1).
//
// A hyperplane with normal direction (1, γ, γ², ..., γ^{d-1}),
// 1 < γ < 2^{1/(d-1)} and γ irrational, sweeps the standard embedding of
// the k-ary d-array.  Because γ is irrational, no two lattice points share
// a sweep value, so the processors of any placement P can be split exactly
// in half by stopping the sweep at the right value; the Appendix shows the
// stopping hyperplane crosses at most 2 d k^{d-1} array edges.  Together
// with the d k^{d-1} torus wrap wires this yields Corollary 1's
// 6 d k^{d-1} bound on directed links.
//
// The implementation uses `long double` scores.  A transcendental γ cannot
// be represented in floating point, so genericity is *checked*: if two
// nodes ever score equal, the sweep retries with a perturbed γ (for the
// torus sizes this library enumerates, the default γ never collides).

#pragma once

#include "src/bisection/cut.h"

namespace tp {

/// Result of sweeping a hyperplane until it bisects the placement.
struct SweepResult {
  Cut cut;                  ///< side A = nodes with sweep value below t0
  i64 array_crossings = 0;  ///< undirected k-ary-array edges crossed
  i64 wrap_crossings = 0;   ///< undirected torus wrap wires crossed
  i64 directed_edges = 0;   ///< total directed links removed by the cut
  long double gamma = 0.0L; ///< the γ actually used
};

/// Bisects the placement with a hyperplane sweep.  Works on any torus and
/// placement (Proposition 1 assumes nothing about P).  Throws only if no
/// collision-free γ is found after several perturbation attempts.
SweepResult hyperplane_sweep_bisection(const Torus& torus, const Placement& p);

/// The γ the sweep tries first for a given dimension count: the midpoint
/// of (1, 2^{1/(d-1)}) nudged by an irrational offset.
long double default_gamma(i32 dims);

}  // namespace tp
