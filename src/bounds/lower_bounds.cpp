#include "src/bounds/lower_bounds.h"

#include <algorithm>

#include "src/bisection/dimension_cut.h"
#include "src/bisection/hyperplane_sweep.h"
#include "src/load/formulas.h"
#include "src/placement/uniformity.h"
#include "src/util/error.h"

namespace tp {

BoundValue blaum_bound(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  if (p.size() < 2) return {"blaum", 0.0, true, "trivial for |P| < 2"};
  return {"blaum", blaum_lower_bound(p.size(), torus.dims()), true, ""};
}

BoundValue separator_bound(const Torus& torus, const Placement& p,
                           const std::vector<NodeId>& subset) {
  p.check_torus(torus);
  // |dS|: directed links with exactly one endpoint in the node subset.
  std::vector<bool> in_s(static_cast<std::size_t>(torus.num_nodes()), false);
  i64 procs_in_s = 0;
  for (NodeId n : subset) {
    TP_REQUIRE(torus.valid_node(n), "subset node out of range");
    if (!in_s[static_cast<std::size_t>(n)]) {
      in_s[static_cast<std::size_t>(n)] = true;
      if (p.contains(n)) ++procs_in_s;
    }
  }
  i64 boundary = 0;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    const Link l = torus.link(e);
    if (in_s[static_cast<std::size_t>(l.tail)] !=
        in_s[static_cast<std::size_t>(l.head)])
      ++boundary;
  }
  if (boundary == 0)
    return {"separator", 0.0, false, "subset has empty boundary"};
  return {"separator",
          separator_lower_bound(procs_in_s, p.size(), boundary), true, ""};
}

BoundValue bisection_bound(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  if (p.size() < 2) return {"bisection", 0.0, true, "trivial for |P| < 2"};
  const auto dim_cut = best_dimension_cut(torus, p);
  i64 width;
  std::string note;
  if (dim_cut.imbalance <= 1) {
    width = dim_cut.directed_edges;
    note = "dimension cut (Theorem 1)";
  } else {
    const auto sweep = hyperplane_sweep_bisection(torus, p);
    width = sweep.directed_edges;
    note = "hyperplane sweep (Proposition 1)";
  }
  return {"bisection", bisection_lower_bound(p.size(), width), true, note};
}

BoundValue improved_bound(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  if (!torus.is_uniform_radix())
    return {"improved", 0.0, false, "needs uniform radix"};
  if (uniform_dimensions(torus, p).empty())
    return {"improved", 0.0, false,
            "placement not uniform along any dimension"};
  const i32 k = torus.radix(0);
  const i32 d = torus.dims();
  const double c = static_cast<double>(p.size()) /
                   static_cast<double>(powi(k, d - 1));
  return {"improved", improved_lower_bound(c, k, d), true,
          "c = " + std::to_string(c)};
}

std::vector<BoundValue> all_bounds(const Torus& torus, const Placement& p) {
  std::vector<BoundValue> bounds;
  bounds.push_back(blaum_bound(torus, p));
  bounds.push_back(bisection_bound(torus, p));
  bounds.push_back(improved_bound(torus, p));
  double best = 0.0;
  for (const auto& b : bounds)
    if (b.applicable) best = std::max(best, b.value);
  bounds.push_back({"best", best, true, "max of applicable bounds"});
  return bounds;
}

double best_lower_bound(const Torus& torus, const Placement& p) {
  return all_bounds(torus, p).back().value;
}

}  // namespace tp
