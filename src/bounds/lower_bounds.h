// Concrete lower-bound evaluation for a given torus and placement.
//
// The paper proves several lower bounds on E_max; this module instantiates
// each of them on an actual (torus, placement) pair so experiments can
// compare them with measured loads and with each other:
//
//   blaum            (|P|-1)/2d                          eq. (1)/(6)
//   separator        2|S|(|P|-|S|)/|dS| for a given S     Lemma 1
//   bisection        2(|P|/2)^2 / |d_b P|                 eq. (8), with
//                    |d_b P| instantiated by a constructive cut
//   improved         c^2 k^{d-1}/8 with c = |P|/k^{d-1}   Section 4
//
// All bounds are valid for every shortest-path routing algorithm; `best`
// returns the largest applicable one.

#pragma once

#include <string>
#include <vector>

#include "src/bisection/cut.h"
#include "src/placement/placement.h"

namespace tp {

/// A named lower bound instantiated on a concrete placement.
struct BoundValue {
  std::string name;
  double value = 0.0;
  bool applicable = true;  ///< e.g. `improved` needs a uniform placement
  std::string note;        ///< why not applicable / what it used
};

/// Eq. (1): (|P|-1)/2d.
BoundValue blaum_bound(const Torus& torus, const Placement& p);

/// Lemma 1 for a caller-supplied processor subset S, with |dS| computed as
/// the directed boundary of S's node set in the torus.
BoundValue separator_bound(const Torus& torus, const Placement& p,
                           const std::vector<NodeId>& subset);

/// Eq. (8) with the bisection realized by the best dimension cut
/// (Theorem 1) when it balances, else by the hyperplane sweep.
BoundValue bisection_bound(const Torus& torus, const Placement& p);

/// Section 4's dimension-independent bound.  Applicable when the placement
/// is uniform along at least one dimension (the generalization the paper
/// notes after Theorem 1) and the torus has uniform radix.
BoundValue improved_bound(const Torus& torus, const Placement& p);

/// Every bound above (separator over singleton subsets == blaum, so the
/// subset variant is not repeated) and, in `.back()`, the best value.
std::vector<BoundValue> all_bounds(const Torus& torus, const Placement& p);

/// max over all applicable bounds.
double best_lower_bound(const Torus& torus, const Placement& p);

}  // namespace tp
