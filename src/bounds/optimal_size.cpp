#include "src/bounds/optimal_size.h"

#include <algorithm>

#include "src/load/formulas.h"
#include "src/util/error.h"

namespace tp {

double placement_size_ceiling(const Torus& torus, double c1) {
  TP_REQUIRE(torus.is_uniform_radix(), "eq. (9) stated for T_k^d");
  return max_placement_size(c1, torus.radix(0), torus.dims());
}

double fitted_load_coefficient(const std::vector<ScalingPoint>& points) {
  TP_REQUIRE(!points.empty(), "need at least one data point");
  double c1 = 0.0;
  for (const auto& pt : points) {
    TP_REQUIRE(pt.placement_size > 0, "placement size must be positive");
    c1 = std::max(c1, pt.emax / static_cast<double>(pt.placement_size));
  }
  return c1;
}

bool is_load_linear(const std::vector<ScalingPoint>& points, double slack) {
  TP_REQUIRE(points.size() >= 2, "need at least two data points");
  TP_REQUIRE(slack >= 1.0, "slack must be >= 1");
  auto sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScalingPoint& a, const ScalingPoint& b) {
              return a.placement_size < b.placement_size;
            });
  const double base = sorted.front().emax /
                      static_cast<double>(sorted.front().placement_size);
  if (base <= 0.0) return true;  // degenerate tiny instance
  for (const auto& pt : sorted) {
    const double ratio = pt.emax / static_cast<double>(pt.placement_size);
    if (ratio > slack * base) return false;
  }
  return true;
}

}  // namespace tp
