// Maximum placement size under the linear-load requirement (Section 3.1).
//
// If E_max must stay below c1·|P| and the bisection width w.r.t. any
// placement is at most 6dk^{d-1} (Corollary 1), then eq. (9) forces
// |P| <= 12·d·c1·k^{d-1}.  These helpers evaluate the chain of
// inequalities on concrete data and classify measured (|P|, E_max) series.

#pragma once

#include <vector>

#include "src/placement/placement.h"
#include "src/torus/torus.h"

namespace tp {

/// One data point of a load-vs-size scaling experiment.
struct ScalingPoint {
  i32 k = 0;
  i64 placement_size = 0;
  double emax = 0.0;
};

/// Eq. (9)'s ceiling on |P| for load coefficient c1.
double placement_size_ceiling(const Torus& torus, double c1);

/// Least c1 such that E_max <= c1 |P| across all points (the empirical
/// load/size coefficient).  Requires non-empty data with |P| > 0.
double fitted_load_coefficient(const std::vector<ScalingPoint>& points);

/// True when E_max grows at most linearly in |P| across the series:
/// the per-point ratio E_max/|P| never exceeds `slack` times the ratio at
/// the smallest |P| (a practical monotonicity test for linearity).
bool is_load_linear(const std::vector<ScalingPoint>& points,
                    double slack = 1.5);

}  // namespace tp
