#include "src/bounds/slab_search.h"

#include "src/load/formulas.h"
#include "src/placement/uniformity.h"
#include "src/util/error.h"

namespace tp {

SlabBound best_slab_bound(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  TP_REQUIRE(p.size() >= 2, "need at least two processors");
  SlabBound best;
  for (i32 dim = 0; dim < torus.dims(); ++dim) {
    const i32 k = torus.radix(dim);
    const auto layer = subtorus_counts(torus, p, dim);
    // A slab of any width along dim has the same boundary: the two layer
    // boundaries, each N/k wires = 2·N/k directed links.
    const i64 boundary = 4 * (torus.num_nodes() / k);
    // Prefix sums (doubled for cyclic windows).
    std::vector<i64> prefix(static_cast<std::size_t>(2 * k) + 1, 0);
    for (i32 i = 0; i < 2 * k; ++i)
      prefix[static_cast<std::size_t>(i) + 1] =
          prefix[static_cast<std::size_t>(i)] +
          layer[static_cast<std::size_t>(i % k)];
    for (i32 lo = 0; lo < k; ++lo) {
      for (i32 len = 1; len < k; ++len) {
        const i64 inside = prefix[static_cast<std::size_t>(lo + len)] -
                           prefix[static_cast<std::size_t>(lo)];
        if (inside == 0 || inside == p.size()) continue;
        const double value =
            separator_lower_bound(inside, p.size(), boundary);
        if (value > best.value) {
          best = SlabBound{value, dim, lo, len, inside, boundary};
        }
      }
    }
  }
  return best;
}

}  // namespace tp
