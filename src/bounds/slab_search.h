// Lemma 1 separator search over coordinate slabs.
//
// Lemma 1 gives a lower bound for every processor subset S; the bound's
// strength depends on finding an S with many processors and a small
// boundary.  Coordinate slabs — nodes whose coordinate in one dimension
// lies in a window [lo, lo+len) — have boundary exactly 4·N/k directed
// links regardless of the window, so sweeping all O(d·k²) slabs finds the
// strongest slab-shaped instantiation of Lemma 1 in polynomial time.
// For uniform placements the half-torus slab recovers the Section 4
// improved bound; for skewed placements the search can beat it.

#pragma once

#include "src/bounds/lower_bounds.h"
#include "src/placement/placement.h"

namespace tp {

/// The best (largest) Lemma 1 bound over all coordinate slabs, together
/// with the slab that achieved it.
struct SlabBound {
  double value = 0.0;
  i32 dim = 0;        ///< slab dimension
  i32 lo = 0;         ///< first layer in the slab
  i32 len = 0;        ///< number of consecutive layers (cyclically)
  i64 procs_in = 0;   ///< processors inside the slab
  i64 boundary = 0;   ///< directed boundary links
};

/// Sweeps every (dim, lo, len) slab; len ranges 1..k-1.
SlabBound best_slab_bound(const Torus& torus, const Placement& p);

}  // namespace tp
