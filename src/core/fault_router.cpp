#include "src/core/fault_router.h"

#include "src/util/error.h"

namespace tp {

std::vector<Path> FaultTolerantRouter::paths(const Torus& torus, NodeId p,
                                             NodeId q) const {
  std::vector<Path> ok;
  for (Path& path : inner_.paths(torus, p, q)) {
    bool clean = true;
    for (EdgeId e : path.edges)
      if (faults_.contains(e)) {
        clean = false;
        break;
      }
    if (clean) ok.push_back(std::move(path));
  }
  return ok;
}

i64 FaultTolerantRouter::num_paths(const Torus& torus, NodeId p,
                                   NodeId q) const {
  return static_cast<i64>(paths(torus, p, q).size());
}

Path FaultTolerantRouter::sample_path(const Torus& torus, NodeId p, NodeId q,
                                      Xoshiro256SS& rng) const {
  auto ok = paths(torus, p, q);
  TP_REQUIRE(!ok.empty(), "no fault-free path between the pair");
  return ok[rng.below(ok.size())];
}

}  // namespace tp
