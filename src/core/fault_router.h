// A Router decorator that avoids failed links.
//
// Wraps any routing algorithm and restricts each pair's path set to the
// paths that avoid every failed link — the operational model of Section 7:
// "if any of the links fails, the network will remain functional by
// routing the messages through paths which do not include the defective
// link."  Pairs whose entire path set is faulted have no paths; callers
// can detect this through num_paths() == 0 (paths() returns empty,
// sample_path() throws).

#pragma once

#include <memory>

#include "src/routing/router.h"
#include "src/torus/graph.h"

namespace tp {

class FaultTolerantRouter final : public Router {
 public:
  /// The inner router and fault set must outlive this object.
  FaultTolerantRouter(const Router& inner, const EdgeSet& faults)
      : inner_(inner), faults_(faults) {}

  std::string name() const override { return inner_.name() + "+faults"; }

  std::vector<Path> paths(const Torus& torus, NodeId p,
                          NodeId q) const override;

  i64 num_paths(const Torus& torus, NodeId p, NodeId q) const override;

  /// Uniform over the fault-free subset.  Throws if no path survives.
  Path sample_path(const Torus& torus, NodeId p, NodeId q,
                   Xoshiro256SS& rng) const override;

  const Router& inner() const { return inner_; }

 private:
  const Router& inner_;
  const EdgeSet& faults_;
};

}  // namespace tp
