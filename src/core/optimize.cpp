#include "src/core/optimize.h"

#include <cmath>
#include <numeric>

#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

namespace {

double emax_of(const Torus& torus, const std::vector<NodeId>& nodes,
               RouterKind kind) {
  const Placement p(torus, nodes, "candidate");
  return measure_loads(torus, p, kind).max_load();
}

}  // namespace

SearchResult exhaustive_best_placement(const Torus& torus, i64 size,
                                       RouterKind kind,
                                       i64 max_candidates) {
  TP_REQUIRE(size >= 2 && size <= torus.num_nodes(),
             "placement size out of range");
  TP_REQUIRE(binomial(torus.num_nodes(), size) <= max_candidates,
             "too many candidate placements to enumerate");

  const i64 n = torus.num_nodes();
  std::vector<NodeId> pick(static_cast<std::size_t>(size));
  std::iota(pick.begin(), pick.end(), NodeId{0});

  std::vector<NodeId> best_nodes = pick;
  double best = emax_of(torus, pick, kind);
  i64 evaluated = 1;

  // Lexicographic combination enumeration.
  const auto m = static_cast<std::size_t>(size);
  for (;;) {
    // Advance to the next combination.
    std::size_t i = m;
    while (i > 0) {
      --i;
      if (pick[i] < n - static_cast<i64>(m - i)) break;
      if (i == 0) {
        SearchResult result{
            Placement(torus, best_nodes, "exhaustive_best"), best,
            evaluated};
        return result;
      }
    }
    ++pick[i];
    for (std::size_t j = i + 1; j < m; ++j) pick[j] = pick[j - 1] + 1;

    const double emax = emax_of(torus, pick, kind);
    ++evaluated;
    if (emax < best) {
      best = emax;
      best_nodes = pick;
    }
  }
}

SearchResult anneal_placement(const Torus& torus, i64 size, RouterKind kind,
                              i64 iterations, u64 seed) {
  TP_REQUIRE(size >= 2 && size <= torus.num_nodes(),
             "placement size out of range");
  TP_REQUIRE(iterations >= 1, "need at least one iteration");
  Xoshiro256SS rng(seed);

  // Random initial subset via partial shuffle.
  std::vector<NodeId> all(static_cast<std::size_t>(torus.num_nodes()));
  std::iota(all.begin(), all.end(), NodeId{0});
  for (i64 i = 0; i < size; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.below(
                       static_cast<u64>(torus.num_nodes() - i)));
    std::swap(all[static_cast<std::size_t>(i)], all[j]);
  }
  // all[0..size) = current placement, all[size..) = empty nodes.
  double current = emax_of(
      torus, std::vector<NodeId>(all.begin(), all.begin() + size), kind);
  std::vector<NodeId> best_nodes(all.begin(), all.begin() + size);
  double best = current;
  i64 evaluated = 1;

  // Geometric cooling from T0 to T1 across the iteration budget.
  const double t0 = std::max(1.0, current * 0.25);
  const double t1 = 0.01;
  const double decay =
      std::pow(t1 / t0, 1.0 / static_cast<double>(iterations));
  double temperature = t0;

  for (i64 it = 0; it < iterations; ++it) {
    const auto inside = static_cast<std::size_t>(rng.below(
        static_cast<u64>(size)));
    const auto outside =
        static_cast<std::size_t>(size) +
        static_cast<std::size_t>(rng.below(
            static_cast<u64>(torus.num_nodes() - size)));
    std::swap(all[inside], all[outside]);
    const double candidate = emax_of(
        torus, std::vector<NodeId>(all.begin(), all.begin() + size), kind);
    ++evaluated;
    const double delta = candidate - current;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / temperature)) {
      current = candidate;
      if (current < best) {
        best = current;
        best_nodes.assign(all.begin(), all.begin() + size);
      }
    } else {
      std::swap(all[inside], all[outside]);  // reject the move
    }
    temperature *= decay;
  }
  SearchResult result{Placement(torus, std::move(best_nodes), "annealed"),
                      best, evaluated};
  return result;
}

}  // namespace tp
