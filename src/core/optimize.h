// Searching the placement space: is the linear placement actually the
// best processor arrangement of its size?
//
// The paper proves the linear placement is *asymptotically* optimal
// (E_max = Theta(|P|), and no placement of its size can do better than
// Omega(|P|)); whether its constant is the best possible for concrete
// (d, k) is left open.  This module searches:
//
//   * exhaustive_best_placement — enumerates every size-m subset of the
//     torus (guarded; feasible for C(N, m) up to a few hundred thousand)
//     and returns a placement minimizing E_max.
//   * anneal_placement — simulated annealing with single-processor moves
//     for instances beyond enumeration.
//
// Both evaluate the exact E_max of Definition 4 for the chosen router.

#pragma once

#include "src/core/planner.h"
#include "src/placement/placement.h"

namespace tp {

struct SearchResult {
  Placement placement;
  double emax = 0.0;
  i64 evaluated = 0;  ///< placements whose loads were computed
};

/// Exhaustive minimum over all placements of the given size.  Throws if
/// C(num_nodes, size) exceeds `max_candidates` (default 500k).
SearchResult exhaustive_best_placement(const Torus& torus, i64 size,
                                       RouterKind kind,
                                       i64 max_candidates = 500000);

/// Simulated annealing from a random start: each move relocates one
/// processor to a random empty node; worse moves are accepted with
/// probability exp(-delta / T), T decaying geometrically.  Deterministic
/// given the seed.  Returns the best placement seen.
SearchResult anneal_placement(const Torus& torus, i64 size, RouterKind kind,
                              i64 iterations, u64 seed);

}  // namespace tp
