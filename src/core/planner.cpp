#include "src/core/planner.h"

#include <optional>

#include "src/load/complete_exchange.h"
#include "src/obs/obs.h"
#include "src/load/formulas.h"
#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/util/error.h"

namespace tp {

std::unique_ptr<Router> make_router(RouterKind kind) {
  switch (kind) {
    case RouterKind::Odr:
      return std::make_unique<OdrRouter>();
    case RouterKind::Udr:
      return std::make_unique<UdrRouter>();
    case RouterKind::Adaptive:
      return std::make_unique<AdaptiveMinimalRouter>();
  }
  TP_ASSERT(false, "unknown router kind");
}

PlacementPlan plan_placement(const Torus& torus, i32 t, RouterKind kind) {
  TP_OBS_SCOPE("plan.plan");
  TP_REQUIRE(torus.is_uniform_radix(),
             "planning requires the paper's T_k^d (uniform radix)");
  const i32 k = torus.radix(0);
  const i32 d = torus.dims();
  TP_REQUIRE(t >= 1 && t <= k, "multiplicity t must be in [1, k]");

  std::optional<Placement> placement;
  {
    TP_OBS_SCOPE("plan.place");
    placement.emplace(multiple_linear_placement(torus, t));
  }
  PlacementPlan plan{std::move(*placement), kind, nullptr, 0.0, false, 0.0,
                     ""};

  {
    TP_OBS_SCOPE("plan.route");
    plan.router = make_router(kind);
    switch (kind) {
      case RouterKind::Odr:
        if (t == 1 && d >= 3) {
          plan.predicted_emax = odr_linear_emax(k, d);
          plan.prediction_exact = true;
        } else {
          plan.predicted_emax = multiple_odr_upper(t, k, d);
          plan.prediction_exact = false;
        }
        break;
      case RouterKind::Udr:
        plan.predicted_emax = multiple_udr_upper(t, k, d);
        plan.prediction_exact = false;
        break;
      case RouterKind::Adaptive:
        // No closed form in the paper; UDR's bound still applies since
        // spreading over more paths can only reduce the worst link.
        plan.predicted_emax = multiple_udr_upper(t, k, d);
        plan.prediction_exact = false;
        break;
    }
  }
  {
    TP_OBS_SCOPE("plan.bound");
    plan.lower_bound = best_lower_bound(torus, plan.placement);
  }
  plan.summary = plan.placement.name() + " + " + plan.router->name() +
                 " on T_" + std::to_string(k) + "^" + std::to_string(d) +
                 ": |P| = " + std::to_string(plan.placement.size()) +
                 ", predicted E_max " +
                 (plan.prediction_exact ? "= " : "<= ") +
                 std::to_string(plan.predicted_emax) + ", lower bound " +
                 std::to_string(plan.lower_bound);
  return plan;
}

LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind) {
  return measure_loads(torus, p, kind, 1);
}

LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind, i32 threads) {
  return measure_loads(torus, p, kind, threads, /*use_table=*/false);
}

LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind, i32 threads, bool use_table) {
  TP_OBS_SCOPE("plan.measure");
  TP_REQUIRE(threads >= 1, "need at least one analyzer thread");
  switch (kind) {
    case RouterKind::Odr:
      if (use_table) return odr_loads_table(torus, p);
      return threads == 1 ? odr_loads(torus, p)
                          : odr_loads_parallel(torus, p, threads);
    case RouterKind::Udr:
      return threads == 1 ? udr_loads(torus, p)
                          : udr_loads_parallel(torus, p, threads);
    case RouterKind::Adaptive:
      return adaptive_loads(torus, p);
  }
  TP_ASSERT(false, "unknown router kind");
}

double measure_emax(const Torus& torus, const PlacementPlan& plan) {
  return measure_loads(torus, plan.placement, plan.router_kind).max_load();
}

}  // namespace tp
