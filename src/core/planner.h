// The headline API: plan an optimal placement + routing for a torus.
//
// Given a torus T_k^d and a multiplicity t, plan_placement() constructs the
// paper's optimal design — the (multiple) linear placement of size t·k^{d-1}
// with ODR (minimal load) or UDR (fault tolerance) — together with its
// predicted maximum load, the theoretical lower bounds, and optionally the
// measured exact load.

#pragma once

#include <memory>
#include <string>

#include "src/bounds/lower_bounds.h"
#include "src/load/load_map.h"
#include "src/placement/placement.h"
#include "src/routing/router.h"

namespace tp {

enum class RouterKind {
  Odr,       ///< one path per pair; smallest E_max (Theorem 2)
  Udr,       ///< s! paths per pair; fault-tolerant (Theorem 4)
  Adaptive,  ///< every minimal path; reference envelope
};

/// Creates the router for a kind (ODR/UDR use the canonical tie-break).
std::unique_ptr<Router> make_router(RouterKind kind);

/// A planned placement + routing design for one torus.
struct PlacementPlan {
  Placement placement;
  RouterKind router_kind;
  std::unique_ptr<Router> router;

  double predicted_emax = 0.0;     ///< paper's closed form / upper bound
  bool prediction_exact = false;   ///< closed form (true) vs upper bound
  double lower_bound = 0.0;        ///< best applicable lower bound
  std::string summary;             ///< one-line human-readable description
};

/// Plans the optimal design for T_k^d: a multiple linear placement of
/// multiplicity t routed by `kind`.  Requires a uniform-radix torus and
/// 1 <= t <= k.
PlacementPlan plan_placement(const Torus& torus, i32 t = 1,
                             RouterKind kind = RouterKind::Odr);

/// Measures the exact maximum load of a plan on its torus (complete
/// exchange, Definition 4) using the fast load analyzers.
double measure_emax(const Torus& torus, const PlacementPlan& plan);

/// Exact loads for any router kind on any placement.
LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind);

/// Exact loads computed with `threads` analyzer workers.  Callers that own
/// a worker pool (the service engine) pass their configured width instead
/// of sizing each call off hardware_concurrency.  threads == 1 is the
/// serial path; ODR parallel results are bit-identical to serial at any
/// width, UDR matches to ~1 ulp for a fixed width, and Adaptive has no
/// parallel analyzer (threads is ignored).
LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind, i32 threads);

/// As above, optionally routing ODR through a precompiled next-hop table
/// (odr_loads_table) instead of the segment-walk analyzer.  The results
/// are identical — the table is an implementation strategy, not a
/// different router — so cached query results stay valid either way.
/// Only ODR has a table-driven analyzer; other kinds ignore `use_table`.
/// The table path is serial (threads is ignored when it is taken).
LoadMap measure_loads(const Torus& torus, const Placement& p,
                      RouterKind kind, i32 threads, bool use_table);

}  // namespace tp
