// torusplace — umbrella header.
//
// Optimal processor placements and shortest-path routing algorithms for
// partially populated torus networks, reproducing Azizoglu & Egecioglu,
// "Lower Bounds on Communication Loads and Optimal Placements in Torus
// Networks" (IPPS 1998 / IEEE TC 49(3), 2000).
//
// Quick start:
//
//   #include "src/core/torusplace.h"
//
//   tp::Torus torus(/*d=*/3, /*k=*/8);
//   tp::PlacementPlan plan = tp::plan_placement(torus, /*t=*/1,
//                                               tp::RouterKind::Odr);
//   double emax = tp::measure_emax(torus, plan);   // exact, == k^2/8 + k/4
//
// See examples/ for complete programs.

#pragma once

#include "src/analysis/imbalance.h"
#include "src/analysis/load_profile.h"
#include "src/analysis/resilience.h"
#include "src/bisection/cut.h"
#include "src/bisection/dimension_cut.h"
#include "src/bisection/exact_bisection.h"
#include "src/bisection/hyperplane_sweep.h"
#include "src/bounds/lower_bounds.h"
#include "src/bounds/optimal_size.h"
#include "src/bounds/slab_search.h"
#include "src/core/optimize.h"
#include "src/core/planner.h"
#include "src/core/verifier.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/load/load_map.h"
#include "src/placement/factory.h"
#include "src/placement/io.h"
#include "src/placement/modular.h"
#include "src/placement/placement.h"
#include "src/placement/uniformity.h"
#include "src/routing/adaptive.h"
#include "src/routing/deadlock.h"
#include "src/routing/disjoint.h"
#include "src/routing/fault_router.h"
#include "src/routing/odr.h"
#include "src/routing/table_router.h"
#include "src/routing/udr.h"
#include "src/simulate/adaptive_sim.h"
#include "src/simulate/fault.h"
#include "src/simulate/fault_schedule.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"
#include "src/simulate/wormhole.h"
#include "src/torus/graph.h"
#include "src/torus/torus.h"
