#include "src/core/verifier.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp {

VerificationReport verify_linear_load(i32 d, const std::vector<i32>& ks,
                                      const PlacementFamily& family,
                                      RouterKind kind, double slack) {
  TP_REQUIRE(!ks.empty(), "need at least one k");
  VerificationReport report;
  for (i32 k : ks) {
    const Torus torus(d, k);
    const Placement p = family(torus);
    if (report.family_name.empty()) report.family_name = p.name();
    const LoadMap loads = measure_loads(torus, p, kind);
    report.points.push_back(ScalingPoint{k, p.size(), loads.max_load()});
  }
  report.router_name = make_router(kind)->name();
  report.c1 = fitted_load_coefficient(report.points);
  report.linear = report.points.size() >= 2
                      ? is_load_linear(report.points, slack)
                      : true;
  return report;
}

DimensionReport verify_dimension_independence(
    const std::vector<i32>& ds, const std::vector<i32>& ks,
    const PlacementFamily& family, RouterKind kind, double slack) {
  TP_REQUIRE(!ds.empty(), "need at least one dimension");
  TP_REQUIRE(slack >= 1.0, "slack must be >= 1");
  DimensionReport report;
  for (i32 d : ds)
    report.per_dimension.push_back(
        verify_linear_load(d, ks, family, kind, slack));

  double base_c1 = report.per_dimension.front().c1;
  report.d_independent = true;
  for (const VerificationReport& vr : report.per_dimension) {
    report.worst_c1 = std::max(report.worst_c1, vr.c1);
    if (!vr.linear || (base_c1 > 0.0 && vr.c1 > slack * base_c1))
      report.d_independent = false;
  }
  return report;
}

}  // namespace tp
