// Empirical certification that a placement family keeps load linear.
//
// The paper's definition of an optimal placement is asymptotic: a
// *description* P_{d,k} such that E_max <= c1 |P_{d,k}| with c1 a constant
// over the whole family.  LinearLoadVerifier runs the exact load analysis
// over a sweep of k for fixed d, fits the smallest c1, and checks that the
// per-k ratio E_max/|P| stays bounded (no upward drift), which is the
// practical test that the family is optimal in the paper's sense.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/bounds/optimal_size.h"
#include "src/core/planner.h"

namespace tp {

/// A family of placements indexed by k for a fixed dimension d.
/// The callable receives the torus T_k^d and returns the placement.
using PlacementFamily = std::function<Placement(const Torus&)>;

struct VerificationReport {
  std::vector<ScalingPoint> points;  ///< one entry per k in the sweep
  double c1 = 0.0;                   ///< fitted load coefficient
  bool linear = false;               ///< ratio stayed bounded over the sweep
  std::string family_name;
  std::string router_name;
};

/// Runs the family over every k in `ks` on T_k^d and certifies linearity.
/// `slack` is the allowed drift of E_max/|P| relative to the smallest k
/// (1.5 accommodates lower-order terms like the +k^{d-2}/4 in the ODR
/// closed form).
VerificationReport verify_linear_load(i32 d, const std::vector<i32>& ks,
                                      const PlacementFamily& family,
                                      RouterKind kind, double slack = 1.5);

/// The paper's "desirable case" (Section 2): the load coefficient c1 must
/// not depend on the dimension d either.  Runs the family over every
/// (d, k) combination and certifies that the fitted c1 of each dimension
/// stays within `slack` of the smallest dimension's.
struct DimensionReport {
  std::vector<VerificationReport> per_dimension;  ///< one per d in `ds`
  bool d_independent = false;  ///< c1 drift across d within slack
  double worst_c1 = 0.0;
};

DimensionReport verify_dimension_independence(
    const std::vector<i32>& ds, const std::vector<i32>& ks,
    const PlacementFamily& family, RouterKind kind, double slack = 1.5);

}  // namespace tp
