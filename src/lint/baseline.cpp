#include "src/lint/baseline.h"

#include <algorithm>
#include <sstream>

#include "src/util/error.h"

namespace tp::lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // <file>:<rule-id>: <justification> — the file part may not contain
    // ':' (repo paths never do), so the first ':' ends it.
    const std::size_t c1 = line.find(':');
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : line.find(':', c1 + 1);
    TP_REQUIRE(c2 != std::string::npos,
               "baseline line " + std::to_string(lineno) +
                   ": expected '<file>:<rule-id>: <justification>', got: " +
                   line);
    BaselineEntry e;
    e.file = trim(line.substr(0, c1));
    e.rule = trim(line.substr(c1 + 1, c2 - c1 - 1));
    e.justification = trim(line.substr(c2 + 1));
    TP_REQUIRE(!e.file.empty(), "baseline line " + std::to_string(lineno) +
                                    ": empty file path");
    rule(e.rule);  // throws on an unknown rule id
    TP_REQUIRE(!e.justification.empty(),
               "baseline line " + std::to_string(lineno) + " (" + e.file +
                   ":" + e.rule +
                   "): a baseline entry needs a justification — say why "
                   "this finding is accepted");
    entries.push_back(std::move(e));
  }
  return entries;
}

void apply_baseline(const std::vector<BaselineEntry>& baseline,
                    std::vector<Diagnostic>& diags,
                    std::vector<BaselineEntry>& unused) {
  std::vector<bool> matched(baseline.size(), false);
  auto suppressed = [&](const Diagnostic& d) {
    bool hit = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline[i].file == d.file && baseline[i].rule == d.rule) {
        matched[i] = true;
        hit = true;
      }
    }
    return hit;
  };
  diags.erase(std::remove_if(diags.begin(), diags.end(), suppressed),
              diags.end());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    if (!matched[i]) unused.push_back(baseline[i]);
}

}  // namespace tp::lint
