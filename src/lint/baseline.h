// Baseline files: accepted findings that the tool stops reporting.
//
// A baseline is the escape hatch for findings the team has looked at and
// decided to live with (usually while a refactor is staged).  Each entry
// must carry a justification — an unexplained suppression is exactly the
// kind of silent decision the lint layer exists to prevent — and entries
// that no longer match anything are themselves reported, so the file
// shrinks as the debt is paid down.
//
// Format (one entry per line; '#' starts a comment; blank lines ignored):
//
//   <file>:<rule-id>: <justification>
//
// e.g.  src/service/engine.cpp:unordered-output: ordering fixed in PR 12
//
// Matching is by (file, rule), not line, so the baseline survives
// unrelated edits to the file.

#pragma once

#include <string>
#include <vector>

#include "src/lint/diagnostics.h"

namespace tp::lint {

struct BaselineEntry {
  std::string file;
  std::string rule;
  std::string justification;
};

/// Parses baseline text.  Throws tp::Error on a malformed line, an
/// unknown rule id, or an empty justification.
std::vector<BaselineEntry> parse_baseline(const std::string& text);

/// Removes diagnostics matched by the baseline.  Every entry that matched
/// nothing is appended to `unused` (report these: a stale suppression is
/// debt that has silently been paid).
void apply_baseline(const std::vector<BaselineEntry>& baseline,
                    std::vector<Diagnostic>& diags,
                    std::vector<BaselineEntry>& unused);

}  // namespace tp::lint
