#include "src/lint/determinism.h"

#include <string_view>

#include "src/lint/paths.h"

namespace tp::lint {

namespace {

bool is_unordered_type(std::string_view s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

/// Output sinks: writing through any of these inside a hash-order loop
/// makes the emitted bytes depend on the hash seed.  The list names the
/// repo's real output surfaces — stream types, the checked_io encoders,
/// and the JSON builder (JsonValue::object preserves insertion order, so
/// inserting while iterating an unordered map bakes hash order into the
/// serialized document).
constexpr std::string_view kSinkNames[] = {
    "ostream",        "wostream", "ofstream",  "ostringstream",
    "CheckedFileWriter", "AppendLog", "ByteBuffer", "JsonValue",
};

bool is_sink_name(std::string_view s) {
  for (const std::string_view k : kSinkNames)
    if (s == k) return true;
  return false;
}

/// The blessed sorted-iteration idiom (src/util/sorted_view.h).
bool is_blessed_iteration(std::string_view s) {
  return s == "sorted_items" || s == "sorted_keys";
}

/// Skips a balanced template argument list; `i` is at '<'.  Returns one
/// past the matching '>', or `i` when the list never closes sanely (a
/// comparison mistaken for a template — bail, do not flag).
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") return i;  // gave up
  }
  return i;
}

/// One function-shaped region: [sig_begin, end) token indices, where the
/// body is [body_begin, end).
struct FunctionRegion {
  std::size_t sig_begin = 0;
  std::size_t body_begin = 0;
  std::size_t end = 0;
};

/// Finds function bodies: a '{' preceded (skipping cv/ref/noexcept/
/// override/final and a trailing-return type) by the ')' of a parameter
/// list.  The signature is included in the region so `std::ostream& out`
/// parameters count as sinks.  Heuristic by design: initializer lists
/// after `=` and class bodies do not match because their '{' is not
/// preceded by ')'.
std::vector<FunctionRegion> function_regions(const std::vector<Token>& t) {
  std::vector<FunctionRegion> regions;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].punct("{")) continue;
    // Walk back over the decoration between ')' and '{'.
    std::size_t j = i;
    bool saw_close = false;
    while (j > 0) {
      const Token& p = t[j - 1];
      if (p.punct(")")) {
        saw_close = true;
        break;
      }
      const bool decoration =
          p.ident("const") || p.ident("noexcept") || p.ident("override") ||
          p.ident("final") || p.ident("mutable") || p.punct("->") ||
          p.punct("::") || p.punct("&") || p.punct("&&") || p.punct("*") ||
          p.punct(">") || p.punct("<") || p.punct(",") ||
          p.kind == TokKind::kIdent;
      if (!decoration) break;
      --j;
    }
    if (!saw_close || j == 0) continue;
    // j - 1 is the ')'; find its matching '(' for the signature span.
    std::size_t open = j - 1;
    int depth = 0;
    while (open > 0) {
      if (t[open].punct(")")) ++depth;
      if (t[open].punct("(")) {
        --depth;
        if (depth == 0) break;
      }
      --open;
    }
    if (depth != 0) continue;
    // The '(' must follow a name, not a control keyword: `if (...) {`
    // and `for (...) {` are not functions.
    if (open > 0) {
      const Token& name = t[open - 1];
      if (name.ident("if") || name.ident("for") || name.ident("while") ||
          name.ident("switch") || name.ident("catch") || name.ident("do") ||
          name.kind != TokKind::kIdent)
        continue;
    }
    // Find the matching '}' of the body.
    std::size_t close = i;
    depth = 0;
    for (; close < t.size(); ++close) {
      if (t[close].punct("{")) ++depth;
      if (t[close].punct("}")) {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) continue;
    regions.push_back(FunctionRegion{open, i, close + 1});
    // Continue scanning from inside the body: lambdas nested in it also
    // form regions and get their own (stricter) span.
  }
  return regions;
}

}  // namespace

std::set<std::string> unordered_decls(const std::vector<Token>& toks,
                                      bool members_only) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_unordered_type(toks[i].text))
      continue;
    // `using Cells = std::unordered_map<...>;` — the alias is the name
    // variables will be declared with; track it like the type itself.
    if (i >= 4 && toks[i - 1].punct("::") && toks[i - 2].ident("std") &&
        toks[i - 3].punct("=") && toks[i - 4].kind == TokKind::kIdent) {
      const std::string& alias = toks[i - 4].text;
      if (!members_only || (alias.size() > 1 && alias.back() == '_'))
        names.insert(alias);
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].punct("<")) {
      const std::size_t after = skip_template_args(toks, j);
      if (after == j) continue;  // unparsable; skip this occurrence
      j = after;
    }
    // Skip declarator decoration between the type and the name.
    while (j < toks.size() &&
           (toks[j].punct("&") || toks[j].punct("*") ||
            toks[j].ident("const") || toks[j].punct("::")))
      ++j;
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      const std::string& name = toks[j].text;
      if (!members_only || (name.size() > 1 && name.back() == '_'))
        names.insert(name);
    }
  }
  // Names declared *via* a tracked alias (`using Cells = ...; Cells
  // cells;`): chase ident-ident pairs until the set stops growing.  A
  // function returning the alias type lands in the set too — iterating
  // its return value into a sink is the same hash-order bug.
  bool grew = !names.empty();
  while (grew) {
    grew = false;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || names.count(toks[i].text) == 0)
        continue;
      if (i > 0 && (toks[i - 1].punct(".") || toks[i - 1].punct("->") ||
                    toks[i - 1].punct("::")))
        continue;  // member access / qualification, not a type position
      if (toks[i + 1].kind != TokKind::kIdent) continue;
      const std::string& name = toks[i + 1].text;
      if (!members_only || (name.size() > 1 && name.back() == '_'))
        grew = names.insert(name).second || grew;
    }
  }
  return names;
}

void run_determinism_pass(const std::string& rel,
                          const std::vector<Token>& toks,
                          const std::set<std::string>& extra_unordered,
                          std::vector<Diagnostic>& diags) {
  if (!in_lib_or_tool(rel)) return;

  std::set<std::string> unordered = unordered_decls(toks, false);
  unordered.insert(extra_unordered.begin(), extra_unordered.end());
  if (unordered.empty()) return;

  auto is_unordered_var = [&](const Token& t) {
    return t.kind == TokKind::kIdent && unordered.count(t.text) != 0;
  };

  for (const FunctionRegion& fn : function_regions(toks)) {
    // Sink detection over the whole region (signature + body).
    bool sink = false;
    for (std::size_t i = fn.sig_begin; i < fn.end && !sink; ++i)
      sink = toks[i].kind == TokKind::kIdent && is_sink_name(toks[i].text);
    if (!sink) continue;

    for (std::size_t i = fn.body_begin; i < fn.end; ++i) {
      // Range-for: `for ( decl : expr )` — the single `:` at paren depth
      // one separates the declaration from the range (the tokenizer
      // emits `::` as one token, so a lone `:` is unambiguous).
      if (toks[i].ident("for") && i + 1 < fn.end && toks[i + 1].punct("(")) {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < fn.end; ++j) {
          if (toks[j].punct("(")) ++depth;
          if (toks[j].punct(")")) {
            --depth;
            if (depth == 0) {
              close = j;
              break;
            }
          }
          if (depth == 1 && colon == 0 && toks[j].punct(":")) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        bool blessed = false;
        bool hits_unordered = false;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind != TokKind::kIdent) continue;
          if (is_blessed_iteration(toks[j].text)) blessed = true;
          if (is_unordered_var(toks[j])) hits_unordered = true;
        }
        if (hits_unordered && !blessed)
          add(diags, rel, toks[i].line, "unordered-output");
        continue;
      }
      // Iterator loop: `name.begin()` / `name->begin()` on an unordered
      // variable (cbegin too).
      if (is_unordered_var(toks[i]) && i + 3 < fn.end &&
          (toks[i + 1].punct(".") || toks[i + 1].punct("->")) &&
          (toks[i + 2].ident("begin") || toks[i + 2].ident("cbegin")) &&
          toks[i + 3].punct("("))
        add(diags, rel, toks[i].line, "unordered-output");
    }
  }
}

}  // namespace tp::lint
