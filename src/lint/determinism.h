// The determinism pass: hash-order iteration inside output paths.
//
// The repo's headline correctness contract is byte-identical output
// across runs, thread counts, and transports (batch == serve --stdio ==
// serve --tcp; checkpoint resume == uninterrupted run).  The one bug
// class that silently breaks it is iterating a `std::unordered_map` /
// `unordered_set` while writing an output sink: hash order is
// unspecified, differs between libstdc++ versions and ASLR seeds, and
// every golden test passes locally right up until it doesn't somewhere
// else.
//
// The pass is a per-function token heuristic, not alias analysis:
//   * a variable is "unordered" when the file declares it with an
//     unordered_(map|set|multimap|multiset) type, or when any scanned
//     file declares a member of that name with a trailing '_' (the
//     member-naming convention lets the pass see across the .h/.cpp
//     split without a real symbol table);
//   * a function "writes a sink" when its signature or body names an
//     output type (std::ostream & friends, the checked_io encoders, the
//     JSON/JSONL builders — see kSinkNames in determinism.cpp);
//   * iterating is a range-for over an unordered variable or a
//     `.begin()` call on one.
// Iterating through tp::sorted_items / tp::sorted_keys
// (src/util/sorted_view.h) is the blessed fix and never flags.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/lint/diagnostics.h"
#include "src/lint/token.h"

namespace tp::lint {

/// Names declared with an unordered container type in this token stream.
/// `members_only` restricts the result to trailing-underscore names (the
/// cross-file member convention).
std::set<std::string> unordered_decls(const std::vector<Token>& toks,
                                      bool members_only);

/// Runs the determinism pass over one file.  `extra_unordered` is the
/// cross-file member-name set (pass {} for single-file analysis).
void run_determinism_pass(const std::string& rel,
                          const std::vector<Token>& toks,
                          const std::set<std::string>& extra_unordered,
                          std::vector<Diagnostic>& diags);

}  // namespace tp::lint
