#include "src/lint/diagnostics.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp::lint {

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"raw-sync", "src/ (except src/util/), tools/, bench/",
       "raw std synchronization primitive; use tp::Mutex/tp::MutexLock/"
       "tp::CondVar/tp::Thread from src/util/thread_annotations.h"},
      {"raw-random", "src/ (except src/util/), tools/, bench/",
       "unseeded randomness/time source; use the seeded PRNG in "
       "src/util/prng.h"},
      {"cout-in-lib", "src/",
       "std::cout in library code; return data or take an std::ostream& "
       "(printing belongs to tools/ and bench/)"},
      {"iostream-in-header", "src/ headers",
       "#include <iostream> in a library header; include <ostream>/<iosfwd> "
       "or move the printing into a .cpp"},
      {"bare-assert", "src/",
       "bare assert in library code; use TP_REQUIRE/TP_ASSERT from "
       "src/util/error.h so failures throw with expression and file:line"},
      {"no-fprintf", "src/",
       "printf/fprintf(stderr, ...) in library code; throw tp::Error, return "
       "data, or take an std::ostream& — ad-hoc stderr chatter bypasses the "
       "structured response/trace paths (std::snprintf formatting is fine)"},
      {"require-message", "src/, tools/, bench/",
       "TP_REQUIRE/TP_ASSERT needs a non-empty message argument (the "
       "expression and file:line alone rarely explain the contract)"},
      {"raw-timing", "src/",
       "raw timing primitive; use obs::Stopwatch (steady, monotonic) from "
       "src/obs/timer.h or TP_PROF_PHASE for durations — system_clock "
       "jumps with wall-clock adjustments and clock()/gettimeofday mix "
       "CPU/realtime semantics"},
      {"raw-io", "src/ (except src/util/)",
       "unchecked stdio file I/O; persistent binary state goes through "
       "src/util/checked_io.h (CRC-framed records, atomic replace) so "
       "truncation and bit-flips are detected instead of served"},
      {"raw-socket", "src/ (except src/net/)",
       "raw socket syscall; network I/O goes through the RAII wrappers in "
       "src/net/socket.h (Socket/Listener/connect_to) so fds cannot leak, "
       "EINTR is retried, and SIGPIPE stays suppressed"},
      {"arch-layering", "repo-wide (quoted includes)",
       "include crosses the module layering; the allowed-edges DAG is "
       "declared in src/lint/include_graph.cpp and rendered in "
       "docs/module-graph.dot (diagnostics name the offending edge)"},
      {"arch-cycle", "repo-wide (quoted includes)",
       "the observed module include graph has a cycle; break it or redraw "
       "the layering (diagnostics name the cycle)"},
      {"unordered-output", "src/, tools/, bench/",
       "iteration over an unordered container in a function that writes an "
       "output sink; hash order varies across runs/platforms and silently "
       "breaks the byte-identical-output contract — iterate "
       "tp::sorted_items/sorted_keys (src/util/sorted_view.h) or a sorted "
       "copy instead"},
  };
  return kRules;
}

const Rule& rule(std::string_view id) {
  for (const Rule& r : rules())
    if (id == r.id) return r;
  TP_REQUIRE(false, "unknown lint rule id: " + std::string(id));
  // Unreachable; TP_REQUIRE(false, ...) always throws.
  throw Error("unreachable");
}

void add(std::vector<Diagnostic>& diags, const std::string& file, int line,
         std::string_view id) {
  const Rule& r = rule(id);
  diags.push_back(Diagnostic{file, line, r.id, r.message});
}

void add_detail(std::vector<Diagnostic>& diags, const std::string& file,
                int line, std::string_view id, const std::string& message) {
  const Rule& r = rule(id);
  diags.push_back(Diagnostic{file, line, r.id, message});
}

void sort_and_dedupe(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end());
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.same_site(b);
                          }),
              diags.end());
}

}  // namespace tp::lint
