// Lint diagnostics and the rule table.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tp::lint {

struct Diagnostic {
  std::string file;  // path relative to the lint root, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
  bool same_site(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct Rule {
  const char* id;
  const char* scope;    // human-readable, for --list-rules
  const char* message;  // the diagnostic text (or a summary for the
                        // passes whose diagnostics carry specifics)
};

/// The full rule table, in documentation order (docs/static-analysis.md).
const std::vector<Rule>& rules();

/// Looks up a rule by id; throws tp::Error for an unknown id (a rule id
/// used by a pass but missing from the table is a programming error).
const Rule& rule(std::string_view id);

/// Appends a diagnostic whose message is the rule's canonical text.
void add(std::vector<Diagnostic>& diags, const std::string& file, int line,
         std::string_view id);

/// Appends a diagnostic with a pass-specific message.
void add_detail(std::vector<Diagnostic>& diags, const std::string& file,
                int line, std::string_view id, const std::string& message);

/// Sorts by (file, line, rule) and drops same-site duplicates.
void sort_and_dedupe(std::vector<Diagnostic>& diags);

}  // namespace tp::lint
