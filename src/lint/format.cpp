#include "src/lint/format.h"

#include <ostream>
#include <set>

#include "src/util/error.h"

namespace tp::lint {

Format parse_format(const std::string& name) {
  if (name == "text") return Format::kText;
  if (name == "json") return Format::kJson;
  if (name == "sarif") return Format::kSarif;
  TP_REQUIRE(false, "unknown --format '" + name +
                        "' (expected text, json, or sarif)");
  throw Error("unreachable");
}

std::string json_escape(const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text(std::ostream& out, const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags)
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  if (!diags.empty()) out << diags.size() << " violation(s)\n";
}

void write_json(std::ostream& out, const std::vector<Diagnostic>& diags) {
  out << "{\n"
      << "  \"schema\": \"tp-lint/1\",\n"
      << "  \"violations\": " << diags.size() << ",\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"file\": \"" << json_escape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \""
        << json_escape(d.rule) << "\", \"message\": \""
        << json_escape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

void write_sarif(std::ostream& out, const std::vector<Diagnostic>& diags) {
  // Minimal SARIF 2.1.0: one run, the driver's rule table limited to the
  // rules that actually fired (keeps the document small and the ordering
  // deterministic), one result per finding.
  std::set<std::string> fired;
  for (const Diagnostic& d : diags) fired.insert(d.rule);

  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"tp_lint\",\n"
      << "      \"informationUri\": "
         "\"https://example.invalid/torusplace/docs/static-analysis.md\",\n"
      << "      \"rules\": [";
  bool first = true;
  for (const Rule& r : rules()) {
    if (fired.count(r.id) == 0) continue;
    out << (first ? "\n" : ",\n") << "        {\"id\": \""
        << json_escape(r.id) << "\", \"shortDescription\": {\"text\": \""
        << json_escape(r.message) << "\"}}";
    first = false;
  }
  out << (first ? "]\n" : "\n      ]\n") << "    }},\n"
      << "    \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n") << "      {\"ruleId\": \""
        << json_escape(d.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(d.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(d.file)
        << "\"}, \"region\": {\"startLine\": " << d.line << "}}}]}";
  }
  out << (diags.empty() ? "]\n" : "\n    ]\n") << "  }]\n"
      << "}\n";
}

void write_findings(std::ostream& out, Format format,
                    const std::vector<Diagnostic>& diags) {
  switch (format) {
    case Format::kText: write_text(out, diags); break;
    case Format::kJson: write_json(out, diags); break;
    case Format::kSarif: write_sarif(out, diags); break;
  }
}

}  // namespace tp::lint
