// Output formats for lint findings.
//
//   text   the classic `<file>:<line>: [<rule>] <message>` lines with a
//          trailing `N violation(s)` count — what the golden tests pin
//          and what humans read in CI logs;
//   json   a stable machine-readable schema ("tp-lint/1") for scripting;
//   sarif  SARIF 2.1.0 (minimal subset) so code hosts can annotate PRs
//          from the uploaded findings artifact.
//
// All three writers are deterministic: findings are emitted in the order
// given (the driver sorts them) and the JSON is hand-rendered with fixed
// indentation and key order.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/lint/diagnostics.h"

namespace tp::lint {

enum class Format { kText, kJson, kSarif };

/// Parses "text" | "json" | "sarif"; throws tp::Error otherwise.
Format parse_format(const std::string& name);

/// Escapes a string for embedding in a JSON document (quotes not
/// included).
std::string json_escape(const std::string& s);

void write_text(std::ostream& out, const std::vector<Diagnostic>& diags);
void write_json(std::ostream& out, const std::vector<Diagnostic>& diags);
void write_sarif(std::ostream& out, const std::vector<Diagnostic>& diags);

/// Dispatches on `format`.
void write_findings(std::ostream& out, Format format,
                    const std::vector<Diagnostic>& diags);

}  // namespace tp::lint
