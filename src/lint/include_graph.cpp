#include "src/lint/include_graph.h"

#include <ostream>

#include "src/lint/paths.h"

namespace tp::lint {

std::vector<IncludeRef> quoted_includes(const std::vector<Token>& toks) {
  std::vector<IncludeRef> refs;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kDirective || toks[i].text != "include")
      continue;
    const Token& h = toks[i + 1];
    if (h.kind != TokKind::kHeaderName || h.text.size() < 2 ||
        h.text.front() != '"')
      continue;
    const std::size_t len =
        h.text.back() == '"' ? h.text.size() - 2 : h.text.size() - 1;
    refs.push_back(IncludeRef{h.text.substr(1, len), toks[i].line});
  }
  return refs;
}

// ---------------------------------------------------------------------------
// The declared module DAG.
// ---------------------------------------------------------------------------
//
// Layering (low to high; a module may include strictly lower layers, and
// only along the edges listed here):
//
//   util                          leaf utilities; depends on nothing
//   lint, obs                     infrastructure over util
//   torus                         the graph model
//   placement                     processor placements on a torus
//   routing                       routers over placements
//   load, bisection, simulate     analyses over routers/placements
//   bounds                        lower bounds (uses load + bisection)
//   analysis                      cross-cutting reports (uses simulate)
//   core                          the planner facade over everything below
//   service                       the query engine over core
//   net                           the TCP front-end over service
//   tools/bench/tests/examples    the top layer, above all of src/
//
// Everything may use util; everything above obs may use obs.  `core` sits
// high deliberately: it is the composition layer (plan -> route -> bound
// -> verify), not a primitive — the one-line summary "torus/core" in
// older docs undersold where it actually lives.
const std::map<std::string, std::set<std::string>>& allowed_edges() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {}},
      {"lint", {"util"}},
      {"obs", {"util"}},
      {"torus", {"util", "obs"}},
      {"placement", {"util", "obs", "torus"}},
      {"routing", {"util", "obs", "torus", "placement"}},
      {"load", {"util", "obs", "torus", "placement", "routing"}},
      {"bisection", {"util", "obs", "torus", "placement"}},
      {"bounds",
       {"util", "obs", "torus", "placement", "load", "bisection"}},
      {"simulate", {"util", "obs", "torus", "placement", "routing"}},
      {"analysis",
       {"util", "obs", "torus", "placement", "routing", "load", "simulate"}},
      {"core",
       {"util", "obs", "torus", "placement", "routing", "load", "bisection",
        "bounds", "simulate", "analysis"}},
      {"service",
       {"util", "obs", "torus", "placement", "load", "bounds", "core"}},
      {"net", {"util", "obs", "service"}},
  };
  return kAllowed;
}

void ModuleGraph::add_file(const std::string& rel,
                           const std::vector<IncludeRef>& includes) {
  const std::string from = module_of(rel);
  if (from.empty()) return;
  for (const IncludeRef& inc : includes) {
    const std::string to = module_of(inc.target);
    if (to.empty() || to == from) continue;
    auto& witness = edges_[from];
    const auto it = witness.find(to);
    // Keep the lexicographically-first witness so diagnostics and DOT
    // stay stable under any file scan order.
    if (it == witness.end() || rel < it->second.file ||
        (rel == it->second.file && inc.line < it->second.line))
      witness[to] = Witness{rel, inc.line};
  }
}

void ModuleGraph::check(std::vector<Diagnostic>& diags) const {
  const auto& allowed = allowed_edges();

  for (const auto& [from, outs] : edges_) {
    if (is_top_module(from)) continue;  // the top layer may include all
    const auto decl = allowed.find(from);
    for (const auto& [to, w] : outs) {
      if (is_top_module(to)) {
        add_detail(diags, w.file, w.line, "arch-layering",
                   "module '" + from + "' includes the top-layer '" + to +
                       "' tree; src/ libraries must not reach into "
                       "tools/bench/tests");
        continue;
      }
      if (decl == allowed.end()) {
        add_detail(diags, w.file, w.line, "arch-layering",
                   "module '" + from +
                       "' is not declared in the module DAG; add it to "
                       "allowed_edges() in src/lint/include_graph.cpp and "
                       "to docs/module-graph.dot");
        continue;
      }
      if (decl->second.count(to) == 0)
        add_detail(diags, w.file, w.line, "arch-layering",
                   "module '" + from + "' may not include module '" + to +
                       "'; the allowed-edges DAG is declared in "
                       "src/lint/include_graph.cpp (and rendered in "
                       "docs/module-graph.dot)");
    }
  }

  // Cycle detection over the observed graph (top-layer modules excluded:
  // nothing includes them back, so they cannot close a cycle).  DFS in
  // sorted order; each cycle is reported once, anchored at its first
  // witnessing include.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::set<std::string> reported;

  // Self-referencing recursion via explicit lambda parameter.
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    state[node] = 1;
    stack.push_back(node);
    const auto it = edges_.find(node);
    if (it != edges_.end()) {
      for (const auto& [to, w] : it->second) {
        if (is_top_module(to)) continue;
        const int s = state[to];
        if (s == 0) {
          self(self, to);
        } else if (s == 1) {
          // Found a cycle: stack from `to` onward, closing back to `to`.
          std::size_t start = 0;
          while (start < stack.size() && stack[start] != to) ++start;
          std::string path;
          for (std::size_t k = start; k < stack.size(); ++k)
            path += stack[k] + " -> ";
          path += to;
          if (reported.insert(path).second)
            add_detail(diags, w.file, w.line, "arch-cycle",
                       "module include cycle: " + path +
                           "; break the cycle or redraw the layering "
                           "(src/lint/include_graph.cpp)");
        }
      }
    }
    stack.pop_back();
    state[node] = 2;
  };
  for (const auto& [from, outs] : edges_) {
    if (is_top_module(from)) continue;
    if (state[from] == 0) dfs(dfs, from);
  }
}

void ModuleGraph::write_dot(std::ostream& out) const {
  out << "// Observed src/ module include graph, extracted by tp_lint "
         "--dot.\n"
      << "// Regenerate: ./build/tools/tp_lint --root . --dot "
         "docs/module-graph.dot .\n"
      << "// The lint_arch ctest fails when this file drifts from the "
         "tree.\n"
      << "digraph torusplace_modules {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box];\n";
  for (const std::string& e : edges()) out << "  " << e << ";\n";
  out << "}\n";
}

std::vector<std::string> ModuleGraph::edges() const {
  std::vector<std::string> flat;
  for (const auto& [from, outs] : edges_) {
    if (is_top_module(from)) continue;
    for (const auto& [to, w] : outs) {
      if (is_top_module(to)) continue;
      flat.push_back(from + " -> " + to);
    }
  }
  return flat;  // already sorted: ordered maps, nested iteration
}

}  // namespace tp::lint
