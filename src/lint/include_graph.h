// The architecture pass: repo-relative `#include "..."` edges, aggregated
// into a module graph and checked against an explicitly declared
// allowed-edges DAG.
//
// Modules are src/ subsystems (src/util -> "util", ...); tools/, bench/,
// tests/ and examples/ form the top layer and may include anything.  The
// declared DAG lives in include_graph.cpp next to a prose rationale —
// adding a dependency between subsystems means editing that table (and
// the committed docs/module-graph.dot render; the lint_arch ctest keeps
// the two in sync), which is the conscious decision the pass exists to
// force.

#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/diagnostics.h"
#include "src/lint/token.h"

namespace tp::lint {

/// One quoted include directive.
struct IncludeRef {
  std::string target;  // the path between the quotes, e.g. "src/util/math.h"
  int line = 0;
};

/// Extracts the `#include "..."` directives from a token stream (angle
/// includes name system headers and never carry module structure).
std::vector<IncludeRef> quoted_includes(const std::vector<Token>& toks);

/// The declared allowed-edges DAG: module -> set of modules it may
/// include.  Every src/ module must appear as a key (an unknown module is
/// itself a violation); top-layer pseudo-modules are not listed.
const std::map<std::string, std::set<std::string>>& allowed_edges();

/// The observed module graph, built file by file.
class ModuleGraph {
 public:
  /// Records the edges contributed by one file.  `rel` is root-relative;
  /// files and includes that do not map to a module are ignored.
  void add_file(const std::string& rel,
                const std::vector<IncludeRef>& includes);

  /// Checks every observed edge against the declared DAG (arch-layering)
  /// and the observed graph for cycles (arch-cycle).  Diagnostics are
  /// anchored at the first witnessing include of the offending edge.
  void check(std::vector<Diagnostic>& diags) const;

  /// Writes the observed src-module graph as deterministic DOT (edges
  /// sorted; top-layer modules omitted — they may include everything, so
  /// drawing them would only add noise).
  void write_dot(std::ostream& out) const;

  /// Observed src-module edges as "from -> to" strings, sorted.
  std::vector<std::string> edges() const;

 private:
  struct Witness {
    std::string file;
    int line = 0;
  };
  // module -> included module -> first witness (ordered maps keep every
  // downstream artifact — diagnostics, DOT — deterministic).
  std::map<std::string, std::map<std::string, Witness>> edges_;
};

}  // namespace tp::lint
