#include "src/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/lint/determinism.h"
#include "src/lint/paths.h"
#include "src/lint/rules.h"
#include "src/util/error.h"
#include "src/util/parallel.h"

namespace fs = std::filesystem;

namespace tp::lint {

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

// Directories never descended into when walking a tree: build outputs,
// VCS metadata, and the deliberately-violating lint fixtures (lint them
// by passing the fixture directory as the --root instead).
bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         starts_with(name, "build");
}

std::string relative_slash(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  if (starts_with(rel, "./")) rel = rel.substr(2);
  return rel;
}

void collect(const fs::path& start, std::vector<fs::path>& files) {
  if (fs::is_regular_file(start)) {
    if (lintable(start)) files.push_back(start);
    return;
  }
  TP_REQUIRE(fs::is_directory(start),
             "no such file or directory: " + start.string());
  for (fs::recursive_directory_iterator it(start), end; it != end; ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path()))
      files.push_back(it->path());
  }
}

}  // namespace

FileScan scan_file(const std::string& rel, const std::string& text) {
  FileScan scan;
  scan.rel = rel;
  scan.tokens = tokenize(text);
  run_token_rules(rel, scan.tokens, scan.diags);
  scan.includes = quoted_includes(scan.tokens);
  scan.unordered_members = unordered_decls(scan.tokens, /*members_only=*/true);
  return scan;
}

TreeResult analyze(const std::vector<FileScan>& scans) {
  TreeResult result;

  // The cross-file member-name set: a header's `unordered_map<...> m_;`
  // makes `m_` unordered in every file (the .h/.cpp split hides the
  // declaration from single-file analysis).
  std::set<std::string> members;
  for (const FileScan& s : scans)
    members.insert(s.unordered_members.begin(), s.unordered_members.end());

  for (const FileScan& s : scans) {
    result.diags.insert(result.diags.end(), s.diags.begin(), s.diags.end());
    result.graph.add_file(s.rel, s.includes);
    run_determinism_pass(s.rel, s.tokens, members, result.diags);
  }
  result.graph.check(result.diags);
  sort_and_dedupe(result.diags);
  return result;
}

std::vector<SourceFile> collect_files(
    const std::string& root, const std::vector<std::string>& inputs) {
  const fs::path root_path(root);
  std::vector<fs::path> paths;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative()) p = root_path / p;
    collect(p, paths);
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths)
    files.push_back(SourceFile{p.string(), relative_slash(p, root_path)});
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  files.erase(std::unique(files.begin(), files.end(),
                          [](const SourceFile& a, const SourceFile& b) {
                            return a.rel == b.rel;
                          }),
              files.end());
  return files;
}

std::string read_file(const std::string& abs) {
  std::ifstream stream(abs, std::ios::binary);
  TP_REQUIRE(static_cast<bool>(stream), "cannot read " + abs);
  std::ostringstream buf;
  buf << stream.rdbuf();
  return buf.str();
}

TreeResult scan_tree(const std::string& root,
                     const std::vector<std::string>& inputs, int jobs) {
  TP_REQUIRE(jobs >= 1, "need at least one scan job");
  const std::vector<SourceFile> files = collect_files(root, inputs);

  // Phase 1 in parallel: each file's scan lands in its own slot, so the
  // result is independent of the worker partition.
  std::vector<FileScan> scans(files.size());
  // Phase-1 errors (unreadable file mid-walk) surface after the join —
  // exceptions cannot cross parallel_for_blocks' thread boundary.
  std::vector<std::string> errors(files.size());
  parallel_for_blocks(
      static_cast<i64>(files.size()), jobs,
      [&](i32 /*worker*/, i64 begin, i64 end) {
        for (i64 i = begin; i < end; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          try {
            scans[idx] =
                scan_file(files[idx].rel, read_file(files[idx].abs));
          } catch (const Error& e) {
            errors[idx] = e.what();
          }
        }
      });
  for (const std::string& err : errors)
    TP_REQUIRE(err.empty(), err);

  return analyze(scans);
}

}  // namespace tp::lint
