// The lint layer's top-level API: scan files, aggregate the tree-wide
// passes, produce diagnostics.
//
// Scanning is two-phase because two of the passes are tree-wide:
//
//   phase 1  (per file, embarrassingly parallel)  tokenize, run the
//            token rules, extract quoted includes and unordered-member
//            declarations;
//   phase 2  (serial, cheap)  build the module graph from all includes
//            and check it against the declared DAG; run the determinism
//            pass with the cross-file member-name set; sort and dedupe.
//
// The driver (tools/tp_lint.cpp) owns argv, stdout, and exit codes; this
// library throws tp::Error for anything unusable (missing input,
// unreadable file, bad baseline) and never prints.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/lint/diagnostics.h"
#include "src/lint/include_graph.h"
#include "src/lint/token.h"

namespace tp::lint {

/// Phase-1 result for one file.
struct FileScan {
  std::string rel;  // root-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<Diagnostic> diags;  // token-rule findings
  std::vector<IncludeRef> includes;
  std::set<std::string> unordered_members;  // trailing-underscore decls
};

/// Phase 1 for one file's contents.
FileScan scan_file(const std::string& rel, const std::string& text);

/// Phase-2 result for a tree.
struct TreeResult {
  std::vector<Diagnostic> diags;  // sorted by (file, line, rule), deduped
  ModuleGraph graph;              // for --dot
};

/// Phase 2: aggregates per-file scans into tree-wide diagnostics.
TreeResult analyze(const std::vector<FileScan>& scans);

/// One file selected for linting.
struct SourceFile {
  std::string abs;  // absolute path, for reading
  std::string rel;  // root-relative with '/' separators, for reporting
};

/// Expands `inputs` (files or directories, absolute or root-relative)
/// into the lintable files beneath them (.h/.hpp/.cpp/.cc), skipping
/// .git/, build*/ and lint_fixtures/ subtrees, sorted by `rel` and
/// deduplicated.  Throws tp::Error when an input does not exist.
std::vector<SourceFile> collect_files(const std::string& root,
                                      const std::vector<std::string>& inputs);

/// Reads a file's bytes; throws tp::Error when unreadable.
std::string read_file(const std::string& abs);

/// collect_files + parallel phase 1 + phase 2.  `jobs` <= 1 scans
/// serially; the result is identical either way (scans land in a slot
/// per file, and analyze() sorts).
TreeResult scan_tree(const std::string& root,
                     const std::vector<std::string>& inputs, int jobs);

}  // namespace tp::lint
