#include "src/lint/paths.h"

namespace tp::lint {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  return (path.size() >= 2 && path.substr(path.size() - 2) == ".h") ||
         (path.size() >= 4 && path.substr(path.size() - 4) == ".hpp");
}

bool in_src(std::string_view p) { return starts_with(p, "src/"); }
bool in_util(std::string_view p) { return starts_with(p, "src/util/"); }
bool in_net(std::string_view p) { return starts_with(p, "src/net/"); }
bool in_lib_or_tool(std::string_view p) {
  return in_src(p) || starts_with(p, "tools/") || starts_with(p, "bench/");
}

std::string module_of(std::string_view rel) {
  for (std::string_view top : {"tools", "bench", "tests", "examples"})
    if (starts_with(rel, std::string(top) + "/")) return std::string(top);
  if (!in_src(rel)) return std::string();
  const std::string_view tail = rel.substr(4);
  const std::size_t slash = tail.find('/');
  if (slash == std::string_view::npos) return std::string();  // src/foo.h
  return std::string(tail.substr(0, slash));
}

bool is_top_module(std::string_view module) {
  return module == "tools" || module == "bench" || module == "tests" ||
         module == "examples";
}

}  // namespace tp::lint
