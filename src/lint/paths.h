// Path classification for lint rule scoping.
//
// All paths are '/'-separated and relative to the lint root, so the same
// logic classifies both the real tree and the golden fixture tree under
// tests/lint_fixtures/ (which mirrors the repo layout).

#pragma once

#include <string>
#include <string_view>

namespace tp::lint {

bool starts_with(std::string_view s, std::string_view prefix);

bool is_header(std::string_view path);

bool in_src(std::string_view p);
bool in_util(std::string_view p);
bool in_net(std::string_view p);
bool in_lib_or_tool(std::string_view p);

/// The module a file belongs to for the architecture pass:
///   src/<m>/...  -> "<m>"  (any src/ subdirectory is a module; a new
///                           subsystem must be added to the declared DAG
///                           in include_graph.cpp before it lints clean)
///   tools/...    -> "tools",  bench/ -> "bench",  tests/ -> "tests",
///   examples/    -> "examples"  (the top layer, above all of src/)
///   anything else (files directly under src/, cmake/, docs/) -> ""
///                           (unclassified; the architecture pass skips it)
std::string module_of(std::string_view rel);

/// True for the top-layer pseudo-modules (tools/bench/tests/examples),
/// which may include any src/ module.
bool is_top_module(std::string_view module);

}  // namespace tp::lint
