#include "src/lint/rules.h"

#include <set>
#include <string_view>

#include "src/lint/paths.h"

namespace tp::lint {

namespace {

bool in_set(std::string_view s, const std::set<std::string_view>& names) {
  return names.count(s) != 0;
}

/// tokens[i-1], or null at the start of the stream.
const Token* prev(const std::vector<Token>& t, std::size_t i) {
  return i > 0 ? &t[i - 1] : nullptr;
}

/// True when tokens[i] names a free function being called: the next token
/// is '(' and the name is not reached through a member access (`.` /
/// `->`) or a qualifier other than `std::` (so `sock.accept(...)`,
/// `tp::net::connect(...)`, and `obj->send(...)` never match, while
/// `accept(...)` and `std::fopen(...)` do).
bool free_or_std_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !t[i + 1].punct("(")) return false;
  const Token* p = prev(t, i);
  if (p == nullptr) return true;
  if (p->punct(".") || p->punct("->")) return false;
  if (p->punct("::"))
    return i >= 2 && t[i - 2].ident("std");
  return true;
}

/// Like free_or_std_call, but any qualifier (including `std::`)
/// disqualifies — for names like `bind`/`connect` that collide with real
/// std:: facilities.
bool bare_free_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !t[i + 1].punct("(")) return false;
  const Token* p = prev(t, i);
  if (p == nullptr) return true;
  return !(p->punct(".") || p->punct("->") || p->punct("::"));
}

/// True when tokens[i..] spell `std :: <name>` for some name in `names`;
/// the match is anchored at the `std` token.
bool std_qualified(const std::vector<Token>& t, std::size_t i,
                   const std::set<std::string_view>& names) {
  return t[i].ident("std") && i + 2 < t.size() && t[i + 1].punct("::") &&
         t[i + 2].kind == TokKind::kIdent && in_set(t[i + 2].text, names);
}

const std::set<std::string_view> kSyncNames = {
    "mutex",         "recursive_mutex",        "timed_mutex",
    "shared_mutex",  "thread",                 "jthread",
    "lock_guard",    "unique_lock",            "scoped_lock",
    "condition_variable", "condition_variable_any",
};

const std::set<std::string_view> kRandomCalls = {"rand", "srand", "time"};

const std::set<std::string_view> kStdioCalls = {
    "fopen", "freopen", "fdopen", "fwrite", "fread", "fclose"};

// `shutdown` is deliberately absent: too common as an ordinary verb.
const std::set<std::string_view> kSocketCalls = {
    "socket",  "bind",     "listen",   "accept",     "accept4",
    "connect", "send",     "recv",     "sendto",     "recvfrom",
    "sendmsg", "recvmsg",  "setsockopt", "getsockopt", "getsockname"};

/// raw-sync with alias tracking: both the qualified spelling
/// (`std::mutex`) and any later *bare* use of a name pulled in with
/// `using std::mutex;` or `using X = std::thread;` are violations — the
/// using-declaration launders the spelling, not the primitive.
void check_raw_sync(const std::string& rel, const std::vector<Token>& t,
                    std::vector<Diagnostic>& diags) {
  std::set<std::string> aliases;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std_qualified(t, i, kSyncNames)) {
      add(diags, rel, t[i].line, "raw-sync");
      // `using std::mutex;` makes the bare name usable from here on.
      const Token* p = prev(t, i);
      if (p != nullptr && p->ident("using")) aliases.insert(t[i + 2].text);
      // `using Mtx = std::mutex;` aliases an arbitrary identifier.
      if (i >= 3 && t[i - 1].punct("=") &&
          t[i - 2].kind == TokKind::kIdent && t[i - 3].ident("using"))
        aliases.insert(t[i - 2].text);
      i += 2;
      continue;
    }
    // A bare use of a tracked alias (not itself qualified or member-
    // accessed) is the false negative the tokenizer exists to catch.
    if (t[i].kind == TokKind::kIdent && aliases.count(t[i].text) != 0) {
      const Token* p = prev(t, i);
      if (p == nullptr ||
          !(p->punct("::") || p->punct(".") || p->punct("->")))
        add(diags, rel, t[i].line, "raw-sync");
    }
  }
}

void check_raw_random(const std::string& rel, const std::vector<Token>& t,
                      std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std_qualified(t, i, {"random_device"})) {
      add(diags, rel, t[i].line, "raw-random");
      i += 2;
      continue;
    }
    if (t[i].kind == TokKind::kIdent && in_set(t[i].text, kRandomCalls) &&
        free_or_std_call(t, i))
      add(diags, rel, t[i].line, "raw-random");
  }
}

void check_cout(const std::string& rel, const std::vector<Token>& t,
                std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i)
    if (std_qualified(t, i, {"cout"}))
      add(diags, rel, t[i].line, "cout-in-lib");
}

void check_bare_assert(const std::string& rel, const std::vector<Token>& t,
                       std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kDirective && t[i].text == "include" &&
        i + 1 < t.size() && t[i + 1].is(TokKind::kHeaderName, "<cassert>"))
      add(diags, rel, t[i].line, "bare-assert");
    if (t[i].ident("assert") && free_or_std_call(t, i))
      add(diags, rel, t[i].line, "bare-assert");
  }
}

void check_fprintf(const std::string& rel, const std::vector<Token>& t,
                   std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i)
    if ((t[i].ident("printf") || t[i].ident("fprintf")) &&
        free_or_std_call(t, i))
      add(diags, rel, t[i].line, "no-fprintf");
}

void check_raw_timing(const std::string& rel, const std::vector<Token>& t,
                      std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    // std::chrono::system_clock (anchored at `std`), or a bare
    // system_clock pulled in by a using-directive.
    if (t[i].ident("system_clock")) {
      const Token* p = prev(t, i);
      const bool qualified = p != nullptr && p->punct("::");
      if (!qualified || (i >= 2 && t[i - 2].ident("chrono")))
        add(diags, rel, qualified && i >= 4 ? t[i - 4].line : t[i].line,
            "raw-timing");
      continue;
    }
    if ((t[i].ident("clock") || t[i].ident("gettimeofday")) &&
        free_or_std_call(t, i))
      add(diags, rel, t[i].line, "raw-timing");
  }
}

void check_raw_io(const std::string& rel, const std::vector<Token>& t,
                  std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].ident("FILE") && i + 1 < t.size() && t[i + 1].punct("*")) {
      const Token* p = prev(t, i);
      if (p == nullptr || !(p->punct(".") || p->punct("->")))
        add(diags, rel, t[i].line, "raw-io");
    }
    if (t[i].kind == TokKind::kIdent && in_set(t[i].text, kStdioCalls) &&
        free_or_std_call(t, i))
      add(diags, rel, t[i].line, "raw-io");
  }
}

void check_raw_socket(const std::string& rel, const std::vector<Token>& t,
                      std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i)
    if (t[i].kind == TokKind::kIdent && in_set(t[i].text, kSocketCalls) &&
        bare_free_call(t, i))
      add(diags, rel, t[i].line, "raw-socket");
}

void check_iostream_header(const std::string& rel,
                           const std::vector<Token>& t,
                           std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i)
    if (t[i].kind == TokKind::kDirective && t[i].text == "include" &&
        t[i + 1].is(TokKind::kHeaderName, "<iostream>"))
      add(diags, rel, t[i].line, "iostream-in-header");
}

/// require-message: every TP_REQUIRE( / TP_ASSERT( invocation must carry
/// at least two top-level arguments and the last must not be the empty
/// string literal.  Walks the bracket nesting over tokens, so multi-line
/// calls and commas inside nested calls are handled; the macros' own
/// #define lines are skipped via the tokens' pp flag.
void check_require_message(const std::string& rel,
                           const std::vector<Token>& t,
                           std::vector<Diagnostic>& diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!(t[i].ident("TP_REQUIRE") || t[i].ident("TP_ASSERT"))) continue;
    if (t[i].pp) continue;  // the macro's own definition
    if (i + 1 >= t.size() || !t[i + 1].punct("(")) continue;
    std::size_t j = i + 2;
    int depth = 1;
    int top_level_commas = 0;
    std::size_t last_arg_begin = j;
    while (j < t.size() && depth > 0) {
      const std::string& s = t[j].text;
      if (t[j].kind == TokKind::kPunct) {
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (s == "," && depth == 1) {
          ++top_level_commas;
          last_arg_begin = j + 1;
        }
      }
      ++j;
    }
    // j is one past the closing ')'; the last argument is
    // [last_arg_begin, j - 1).
    const bool empty_arg = last_arg_begin >= j - 1;
    const bool empty_string =
        !empty_arg && j - 1 - last_arg_begin == 1 &&
        t[last_arg_begin].is(TokKind::kString, "\"\"");
    if (top_level_commas == 0 || empty_arg || empty_string)
      add(diags, rel, t[i].line, "require-message");
  }
}

}  // namespace

void run_token_rules(const std::string& rel, const std::vector<Token>& toks,
                     std::vector<Diagnostic>& diags) {
  if (in_lib_or_tool(rel) && !in_util(rel)) {
    check_raw_sync(rel, toks, diags);
    check_raw_random(rel, toks, diags);
  }
  if (in_src(rel)) {
    check_cout(rel, toks, diags);
    check_bare_assert(rel, toks, diags);
    check_fprintf(rel, toks, diags);
    check_raw_timing(rel, toks, diags);
  }
  if (in_src(rel) && !in_util(rel)) check_raw_io(rel, toks, diags);
  if (in_src(rel) && !in_net(rel)) check_raw_socket(rel, toks, diags);
  if (in_src(rel) && is_header(rel)) check_iostream_header(rel, toks, diags);
  if (in_lib_or_tool(rel)) check_require_message(rel, toks, diags);
}

}  // namespace tp::lint
