// The house token rules (raw-sync, raw-random, cout-in-lib, ...), ported
// from the original regex-over-scrubbed-text checkers to token-sequence
// matchers.  Matching tokens instead of text removes a class of false
// negatives the regexes could not express — e.g. `using std::mutex;`
// followed by a bare `mutex m;` now trips raw-sync — while comments,
// string literals, and line splices can no longer confuse a rule at all
// (the tokenizer already removed them).

#pragma once

#include <string>
#include <vector>

#include "src/lint/diagnostics.h"
#include "src/lint/token.h"

namespace tp::lint {

/// Runs every path-applicable token rule over one file's token stream and
/// appends the diagnostics.  `rel` is the root-relative path that decides
/// rule applicability (see paths.h).
void run_token_rules(const std::string& rel, const std::vector<Token>& toks,
                     std::vector<Diagnostic>& diags);

}  // namespace tp::lint
