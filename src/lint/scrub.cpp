#include "src/lint/scrub.h"

#include <algorithm>
#include <cctype>

namespace tp::lint {
namespace detail {

namespace {

/// True when text[i] is a backslash that splices this physical line to
/// the next one (optionally through a '\r' before the '\n').
bool is_line_splice(const std::string& text, std::size_t i) {
  if (text[i] != '\\') return false;
  std::size_t j = i + 1;
  if (j < text.size() && text[j] == '\r') ++j;
  return j < text.size() && text[j] == '\n';
}

}  // namespace

std::size_t skip_line_comment(const std::string& text, std::size_t i) {
  const std::size_t n = text.size();
  while (i < n && text[i] != '\n') {
    // A backslash-newline continues the comment onto the next physical
    // line: the continuation is still comment text, not code.
    if (is_line_splice(text, i)) {
      i += text[i + 1] == '\r' ? std::size_t{3} : std::size_t{2};
      continue;
    }
    ++i;
  }
  return i;  // the '\n' itself (or EOF) is not part of the comment
}

std::size_t skip_block_comment(const std::string& text, std::size_t i) {
  const std::size_t n = text.size();
  i += 2;  // past "/*"
  while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
  // Unterminated at EOF: the comment swallows the rest of the text.
  return i + 1 < n ? i + 2 : n;
}

std::size_t scan_string_literal(const std::string& text, std::size_t i) {
  const std::size_t n = text.size();
  ++i;  // past the opening quote
  while (i < n && text[i] != '"' && text[i] != '\n') {
    if (text[i] == '\\' && i + 1 < n) ++i;
    ++i;
  }
  return i < n && text[i] == '"' ? i + 1 : i;
}

std::size_t scan_char_literal(const std::string& text, std::size_t i) {
  const std::size_t n = text.size();
  ++i;  // past the opening quote
  while (i < n && text[i] != '\'' && text[i] != '\n') {
    if (text[i] == '\\' && i + 1 < n) ++i;
    ++i;
  }
  return i < n && text[i] == '\'' ? i + 1 : i;
}

std::size_t scan_raw_string(const std::string& text, std::size_t i) {
  const std::size_t n = text.size();
  std::size_t d = i + 2;  // past R"
  while (d < n && text[d] != '(' && text[d] != '"' && text[d] != '\n') ++d;
  if (d >= n || text[d] != '(') return i;  // not a raw string after all
  std::string close;
  close.reserve(d - (i + 2) + 2);
  close.push_back(')');
  close.append(text, i + 2, d - (i + 2));
  close.push_back('"');
  const std::size_t end = text.find(close, d + 1);
  return end == std::string::npos ? n : end + close.size();
}

}  // namespace detail

std::string scrub(const std::string& text) {
  std::string out(text.size(), ' ');
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') out[i] = '\n';

  std::size_t i = 0;
  const std::size_t n = text.size();

  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      i = detail::skip_line_comment(text, i);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i = detail::skip_block_comment(text, i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      const std::size_t stop = detail::scan_raw_string(text, i);
      if (stop != i) {
        // Empty raw string: the closing ")delim"" follows the '(' at
        // once, i.e. stop == open + delim_len + 3.
        const std::size_t open = text.find('(', i + 2);
        const bool empty = open != std::string::npos &&
                           stop == open + (open - i - 2) + 3;
        out[i] = '"';
        if (!empty && i + 1 < stop) out[i + 1] = 'S';
        if (stop > i) out[stop - 1] = '"';
        i = stop;
        continue;
      }
    }
    // Ordinary string literal.
    if (c == '"') {
      const std::size_t start = i;
      const std::size_t stop = detail::scan_string_literal(text, i);
      const bool empty = stop == start + 2;
      out[start] = '"';
      if (!empty && start + 1 < stop) out[start + 1] = 'S';
      if (stop > start + 1) out[stop - 1] = '"';
      i = stop;
      continue;
    }
    // Char literal (only when it cannot be a digit separator like 1'000).
    if (c == '\'' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      const std::size_t start = i;
      const std::size_t stop = detail::scan_char_literal(text, i);
      out[start] = '\'';
      if (stop > start + 1) out[stop - 1] = '\'';
      i = stop;
      continue;
    }
    out[i] = text[i];
    ++i;
  }
  return out;
}

int line_of(const std::string& text, std::size_t pos) {
  pos = std::min(pos, text.size());
  return 1 + static_cast<int>(std::count(
                 text.begin(),
                 text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

}  // namespace tp::lint
