// Comment/string scrubbing for the lint analysis layer.
//
// scrub() is the historical text-level view (comments blanked, string
// literals collapsed) that the original regex rules ran over; it is kept
// as a public utility because it preserves length and line structure,
// which makes it the right input for any position-based text scan.  The
// lexeme scanners underneath it are shared with the tokenizer
// (src/lint/token.h), so comment/continuation/raw-string handling is
// implemented exactly once.

#pragma once

#include <cstddef>
#include <string>

namespace tp::lint {

/// Returns a copy of `text` with the same length and line structure where
///   * // and /* */ comments are replaced by spaces (newlines kept) —
///     including backslash-continued line comments, whose continuation
///     lines are comment text, not code;
///   * "literal" becomes "S" padded with spaces (or "" if it was empty);
///   * 'c' char literals become ' ' padded;
///   * R"delim(...)delim" raw strings collapse like ordinary literals.
/// An unterminated block comment or raw string at EOF blanks to the end
/// of the text instead of reading past it.
std::string scrub(const std::string& text);

/// 1-based line number of byte offset `pos` in `text`.  `pos` is clamped
/// to the text size, so positions derived from a same-length scrubbed
/// view (or npos from a failed search) never walk off the end.
int line_of(const std::string& text, std::size_t pos);

namespace detail {

// Each scanner takes the offset of the construct's first character and
// returns the offset one past its end (clamped to text.size() for
// unterminated constructs).  Shared by scrub() and tokenize().

/// `i` points at the first '/' of "//".  Consumes through the end of the
/// logical line, including backslash-continued physical lines (a `\`
/// immediately before the newline, optionally with a '\r').
std::size_t skip_line_comment(const std::string& text, std::size_t i);

/// `i` points at the first '/' of "/*".  Consumes through "*/", or to
/// EOF when the comment is unterminated.
std::size_t skip_block_comment(const std::string& text, std::size_t i);

/// `i` points at the opening '"'.  Consumes through the closing quote,
/// honoring backslash escapes; an unterminated literal stops at the end
/// of the line (mirroring how compilers recover).
std::size_t scan_string_literal(const std::string& text, std::size_t i);

/// `i` points at the opening '\''.  Same recovery as string literals.
std::size_t scan_char_literal(const std::string& text, std::size_t i);

/// `i` points at the 'R' of R"delim(.  Returns the end offset, or `i`
/// itself when the text is not actually a raw-string introducer.
std::size_t scan_raw_string(const std::string& text, std::size_t i);

}  // namespace detail

}  // namespace tp::lint
