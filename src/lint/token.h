// A small C++ tokenizer for the lint analysis layer.
//
// Not a compiler front end: no keywords, no semantic analysis, no macro
// expansion.  It produces exactly the token stream the lint passes need
// to match *sequences* instead of regexes — identifiers, punctuators
// (multi-character ones like `::` and `->` are single tokens), string /
// char / raw-string literals, numbers, and preprocessor structure
// (directive tokens plus the header name after `#include`).  Comments
// and backslash-newline splices are whitespace; an `std  ::  mutex`
// split across lines or interleaved with comments is the same three
// tokens as `std::mutex`.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tp::lint {

enum class TokKind {
  kIdent,       ///< identifiers and keywords ([A-Za-z_][A-Za-z0-9_]*)
  kNumber,      ///< pp-number (handles 0x1F, 1'000, 1.5e-3)
  kString,      ///< string literal, text includes the quotes; raw strings too
  kChar,        ///< character literal, text includes the quotes
  kPunct,       ///< operator / punctuator; multi-char ones are one token
  kDirective,   ///< preprocessor directive name (text "include", "define", ...)
  kHeaderName,  ///< the <...> or "..." after #include, delimiters included
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;       ///< the token spelling
  std::size_t pos = 0;    ///< byte offset in the original text
  int line = 0;           ///< 1-based source line
  bool pp = false;        ///< true when part of a preprocessor directive line

  bool is(TokKind k, const char* t) const { return kind == k && text == t; }
  bool ident(const char* t) const { return is(TokKind::kIdent, t); }
  bool punct(const char* t) const { return is(TokKind::kPunct, t); }
};

/// Tokenizes `text` (raw file contents — comments are handled here, no
/// pre-scrubbing needed).  Unterminated constructs never read past the
/// end; the partial token is emitted with what was there.
std::vector<Token> tokenize(const std::string& text);

}  // namespace tp::lint
