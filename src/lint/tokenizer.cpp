#include "src/lint/token.h"

#include <cctype>

#include "src/lint/scrub.h"

namespace tp::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first within a leading character.
// Only sequences C++ actually has; everything else falls back to a
// single-character token.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  ".*", "##",
};

}  // namespace

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;   // only whitespace seen since the last '\n'
  bool in_pp = false;          // inside a preprocessor directive line
  bool expect_header = false;  // the next token is an #include header name

  auto push = [&](TokKind kind, std::size_t begin, std::size_t end) {
    out.push_back(Token{kind, text.substr(begin, end - begin), begin, line,
                        in_pp});
  };

  while (i < n) {
    const char c = text[i];

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      in_pp = false;
      expect_header = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Backslash-newline splices the line: whitespace, but the logical
    // line (and any preprocessor directive on it) continues.
    if (c == '\\' && i + 1 < n &&
        (text[i + 1] == '\n' ||
         (text[i + 1] == '\r' && i + 2 < n && text[i + 2] == '\n'))) {
      i += text[i + 1] == '\r' ? std::size_t{3} : std::size_t{2};
      ++line;
      continue;
    }
    // Comments are whitespace.  A line comment may itself be
    // backslash-continued; skip_line_comment consumes the continuation
    // lines, so count the newlines it swallowed.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t end = detail::skip_line_comment(text, i);
      for (std::size_t j = i; j < end; ++j)
        if (text[j] == '\n') ++line;
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t end = detail::skip_block_comment(text, i);
      for (std::size_t j = i; j < end; ++j)
        if (text[j] == '\n') ++line;
      i = end;
      continue;
    }

    // Preprocessor directive: '#' first on its line.
    if (c == '#' && at_line_start) {
      at_line_start = false;
      in_pp = true;
      std::size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      std::size_t name_end = j;
      while (name_end < n && ident_char(text[name_end])) ++name_end;
      // The directive token is anchored at the '#' so diagnostics point
      // at the start of the line.
      out.push_back(Token{TokKind::kDirective,
                          text.substr(j, name_end - j), i, line, true});
      expect_header = text.compare(j, name_end - j, "include") == 0;
      i = name_end;
      continue;
    }
    at_line_start = false;

    // Header name after #include: <...> or "...".
    if (expect_header && (c == '<' || c == '"')) {
      expect_header = false;
      const char close = c == '<' ? '>' : '"';
      std::size_t j = i + 1;
      while (j < n && text[j] != close && text[j] != '\n') ++j;
      const std::size_t end = j < n && text[j] == close ? j + 1 : j;
      push(TokKind::kHeaderName, i, end);
      i = end;
      continue;
    }
    expect_header = false;

    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      const std::size_t end = detail::scan_raw_string(text, i);
      if (end != i) {
        push(TokKind::kString, i, end);
        for (std::size_t j = i; j < end; ++j)
          if (text[j] == '\n') ++line;
        i = end;
        continue;
      }
    }
    if (c == '"') {
      const std::size_t end = detail::scan_string_literal(text, i);
      push(TokKind::kString, i, end);
      i = end;
      continue;
    }
    // Char literal — a '\'' after an identifier/number character is a
    // digit separator (1'000), handled by the number scanner instead.
    if (c == '\'') {
      const std::size_t end = detail::scan_char_literal(text, i);
      push(TokKind::kChar, i, end);
      i = end;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      push(TokKind::kIdent, i, j);
      i = j;
      continue;
    }

    // pp-number: digits, identifier chars, digit separators, '.', and
    // sign characters directly after an exponent letter.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = text[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') &&
            (text[j - 1] == 'e' || text[j - 1] == 'E' ||
             text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, i, j);
      i = j;
      continue;
    }

    // Punctuator: longest match wins.
    std::size_t len = 1;
    for (const char* p : kPuncts) {
      const std::size_t pl = p[2] == '\0' ? 2 : 3;
      if (text.compare(i, pl, p) == 0) {
        len = pl;
        break;
      }
    }
    push(TokKind::kPunct, i, i + len);
    i += len;
  }
  return out;
}

}  // namespace tp::lint
