#include "src/load/complete_exchange.h"

#include <memory>

#include "src/obs/obs.h"
#include "src/routing/odr.h"
#include "src/routing/table_router.h"
#include "src/routing/udr.h"
#include "src/util/combinatorics.h"
#include "src/util/parallel.h"
#include "src/util/error.h"

namespace tp {

using routing_detail::allowed_dirs;
using routing_detail::steps_in_dir;

namespace {

/// Minimum source-destination pairs per worker before the parallel load
/// analyzers fan out.  One pair costs roughly d segment walks (~hundreds
/// of ns); a spawned-and-joined thread costs tens of µs, so each worker
/// needs thousands of pairs to amortize it.  4096 puts the T8^3 linear
/// placement (64·63 = 4032 pairs) on the serial path — the BENCH_4
/// odr_loads_parallel4 regression — while T16^3 (4096·4095 pairs) still
/// fans out fully.
constexpr i64 kMinPairsPerWorker = 4096;

}  // namespace

LoadMap reference_loads(const Torus& torus, const Placement& p,
                        const Router& router) {
  p.check_torus(torus);
  LoadMap loads(torus);
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const auto paths = router.paths(torus, src, dst);
      TP_ASSERT(!paths.empty(), "router produced no path for a pair");
      const double w = 1.0 / static_cast<double>(paths.size());
      for (const Path& path : paths)
        for (EdgeId e : path.edges) loads.add(e, w);
    }
  }
  return loads;
}

namespace {

/// Adds `weight` to every link of the correction segment of dimension
/// `dim` starting at `node`, moving toward coordinate `to` in direction
/// `dir`.  Returns the node where the segment ends.
NodeId add_segment(const Torus& torus, LoadMap& loads, NodeId node, i32 dim,
                   i32 to, Dir dir, double weight) {
  const i32 from = torus.coord_of(node, dim);
  const i64 steps = steps_in_dir(torus, dim, from, to, dir);
  NodeId cur = node;
  for (i64 s = 0; s < steps; ++s) {
    loads.add(torus.edge_id(cur, dim, dir), weight);
    cur = torus.neighbor(cur, dim, dir);
  }
  return cur;
}

}  // namespace

LoadMap odr_loads(const Torus& torus, const Placement& p, TieBreak tie) {
  SmallVec<i32> identity;
  for (i32 dim = 0; dim < torus.dims(); ++dim) identity.push_back(dim);
  return odr_loads_ordered(torus, p, identity, tie);
}

namespace {

/// Accumulates ODR contributions of sources p.nodes()[src_lo..src_hi).
void accumulate_odr(const Torus& torus, const Placement& p,
                    const SmallVec<i32>& order, TieBreak tie,
                    LoadMap& loads, i64 src_lo, i64 src_hi);

/// Accumulates UDR contributions of sources p.nodes()[src_lo..src_hi).
void accumulate_udr(const Torus& torus, const Placement& p, TieBreak tie,
                    LoadMap& loads, i64 src_lo, i64 src_hi);

}  // namespace

LoadMap odr_loads_ordered(const Torus& torus, const Placement& p,
                          const SmallVec<i32>& order, TieBreak tie) {
  TP_OBS_SCOPE("load.odr");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  OdrRouter(order, tie).correction_order(torus);  // validate permutation
  LoadMap loads(torus);
  accumulate_odr(torus, p, order, tie, loads, 0, p.size());
  return loads;
}

LoadMap odr_loads_parallel(const Torus& torus, const Placement& p,
                           i32 threads, TieBreak tie) {
  p.check_torus(torus);
  SmallVec<i32> order;
  for (i32 dim = 0; dim < torus.dims(); ++dim) order.push_back(dim);
  // Work-size cutover (see util/parallel.h): small tori run serial —
  // below ~kMinPairsPerWorker pairs per worker, spawn/join plus the
  // per-edge reduction costs more than the parallelism saves.  The serial
  // path computes the identical map (same order, same tie break), so the
  // cutover is invisible to callers.
  if (effective_workers(p.size() * (p.size() - 1), threads,
                        kMinPairsPerWorker) == 1)
    return odr_loads_ordered(torus, p, order, tie);
  TP_OBS_SCOPE("load.odr");
  std::vector<LoadMap> partial(static_cast<std::size_t>(threads),
                               LoadMap(torus));
  // Registry counters are not atomic (obs/registry.h): workers tally into
  // their own slot and the total is recorded once after the join, so
  // load.pairs_evaluated is exact for any thread count.
  std::vector<i64> pairs(static_cast<std::size_t>(threads), 0);
  parallel_for_blocks(p.size(), threads, [&](i32 worker, i64 lo, i64 hi) {
    accumulate_odr(torus, p, order, tie,
                   partial[static_cast<std::size_t>(worker)], lo, hi);
    pairs[static_cast<std::size_t>(worker)] += (hi - lo) * (p.size() - 1);
  });
  i64 total_pairs = 0;
  for (i64 n : pairs) total_pairs += n;
  TP_OBS_COUNT("load.pairs_evaluated", total_pairs);
  LoadMap loads(torus);
  for (const LoadMap& part : partial)
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      loads.add(e, part[e]);
  return loads;
}

LoadMap udr_loads_parallel(const Torus& torus, const Placement& p,
                           i32 threads, TieBreak tie) {
  p.check_torus(torus);
  // Same work-size cutover as odr_loads_parallel; udr_loads is the exact
  // subset-weight computation, so the serial path is bit-identical (the
  // parallel reduce can differ by ~1 ulp, never the other way).
  if (effective_workers(p.size() * (p.size() - 1), threads,
                        kMinPairsPerWorker) == 1)
    return udr_loads(torus, p, tie);
  TP_OBS_SCOPE("load.udr");
  std::vector<LoadMap> partial(static_cast<std::size_t>(threads),
                               LoadMap(torus));
  // Same per-worker tally + post-join reduce as odr_loads_parallel.
  std::vector<i64> pairs(static_cast<std::size_t>(threads), 0);
  parallel_for_blocks(p.size(), threads, [&](i32 worker, i64 lo, i64 hi) {
    accumulate_udr(torus, p, tie, partial[static_cast<std::size_t>(worker)],
                   lo, hi);
    pairs[static_cast<std::size_t>(worker)] += (hi - lo) * (p.size() - 1);
  });
  i64 total_pairs = 0;
  for (i64 n : pairs) total_pairs += n;
  TP_OBS_COUNT("load.pairs_evaluated", total_pairs);
  LoadMap loads(torus);
  for (const LoadMap& part : partial)
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      loads.add(e, part[e]);
  return loads;
}

namespace {

/// One weighted correction segment produced by the route pass: walk from
/// `node` along `dim` in `dir` until coordinate `to`, adding `weight` to
/// every link.
struct OdrSegment {
  NodeId node;
  i32 dim;
  i32 to;
  Dir dir;
  double weight;
};

void accumulate_odr(const Torus& torus, const Placement& p,
                    const SmallVec<i32>& order, TieBreak tie,
                    LoadMap& loads, i64 src_lo, i64 src_hi) {
  // Two passes per source, so route enumeration and the link-load walk
  // profile as separate phases (odr.route / odr.walk) at a grain coarse
  // enough that the attribution does not distort what it measures.  The
  // segment list preserves the fused loop's add order exactly (pairs in
  // placement order, dims in correction order, directions in tie order),
  // so the accumulated map is bit-identical to the previous single-pass
  // form.
  std::vector<OdrSegment> segs;
  segs.reserve(static_cast<std::size_t>(p.size()) * order.size());
  for (i64 si = src_lo; si < src_hi; ++si) {
    const NodeId src = p.nodes()[static_cast<std::size_t>(si)];
    segs.clear();
    {
      TP_PROF_PHASE("odr.route");
      for (NodeId dst : p.nodes()) {
        if (src == dst) continue;
        // Dimensions are corrected in order; the node state entering each
        // dimension is deterministic (earlier dims at dst, later at src)
        // regardless of any tie direction taken earlier, so each
        // dimension's segment(s) can be enumerated without walking links.
        Coord c = torus.coord(src);
        NodeId node = src;
        for (std::size_t idx = 0; idx < order.size(); ++idx) {
          const i32 dim = order[idx];
          const i32 a = c[static_cast<std::size_t>(dim)];
          const i32 b = torus.coord_of(dst, dim);
          const auto dirs = allowed_dirs(torus, dim, a, b, tie);
          if (dirs.empty()) continue;
          const double w = 1.0 / static_cast<double>(dirs.size());
          for (std::size_t i = 0; i < dirs.size(); ++i) {
            const Dir dir = dirs[i] > 0 ? Dir::Pos : Dir::Neg;
            segs.push_back(OdrSegment{node, dim, b, dir, w});
          }
          c[static_cast<std::size_t>(dim)] = b;
          node = torus.node_id(c);
        }
        TP_ASSERT(node == dst, "ODR load walk did not reach destination");
      }
    }
    {
      TP_PROF_PHASE("odr.walk");
      for (const OdrSegment& s : segs)
        add_segment(torus, loads, s.node, s.dim, s.to, s.dir, s.weight);
    }
  }
}

void accumulate_udr(const Torus& torus, const Placement& p, TieBreak tie,
                    LoadMap& loads, i64 src_lo, i64 src_hi) {
  // Precompute m!(s-1-m)!/s! for all m < s <= kMaxDims.
  double order_weight[kMaxDims + 1][kMaxDims] = {};
  for (std::size_t s = 1; s <= kMaxDims; ++s)
    for (std::size_t m = 0; m < s; ++m)
      order_weight[s][m] =
          static_cast<double>(factorial(static_cast<i64>(m)) *
                              factorial(static_cast<i64>(s - 1 - m))) /
          static_cast<double>(factorial(static_cast<i64>(s)));

  for (i64 si = src_lo; si < src_hi; ++si) {
    const NodeId src = p.nodes()[static_cast<std::size_t>(si)];
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const SmallVec<i32> diff = UdrRouter::differing_dims(torus, src, dst);
      const std::size_t s = diff.size();
      // For each dimension j being corrected, and each subset S of the
      // other differing dimensions corrected before j, the walk enters the
      // j-segment at the node whose S-dims sit at dst and the rest at src.
      // That state is independent of the directions taken in S, so the
      // direction choice only matters for the j-segment itself.
      for (std::size_t ji = 0; ji < s; ++ji) {
        const i32 j = diff[ji];
        const i32 a = torus.coord_of(src, j);
        const i32 b = torus.coord_of(dst, j);
        const auto dirs = allowed_dirs(torus, j, a, b, tie);
        TP_ASSERT(!dirs.empty(), "differing dim with no direction");
        const double dir_w = 1.0 / static_cast<double>(dirs.size());
        // Other differing dims, as a compact array for subset masking.
        SmallVec<i32> others;
        for (std::size_t i = 0; i < s; ++i)
          if (i != ji) others.push_back(diff[i]);
        const int n_others = static_cast<int>(others.size());
        for_each_subset(n_others, [&](std::uint32_t mask) {
          const double w =
              order_weight[s][static_cast<std::size_t>(popcount32(mask))] *
              dir_w;
          // Build the entry node: dims in mask already corrected to dst.
          NodeId node = src;
          for (int oi = 0; oi < n_others; ++oi) {
            if (!(mask & (1u << oi))) continue;
            const i32 od = others[static_cast<std::size_t>(oi)];
            const i64 stride_move =
                static_cast<i64>(torus.coord_of(dst, od)) -
                torus.coord_of(node, od);
            // Move coordinate od of node to dst's value.
            node = torus.node_id([&] {
              Coord c = torus.coord(node);
              c[static_cast<std::size_t>(od)] = torus.coord_of(dst, od);
              return c;
            }());
            (void)stride_move;
          }
          for (std::size_t di = 0; di < dirs.size(); ++di) {
            const Dir dir = dirs[di] > 0 ? Dir::Pos : Dir::Neg;
            add_segment(torus, loads, node, j, b, dir, w);
          }
        });
      }
    }
  }
}

}  // namespace

LoadMap udr_loads(const Torus& torus, const Placement& p, TieBreak tie) {
  TP_OBS_SCOPE("load.udr");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  LoadMap loads(torus);
  accumulate_udr(torus, p, tie, loads, 0, p.size());
  return loads;
}

LoadMap odr_loads_table(const Torus& torus, const Placement& p,
                        TieBreak tie) {
  TP_OBS_SCOPE("load.odr_table");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  LoadMap loads(torus);
  const OdrRouter router(tie);
  std::unique_ptr<RoutingTable> table;
  {
    TP_PROF_PHASE("table.compile");
    table = std::make_unique<RoutingTable>(torus, p, router);
  }
  TP_PROF_PHASE("table.walk");
  // Per-pair weighted propagation over the next-hop DAG.  Every hop is
  // Lee-minimal, so a breadth level never revisits a node: processing
  // level by level is a topological order and reconvergent weights merge
  // before a node is expanded.
  std::vector<double> weight(static_cast<std::size_t>(torus.num_nodes()),
                             0.0);
  std::vector<NodeId> frontier, next;
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      weight[static_cast<std::size_t>(src)] = 1.0;
      frontier.assign(1, src);
      while (!frontier.empty()) {
        next.clear();
        for (const NodeId u : frontier) {
          const double w = weight[static_cast<std::size_t>(u)];
          weight[static_cast<std::size_t>(u)] = 0.0;
          const std::vector<EdgeId>& hops = table->next_hops(u, dst);
          TP_ASSERT(!hops.empty(), "routing table dead-ends mid-walk");
          const double share = w / static_cast<double>(hops.size());
          for (const EdgeId e : hops) {
            loads.add(e, share);
            const NodeId v = torus.link(e).head;
            if (v == dst) continue;
            if (weight[static_cast<std::size_t>(v)] == 0.0)
              next.push_back(v);
            weight[static_cast<std::size_t>(v)] += share;
          }
        }
        frontier.swap(next);
      }
    }
  }
  return loads;
}

LoadMap udr_loads_enumerated(const Torus& torus, const Placement& p,
                             TieBreak tie) {
  p.check_torus(torus);
  UdrRouter router(tie);
  return reference_loads(torus, p, router);
}

LoadMap adaptive_loads(const Torus& torus, const Placement& p) {
  TP_OBS_SCOPE("load.adaptive");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  LoadMap loads(torus);
  const std::size_t d = static_cast<std::size_t>(torus.dims());

  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      // Per-dimension arc lengths and tie flags.
      SmallVec<i64> len(d, 0);
      SmallVec<i32> tie_dim;
      i64 total = 0;
      for (std::size_t i = 0; i < d; ++i) {
        const i32 dim = static_cast<i32>(i);
        len[i] = torus.cyclic_dist(dim, torus.coord_of(src, dim),
                                   torus.coord_of(dst, dim));
        total += len[i];
        if (torus.shortest_way(dim, torus.coord_of(src, dim),
                               torus.coord_of(dst, dim)) == Way::Tie)
          tie_dim.push_back(dim);
      }
      // Base multinomial: number of interleavings for one direction
      // commitment (identical for every commitment since arc lengths match).
      double m_base = 1.0;
      {
        i64 remaining = total;
        for (std::size_t i = 0; i < d; ++i) {
          m_base *= static_cast<double>(binomial(remaining, len[i]));
          remaining -= len[i];
        }
      }
      const double commit_w =
          1.0 / static_cast<double>(powi(2, static_cast<i64>(tie_dim.size())));

      // Enumerate direction commitments for tie dims.
      for_each_subset(static_cast<int>(tie_dim.size()), [&](std::uint32_t mask) {
        SmallVec<i32> dir(d, 0);
        for (std::size_t i = 0; i < d; ++i) {
          if (len[i] == 0) continue;
          const i32 dim = static_cast<i32>(i);
          const Way way = torus.shortest_way(dim, torus.coord_of(src, dim),
                                             torus.coord_of(dst, dim));
          dir[i] = (way == Way::Neg) ? -1 : +1;
        }
        for (std::size_t t = 0; t < tie_dim.size(); ++t)
          if (mask & (1u << t))
            dir[static_cast<std::size_t>(tie_dim[t])] = -1;

        // Walk the corridor: positions 0..len[i] along each dimension.
        Radices pos_radix(d, 1);
        for (std::size_t i = 0; i < d; ++i)
          pos_radix[i] = static_cast<i32>(len[i] + 1);
        for (NdRange r(pos_radix); !r.done(); r.next()) {
          const Coord& pos = r.coord();
          // Node at this corridor position, and path counts to/from it.
          Coord c = torus.coord(src);
          double m_to = 1.0, m_from = 1.0;
          i64 steps_to = 0, steps_from = 0;
          for (std::size_t i = 0; i < d; ++i) {
            steps_to += pos[i];
            steps_from += len[i] - pos[i];
          }
          {
            i64 rem = steps_to;
            for (std::size_t i = 0; i < d; ++i) {
              m_to *= static_cast<double>(binomial(rem, pos[i]));
              rem -= pos[i];
            }
            rem = steps_from;
            for (std::size_t i = 0; i < d; ++i) {
              m_from *= static_cast<double>(binomial(rem, len[i] - pos[i]));
              rem -= len[i] - pos[i];
            }
          }
          for (std::size_t i = 0; i < d; ++i) {
            const i64 k = torus.radix(static_cast<i32>(i));
            c[i] = static_cast<i32>(
                mod_norm(c[i] + dir[i] * static_cast<i64>(pos[i]), k));
          }
          const NodeId u = torus.node_id(c);
          // One outgoing corridor edge per dimension with remaining steps.
          for (std::size_t i = 0; i < d; ++i) {
            if (pos[i] == len[i] || len[i] == 0) continue;
            // Fraction of paths using edge u->u+dir_i: paths to u times
            // paths from the edge head to dst, over all paths.  The head's
            // remaining steps differ from u's only in dimension i.
            const double m_from_head =
                m_from * static_cast<double>(len[i] - pos[i]) /
                static_cast<double>(steps_from);
            const double frac = m_to * m_from_head / m_base;
            const Dir dd = dir[i] > 0 ? Dir::Pos : Dir::Neg;
            loads.add(torus.edge_id(u, static_cast<i32>(i), dd),
                      commit_w * frac);
          }
        }
      });
    }
  }
  return loads;
}

double expected_total_load(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  double sum = 0.0;
  for (NodeId a : p.nodes())
    for (NodeId b : p.nodes())
      if (a != b) sum += static_cast<double>(torus.lee_distance(a, b));
  return sum;
}

}  // namespace tp
