// Exact per-link loads under complete exchange (all-to-all personalized
// communication), Definition 4 of the paper:
//
//   E(l) = sum over ordered pairs p != q of |C_{p->l->q}| / |C_{p->q}|.
//
// `reference_loads` implements the definition literally through the Router
// interface (enumerate every path of every pair) — the oracle the fast
// paths are tested against.  The specialized functions compute identical
// numbers without enumerating path sets:
//
//   odr_loads      O(|P|^2 · d · k)          canonical segment walk
//   udr_loads      O(|P|^2 · s·2^s · k)      subset-weighted segment walk
//   adaptive_loads O(|P|^2 · corridor size)  multinomial path fractions
//
// udr_loads_enumerated keeps the s!-enumeration variant alive as a second
// independent implementation for cross-checking.

#pragma once

#include "src/load/load_map.h"
#include "src/placement/placement.h"
#include "src/routing/router.h"

namespace tp {

/// Literal Definition 4 via Router::paths().  Exact but slow; intended for
/// tests and tiny instances.
LoadMap reference_loads(const Torus& torus, const Placement& p,
                        const Router& router);

/// Loads under Ordered Dimensional Routing (Section 6).
LoadMap odr_loads(const Torus& torus, const Placement& p,
                  TieBreak tie = TieBreak::PositiveOnly);

/// Loads under ODR correcting dimensions in a custom order (a permutation
/// of 0..d-1).  odr_loads(t, p, tie) is the identity-order special case.
LoadMap odr_loads_ordered(const Torus& torus, const Placement& p,
                          const SmallVec<i32>& order,
                          TieBreak tie = TieBreak::PositiveOnly);

/// ODR loads via a precompiled RoutingTable (routing/table_router.h):
/// compiles the router's next-hop tables once, then propagates each
/// pair's unit of traffic hop by hop, splitting evenly across allowed
/// next hops.  Produces the same loads as odr_loads — ODR's next hop at
/// any node depends only on (node, destination), and the per-node even
/// split reproduces the per-dimension direction weights exactly (all
/// weights are dyadic, so the sums are exact in double) — while
/// profiling as table.compile / table.walk instead of odr.route /
/// odr.walk.  This is the `--router-table` path of the sweeps.
LoadMap odr_loads_table(const Torus& torus, const Placement& p,
                        TieBreak tie = TieBreak::PositiveOnly);

/// Loads under Unordered Dimensional Routing (Section 7), computed with
/// subset weights: correcting dimension j after the subset S of the other
/// differing dimensions happens in |S|!(s-1-|S|)!/s! of all orders.
LoadMap udr_loads(const Torus& torus, const Placement& p,
                  TieBreak tie = TieBreak::PositiveOnly);

/// Loads under UDR by explicit enumeration of all s! correction orders.
/// Same result as udr_loads; exists as an independent cross-check.
LoadMap udr_loads_enumerated(const Torus& torus, const Placement& p,
                             TieBreak tie = TieBreak::PositiveOnly);

/// Loads under fully adaptive minimal routing: each pair spreads one unit
/// of traffic over all its minimal paths uniformly.
LoadMap adaptive_loads(const Torus& torus, const Placement& p);

/// Multi-threaded ODR loads: partitions the source processors over
/// `threads` workers, each accumulating into a private map, then reduces.
/// Bit-identical to odr_loads (per-link sums commute over sources whose
/// contributions are integers or exact halves).
LoadMap odr_loads_parallel(const Torus& torus, const Placement& p,
                           i32 threads,
                           TieBreak tie = TieBreak::PositiveOnly);

/// Multi-threaded UDR loads.  Matches udr_loads up to reduction-order
/// rounding (~1 ulp: weights like 1/3 are not exactly representable).
LoadMap udr_loads_parallel(const Torus& torus, const Placement& p,
                           i32 threads,
                           TieBreak tie = TieBreak::PositiveOnly);

/// The value total_load() must equal for any minimal router: the sum of
/// Lee distances over all ordered processor pairs.
double expected_total_load(const Torus& torus, const Placement& p);

}  // namespace tp
