#include "src/load/exact_loads.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/util/combinatorics.h"
#include "src/util/error.h"

namespace tp {

using routing_detail::allowed_dirs;
using routing_detail::steps_in_dir;

Rational ExactLoadMap::max_load() const {
  Rational best;
  for (const Rational& v : loads_)
    if (v > best) best = v;
  return best;
}

Rational ExactLoadMap::total_load() const {
  Rational sum;
  for (const Rational& v : loads_) sum += v;
  return sum;
}

LoadMap ExactLoadMap::to_load_map(const Torus& torus) const {
  LoadMap map(torus);
  for (std::size_t i = 0; i < loads_.size(); ++i)
    map.add(static_cast<EdgeId>(i), loads_[i].to_double());
  return map;
}

namespace {

NodeId add_segment(const Torus& torus, ExactLoadMap& loads, NodeId node,
                   i32 dim, i32 to, Dir dir, const Rational& weight) {
  const i32 from = torus.coord_of(node, dim);
  const i64 steps = steps_in_dir(torus, dim, from, to, dir);
  NodeId cur = node;
  for (i64 s = 0; s < steps; ++s) {
    loads.add(torus.edge_id(cur, dim, dir), weight);
    cur = torus.neighbor(cur, dim, dir);
  }
  return cur;
}

}  // namespace

ExactLoadMap odr_loads_exact(const Torus& torus, const Placement& p,
                             TieBreak tie) {
  TP_OBS_SCOPE("load.exact_odr");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  ExactLoadMap loads(torus);
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      NodeId node = src;
      for (i32 dim = 0; dim < torus.dims(); ++dim) {
        const i32 a = torus.coord_of(node, dim);
        const i32 b = torus.coord_of(dst, dim);
        const auto dirs = allowed_dirs(torus, dim, a, b, tie);
        if (dirs.empty()) continue;
        const Rational w(1, static_cast<i64>(dirs.size()));
        NodeId next = node;
        for (std::size_t i = 0; i < dirs.size(); ++i) {
          const Dir dir = dirs[i] > 0 ? Dir::Pos : Dir::Neg;
          next = add_segment(torus, loads, node, dim, b, dir, w);
        }
        node = next;
      }
      TP_ASSERT(node == dst, "exact ODR walk did not reach destination");
    }
  }
  return loads;
}

ExactLoadMap udr_loads_exact(const Torus& torus, const Placement& p,
                             TieBreak tie) {
  TP_OBS_SCOPE("load.exact_udr");
  p.check_torus(torus);
  TP_OBS_COUNT("load.pairs_evaluated", p.size() * (p.size() - 1));
  ExactLoadMap loads(torus);
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const SmallVec<i32> diff = UdrRouter::differing_dims(torus, src, dst);
      const std::size_t s = diff.size();
      const i64 s_fact = factorial(static_cast<i64>(s));
      for (std::size_t ji = 0; ji < s; ++ji) {
        const i32 j = diff[ji];
        const i32 a = torus.coord_of(src, j);
        const i32 b = torus.coord_of(dst, j);
        const auto dirs = allowed_dirs(torus, j, a, b, tie);
        TP_ASSERT(!dirs.empty(), "differing dim with no direction");
        SmallVec<i32> others;
        for (std::size_t i = 0; i < s; ++i)
          if (i != ji) others.push_back(diff[i]);
        const int n_others = static_cast<int>(others.size());
        for_each_subset(n_others, [&](std::uint32_t mask) {
          const i64 m = popcount32(mask);
          const Rational w =
              Rational(factorial(m) * factorial(static_cast<i64>(s) - 1 - m),
                       s_fact) /
              Rational(static_cast<i64>(dirs.size()));
          NodeId node = src;
          for (int oi = 0; oi < n_others; ++oi) {
            if (!(mask & (1u << oi))) continue;
            const i32 od = others[static_cast<std::size_t>(oi)];
            Coord c = torus.coord(node);
            c[static_cast<std::size_t>(od)] = torus.coord_of(dst, od);
            node = torus.node_id(c);
          }
          for (std::size_t di = 0; di < dirs.size(); ++di) {
            const Dir dir = dirs[di] > 0 ? Dir::Pos : Dir::Neg;
            add_segment(torus, loads, node, j, b, dir, w);
          }
        });
      }
    }
  }
  return loads;
}

Rational expected_total_load_exact(const Torus& torus, const Placement& p) {
  p.check_torus(torus);
  Rational sum;
  for (NodeId a : p.nodes())
    for (NodeId b : p.nodes())
      if (a != b) sum += Rational(torus.lee_distance(a, b));
  return sum;
}

}  // namespace tp
