// Exact (rational) per-link loads.
//
// The double-based analyzers in complete_exchange.h are exact for
// single-path routing and float-accurate for the rest; these variants
// accumulate Definition 4 in exact rational arithmetic, making equality
// claims (conservation, closed-form matches, oracle agreement) airtight.
// They are slower and only intended for validation-sized instances.

#pragma once

#include <vector>

#include "src/load/load_map.h"
#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/util/rational.h"

namespace tp {

/// Dense per-directed-link rational load table.
class ExactLoadMap {
 public:
  explicit ExactLoadMap(const Torus& torus)
      : loads_(static_cast<std::size_t>(torus.num_directed_edges())) {}

  void add(EdgeId e, const Rational& w) {
    loads_.at(static_cast<std::size_t>(e)) += w;
  }
  const Rational& operator[](EdgeId e) const {
    return loads_.at(static_cast<std::size_t>(e));
  }

  Rational max_load() const;
  Rational total_load() const;

  /// Converts to the double representation (for comparison with the fast
  /// analyzers).
  LoadMap to_load_map(const Torus& torus) const;

 private:
  std::vector<Rational> loads_;
};

/// Exact loads under canonical/tie-splitting ODR.
ExactLoadMap odr_loads_exact(const Torus& torus, const Placement& p,
                             TieBreak tie = TieBreak::PositiveOnly);

/// Exact loads under UDR (subset-weight identity with rational weights).
ExactLoadMap udr_loads_exact(const Torus& torus, const Placement& p,
                             TieBreak tie = TieBreak::PositiveOnly);

/// Exact total that any minimal router must produce: the sum of Lee
/// distances over ordered processor pairs (an integer).
Rational expected_total_load_exact(const Torus& torus, const Placement& p);

}  // namespace tp
