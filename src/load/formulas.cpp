#include "src/load/formulas.h"

#include "src/util/error.h"

namespace tp {

double blaum_lower_bound(i64 placement_size, i32 d) {
  TP_REQUIRE(placement_size >= 1 && d >= 1, "invalid arguments");
  return static_cast<double>(placement_size - 1) / (2.0 * d);
}

double separator_lower_bound(i64 s_size, i64 placement_size,
                             i64 boundary_size) {
  TP_REQUIRE(s_size >= 0 && placement_size >= s_size, "invalid subset size");
  TP_REQUIRE(boundary_size >= 1, "boundary must be non-empty");
  return 2.0 * static_cast<double>(s_size) *
         static_cast<double>(placement_size - s_size) /
         static_cast<double>(boundary_size);
}

double bisection_lower_bound(i64 placement_size, i64 bisection_width) {
  TP_REQUIRE(bisection_width >= 1, "bisection width must be >= 1");
  const double half = static_cast<double>(placement_size) / 2.0;
  return 2.0 * half * half / static_cast<double>(bisection_width);
}

double improved_lower_bound(double c, i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1 && c > 0, "invalid arguments");
  return c * c * static_cast<double>(powi(k, d - 1)) / 8.0;
}

i64 bisection_width_upper_bound(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return 6 * static_cast<i64>(d) * powi(k, d - 1);
}

i64 uniform_bisection_width(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return 4 * powi(k, d - 1);
}

double max_placement_size(double c1, i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1 && c1 > 0, "invalid arguments");
  return 12.0 * d * c1 * static_cast<double>(powi(k, d - 1));
}

double full_torus_load_lower_bound(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return static_cast<double>(powi(k, d + 1)) / 8.0;
}

double odr_linear_emax(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 3,
             "closed form derived for d >= 3 (see Section 6.1)");
  if (k % 2 == 0)
    return static_cast<double>(powi(k, d - 1)) / 8.0 +
           static_cast<double>(powi(k, d - 2)) / 4.0;
  return static_cast<double>(powi(k, d - 1)) / 8.0 -
         static_cast<double>(powi(k, d - 3)) / 8.0;
}

double odr_linear_emax_overall(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 2, "defined for d >= 2");
  return static_cast<double>(k / 2) * static_cast<double>(powi(k, d - 2));
}

double odr_linear_emax_upper(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return static_cast<double>(powi(k, d - 1));
}

double multiple_odr_upper(i32 t, i32 k, i32 d) {
  TP_REQUIRE(t >= 1 && k >= 2 && d >= 1, "invalid arguments");
  return static_cast<double>(t) * t * static_cast<double>(powi(k, d - 1));
}

double udr_linear_emax_upper(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return static_cast<double>(powi(2, d - 1)) *
         static_cast<double>(powi(k, d - 1));
}

double udr_linear_emax_conjectured(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  if (d == 2) return static_cast<double>(k / 2) / 2.0;
  if (d == 3) {
    if (k % 2 == 0) return (5.0 * k * k + 2.0 * k) / 24.0;
    return (5.0 * k * k - 4.0 * k - 1.0) / 24.0;
  }
  return -1.0;
}

double multiple_udr_upper(i32 t, i32 k, i32 d) {
  TP_REQUIRE(t >= 1, "invalid arguments");
  return static_cast<double>(t) * t * udr_linear_emax_upper(k, d);
}

i64 udr_path_count(i32 s) { return factorial(s); }

i64 sweep_separator_upper_bound(i32 k, i32 d) {
  TP_REQUIRE(k >= 2 && d >= 1, "invalid arguments");
  return 2 * static_cast<i64>(d) * powi(k, d - 1);
}

}  // namespace tp
