// Closed-form expressions from the paper, collected in one place so that
// benches and tests compare measured loads against the exact published
// formulas.  Section/equation references follow the IEEE TC 49(3) text.

#pragma once

#include "src/util/math.h"

namespace tp {

/// Eq. (1)/(6) — Blaum et al.'s lower bound:  E_max >= (|P|-1) / 2d.
double blaum_lower_bound(i64 placement_size, i32 d);

/// Lemma 1 — separator bound:  E_max >= 2|S|(|P|-|S|) / |dS|.
double separator_lower_bound(i64 s_size, i64 placement_size,
                             i64 boundary_size);

/// Eq. (8) — bisection form of Lemma 1:  E_max >= 2(|P|/2)^2 / |d_b P|.
double bisection_lower_bound(i64 placement_size, i64 bisection_width);

/// Section 4 — improved dimension-independent bound for uniform placements
/// of size c*k^{d-1}:  E_max >= c^2 k^{d-1} / 8.
double improved_lower_bound(double c, i32 k, i32 d);

/// Corollary 1 — upper bound on the bisection width of T_k^d with respect
/// to any placement (directed edges):  |d_b P| <= 6 d k^{d-1}.
i64 bisection_width_upper_bound(i32 k, i32 d);

/// Theorem 1 — bisection width w.r.t. a uniform placement: 4 k^{d-1}
/// directed edges.
i64 uniform_bisection_width(i32 k, i32 d);

/// Eq. (9) — maximum size of a placement that can keep E_max <= c1 |P|:
/// |P| <= 12 d c1 k^{d-1}.
double max_placement_size(double c1, i32 k, i32 d);

/// Section 1 — fully populated torus: some link in the bisection carries
/// load > k^{d+1} / 8.
double full_torus_load_lower_bound(i32 k, i32 d);

/// Section 6.1 — the paper's refined ODR load count on the all-ones linear
/// placement:
///   k even:  k^{d-1}/8 + k^{d-2}/4
///   k odd:   k^{d-1}/8 - k^{d-3}/8
/// Measurement shows this is the exact maximum over links of *interior*
/// dimensions (2 <= s <= d-1), hence it needs d >= 3; the overall maximum
/// is attained on first/last-dimension links and is given by
/// odr_linear_emax_overall() below.
double odr_linear_emax(i32 k, i32 d);

/// Exact overall maximum ODR load on the all-ones linear placement, as
/// *measured* by this reproduction:  floor(k/2) * k^{d-2}  for d >= 2.
///
/// The paper's Section 6.1 count (odr_linear_emax) enumerates the pairs
/// crossing a link whose dimension s has free coordinates on both sides,
/// which requires 2 <= s <= d-1.  On links of the first (and last)
/// dimension one endpoint of the pair is pinned by the placement equation
/// instead, and the count becomes floor(k/2) * k^{d-2} — larger, and this
/// is where the true maximum sits.  Still Theta(k^{d-1}) = Theta(|P|), so
/// Theorem 2's linearity claim is unaffected; only the constant changes
/// (1/2 instead of 1/8).  See EXPERIMENTS.md (E7) for the measurement.
double odr_linear_emax_overall(i32 k, i32 d);

/// Theorem 2 — coarse ODR upper bound:  E_max <= k^{d-1}.
double odr_linear_emax_upper(i32 k, i32 d);

/// Theorem 3 — multiple linear with ODR:  E_max <= t^2 k^{d-1}.
double multiple_odr_upper(i32 t, i32 k, i32 d);

/// Theorem 4 — UDR upper bound on the linear placement:
/// E_max < 2^{d-1} k^{d-1}.
double udr_linear_emax_upper(i32 k, i32 d);

/// Reproduction conjecture (not in the paper): the exact UDR maximum on
/// the all-ones linear placement, observed to hold on every instance this
/// library can measure (see tests/test_golden.cpp):
///   d = 2:            floor(k/2) / 2           (both parities)
///   d = 3, k even:    (5 k^2 + 2 k) / 24
///   d = 3, k odd:     (5 k^2 - 4 k - 1) / 24
/// Returns -1 outside the covered domain (use the measured value there).
double udr_linear_emax_conjectured(i32 k, i32 d);

/// Theorem 5 — multiple linear with UDR:  E_max < t^2 2^{d-1} k^{d-1}.
double multiple_udr_upper(i32 t, i32 k, i32 d);

/// Section 7 — UDR path count for a pair differing in s dimensions: s!.
i64 udr_path_count(i32 s);

/// Appendix — hyperplane sweep separator bound: a sweep hyperplane crosses
/// at most 2 d k^{d-1} undirected array edges.
i64 sweep_separator_upper_bound(i32 k, i32 d);

}  // namespace tp
