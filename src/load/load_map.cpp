#include "src/load/load_map.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace tp {

double LoadMap::max_load() const {
  double m = 0.0;
  for (double v : loads_) m = std::max(m, v);
  return m;
}

std::vector<EdgeId> LoadMap::argmax(double tol) const {
  const double m = max_load();
  std::vector<EdgeId> edges;
  for (std::size_t i = 0; i < loads_.size(); ++i)
    if (loads_[i] >= m - tol) edges.push_back(static_cast<EdgeId>(i));
  return edges;
}

double LoadMap::total_load() const {
  double sum = 0.0;
  for (double v : loads_) sum += v;
  return sum;
}

double LoadMap::mean_load() const {
  return loads_.empty() ? 0.0 : total_load() / static_cast<double>(loads_.size());
}

i64 LoadMap::num_loaded_edges(double tol) const {
  i64 n = 0;
  for (double v : loads_)
    if (v > tol) ++n;
  return n;
}

double LoadMap::max_load_in_dim(const Torus& torus, i32 dim) const {
  TP_REQUIRE(dim >= 0 && dim < dims_, "dimension out of range");
  double m = 0.0;
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    const Link l = torus.link(static_cast<EdgeId>(i));
    if (l.dim == dim) m = std::max(m, loads_[i]);
  }
  return m;
}

std::vector<i64> LoadMap::histogram(std::size_t bins) const {
  TP_REQUIRE(bins >= 1, "need at least one bin");
  std::vector<i64> counts(bins, 0);
  const double m = max_load();
  if (m <= 0.0) {
    counts[0] = static_cast<i64>(loads_.size());
    return counts;
  }
  for (double v : loads_) {
    auto b = static_cast<std::size_t>(std::floor(v / m * static_cast<double>(bins)));
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  return counts;
}

double LoadMap::max_abs_diff(const LoadMap& other) const {
  TP_REQUIRE(loads_.size() == other.loads_.size(),
             "load maps cover different tori");
  double m = 0.0;
  for (std::size_t i = 0; i < loads_.size(); ++i)
    m = std::max(m, std::abs(loads_[i] - other.loads_[i]));
  return m;
}

}  // namespace tp
