// Per-link communication loads (Definitions 4 and 5 of the paper).
//
// A LoadMap holds E(l) for every directed link l of a torus under the
// complete-exchange scenario.  Loads are rationals with small denominators
// (products of path-set sizes); they are accumulated in double precision,
// which is exact for the single-path routers and accurate to ~1e-12 for the
// multi-path ones at the sizes this library targets.

#pragma once

#include <vector>

#include "src/torus/torus.h"

namespace tp {

/// Dense per-directed-link load table.
class LoadMap {
 public:
  explicit LoadMap(const Torus& torus)
      : loads_(static_cast<std::size_t>(torus.num_directed_edges()), 0.0),
        dims_(torus.dims()),
        num_nodes_(torus.num_nodes()) {}

  void add(EdgeId e, double w) { loads_.at(static_cast<std::size_t>(e)) += w; }
  double operator[](EdgeId e) const {
    return loads_.at(static_cast<std::size_t>(e));
  }

  i64 num_edges() const { return static_cast<i64>(loads_.size()); }

  /// E_max (Definition 5).
  double max_load() const;

  /// All links achieving the maximum (within tol).
  std::vector<EdgeId> argmax(double tol = 1e-9) const;

  /// Sum of E(l) over all links.  Equals the sum of (expected) path lengths
  /// over ordered processor pairs — see expected_total_load().
  double total_load() const;

  /// Mean load over all links (used links and idle ones alike).
  double mean_load() const;

  /// Number of links with load > tol.
  i64 num_loaded_edges(double tol = 1e-12) const;

  /// Maximum load among the links of one dimension only.
  double max_load_in_dim(const Torus& torus, i32 dim) const;

  /// Histogram of loads with the given number of equal-width bins over
  /// [0, max_load()].  Returns bin counts; empty map yields all zeros.
  std::vector<i64> histogram(std::size_t bins) const;

  /// Largest absolute difference against another map (cross-check tool).
  double max_abs_diff(const LoadMap& other) const;

  const std::vector<double>& raw() const { return loads_; }

 private:
  std::vector<double> loads_;
  i32 dims_;
  i64 num_nodes_;
};

}  // namespace tp
