#include "src/net/line_buffer.h"

#include <cctype>
#include <cstdlib>

namespace tp::net {

void LineBuffer::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

std::optional<LineBuffer::Line> LineBuffer::next_line() {
  if (discarding_) {
    // The tail of an already-reported oversized line: drop through its
    // newline, then resume normal framing.
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
      buf_.clear();
      return std::nullopt;
    }
    buf_.erase(0, nl + 1);
    discarding_ = false;
  }

  const std::size_t nl = buf_.find('\n');
  if (nl != std::string::npos && nl <= max_bytes_) {
    Line line;
    line.text = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }

  // No newline within the limit.  Report the over-limit line as soon as
  // the limit is crossed — waiting for its newline would let one peer
  // buffer unbounded bytes — and discard the remainder.
  if (buf_.size() > max_bytes_) {
    Line line;
    line.text = buf_.substr(0, max_bytes_);
    line.oversized = true;
    if (nl != std::string::npos) {
      buf_.erase(0, nl + 1);
    } else {
      buf_.clear();
      discarding_ = true;
    }
    return line;
  }
  return std::nullopt;
}

std::optional<LineBuffer::Line> LineBuffer::take_residual() {
  if (discarding_ || buf_.empty()) return std::nullopt;
  Line line;
  line.text = std::move(buf_);
  buf_.clear();
  return line;
}

namespace {

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])))
    ++i;
  return i;
}

}  // namespace

obs::JsonValue salvage_id_prefix(std::string_view prefix, i64 line_no) {
  // The prefix is NOT valid JSON (it was cut mid-line), so this is a
  // token scan, not a parse: find `"id"`, a colon, then a complete
  // string or number token.  Anything ambiguous falls back to the line
  // number — same default as a request without an id.
  const std::size_t key = prefix.find("\"id\"");
  if (key == std::string_view::npos) return obs::JsonValue(line_no);
  std::size_t i = skip_ws(prefix, key + 4);
  if (i >= prefix.size() || prefix[i] != ':') return obs::JsonValue(line_no);
  i = skip_ws(prefix, i + 1);
  if (i >= prefix.size()) return obs::JsonValue(line_no);

  if (prefix[i] == '"') {
    std::string out;
    for (std::size_t j = i + 1; j < prefix.size(); ++j) {
      if (prefix[j] == '\\') {
        // Escapes would need a real parser; a truncated escape is
        // exactly the ambiguity this scan must not guess about.
        return obs::JsonValue(line_no);
      }
      if (prefix[j] == '"') return obs::JsonValue(std::string(out));
      out.push_back(prefix[j]);
    }
    return obs::JsonValue(line_no);  // closing quote was cut off
  }

  if (prefix[i] == '-' ||
      std::isdigit(static_cast<unsigned char>(prefix[i]))) {
    std::size_t j = i;
    if (prefix[j] == '-') ++j;
    bool digits = false, dot = false;
    while (j < prefix.size() &&
           (std::isdigit(static_cast<unsigned char>(prefix[j])) ||
            (prefix[j] == '.' && !dot))) {
      dot = dot || prefix[j] == '.';
      digits = digits || prefix[j] != '.';
      ++j;
    }
    // A number token running to the end of the prefix may have been
    // truncated mid-digits; only trust one followed by more input.
    if (digits && j < prefix.size()) {
      const std::string text(prefix.substr(i, j - i));
      if (dot) return obs::JsonValue(std::strtod(text.c_str(), nullptr));
      return obs::JsonValue(
          static_cast<i64>(std::strtoll(text.c_str(), nullptr, 10)));
    }
  }
  return obs::JsonValue(line_no);
}

}  // namespace tp::net
