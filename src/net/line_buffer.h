// Incremental line framing for the JSONL wire protocol.
//
// The TCP reader feeds raw recv() chunks in; next_line() hands back
// complete newline-terminated lines one at a time, mirroring the
// std::getline semantics the stdio front-end relies on — including the
// final unterminated line at EOF, which take_residual() surfaces so a
// half-closed socket behaves exactly like a pipe whose writer exited
// without a trailing newline.
//
// A max-line guard bounds per-connection memory against a hostile or
// broken peer: once a line exceeds the limit, the first max_bytes of it
// are emitted immediately as an `oversized` Line (so the server can
// salvage the request id and answer a structured error without waiting
// for the newline), and everything up to the next newline is discarded.

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/obs/json.h"
#include "src/util/math.h"

namespace tp::net {

class LineBuffer {
 public:
  struct Line {
    std::string text;
    bool oversized = false;
  };

  explicit LineBuffer(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Appends a raw chunk from the socket.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view s) { feed(s.data(), s.size()); }

  /// The next complete line (without its newline), or nullopt when more
  /// bytes are needed.  An over-limit line comes back once, truncated to
  /// max_bytes with `oversized` set, as soon as the limit is crossed;
  /// the rest of it (through its newline) is silently dropped.
  std::optional<Line> next_line();

  /// The final unterminated line at EOF (getline parity: a stream whose
  /// last line lacks '\n' still yields that line).  Empty optional when
  /// nothing is buffered or the tail was an oversized line being
  /// discarded.
  std::optional<Line> take_residual();

  std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_bytes_;
  bool discarding_ = false;
};

/// Best-effort request-id recovery from the truncated prefix of an
/// oversized line: scans for a top-level-looking `"id": <string|number>`
/// and returns it, else falls back to the 1-based line number (the same
/// default the JSONL parser assigns when `id` is absent).
obs::JsonValue salvage_id_prefix(std::string_view prefix, i64 line_no);

}  // namespace tp::net
