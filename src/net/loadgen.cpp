#include "src/net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "src/net/line_buffer.h"
#include "src/net/socket.h"
#include "src/util/error.h"
#include "src/util/thread_annotations.h"

namespace tp::net {

using Clock = std::chrono::steady_clock;

namespace {

i64 us_between(Clock::time_point from, Clock::time_point to) {
  const i64 us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : us;
}

/// Per-thread tallies, merged into the report after joins (no shared
/// mutable state between driver threads).
struct Tally {
  i64 sent = 0;
  i64 answered = 0;
  i64 ok = 0;
  i64 errors = 0;
  i64 timeouts = 0;
  i64 overloads = 0;
  i64 torn = 0;
  i64 closed_early = 0;
  std::vector<i64> samples;  ///< post-warmup latency, us
  Clock::time_point last_answer{};
};

/// One request line.  Key i maps to a T_{4+i}^2 plan query — valid,
/// cheap to compute, and distinct per i, so `universe` controls how many
/// cache entries the run touches.
std::string build_request(const std::string& id, i64 key, i64 deadline_ms) {
  std::string out = "{\"id\":\"" + id + "\",\"op\":\"plan\",\"d\":2,\"k\":" +
                    std::to_string(4 + key);
  if (deadline_ms > 0)
    out += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  out += "}\n";
  return out;
}

void classify(const std::string& text, bool measured, i64 us, Tally& tally) {
  ++tally.answered;
  tally.last_answer = Clock::now();
  bool ok = false, timeout = false, overload = false;
  try {
    const obs::JsonValue doc = obs::parse_json(text);
    if (const obs::JsonValue* okv = doc.find("ok"))
      ok = okv->kind() == obs::JsonValue::Kind::Bool && okv->as_bool();
    timeout = doc.is_object() && doc.find("timeout") != nullptr;
    overload = doc.is_object() && doc.find("overload") != nullptr;
  } catch (const Error&) {
    ok = false;
  }
  if (ok)
    ++tally.ok;
  else if (timeout)
    ++tally.timeouts;
  else if (overload)
    ++tally.overloads;
  else
    ++tally.errors;
  if (measured) tally.samples.push_back(us);
}

u64 stream_seed(u64 seed, u64 stream) {
  SplitMix64 sm(seed);
  u64 out = sm.next();
  for (u64 i = 0; i <= stream; ++i) out = sm.next();
  return out;
}

/// Closed-loop client: one connection, one outstanding request.
void closed_client(const LoadgenConfig& config, i32 index, Socket sock,
                   Clock::time_point warm_end, Clock::time_point end,
                   Tally& tally) {
  LineBuffer lines(1 << 20);
  char buf[8192];
  KeySampler sampler(config.universe, config.zipf, config.zipf_s,
                     stream_seed(config.seed, static_cast<u64>(index)));
  std::string id_prefix = "c";
  id_prefix += std::to_string(index);
  id_prefix += '-';
  i64 seq = 0;
  bool eof = false;
  while (!eof && Clock::now() < end) {
    const std::string req = build_request(id_prefix + std::to_string(seq),
                                          sampler.next(), config.deadline_ms);
    ++seq;
    const Clock::time_point sent_at = Clock::now();
    if (!sock.write_all(req)) {
      ++tally.closed_early;
      break;
    }
    ++tally.sent;
    std::optional<LineBuffer::Line> line;
    while (!(line = lines.next_line())) {
      const i64 got = sock.read_some(buf, sizeof buf);
      if (got <= 0) {
        // EOF with a request outstanding: a partial line is a torn
        // response (the graceful-drain contract forbids it); a clean
        // cut before any response byte is just an early close.
        if (lines.buffered_bytes() > 0)
          ++tally.torn;
        else
          ++tally.closed_early;
        eof = true;
        break;
      }
      lines.feed(buf, static_cast<std::size_t>(got));
    }
    if (!line) break;
    classify(line->text, sent_at >= warm_end, us_between(sent_at, Clock::now()),
             tally);
  }
  if (!eof) {
    sock.shutdown_write();
    while (sock.read_some(buf, sizeof buf) > 0) {
    }
  }
}

/// Open-loop shared connection state: the scheduler pushes a send
/// timestamp (then writes the request), the reader pops one per response
/// line — in-order responses make id matching unnecessary.
struct OpenConn {
  explicit OpenConn(Socket s) : sock(std::move(s)) {}
  Socket sock;
  Mutex mu;
  std::deque<Clock::time_point> pending TP_GUARDED_BY(mu);
  bool dead TP_GUARDED_BY(mu) = false;
  Tally tally;  ///< reader thread only (merged after join)
};

void open_reader(OpenConn& conn, Clock::time_point warm_end) {
  LineBuffer lines(1 << 20);
  char buf[8192];
  for (;;) {
    const i64 got = conn.sock.read_some(buf, sizeof buf);
    if (got <= 0) {
      if (lines.buffered_bytes() > 0) ++conn.tally.torn;
      return;
    }
    lines.feed(buf, static_cast<std::size_t>(got));
    while (auto line = lines.next_line()) {
      Clock::time_point sent_at{};
      bool have = false;
      {
        const MutexLock lock(conn.mu);
        if (!conn.pending.empty()) {
          sent_at = conn.pending.front();
          conn.pending.pop_front();
          have = true;
        }
      }
      // A response with no matching send would be a server bug; count it
      // as an error rather than crashing the driver.
      if (!have) {
        ++conn.tally.answered;
        ++conn.tally.errors;
        continue;
      }
      classify(line->text, sent_at >= warm_end,
               us_between(sent_at, Clock::now()), conn.tally);
    }
  }
}

void merge(LoadgenReport& report, const Tally& tally,
           std::vector<i64>& samples, Clock::time_point& last_answer) {
  report.sent += tally.sent;
  report.answered += tally.answered;
  report.ok += tally.ok;
  report.errors += tally.errors;
  report.timeouts += tally.timeouts;
  report.overloads += tally.overloads;
  report.torn += tally.torn;
  report.closed_early += tally.closed_early;
  samples.insert(samples.end(), tally.samples.begin(), tally.samples.end());
  if (tally.last_answer > last_answer) last_answer = tally.last_answer;
}

void finish_report(LoadgenReport& report, std::vector<i64>& samples,
                   Clock::time_point warm_end, Clock::time_point last_answer) {
  report.samples = static_cast<i64>(samples.size());
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    const auto at = [&samples](double q) {
      const std::size_t n = samples.size();
      std::size_t i = static_cast<std::size_t>(q * static_cast<double>(n));
      if (i >= n) i = n - 1;
      return static_cast<double>(samples[i]);
    };
    report.p50_us = at(0.50);
    report.p99_us = at(0.99);
    report.p999_us = at(0.999);
    report.max_us = static_cast<double>(samples.back());
    double sum = 0.0;
    for (const i64 s : samples) sum += static_cast<double>(s);
    report.mean_us = sum / static_cast<double>(samples.size());
  }
  if (last_answer > warm_end) {
    report.wall_s =
        static_cast<double>(us_between(warm_end, last_answer)) / 1e6;
    if (report.wall_s > 0.0)
      report.qps = static_cast<double>(report.samples) / report.wall_s;
  }
}

}  // namespace

KeySampler::KeySampler(i64 universe, bool zipf, double s, u64 seed)
    : rng_(seed), universe_(universe < 1 ? 1 : universe) {
  if (zipf) {
    cdf_.reserve(static_cast<std::size_t>(universe_));
    double total = 0.0;
    for (i64 i = 1; i <= universe_; ++i)
      total += 1.0 / std::pow(static_cast<double>(i), s);
    double acc = 0.0;
    for (i64 i = 1; i <= universe_; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), s) / total;
      cdf_.push_back(acc);
    }
    cdf_.back() = 1.0;  // guard against rounding
  }
}

i64 KeySampler::next() {
  if (cdf_.empty())
    return static_cast<i64>(rng_.below(static_cast<u64>(universe_)));
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<i64>(it - cdf_.begin());
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  TP_REQUIRE(config.clients >= 1, "loadgen needs at least one client");
  TP_REQUIRE(config.duration_ms >= 1, "duration must be >= 1 ms");
  TP_REQUIRE(config.universe >= 1, "universe must be >= 1");
  TP_REQUIRE(!config.open_loop || config.rate > 0.0,
             "open-loop mode needs a positive --rate");

  // Connect everything up front: an unreachable endpoint is a startup
  // error (throws), not a zero-QPS report.
  std::vector<Socket> socks;
  socks.reserve(static_cast<std::size_t>(config.clients));
  for (i32 i = 0; i < config.clients; ++i)
    socks.push_back(connect_to(config.host, config.port));

  const Clock::time_point t0 = Clock::now();
  const Clock::time_point warm_end =
      t0 + std::chrono::milliseconds(config.warmup_ms);
  const Clock::time_point end =
      warm_end + std::chrono::milliseconds(config.duration_ms);

  LoadgenReport report;
  std::vector<i64> samples;
  Clock::time_point last_answer{};

  if (!config.open_loop) {
    std::vector<Tally> tallies(static_cast<std::size_t>(config.clients));
    std::vector<Thread> threads;
    threads.reserve(static_cast<std::size_t>(config.clients));
    for (i32 i = 0; i < config.clients; ++i)
      threads.emplace_back(
          [&config, i, &tallies, warm_end, end,
           sock = std::move(socks[static_cast<std::size_t>(i)])]() mutable {
            closed_client(config, i, std::move(sock), warm_end, end,
                          tallies[static_cast<std::size_t>(i)]);
          });
    for (auto& t : threads) t.join();
    for (const Tally& tally : tallies)
      merge(report, tally, samples, last_answer);
  } else {
    std::vector<std::unique_ptr<OpenConn>> conns;
    std::vector<Thread> readers;
    for (auto& sock : socks) {
      conns.push_back(std::make_unique<OpenConn>(std::move(sock)));
      OpenConn& conn = *conns.back();
      readers.emplace_back([&conn, warm_end] { open_reader(conn, warm_end); });
    }

    KeySampler sampler(config.universe, config.zipf, config.zipf_s,
                       stream_seed(config.seed, 0));
    Mutex tick_mu;
    CondVar tick_cv;  // nothing notifies; wait_until is a precise sleep
    const double interval_ns = 1e9 / config.rate;
    i64 alive = static_cast<i64>(conns.size());
    for (i64 i = 0;; ++i) {
      const Clock::time_point sched =
          t0 + std::chrono::nanoseconds(
                   static_cast<i64>(static_cast<double>(i) * interval_ns));
      if (sched >= end || alive == 0) break;
      {
        MutexLock lock(tick_mu);
        while (Clock::now() < sched) tick_cv.wait_until(lock, sched);
      }
      OpenConn& conn = *conns[static_cast<std::size_t>(
          i % static_cast<i64>(conns.size()))];
      {
        const MutexLock lock(conn.mu);
        if (conn.dead) continue;
        conn.pending.push_back(Clock::now());
      }
      std::string id = "o-";
      id += std::to_string(i);
      const std::string req =
          build_request(id, sampler.next(), config.deadline_ms);
      if (!conn.sock.write_all(req)) {
        const MutexLock lock(conn.mu);
        conn.pending.pop_back();
        conn.dead = true;
        --alive;
        continue;
      }
      ++report.sent;
    }

    for (auto& conn : conns) conn->sock.shutdown_write();
    for (auto& t : readers) t.join();
    for (auto& conn : conns) {
      i64 leftover = 0;
      {
        const MutexLock lock(conn->mu);
        leftover = static_cast<i64>(conn->pending.size());
      }
      conn->tally.closed_early += leftover;
      merge(report, conn->tally, samples, last_answer);
    }
  }

  finish_report(report, samples, warm_end, last_answer);
  return report;
}

void print_report(const LoadgenReport& report, const LoadgenConfig& config,
                  std::ostream& out) {
  char line[256];
  out << "loadgen: mode=" << (config.open_loop ? "open" : "closed")
      << " clients=" << config.clients;
  if (config.open_loop) out << " rate=" << config.rate;
  out << " universe=" << config.universe
      << " skew=" << (config.zipf ? "zipf" : "uniform") << "\n";
  out << "  sent " << report.sent << "  answered " << report.answered
      << "  ok " << report.ok << "  errors " << report.errors << "  timeouts "
      << report.timeouts << "  overloads " << report.overloads << "\n";
  out << "  torn " << report.torn << "  closed_early " << report.closed_early
      << "\n";
  std::snprintf(line, sizeof line, "  qps %.1f  (window %.2fs, %lld samples)",
                report.qps, report.wall_s,
                static_cast<long long>(report.samples));
  out << line << "\n";
  std::snprintf(line, sizeof line,
                "  latency_us p50 %.1f  p99 %.1f  p999 %.1f  mean %.1f  "
                "max %.1f",
                report.p50_us, report.p99_us, report.p999_us, report.mean_us,
                report.max_us);
  out << line << "\n";
}

obs::JsonValue report_to_json(const LoadgenReport& report,
                              const LoadgenConfig& config) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("schema", obs::JsonValue("torusplace-loadgen/1"));
  out.set("mode", obs::JsonValue(config.open_loop ? "open" : "closed"));
  out.set("clients", obs::JsonValue(static_cast<i64>(config.clients)));
  if (config.open_loop) out.set("rate", obs::JsonValue(config.rate));
  out.set("duration_ms", obs::JsonValue(config.duration_ms));
  out.set("warmup_ms", obs::JsonValue(config.warmup_ms));
  out.set("skew", obs::JsonValue(config.zipf ? "zipf" : "uniform"));
  if (config.zipf) out.set("zipf_s", obs::JsonValue(config.zipf_s));
  out.set("universe", obs::JsonValue(config.universe));
  out.set("seed", obs::JsonValue(static_cast<i64>(config.seed)));
  out.set("sent", obs::JsonValue(report.sent));
  out.set("answered", obs::JsonValue(report.answered));
  out.set("ok", obs::JsonValue(report.ok));
  out.set("errors", obs::JsonValue(report.errors));
  out.set("timeouts", obs::JsonValue(report.timeouts));
  out.set("overloads", obs::JsonValue(report.overloads));
  out.set("torn", obs::JsonValue(report.torn));
  out.set("closed_early", obs::JsonValue(report.closed_early));
  out.set("wall_s", obs::JsonValue(report.wall_s));
  out.set("qps", obs::JsonValue(report.qps));
  out.set("p50_us", obs::JsonValue(report.p50_us));
  out.set("p99_us", obs::JsonValue(report.p99_us));
  out.set("p999_us", obs::JsonValue(report.p999_us));
  out.set("mean_us", obs::JsonValue(report.mean_us));
  out.set("max_us", obs::JsonValue(report.max_us));
  out.set("samples", obs::JsonValue(report.samples));
  return out;
}

}  // namespace tp::net
