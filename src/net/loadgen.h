// Traffic driver for the TCP front-end (`torusplace loadgen`).
//
// Two drive modes against a running `serve --tcp` endpoint:
//   - closed-loop: N clients, each with one connection, each keeping
//     exactly one request outstanding (send, wait, repeat).  Throughput
//     is whatever the server sustains at that concurrency.
//   - open-loop: a fixed aggregate arrival rate (requests/s) on a
//     deterministic schedule, fanned over N connections with responses
//     consumed asynchronously — so a slow server accumulates queueing
//     delay instead of slowing the offered load (the coordinated-
//     omission-free way to measure latency under load).
//
// Key skew: requests draw a query key from a universe of `universe`
// distinct keys, uniformly or zipf(s)-distributed.  Against an engine
// cache larger than the universe this makes the cache-hit ratio
// controllable: uniform over 64 keys settles near miss-free steady
// state slowly; zipf concentrates mass on few keys and heats the cache
// almost immediately.
//
// Latency samples start after a warmup cutoff; the report carries
// sustained post-warmup QPS, error/timeout/overload counts, and
// p50/p99/p999, rendered human-readable (print_report) and as a JSONL
// record (report_to_json) for benchstat-style tracking.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/util/math.h"
#include "src/util/prng.h"

namespace tp::net {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  u16 port = 0;
  bool open_loop = false;  ///< false = closed-loop
  i32 clients = 8;         ///< connections (and, closed-loop, concurrency)
  double rate = 1000.0;    ///< open-loop aggregate arrivals per second
  i64 duration_ms = 5000;
  i64 warmup_ms = 1000;  ///< samples before this are discarded
  bool zipf = false;     ///< false = uniform key skew
  double zipf_s = 1.1;
  i64 universe = 64;  ///< distinct query keys
  u64 seed = 1;
  i64 deadline_ms = 0;  ///< per-request deadline field; 0 = none
};

struct LoadgenReport {
  i64 sent = 0;      ///< requests written (lifetime, incl. warmup)
  i64 answered = 0;  ///< response lines read (lifetime)
  i64 ok = 0;        ///< "ok":true responses (lifetime)
  i64 errors = 0;    ///< error responses excl. timeout/overload (lifetime)
  i64 timeouts = 0;
  i64 overloads = 0;
  i64 torn = 0;  ///< EOF with a partial response line — must stay 0
  i64 closed_early = 0;  ///< connections EOF'd with requests outstanding
  double wall_s = 0.0;   ///< measured window (post-warmup)
  double qps = 0.0;      ///< post-warmup answered / wall_s
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  i64 samples = 0;  ///< post-warmup latency samples
};

/// Draws keys 0..universe-1, uniform or zipf(s) (rank-1 most popular).
/// Exposed for tests; deterministic per (seed, stream).
class KeySampler {
 public:
  KeySampler(i64 universe, bool zipf, double s, u64 seed);
  i64 next();

 private:
  Xoshiro256SS rng_;
  i64 universe_;
  std::vector<double> cdf_;  ///< empty = uniform
};

/// Runs the configured load against host:port.  Throws tp::Error when no
/// connection can be established at startup; transport failures mid-run
/// are counted in the report instead.
LoadgenReport run_loadgen(const LoadgenConfig& config);

/// Human-readable report block.
void print_report(const LoadgenReport& report, const LoadgenConfig& config,
                  std::ostream& out);

/// One-line JSON record ({"schema":"torusplace-loadgen/1", ...}).
obs::JsonValue report_to_json(const LoadgenReport& report,
                              const LoadgenConfig& config);

}  // namespace tp::net
