#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/error.h"

namespace tp::net {

namespace {

sockaddr_in make_addr(const std::string& host, u16 port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else {
    TP_REQUIRE(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "not an IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

i64 Socket::read_some(char* buf, std::size_t n) {
  if (fd_ < 0) return 0;
  for (;;) {
    const ssize_t got = recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<i64>(got);
    if (errno == EINTR) continue;
    return -1;
  }
}

bool Socket::write_all(const char* data, std::size_t n) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as a
    // write error on this connection, not SIGPIPE for the whole process.
    const ssize_t sent = send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  TP_REQUIRE(colon != std::string::npos,
             "endpoint must be <addr:port>, got '" + spec + "'");
  HostPort out;
  out.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  TP_REQUIRE(end != port_text.c_str() && *end == '\0' && port >= 0 &&
                 port <= 65535,
             "port must be 0..65535, got '" + port_text + "'");
  out.port = static_cast<u16>(port);
  if (out.host.empty()) out.host = "0.0.0.0";
  return out;
}

Listener::Listener(const std::string& host, u16 port, int backlog)
    : host_(host.empty() ? "0.0.0.0" : host) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  TP_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  sock_ = Socket(fd);
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host_, port);
  TP_REQUIRE(bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0,
             "cannot bind " + host_ + ":" + std::to_string(port) + ": " +
                 std::strerror(errno));
  TP_REQUIRE(listen(fd, backlog) == 0,
             std::string("listen(): ") + std::strerror(errno));
  // Resolve an ephemeral-port request to the real port.
  sockaddr_in bound = {};
  socklen_t len = sizeof bound;
  TP_REQUIRE(getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             std::string("getsockname(): ") + std::strerror(errno));
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept_connection() {
  for (;;) {
    const int fd = accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();
  }
}

std::string Listener::address() const {
  return host_ + ":" + std::to_string(port_);
}

Socket connect_to(const std::string& host, u16 port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  TP_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  Socket sock(fd);
  const std::string target = host.empty() ? "127.0.0.1" : host;
  sockaddr_in addr = make_addr(target, port);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  TP_REQUIRE(rc == 0, "cannot connect to " + target + ":" +
                          std::to_string(port) + ": " +
                          std::strerror(errno));
  // One JSONL line per request/response: latency matters more than
  // batching tiny segments.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

WakePipe::WakePipe() {
  TP_REQUIRE(pipe(fds_) == 0, std::string("pipe(): ") + std::strerror(errno));
  // Non-blocking read side: drain() is called after poll() reports
  // readability and must never wedge the acceptor.
  fcntl(fds_[0], F_SETFL, O_NONBLOCK);
}

WakePipe::~WakePipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

void WakePipe::notify() const {
  const char byte = kWake;
  // Async-signal-safe by construction: one write(), result ignored (a
  // full pipe already means a wakeup is pending).
  [[maybe_unused]] const ssize_t rc = write(fds_[1], &byte, 1);
}

bool WakePipe::drain() const {
  char sink[64];
  bool saw_drain = false;
  // The read side is O_NONBLOCK: drain everything pending, never wedge.
  ssize_t got;
  while ((got = read(fds_[0], sink, sizeof sink)) > 0)
    for (ssize_t i = 0; i < got; ++i) saw_drain = saw_drain || sink[i] == kDrain;
  return saw_drain;
}

}  // namespace tp::net
