// RAII TCP sockets for the network front-end.
//
// This header (and its .cpp) is the ONLY place in the tree that names the
// raw socket syscalls — socket/bind/listen/accept/connect/send/recv —
// a house rule enforced by tp_lint's raw-socket rule (everything under
// src/net/ is exempt; everything else must go through these wrappers).
// Keeping the syscalls in one audited file means partial writes, EINTR
// retries, SIGPIPE suppression, and shutdown semantics are handled once,
// not re-derived per call site.
//
// Scope: blocking IPv4 stream sockets.  The server is thread-per-
// connection (src/net/tcp_server.h), so non-blocking I/O and readiness
// multiplexing are only needed on the accept path, which polls the
// listener alongside a self-pipe (WakePipe) for signal-safe drain
// requests.

#pragma once

#include <string>
#include <string_view>

#include "src/util/math.h"

namespace tp::net {

/// A connected (or accepted) TCP socket.  Move-only; closes on
/// destruction.  All operations retry EINTR and never raise SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `n` bytes.  Returns the byte count, 0 on clean EOF
  /// (peer closed or shutdown_read() was called), -1 on error.
  i64 read_some(char* buf, std::size_t n);

  /// Writes all `n` bytes, looping over partial sends.  False when the
  /// peer is gone (connection reset / closed); never raises SIGPIPE.
  bool write_all(const char* data, std::size_t n);
  bool write_all(std::string_view s) { return write_all(s.data(), s.size()); }

  /// Half-close helpers.  shutdown_read() makes a blocked read_some()
  /// return 0 — the drain path uses it to stop a connection's intake
  /// without touching its in-flight responses; shutdown_write() sends
  /// FIN after the last response so the peer sees a clean end-of-stream.
  void shutdown_read();
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
};

/// A parsed "host:port" endpoint.  Port 0 asks the kernel for an
/// ephemeral port (resolved by Listener::port() after binding).
struct HostPort {
  std::string host;
  u16 port = 0;
};

/// Parses "addr:port" (IPv4 dotted quad or empty host for 0.0.0.0).
/// Throws tp::Error on a malformed spec or out-of-range port.
HostPort parse_host_port(const std::string& spec);

/// A bound, listening TCP socket.  Construction throws tp::Error when
/// the address cannot be bound (port in use, bad host).
class Listener {
 public:
  Listener(const std::string& host, u16 port, int backlog = 128);

  /// Blocks for the next connection.  Returns an invalid Socket when the
  /// listener has been closed (the accept loop's exit signal) or on a
  /// transient accept failure.
  Socket accept_connection();

  /// The actual bound port (resolves an ephemeral port 0 request).
  u16 port() const { return port_; }
  /// "host:port" with the resolved port.
  std::string address() const;
  int fd() const { return sock_.fd(); }
  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::string host_;
  u16 port_ = 0;
};

/// Client-side connect.  Throws tp::Error when the endpoint is
/// unreachable (the loadgen's startup failure mode).
Socket connect_to(const std::string& host, u16 port);

/// Self-pipe wakeup: notify() is a single write() — async-signal-safe —
/// so a SIGTERM handler can request a server drain without taking locks.
/// The acceptor polls read_fd() alongside the listener.
///
/// Two byte values share the pipe: notify() writes kWake ("look around" —
/// a connection finished, come reap it) and external writers — signal
/// handlers, via TcpServer::drain_wakeup_fd() — write kDrain to request a
/// graceful server drain.  drain() consumes everything pending and
/// reports whether a kDrain byte was among it.
class WakePipe {
 public:
  static constexpr char kWake = 'w';
  static constexpr char kDrain = 'q';

  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }

  /// Async-signal-safe wakeup (one kWake byte; a full pipe is already a
  /// wakeup, so a dropped write is harmless).
  void notify() const;
  /// Consumes pending wakeup bytes (acceptor thread only).  True when any
  /// of them was kDrain.
  bool drain() const;

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace tp::net
