#include "src/net/tcp_server.h"

#include <chrono>
#include <poll.h>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/error.h"

namespace tp::net {

using Clock = std::chrono::steady_clock;

namespace {

std::vector<i64> request_count_bounds() {
  return {1, 4, 16, 64, 256, 1024, 4096};
}

i64 us_between(Clock::time_point from, Clock::time_point to) {
  const i64 us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : us;
}

}  // namespace

/// One live connection.  The reader runs in conn_main (the Conn's own
/// thread), the writer in a nested thread; `mu` guards the slot window
/// between them.  `finished` (guarded by the server's conns_mu_) tells
/// the acceptor the thread is joinable.
struct TcpServer::Conn {
  Conn(Socket s, i64 conn_id) : sock(std::move(s)), id(conn_id) {}

  Socket sock;
  i64 id;
  Clock::time_point opened = Clock::now();
  i64 requests = 0;  ///< reader thread only

  Mutex mu;
  CondVar slots_nonempty;
  CondVar slots_nonfull;
  std::deque<Slot> slots TP_GUARDED_BY(mu);
  bool reader_done TP_GUARDED_BY(mu) = false;
  bool write_failed TP_GUARDED_BY(mu) = false;

  Thread thread;
  bool finished = false;  ///< guarded by TcpServer::conns_mu_
};

TcpServer::TcpServer(service::Engine& engine, TcpServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      conn_lifetime_us_(obs::duration_bucket_bounds()),
      conn_requests_(request_count_bounds()) {
  TP_REQUIRE(config_.max_conns >= 1, "max_conns must be >= 1");
  TP_REQUIRE(config_.max_line_bytes >= 64,
             "max_line_bytes must be >= 64 (a minimal request is longer)");
  TP_REQUIRE(config_.pipeline_window >= 1, "pipeline_window must be >= 1");
}

TcpServer::~TcpServer() {
  if (!started_) return;
  request_drain();
  wait_until_drained();
  acceptor_.join();
}

void TcpServer::start() {
  TP_REQUIRE(!started_, "TcpServer::start called twice");
  listener_.emplace(config_.host, config_.port);
  started_ = true;
  acceptor_ = Thread([this] { acceptor_loop(); });
}

std::string TcpServer::address() const {
  TP_REQUIRE(listener_.has_value(), "server not started");
  return listener_->address();
}

u16 TcpServer::port() const {
  TP_REQUIRE(listener_.has_value(), "server not started");
  return listener_->port();
}

void TcpServer::request_drain() {
  draining_.store(true, std::memory_order_relaxed);
  wake_.notify();
}

void TcpServer::wait_until_drained() {
  if (!started_) return;
  MutexLock lock(conns_mu_);
  while (!drained_) conns_cv_.wait(lock);
}

TcpServerStats TcpServer::stats() const {
  const MutexLock lock(stats_mu_);
  return stats_;
}

service::ListenerStatus TcpServer::listener_status() const {
  service::ListenerStatus out;
  out.configured = true;
  out.address = started_ ? listener_->address()
                         : config_.host + ":" + std::to_string(config_.port);
  const bool draining = draining_.load(std::memory_order_relaxed);
  out.state = draining ? "draining" : "accepting";
  const MutexLock lock(stats_mu_);
  out.open_connections = stats_.open_connections;
  out.draining_connections = draining ? stats_.open_connections : 0;
  out.accepted = stats_.accepted;
  out.rejected = stats_.rejected;
  return out;
}

void TcpServer::acceptor_loop() {
  for (;;) {
    pollfd fds[2] = {{listener_->fd(), POLLIN, 0},
                     {wake_.read_fd(), POLLIN, 0}};
    const int rc = poll(fds, 2, 250);
    reap_finished();
    // The wake pipe carries both reap nudges and — from signal handlers
    // writing kDrain on drain_wakeup_fd() — drain requests.
    if (rc > 0 && (fds[1].revents & POLLIN) != 0 && wake_.drain())
      draining_.store(true, std::memory_order_relaxed);
    if (draining_.load(std::memory_order_relaxed)) break;
    if (rc <= 0 || (fds[0].revents & POLLIN) == 0) continue;

    Socket sock = listener_->accept_connection();
    if (!sock.valid()) continue;

    i64 conn_id = 0;
    bool over_limit = false;
    {
      const MutexLock lock(stats_mu_);
      if (stats_.open_connections >= config_.max_conns) {
        over_limit = true;
        ++stats_.rejected;
      } else {
        ++stats_.accepted;
        ++stats_.open_connections;
        if (stats_.open_connections > stats_.peak_connections)
          stats_.peak_connections = stats_.open_connections;
        conn_id = stats_.accepted;
      }
    }
    if (over_limit) {
      // One structured refusal line, then close: a client sees why it was
      // turned away instead of a bare RST.
      const std::string reply =
          service::response_to_json(
              obs::JsonValue(),
              service::error_response(
                  "connection limit reached (max_conns=" +
                  std::to_string(config_.max_conns) + ")"))
              .dump() +
          "\n";
      sock.write_all(reply);
      continue;  // ~Socket closes
    }

    auto conn = std::make_shared<Conn>(std::move(sock), conn_id);
    conn->thread = Thread([this, conn] { conn_main(conn); });
    const MutexLock lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }

  // Drain: no new connections, then stop every reader.  Writers finish
  // and flush whatever was accepted before the drain began.
  listener_->close();
  {
    const MutexLock lock(conns_mu_);
    for (const auto& conn : conns_)
      if (!conn->finished) conn->sock.shutdown_read();
  }
  {
    MutexLock lock(conns_mu_);
    for (;;) {
      bool all_finished = true;
      for (const auto& conn : conns_)
        if (!conn->finished) {
          all_finished = false;
          break;
        }
      if (all_finished) break;
      conns_cv_.wait(lock);
    }
  }
  reap_finished();
  {
    const MutexLock lock(conns_mu_);
    drained_ = true;
  }
  conns_cv_.notify_all();
}

void TcpServer::reap_finished() {
  std::vector<std::shared_ptr<Conn>> done;
  {
    const MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished) {
        done.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside conns_mu_: a finished thread exits momentarily, but
  // there is no reason to hold the lock while it does.
  for (const auto& conn : done) conn->thread.join();
}

void TcpServer::conn_main(std::shared_ptr<Conn> conn) {
  Thread writer([this, &conn] { writer_loop(*conn); });

  LineBuffer lines(config_.max_line_bytes);
  char buf[16384];
  i64 line_no = 0;
  bool stop = false;
  while (!stop) {
    const i64 got = conn->sock.read_some(buf, sizeof buf);
    if (got <= 0) break;
    {
      const MutexLock lock(stats_mu_);
      stats_.bytes_in += got;
    }
    lines.feed(buf, static_cast<std::size_t>(got));
    while (auto line = lines.next_line()) {
      if (!process_line(*conn, *line, ++line_no)) {
        stop = true;
        break;
      }
    }
  }
  if (!stop) {
    // getline parity: EOF (clean close, half-close, or drain-forced
    // shutdown_read) still answers a final unterminated line.
    if (auto residual = lines.take_residual())
      process_line(*conn, *residual, ++line_no);
  }

  {
    const MutexLock lock(conn->mu);
    conn->reader_done = true;
  }
  conn->slots_nonempty.notify_all();
  writer.join();

  const i64 lifetime_us = us_between(conn->opened, Clock::now());
  {
    const MutexLock lock(stats_mu_);
    --stats_.open_connections;
    conn_lifetime_us_.record(lifetime_us);
    conn_requests_.record(conn->requests);
  }
  obs::Tracer& tracer = obs::tracer();
  if (tracer.enabled())
    tracer.complete("conn " + std::to_string(conn->id), lifetime_us * 1000,
                    "net");

  {
    const MutexLock lock(conns_mu_);
    conn->finished = true;
  }
  conns_cv_.notify_all();
  wake_.notify();  // let the acceptor reap without waiting for its tick
}

bool TcpServer::process_line(Conn& conn, const LineBuffer::Line& line,
                             i64 line_no) {
  // Blank lines advance the line number (the default request id) but are
  // not requests — same skip as the stdio front-ends.
  if (!line.oversized &&
      line.text.find_first_not_of(" \t\r") == std::string::npos)
    return true;

  ++conn.requests;
  {
    const MutexLock lock(stats_mu_);
    ++stats_.requests;
    if (line.oversized) ++stats_.oversized_lines;
  }

  Slot slot;
  bool keep_reading = true;
  if (line.oversized) {
    slot.id = salvage_id_prefix(line.text, line_no);
    slot.rendered = service::response_to_json(
        slot.id,
        service::error_response(
            "oversized request line: exceeded max_line_bytes=" +
            std::to_string(config_.max_line_bytes) +
            " and was discarded"));
  } else {
    try {
      const obs::JsonValue doc = obs::parse_json(line.text);
      if (service::is_admin_op(doc)) {
        if (const obs::JsonValue* client_id = doc.find("id"))
          slot.id = *client_id;
        else
          slot.id = obs::JsonValue(line_no);
        bool quit = false;
        {
          // One registry writer at a time: metricsz folds engine AND
          // server counters into the single-writer registry, and several
          // connection threads can carry admin ops concurrently.
          const MutexLock lock(admin_mu_);
          if (doc.find("op")->as_string() == "metricsz")
            publish_stats_locked();
          slot.rendered = service::handle_admin(engine_, doc, slot.id, &quit);
        }
        if (quit) {
          // quitz over TCP drains the whole server, not just this
          // connection: its response is staged first, then intake stops.
          request_drain();
          keep_reading = false;
        }
      } else {
        service::BatchRequest req = service::parse_request_doc(doc, line_no);
        slot.id = std::move(req.id);
        if (draining_.load(std::memory_order_relaxed)) {
          {
            const MutexLock lock(stats_mu_);
            ++stats_.drain_rejects;
          }
          slot.rendered = service::response_to_json(
              slot.id,
              service::error_response(
                  "server draining: request rejected, retry elsewhere"));
        } else {
          slot.ticket = engine_.try_submit(req.request);
        }
      }
    } catch (const Error& e) {
      {
        const MutexLock lock(stats_mu_);
        ++stats_.parse_errors;
      }
      slot.id = service::salvage_request_id(line.text, line_no);
      slot.rendered =
          service::response_to_json(slot.id, service::error_response(e.what()));
    }
  }

  if (!push_slot(conn, std::move(slot))) return false;
  return keep_reading;
}

bool TcpServer::push_slot(Conn& conn, Slot slot) {
  {
    MutexLock lock(conn.mu);
    // Per-connection backpressure: a full window blocks the reader (and
    // therefore stops consuming the socket) until the writer catches up.
    while (conn.slots.size() >= config_.pipeline_window && !conn.write_failed)
      conn.slots_nonfull.wait(lock);
    if (conn.write_failed) return false;
    conn.slots.push_back(std::move(slot));
  }
  conn.slots_nonempty.notify_one();
  return true;
}

void TcpServer::writer_loop(Conn& conn) {
  for (;;) {
    Slot slot;
    {
      MutexLock lock(conn.mu);
      while (conn.slots.empty() && !conn.reader_done)
        conn.slots_nonempty.wait(lock);
      if (conn.slots.empty()) break;  // reader done and fully flushed
      slot = std::move(conn.slots.front());
      conn.slots.pop_front();
    }
    conn.slots_nonfull.notify_one();

    bool overload = false;
    obs::JsonValue reply;
    if (slot.rendered) {
      reply = std::move(*slot.rendered);
    } else {
      const service::Response response = slot.ticket->wait();
      overload = response.overload;
      reply = service::response_to_json(slot.id, response);
    }
    std::string text = reply.dump();
    text.push_back('\n');
    const bool sent = conn.sock.write_all(text);
    {
      const MutexLock lock(stats_mu_);
      if (sent) {
        ++stats_.responses;
        stats_.bytes_out += static_cast<i64>(text.size());
      }
      if (overload) ++stats_.overload_rejects;
    }
    if (!sent) {
      // Peer is gone.  Unstick the reader (it may be blocked on a full
      // window or a socket read) and stop; unsent tickets are abandoned —
      // the engine fulfills them regardless, nobody waits.
      {
        const MutexLock lock(conn.mu);
        conn.write_failed = true;
        conn.slots.clear();
      }
      conn.slots_nonfull.notify_all();
      conn.sock.shutdown_read();
      return;
    }
  }
  // Clean end of stream: every staged response was written.  FIN so the
  // client's final read sees EOF instead of a reset.
  conn.sock.shutdown_write();
}

void TcpServer::publish_stats() {
  const MutexLock lock(admin_mu_);
  publish_stats_locked();
}

void TcpServer::publish_stats_locked() {
  obs::MetricsRegistry& reg = obs::registry();
  if (!reg.enabled()) return;

  TcpServerStats cur;
  obs::HistogramData lifetime_delta(obs::duration_bucket_bounds());
  obs::HistogramData requests_delta(request_count_bounds());
  {
    const MutexLock lock(stats_mu_);
    cur = stats_;
    std::swap(lifetime_delta, conn_lifetime_us_);
    std::swap(requests_delta, conn_requests_);
  }

  const auto publish = [&reg](const char* name, i64 now, i64& last) {
    if (now > last) reg.add(reg.counter(name), now - last);
    last = now;
  };
  publish("net.accepted", cur.accepted, published_.accepted);
  publish("net.rejected_conns", cur.rejected, published_.rejected);
  publish("net.requests", cur.requests, published_.requests);
  publish("net.responses", cur.responses, published_.responses);
  publish("net.bytes_in", cur.bytes_in, published_.bytes_in);
  publish("net.bytes_out", cur.bytes_out, published_.bytes_out);
  publish("net.oversized_lines", cur.oversized_lines,
          published_.oversized_lines);
  publish("net.parse_errors", cur.parse_errors, published_.parse_errors);
  publish("net.overload_rejects", cur.overload_rejects,
          published_.overload_rejects);
  publish("net.drain_rejects", cur.drain_rejects, published_.drain_rejects);

  reg.set(reg.gauge("net.open_connections"), cur.open_connections);
  reg.set_max(reg.gauge("net.peak_connections"), cur.peak_connections);

  reg.merge_histogram("net.conn_lifetime_us", lifetime_delta);
  reg.merge_histogram("net.conn_requests", requests_delta);
}

}  // namespace tp::net
