// TCP front-end for the query engine: the JSONL wire schema of
// batch/serve (jsonl.h), line-framed over sockets, many clients at once.
//
// Shape: a thread-per-connection acceptor.  Each accepted socket gets one
// connection thread that reads and parses request lines, plus one writer
// thread that waits tickets and sends responses — so responses always go
// out in request order (the protocol has no other way to match pipelined
// requests to answers) while the engine computes them in any order.
//
// Backpressure, two layers:
//   - per connection: a bounded slot window between reader and writer.
//     When a client pipelines faster than its responses drain, the reader
//     blocks instead of buffering — the TCP receive window fills and the
//     client is flow-controlled by the kernel, not by server memory.
//   - engine-wide: requests are submitted with Engine::try_submit, which
//     never blocks the socket loop; a full submission queue answers
//     {"ok":false, "error":"overloaded: ...", "overload":true} instead.
//
// Hostile input: lines longer than max_line_bytes are answered with a
// structured error (request id salvaged from the truncated prefix) and
// the remainder is discarded — the connection survives.  A half-closed
// socket behaves exactly like stdio EOF, including the final unterminated
// line (LineBuffer::take_residual).
//
// Graceful drain (SIGTERM via drain_wakeup_fd(), {"op":"quitz"}, or the
// destructor): stop accepting, stop reading every socket, finish and
// flush all in-flight responses, FIN, close.  A client never sees a torn
// response line.  Requests parsed after the drain began get a structured
// "server draining" rejection.
//
// Determinism contract: query responses remain a pure function of the
// request — byte-identical to `torusplace batch` / `serve --stdio` for
// the same request stream (tested in tests/test_net.cpp).

#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/line_buffer.h"
#include "src/net/socket.h"
#include "src/obs/registry.h"
#include "src/service/admin.h"
#include "src/service/engine.h"
#include "src/service/jsonl.h"
#include "src/util/thread_annotations.h"

namespace tp::net {

struct TcpServerConfig {
  std::string host = "127.0.0.1";
  u16 port = 0;                 ///< 0 = ephemeral (see TcpServer::port())
  i64 max_conns = 64;           ///< accepted beyond this are rejected
  std::size_t max_line_bytes = 1 << 20;  ///< request-line guard
  std::size_t pipeline_window = 64;  ///< per-connection reader->writer slots
};

/// Exact point-in-time server counters (see publish_stats for the
/// registry names).
struct TcpServerStats {
  i64 accepted = 0;
  i64 rejected = 0;  ///< connections refused over max_conns
  i64 open_connections = 0;
  i64 peak_connections = 0;
  i64 requests = 0;   ///< non-blank request lines read
  i64 responses = 0;  ///< response lines written
  i64 bytes_in = 0;
  i64 bytes_out = 0;
  i64 oversized_lines = 0;
  i64 parse_errors = 0;
  i64 overload_rejects = 0;  ///< try_submit queue-full rejections
  i64 drain_rejects = 0;     ///< requests refused after drain began
};

class TcpServer {
 public:
  TcpServer(service::Engine& engine, TcpServerConfig config);

  /// Drains (request_drain + wait_until_drained) and joins everything.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the acceptor.  Throws tp::Error when the
  /// address cannot be bound.  Call once.
  void start();

  /// The bound "host:port" / port (ephemeral port 0 resolved).
  std::string address() const;
  u16 port() const;

  /// Begins a graceful drain: stop accepting, stop reading every
  /// connection, finish + flush in-flight responses, close.  Idempotent,
  /// non-blocking, safe from any thread.
  void request_drain();

  /// A file descriptor for SIGTERM handlers: one write() of the byte
  /// WakePipe::kDrain ('q') on it is the async-signal-safe equivalent of
  /// request_drain().
  int drain_wakeup_fd() const { return wake_.write_fd(); }

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Blocks until the drain completed (every connection finished and
  /// flushed).  Does not itself start one.
  void wait_until_drained() TP_EXCLUDES(conns_mu_);

  TcpServerStats stats() const TP_EXCLUDES(stats_mu_);

  /// Listener block for statusz (install via
  /// service::set_listener_status_provider; safe from any thread).
  service::ListenerStatus listener_status() const TP_EXCLUDES(stats_mu_);

  /// Publishes counters/gauges/histograms into the global obs registry as
  /// deltas (same contract as Engine::publish_stats).  Serialized
  /// internally against metricsz requests answered on connection threads.
  void publish_stats() TP_EXCLUDES(admin_mu_, stats_mu_);

 private:
  struct Slot {
    obs::JsonValue id;
    std::optional<service::Engine::Ticket> ticket;
    std::optional<obs::JsonValue> rendered;
  };

  struct Conn;

  void acceptor_loop();
  void conn_main(std::shared_ptr<Conn> conn);
  void writer_loop(Conn& conn);
  /// Parses + stages one request line.  False = stop reading (quitz or a
  /// dead writer).
  bool process_line(Conn& conn, const LineBuffer::Line& line, i64 line_no);
  bool push_slot(Conn& conn, Slot slot);
  /// Joins and erases finished connections (acceptor thread only).
  void reap_finished() TP_EXCLUDES(conns_mu_);
  void publish_stats_locked() TP_REQUIRES(admin_mu_);

  service::Engine& engine_;
  TcpServerConfig config_;
  std::optional<Listener> listener_;
  WakePipe wake_;
  Thread acceptor_;
  bool started_ = false;
  std::atomic<bool> draining_{false};

  mutable Mutex conns_mu_;
  CondVar conns_cv_;
  std::vector<std::shared_ptr<Conn>> conns_ TP_GUARDED_BY(conns_mu_);
  bool drained_ TP_GUARDED_BY(conns_mu_) = false;

  mutable Mutex stats_mu_;
  TcpServerStats stats_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData conn_lifetime_us_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData conn_requests_ TP_GUARDED_BY(stats_mu_);

  // Serializes registry writers: metricsz answered on connection threads
  // folds engine + server counters into the single-writer registry, so
  // every such fold (and handle_admin generally) happens under this lock.
  Mutex admin_mu_;
  TcpServerStats published_ TP_GUARDED_BY(admin_mu_);
};

}  // namespace tp::net
