#include "src/obs/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/util/error.h"

namespace tp::obs {

JsonValue histogram_to_json(const HistogramData& h) {
  JsonValue obj = JsonValue::object();
  obj.set("count", JsonValue(h.count));
  obj.set("sum", JsonValue(h.sum));
  obj.set("min", JsonValue(h.min));
  obj.set("max", JsonValue(h.max));
  obj.set("mean", JsonValue(h.mean()));
  obj.set("p50", JsonValue(h.percentile(0.50)));
  obj.set("p95", JsonValue(h.percentile(0.95)));
  JsonValue bounds = JsonValue::array();
  for (const i64 b : h.bounds) bounds.push_back(JsonValue(b));
  obj.set("bounds", std::move(bounds));
  JsonValue counts = JsonValue::array();
  for (const i64 c : h.counts) counts.push_back(JsonValue(c));
  obj.set("counts", std::move(counts));
  return obj;
}

JsonValue snapshot_to_json(const MetricsSnapshot& snap) {
  JsonValue root = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : snap.counters)
    counters.set(name, JsonValue(v));
  root.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, JsonValue(v));
  root.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : snap.histograms)
    histograms.set(name, histogram_to_json(h));
  root.set("histograms", std::move(histograms));
  return root;
}

std::string stats_json_line(const MetricsSnapshot& snap) {
  return snapshot_to_json(snap).dump();
}

void export_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << stats_json_line(snap) << "\n";
}

void export_json(const MetricsSnapshot& snap, const std::string& path,
                 bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  TP_REQUIRE(out.good(), "cannot open stats output file: " + path);
  export_json(snap, out);
  TP_REQUIRE(out.good(), "failed writing stats output file: " + path);
}

void export_chrome_trace(const Tracer& tr, std::ostream& os) {
  os << "{\"traceEvents\":[";
  const std::vector<TraceEvent> events = tr.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "{\"name\":" << json_quote(e.name);
    if (!e.cat.empty()) os << ",\"cat\":" << json_quote(e.cat);
    os << ",\"ph\":\"" << e.phase << "\"";
    // trace_event timestamps are microseconds; keep ns resolution via the
    // fractional part (fixed notation — the default ostream precision
    // would round large timestamps).
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%lld.%03lld",
                  static_cast<long long>(e.ts_ns / 1000),
                  static_cast<long long>(e.ts_ns % 1000));
    os << ",\"ts\":" << ts;
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void export_chrome_trace(const Tracer& tr, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  TP_REQUIRE(out.good(), "cannot open trace output file: " + path);
  export_chrome_trace(tr, out);
  TP_REQUIRE(out.good(), "failed writing trace output file: " + path);
}

}  // namespace tp::obs
