#include "src/obs/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/util/error.h"

namespace tp::obs {

JsonValue histogram_to_json(const HistogramData& h) {
  JsonValue obj = JsonValue::object();
  obj.set("count", JsonValue(h.count));
  obj.set("sum", JsonValue(h.sum));
  obj.set("min", JsonValue(h.min));
  obj.set("max", JsonValue(h.max));
  obj.set("mean", JsonValue(h.mean()));
  obj.set("p50", JsonValue(h.percentile(0.50)));
  obj.set("p95", JsonValue(h.percentile(0.95)));
  JsonValue bounds = JsonValue::array();
  for (const i64 b : h.bounds) bounds.push_back(JsonValue(b));
  obj.set("bounds", std::move(bounds));
  JsonValue counts = JsonValue::array();
  for (const i64 c : h.counts) counts.push_back(JsonValue(c));
  obj.set("counts", std::move(counts));
  return obj;
}

JsonValue snapshot_to_json(const MetricsSnapshot& snap) {
  JsonValue root = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : snap.counters)
    counters.set(name, JsonValue(v));
  root.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, JsonValue(v));
  root.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : snap.histograms)
    histograms.set(name, histogram_to_json(h));
  root.set("histograms", std::move(histograms));
  return root;
}

std::string stats_json_line(const MetricsSnapshot& snap) {
  return snapshot_to_json(snap).dump();
}

void export_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << stats_json_line(snap) << "\n";
}

void export_json(const MetricsSnapshot& snap, const std::string& path,
                 bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  TP_REQUIRE(out.good(), "cannot open stats output file: " + path);
  export_json(snap, out);
  TP_REQUIRE(out.good(), "failed writing stats output file: " + path);
}

void export_chrome_trace(const Tracer& tr, std::ostream& os) {
  os << "{\"traceEvents\":[";
  const std::vector<TraceEvent> events = tr.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "{\"name\":" << json_quote(e.name);
    if (!e.cat.empty()) os << ",\"cat\":" << json_quote(e.cat);
    os << ",\"ph\":\"" << e.phase << "\"";
    // trace_event timestamps are microseconds; keep ns resolution via the
    // fractional part (fixed notation — the default ostream precision
    // would round large timestamps).
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%lld.%03lld",
                  static_cast<long long>(e.ts_ns / 1000),
                  static_cast<long long>(e.ts_ns % 1000));
    os << ",\"ts\":" << ts;
    if (e.phase == 'X') {
      char dur[40];
      std::snprintf(dur, sizeof(dur), "%lld.%03lld",
                    static_cast<long long>(e.dur_ns / 1000),
                    static_cast<long long>(e.dur_ns % 1000));
      os << ",\"dur\":" << dur;
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (e.phase == 'C')
      os << ",\"args\":{\"value\":" << e.value << "}";
    os << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void export_chrome_trace(const Tracer& tr, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  TP_REQUIRE(out.good(), "cannot open trace output file: " + path);
  export_chrome_trace(tr, out);
  TP_REQUIRE(out.good(), "failed writing trace output file: " + path);
}

namespace {

JsonValue window_stats_to_json(const WindowStats& w) {
  JsonValue obj = JsonValue::object();
  obj.set("count", JsonValue(w.count));
  obj.set("sum", JsonValue(w.sum));
  obj.set("min", JsonValue(w.count > 0 ? w.min : 0));
  obj.set("max", JsonValue(w.count > 0 ? w.max : 0));
  return obj;
}

}  // namespace

void export_link_jsonl(const LinkProbe& probe, const LinkExportMeta& meta,
                       std::ostream& os) {
  JsonValue header = JsonValue::object();
  header.set("type", JsonValue("run"));
  header.set("run", JsonValue(meta.run));
  header.set("cycles", JsonValue(meta.cycles));
  header.set("flits_per_message", JsonValue(meta.flits_per_message));
  header.set("links", JsonValue(probe.num_links()));
  header.set("active_links", JsonValue(probe.active_links()));
  header.set("dims", JsonValue(static_cast<i64>(probe.dims())));
  header.set("window_width",
             JsonValue(probe.forwards_series().window_width()));
  header.set("windows",
             JsonValue(static_cast<i64>(probe.forwards_series().num_windows())));
  os << header.dump() << "\n";

  for (i64 e = 0; e < probe.num_links(); ++e) {
    const LinkCounters& c = probe.link(e);
    if (c.forwards == 0 && c.busy_cycles == 0 && c.peak_queue == 0 &&
        c.stalls == 0)
      continue;
    JsonValue line = JsonValue::object();
    line.set("type", JsonValue("link"));
    line.set("edge", JsonValue(e));
    line.set("dim", JsonValue(static_cast<i64>(probe.dim_of(e))));
    line.set("dir", JsonValue(probe.is_positive(e) ? "+" : "-"));
    if (static_cast<std::size_t>(e) < meta.edge_labels.size())
      line.set("label", JsonValue(meta.edge_labels[static_cast<std::size_t>(e)]));
    line.set("forwards", JsonValue(c.forwards));
    line.set("busy_cycles", JsonValue(c.busy_cycles));
    line.set("peak_queue", JsonValue(c.peak_queue));
    line.set("stalls", JsonValue(c.stalls));
    os << line.dump() << "\n";
  }

  const TimeSeries& fw = probe.forwards_series();
  const TimeSeries& qd = probe.queue_series();
  const TimeSeries& st = probe.stall_series();
  for (std::size_t i = 0; i < fw.num_windows(); ++i) {
    JsonValue line = JsonValue::object();
    line.set("type", JsonValue("window"));
    line.set("index", JsonValue(static_cast<i64>(i)));
    line.set("start", JsonValue(fw.window_start(i)));
    line.set("width", JsonValue(fw.window_width()));
    line.set("forwards", window_stats_to_json(fw.window(i)));
    // The three series share tick = cycle but can merge at different
    // moments; report the companions only while their widths agree (they
    // re-converge after each record past the buffer).
    if (qd.window_width() == fw.window_width() && i < qd.num_windows())
      line.set("queue", window_stats_to_json(qd.window(i)));
    if (st.window_width() == fw.window_width() && i < st.num_windows())
      line.set("stalls", window_stats_to_json(st.window(i)));
    os << line.dump() << "\n";
  }
}

void export_link_jsonl(const LinkProbe& probe, const LinkExportMeta& meta,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  TP_REQUIRE(out.good(), "cannot open link stats output file: " + path);
  export_link_jsonl(probe, meta, out);
  TP_REQUIRE(out.good(), "failed writing link stats output file: " + path);
}

}  // namespace tp::obs
