// Structured export of metrics snapshots and traces.
//
//   export_json(snapshot, path)        one-line JSON object (JSONL-ready)
//   export_chrome_trace(tracer, path)  Chrome trace_event JSON for
//                                      chrome://tracing / Perfetto
//
// The stats line serializes counters and gauges as integers and each
// histogram as {count,sum,min,max,mean,p50,p95,bounds,counts}, so a dump
// is self-describing and percentile summaries survive without the raw
// samples.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/linkprobe.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace tp::obs {

/// The snapshot as a JSON document: {"counters":{...},"gauges":{...},
/// "histograms":{...}}.
JsonValue snapshot_to_json(const MetricsSnapshot& snap);

/// One histogram as a JSON object (shared with SimMetrics reporting).
JsonValue histogram_to_json(const HistogramData& h);

/// Compact single-line serialization of the snapshot.
std::string stats_json_line(const MetricsSnapshot& snap);

/// Writes the snapshot as one JSON line.  With append = true the line is
/// added to the end of an existing file, turning repeated dumps into a
/// JSONL stream; otherwise the file is replaced (a 1-line JSONL).
void export_json(const MetricsSnapshot& snap, const std::string& path,
                 bool append = false);
void export_json(const MetricsSnapshot& snap, std::ostream& os);

/// Writes the tracer's buffer in Chrome trace format:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
void export_chrome_trace(const Tracer& tracer, const std::string& path);
void export_chrome_trace(const Tracer& tracer, std::ostream& os);

/// Run context for a link-probe export (the probe itself carries no torus
/// knowledge; the caller supplies human-readable labels when it has them).
struct LinkExportMeta {
  std::string run;            ///< free-form run description
  i64 cycles = 0;             ///< makespan of the run
  i64 flits_per_message = 1;  ///< serialization factor
  /// Optional "(tail)->(head)" label per edge id; empty = no labels.
  std::vector<std::string> edge_labels;
};

/// Writes a LinkProbe as JSONL (schema in docs/observability.md): one
/// "run" header line, one "link" line per link with recorded activity
/// (idle links are skipped; the header carries the total and active
/// counts), and one "window" line per time-series window.  Every line is
/// a self-contained JSON object that parse_json() round-trips.
void export_link_jsonl(const LinkProbe& probe, const LinkExportMeta& meta,
                       const std::string& path);
void export_link_jsonl(const LinkProbe& probe, const LinkExportMeta& meta,
                       std::ostream& os);

}  // namespace tp::obs
