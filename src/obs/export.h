// Structured export of metrics snapshots and traces.
//
//   export_json(snapshot, path)        one-line JSON object (JSONL-ready)
//   export_chrome_trace(tracer, path)  Chrome trace_event JSON for
//                                      chrome://tracing / Perfetto
//
// The stats line serializes counters and gauges as integers and each
// histogram as {count,sum,min,max,mean,p50,p95,bounds,counts}, so a dump
// is self-describing and percentile summaries survive without the raw
// samples.

#pragma once

#include <iosfwd>
#include <string>

#include "src/obs/json.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace tp::obs {

/// The snapshot as a JSON document: {"counters":{...},"gauges":{...},
/// "histograms":{...}}.
JsonValue snapshot_to_json(const MetricsSnapshot& snap);

/// One histogram as a JSON object (shared with SimMetrics reporting).
JsonValue histogram_to_json(const HistogramData& h);

/// Compact single-line serialization of the snapshot.
std::string stats_json_line(const MetricsSnapshot& snap);

/// Writes the snapshot as one JSON line.  With append = true the line is
/// added to the end of an existing file, turning repeated dumps into a
/// JSONL stream; otherwise the file is replaced (a 1-line JSONL).
void export_json(const MetricsSnapshot& snap, const std::string& path,
                 bool append = false);
void export_json(const MetricsSnapshot& snap, std::ostream& os);

/// Writes the tracer's buffer in Chrome trace format:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
void export_chrome_trace(const Tracer& tracer, const std::string& path);
void export_chrome_trace(const Tracer& tracer, std::ostream& os);

}  // namespace tp::obs
