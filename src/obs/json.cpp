#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

#include "src/util/error.h"

namespace tp::obs {

bool JsonValue::as_bool() const {
  TP_REQUIRE(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  TP_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return num_;
}

i64 JsonValue::as_int() const {
  TP_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
  return static_cast<i64>(std::llround(num_));
}

const std::string& JsonValue::as_string() const {
  TP_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
  return str_;
}

void JsonValue::push_back(JsonValue v) {
  TP_REQUIRE(kind_ == Kind::Array, "push_back on a non-array JSON value");
  items_.push_back(std::move(v));
}

const std::vector<JsonValue>& JsonValue::items() const {
  TP_REQUIRE(kind_ == Kind::Array, "items() on a non-array JSON value");
  return items_;
}

void JsonValue::set(std::string key, JsonValue v) {
  TP_REQUIRE(kind_ == Kind::Object, "set() on a non-object JSON value");
  for (auto& [k, existing] : members_)
    if (k == key) {
      existing = std::move(v);
      return;
    }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  TP_REQUIRE(kind_ == Kind::Object, "find() on a non-object JSON value");
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  TP_REQUIRE(kind_ == Kind::Object, "members() on a non-object JSON value");
  return members_;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number: {
      char buf[40];
      if (is_int_ || (std::nearbyint(num_) == num_ &&
                      std::fabs(num_) < 9.007199254740992e15)) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
      }
      out += buf;
      break;
    }
    case Kind::String:
      out += json_quote(str_);
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += json_quote(members_[i].first);
        out += ':';
        members_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    TP_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (no surrogate pairing; the
          // exporters never emit any).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double value = std::strtod(token.c_str(), &endp);
    if (endp != token.c_str() + token.size()) fail("malformed number");
    if (integral) return JsonValue(static_cast<i64>(value));
    return JsonValue(value);
  }
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace tp::obs
