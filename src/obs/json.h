// Minimal JSON value, writer, and parser for the observability subsystem.
//
// The exporters need to *emit* JSON (stats dumps, Chrome traces) and the
// tooling needs to *read it back* (export_results merges stats dumps into
// CSV; tests round-trip what the exporters wrote).  A ~200-line recursive
// descent parser keeps the repo dependency-free; this is not a general
// JSON library — numbers are doubles (integers up to 2^53 survive exactly,
// which covers every counter this library can realistically accumulate).

#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/math.h"

namespace tp::obs {

/// A parsed or under-construction JSON document node.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::Number), num_(n) {}
  JsonValue(i64 n)
      : kind_(Kind::Number), num_(static_cast<double>(n)), is_int_(true) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Value accessors; each throws tp::Error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  i64 as_int() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(JsonValue v);
  const std::vector<JsonValue>& items() const;

  /// Object access.  set() appends or overwrites; find() returns null when
  /// the key is absent.  Member order is preserved (insertion order).
  void set(std::string key, JsonValue v);
  const JsonValue* find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Compact single-line serialization.
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool is_int_ = false;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void dump_to(std::string& out) const;
};

/// Parses one JSON document.  Throws tp::Error on malformed input or
/// trailing garbage.
JsonValue parse_json(std::string_view text);

/// Escapes and quotes a string for direct JSON emission.
std::string json_quote(std::string_view s);

}  // namespace tp::obs
