#include "src/obs/linkprobe.h"

#include "src/util/error.h"

namespace tp::obs {

LinkProbe::LinkProbe(i64 num_directed_edges, i32 dims, i64 window_width,
                     std::size_t window_capacity)
    : dims_(dims),
      links_(static_cast<std::size_t>(num_directed_edges)),
      forwards_series_(window_width, window_capacity),
      queue_series_(window_width, window_capacity),
      stall_series_(window_width, window_capacity) {
  TP_REQUIRE(num_directed_edges >= 0, "negative link count");
  TP_REQUIRE(dims >= 1, "link probe needs at least one dimension");
  TP_REQUIRE(num_directed_edges % (2 * dims) == 0,
             "link count is not 2 * dims * nodes");
}

std::vector<double> LinkProbe::forwards_table() const {
  std::vector<double> out(links_.size(), 0.0);
  for (std::size_t i = 0; i < links_.size(); ++i)
    out[i] = static_cast<double>(links_[i].forwards);
  return out;
}

std::vector<double> LinkProbe::utilization_table(i64 cycles) const {
  const double denom = static_cast<double>(cycles > 0 ? cycles : 1);
  std::vector<double> out(links_.size(), 0.0);
  for (std::size_t i = 0; i < links_.size(); ++i)
    out[i] = static_cast<double>(links_[i].busy_cycles) / denom;
  return out;
}

i64 LinkProbe::total_forwards() const {
  i64 n = 0;
  for (const LinkCounters& c : links_) n += c.forwards;
  return n;
}

i64 LinkProbe::total_stalls() const {
  i64 n = 0;
  for (const LinkCounters& c : links_) n += c.stalls;
  return n;
}

i64 LinkProbe::active_links() const {
  i64 n = 0;
  for (const LinkCounters& c : links_)
    if (c.forwards > 0 || c.busy_cycles > 0 || c.peak_queue > 0 ||
        c.stalls > 0)
      ++n;
  return n;
}

void LinkProbe::reset() {
  for (LinkCounters& c : links_) c = LinkCounters{};
  forwards_series_.clear();
  queue_series_.clear();
  stall_series_.clear();
}

}  // namespace tp::obs
