// Per-directed-link telemetry accumulators.
//
// A LinkProbe attributes simulator activity to individual directed links:
// for every link it accumulates busy cycles, messages forwarded, the peak
// queue depth seen, and stall cycles (cycles a message waited behind a
// busy link).  Alongside the per-link totals it keeps three bounded
// windowed TimeSeries (forwards, queue depths, stalls, tick = cycle) so
// the run's time profile survives without per-cycle storage.
//
// The probe deliberately depends only on tp_util: links are identified by
// their dense edge ids (EdgeId = node * 2d + 2*dim + dir_bit, see
// torus/torus.h), so dimension and direction attribution needs only the
// dimension count, and the LoadMap conversion lives with the analysis code
// (analysis/imbalance.h: probe_load_map) instead of creating an obs->load
// dependency cycle.
//
// Hot-path contract: the simulators carry a `LinkProbe*` that is null when
// probing is off, so a disabled run costs one well-predicted null check
// per instrumentation site (verified against bench_perf, see
// docs/observability.md).  Methods assume the probe is live; they do not
// re-check an enabled flag.  Not thread-safe — one probe per simulator
// run.

#pragma once

#include <cstddef>
#include <vector>

#include "src/obs/timeseries.h"
#include "src/util/math.h"

namespace tp::obs {

/// Totals for one directed link.
struct LinkCounters {
  i64 forwards = 0;     ///< messages (or flits, wormhole) sent across
  i64 busy_cycles = 0;  ///< cycles the link spent transmitting
  i64 peak_queue = 0;   ///< deepest backlog observed at the link
  i64 stalls = 0;       ///< message-cycles spent waiting behind the link
};

class LinkProbe {
 public:
  /// `num_directed_edges` and `dims` come from the torus being simulated
  /// (Torus::num_directed_edges() / dims()); the probe only needs the
  /// numbers, not the torus.
  LinkProbe(i64 num_directed_edges, i32 dims, i64 window_width = 16,
            std::size_t window_capacity = 64);

  // --- hot path (probe known live) ---------------------------------------

  /// One transmission across `edge` starting at `cycle`, occupying the
  /// link for `busy` cycles (the flit-serialization factor).
  void on_forward(i64 edge, i64 cycle, i64 busy = 1) {
    LinkCounters& c = links_[static_cast<std::size_t>(edge)];
    ++c.forwards;
    c.busy_cycles += busy;
    forwards_series_.record(cycle, 1);
  }

  /// Backlog at `edge` reached `depth` (records the per-link peak and the
  /// windowed depth distribution).
  void on_queue_depth(i64 edge, i64 cycle, i64 depth) {
    LinkCounters& c = links_[static_cast<std::size_t>(edge)];
    if (depth > c.peak_queue) c.peak_queue = depth;
    queue_series_.record(cycle, depth);
  }

  /// `waiting` messages spent `cycle` queued behind a busy `edge`.
  void on_stall(i64 edge, i64 cycle, i64 waiting = 1) {
    links_[static_cast<std::size_t>(edge)].stalls += waiting;
    stall_series_.record(cycle, waiting);
  }

  // --- attribution --------------------------------------------------------

  i64 num_links() const { return static_cast<i64>(links_.size()); }
  i32 dims() const { return dims_; }

  /// Dimension the link travels along (decoded from the edge id).
  i32 dim_of(i64 edge) const {
    return static_cast<i32>((edge % (2 * dims_)) / 2);
  }
  /// True for the + direction, false for the - direction.
  bool is_positive(i64 edge) const { return (edge & 1) == 0; }

  // --- snapshot -----------------------------------------------------------

  const LinkCounters& link(i64 edge) const {
    return links_[static_cast<std::size_t>(edge)];
  }
  const std::vector<LinkCounters>& links() const { return links_; }

  /// Per-link forwards as a flat table indexed by edge id — the
  /// LoadMap-compatible view (measured counterpart of the analytic E(l);
  /// see analysis/imbalance.h probe_load_map).
  std::vector<double> forwards_table() const;
  /// Per-link utilization: busy_cycles / max(cycles, 1).
  std::vector<double> utilization_table(i64 cycles) const;

  const TimeSeries& forwards_series() const { return forwards_series_; }
  const TimeSeries& queue_series() const { return queue_series_; }
  const TimeSeries& stall_series() const { return stall_series_; }

  i64 total_forwards() const;
  i64 total_stalls() const;
  /// Number of links with any recorded activity.
  i64 active_links() const;

  void reset();

 private:
  i32 dims_;
  std::vector<LinkCounters> links_;
  TimeSeries forwards_series_;
  TimeSeries queue_series_;
  TimeSeries stall_series_;
};

}  // namespace tp::obs
