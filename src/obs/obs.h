// Umbrella header for the observability subsystem.
//
//   MetricsRegistry  named counters / gauges / histograms (registry.h)
//   Stopwatch et al. steady_clock timing                  (timer.h)
//   Tracer           Chrome-trace phase spans + counters  (trace.h)
//   LinkProbe        per-directed-link accumulators       (linkprobe.h)
//   TimeSeries       bounded windowed time series         (timeseries.h)
//   export_json / export_chrome_trace / export_link_jsonl (export.h)
//
// Instrumentation idiom — a phase span that both times and traces:
//
//   void NetworkSim::run(...) {
//     TP_OBS_SCOPE("sim.run");          // histogram sim.run_us + trace span
//     ...
//   }
//
// and a named counter bumped from a hot call site:
//
//   TP_OBS_COUNT("router.tie_breaks");              // += 1
//   TP_OBS_COUNT("router.paths_enumerated", n);     // += n
//
// Both compile to the real instrumentation unconditionally; with the
// registry and tracer disabled (the default) they cost a handful of
// branch-predicted no-ops, verified against bench_perf (see
// docs/observability.md).  Naming conventions are documented there too.

#pragma once

#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/linkprobe.h"
#include "src/obs/phase_stack.h"
#include "src/obs/profiler.h"
#include "src/obs/prometheus.h"
#include "src/obs/registry.h"
#include "src/obs/timer.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace tp::obs {

/// RAII phase span: opens a trace span (if the tracer is enabled),
/// records the elapsed time into the histogram `<name>_us` (if the
/// registry is enabled), and pushes the name onto the profiler's phase
/// stack (if profiling is enabled — phase_stack.h).  Inactive when all
/// three are disabled.  Unlike the registry, the profiler is NOT gated
/// on pool workers: kernels running under parallel_for or the service
/// pool are exactly what phase attribution is for.
class Scope {
 public:
  explicit Scope(const char* name, const char* cat = "phase") : name_(name) {
    trace_ = tracer().enabled();
    const bool metrics = registry().enabled();
    active_ = trace_ || metrics;
    if (active_) {
      if (trace_) tracer().begin(name_, cat);
      start_ns_ = Stopwatch::now_ns();
    }
    if (prof::phases_on())
      prof_ = prof::phase_push(name, prof::ct_hash(name));
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (prof_) prof::phase_pop();
    if (!active_) return;
    const i64 us = (Stopwatch::now_ns() - start_ns_) / 1000;
    if (trace_) tracer().end(name_);
    registry().record_duration_us(name_, us);
  }

 private:
  const char* name_;
  i64 start_ns_ = 0;
  bool active_ = false;
  bool trace_ = false;
  bool prof_ = false;
};

}  // namespace tp::obs

#define TP_OBS_CONCAT_INNER(a, b) a##b
#define TP_OBS_CONCAT(a, b) TP_OBS_CONCAT_INNER(a, b)

/// Times and traces the enclosing scope as a named phase.
#define TP_OBS_SCOPE(...) \
  const ::tp::obs::Scope TP_OBS_CONCAT(tp_obs_scope_, __LINE__)(__VA_ARGS__)

/// Adds to a named counter (default increment 1).  The handle is resolved
/// once per call site (function-local static); a disabled registry never
/// reaches the resolution, so the disabled cost is one load + branch.
#define TP_OBS_COUNT(name, ...)                                            \
  do {                                                                     \
    ::tp::obs::MetricsRegistry& tp_obs_reg = ::tp::obs::registry();        \
    if (tp_obs_reg.enabled()) {                                            \
      static const ::tp::obs::CounterHandle tp_obs_h =                     \
          ::tp::obs::registry().counter(name);                             \
      tp_obs_reg.add(tp_obs_h __VA_OPT__(, ) __VA_ARGS__);                 \
    }                                                                      \
  } while (false)
