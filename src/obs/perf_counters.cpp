#include "src/obs/perf_counters.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tp::obs {

const char* perf_counter_name(i32 i) {
  switch (i) {
    case kPerfCycles:
      return "cycles";
    case kPerfInstructions:
      return "instructions";
    case kPerfCacheRefs:
      return "cache_refs";
    case kPerfCacheMisses:
      return "cache_misses";
    case kPerfBranchMisses:
      return "branch_misses";
    default:
      return "?";
  }
}

#ifdef __linux__

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEvents[kNumPerfCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int open_event(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  if (group_fd < 0) attr.disabled = 1;  // the leader gates the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  // pid=0, cpu=-1: this thread, any CPU.
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, 0UL));
}

}  // namespace

bool PerfCounterSet::open() {
  if (is_open()) return true;
  error_.clear();
  const int leader = open_event(kEvents[kPerfCycles], -1);
  if (leader < 0) {
    error_ = std::string("perf_event_open: ") + std::strerror(errno);
    return false;
  }
  group_fd_ = leader;
  fds_[kPerfCycles] = leader;
  value_index_[kPerfCycles] = 0;
  n_open_ = 1;
  for (i32 i = 1; i < kNumPerfCounters; ++i) {
    const int fd = open_event(kEvents[i], group_fd_);
    if (fd < 0) continue;  // partial groups are fine (small PMUs)
    fds_[i] = fd;
    value_index_[i] = n_open_;
    ++n_open_;
  }
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

void PerfCounterSet::close() {
  for (i32 i = 0; i < kNumPerfCounters; ++i) {
    if (fds_[i] >= 0) ::close(fds_[i]);
    fds_[i] = -1;
    value_index_[i] = -1;
  }
  group_fd_ = -1;
  n_open_ = 0;
}

bool PerfCounterSet::read(i64 out[kNumPerfCounters]) {
  for (i32 i = 0; i < kNumPerfCounters; ++i) out[i] = 0;
  if (!is_open()) return false;
  // PERF_FORMAT_GROUP layout: u64 nr, then nr values in creation order.
  u64 buf[1 + kNumPerfCounters] = {};
  const ssize_t n = ::read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(u64))) return false;
  const i64 nr = static_cast<i64>(buf[0]);
  for (i32 i = 0; i < kNumPerfCounters; ++i) {
    const i32 vi = value_index_[i];
    if (vi >= 0 && vi < nr) out[i] = static_cast<i64>(buf[1 + vi]);
  }
  return true;
}

#else  // !__linux__

bool PerfCounterSet::open() {
  error_ = "perf_event_open is Linux-only";
  return false;
}

void PerfCounterSet::close() {}

bool PerfCounterSet::read(i64 out[kNumPerfCounters]) {
  for (i32 i = 0; i < kNumPerfCounters; ++i) out[i] = 0;
  return false;
}

#endif

}  // namespace tp::obs
