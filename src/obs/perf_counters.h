// Hardware performance counters via perf_event_open (Linux).
//
// PerfCounterSet opens one per-thread counter group — cycles (leader),
// instructions, cache references, cache misses, branch misses — and reads
// all of them with a single read() using PERF_FORMAT_GROUP, so a phase
// boundary costs one syscall, not five.
//
// Availability is a runtime property, not a build-time one: unprivileged
// containers (perf_event_paranoid), VMs without a virtualized PMU, and
// non-Linux hosts all fail open().  Callers must treat an unopened set as
// "wall-clock only" and say so in their reports (docs/profiling.md); the
// profiler's feature detection (profiler.cpp) does exactly that.  open()
// never throws — a missing PMU is an environment, not an error.
//
// Threading: a set is bound to the thread that open()ed it (the events
// count that thread's execution only) and must be read and closed from
// that thread.

#pragma once

#include <string>

#include "src/util/math.h"

namespace tp::obs {

/// Indices into the counter value arrays used across the profiler.
enum PerfCounter : i32 {
  kPerfCycles = 0,
  kPerfInstructions = 1,
  kPerfCacheRefs = 2,
  kPerfCacheMisses = 3,
  kPerfBranchMisses = 4,
  kNumPerfCounters = 5,
};

/// Short stable name for counter index i ("cycles", "instructions", ...).
const char* perf_counter_name(i32 i);

class PerfCounterSet {
 public:
  PerfCounterSet() = default;
  ~PerfCounterSet() { close(); }

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// Opens the counter group for the calling thread.  Returns true if at
  /// least the cycles leader opened; individual followers may still be
  /// unavailable (see available()).  On failure the set stays closed and
  /// error() describes why (errno text).
  bool open();

  void close();

  bool is_open() const { return group_fd_ >= 0; }

  /// True if counter index i is live in the group.
  bool available(i32 i) const {
    return i >= 0 && i < kNumPerfCounters && fds_[i] >= 0;
  }

  /// Reads every live counter into out[kNumPerfCounters] (one syscall);
  /// unavailable counters read as 0.  Returns false if the set is closed
  /// or the read failed.
  bool read(i64 out[kNumPerfCounters]);

  /// Why open() failed (empty when open or never attempted).
  const std::string& error() const { return error_; }

 private:
  int fds_[kNumPerfCounters] = {-1, -1, -1, -1, -1};
  int group_fd_ = -1;
  i32 n_open_ = 0;
  // Position of each counter's value in the group read buffer (creation
  // order), or -1 when that counter failed to open.
  i32 value_index_[kNumPerfCounters] = {-1, -1, -1, -1, -1};
  std::string error_;
};

}  // namespace tp::obs
