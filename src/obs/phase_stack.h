// Phase-attribution core: thread-local phase stacks and per-thread
// accumulation tables.
//
// Every instrumented region (TP_OBS_SCOPE / TP_PROF_PHASE) pushes a tag
// onto the calling thread's phase stack when profiling is enabled.  The
// pop accumulates exclusive (self) and inclusive (total) wall-ns — plus
// hardware-counter deltas when a PMU is available — into a per-thread
// open-addressed table keyed by the *path* (the full stack of tags), so
// "load.odr called from plan.measure" and "load.odr called from a
// benchmark" are distinct rows.  Tables are single-writer (the owning
// thread); the profiler merges them across threads at report time
// (profiler.h), matching the registry's single-writer philosophy without
// its pool-worker gate — pool workers DO profile, because kernels are
// exactly what we want attributed.
//
// Thread-count invariance: parallel_for_blocks captures the caller's
// phase path and spawned workers adopt it as an untimed base prefix
// (worker_context.h hooks), so a phase pushed inside a worker reports the
// same path as the caller-inline block.  Base frames are never timed on
// the worker (the caller already owns that time), which keeps calls and
// paths — though not nanoseconds, which genuinely differ — identical
// across thread counts.
//
// Async-signal-safety: the SIGPROF sampling handler (profiler.cpp) runs
// on the interrupted thread itself and only reads the frame the push
// already completed: pushes publish the frame's slot index before the
// release-store of depth, pops retract depth before touching the frame,
// and sample counts land in atomics.  Nothing here takes a lock or
// allocates on the push/pop path after thread registration.
//
// Cost when disabled: one relaxed atomic load and a predicted branch per
// scope (same pattern as the null LinkProbe) — verified by the benchstat
// gates on odr_loads/service_warm_hit.
//
// Phase tags must be string literals (or otherwise immortal): tables
// store the pointers.

#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "src/obs/perf_counters.h"
#include "src/obs/timer.h"
#include "src/util/math.h"

namespace tp::obs::prof {

using u32 = std::uint32_t;

/// Maximum live (timed) stack depth per thread; deeper pushes are counted
/// in depth_overflow and attributed to the parent.
constexpr i32 kMaxPhaseDepth = 16;
/// Maximum path length (adopted base prefix + live frames).
constexpr i32 kMaxPathLen = 2 * kMaxPhaseDepth;
/// Per-thread path table size (power of two) and probe bound.
constexpr u32 kPhaseTableSlots = 512;
constexpr u32 kPhaseProbeLimit = 64;
/// Per-thread SIGPROF sample ring capacity (power of two).
constexpr u32 kSampleRingSlots = 8192;
constexpr u32 kNoSlot = 0xffffffffu;

/// Profiling mode bits in g_modes.
constexpr u32 kPhaseBit = 1u;    ///< phase attribution (push/pop active)
constexpr u32 kSampleBit = 2u;   ///< SIGPROF sampling
constexpr u32 kCounterBit = 4u;  ///< hardware counters at phase bounds

inline std::atomic<u32> g_modes{0};
/// Bumped by every Profiler::start so threads re-arm their samplers.
inline std::atomic<u64> g_sample_epoch{0};
/// Counter reads stop below this path depth (syscall cost vs. phase
/// grain; see docs/profiling.md).
inline std::atomic<i32> g_counter_depth{4};

inline bool phases_on() {
  return (g_modes.load(std::memory_order_relaxed) & kPhaseBit) != 0;
}

/// Compile-time FNV-1a over a string literal (path tags hash by content,
/// so the same name from different translation units merges).
constexpr u64 kHashSeed = 1469598103934665603ull;
constexpr u64 ct_hash(const char* s) {
  u64 h = kHashSeed;
  while (*s != '\0') {
    h ^= static_cast<unsigned char>(*s++);
    h *= 1099511628211ull;
  }
  return h;
}

/// Mixes a parent path hash with a tag hash into a child path hash.
constexpr u64 mix_hash(u64 parent, u64 tag) {
  const u64 h =
      parent ^ (tag + 0x9e3779b97f4a7c15ull + (parent << 6) + (parent >> 2));
  return h == 0 ? 1 : h;
}

/// One accumulated row: a unique phase path observed on this thread.
/// Scalar fields are written by the owning thread only; they are atomics
/// so the report thread may read them concurrently (single-writer
/// non-RMW stores — no lock prefix on the hot path).  `samples` is the
/// exception: the SIGPROF handler increments it, but the handler runs on
/// the owning thread, so it is still single-writer.
struct PhaseSlot {
  std::atomic<bool> used{false};  ///< release-set after tags are written
  u64 hash = 0;
  i32 path_len = 0;
  const char* tags[kMaxPathLen] = {};
  std::atomic<i64> calls{0};
  std::atomic<i64> total_ns{0};
  std::atomic<i64> self_ns{0};
  std::atomic<i64> samples{0};
  std::atomic<bool> has_counters{false};
  std::atomic<i64> counters[kNumPerfCounters] = {};  ///< self deltas
};

/// One live stack entry.
struct Frame {
  const char* tag = nullptr;
  u64 hash = 0;
  u32 slot = kNoSlot;
  i64 start_ns = 0;
  i64 child_ns = 0;
  bool counted = false;  ///< hardware counters read at entry
  i64 enter_counts[kNumPerfCounters] = {};
  i64 child_counts[kNumPerfCounters] = {};
};

/// Everything the profiler knows about one thread.  Owned via shared_ptr
/// by both the thread (thread_local handle) and the global state registry
/// (profiler.cpp), so tables survive thread exit until the next reset.
struct ThreadState {
  // Live stack.  depth is stored release after the frame is complete and
  // retracted before a popped frame is reused, so the SIGPROF handler
  // (same thread) always sees a consistent prefix.
  std::atomic<i32> depth{0};
  i32 skip = 0;  ///< pushes dropped past kMaxPhaseDepth (pop unwinds)
  Frame frames[kMaxPhaseDepth];

  // Adopted base prefix (parallel_for workers): part of every path, never
  // timed on this thread.
  i32 base_depth = 0;
  u64 base_hash = kHashSeed;
  const char* base_tags[kMaxPhaseDepth] = {};
  u32 base_slot = kNoSlot;  ///< slot for the base path itself (samples
                            ///< landing between frames attribute here)
  u32 idle_slot = kNoSlot;  ///< "(unattributed)" slot, set when sampling

  PhaseSlot slots[kPhaseTableSlots];
  i64 dropped_paths = 0;
  i64 depth_overflow = 0;

  // SIGPROF sample ring: the handler produces, the report thread
  // consumes.  Indices are free-running; slot kNoSlot entries never
  // enqueue.
  struct Sample {
    i64 ts_ns;
    u32 slot;
  };
  Sample ring[kSampleRingSlots];
  std::atomic<u32> ring_head{0};
  std::atomic<u32> ring_tail{0};
  std::atomic<i64> dropped_samples{0};

  // Sampler + counters, owned by this thread.
  u64 sample_epoch = 0;  ///< last g_sample_epoch this thread armed for
  bool timer_armed = false;
  void* timer = nullptr;  ///< timer_t, opaque here (POSIX types stay out
                          ///< of this header)
  PerfCounterSet counters;
  i32 counter_state = 0;  ///< 0 untried, 1 open, 2 unavailable
  i64 tid = 0;            ///< dense id for trace sample lanes
  std::atomic<bool> alive{true};
};

namespace detail {
inline thread_local ThreadState* t_state = nullptr;
}  // namespace detail

/// Registers the calling thread with the profiler (profiler.cpp): creates
/// its ThreadState, parks it in the global registry, and installs the
/// thread_local pointer + exit hook.
ThreadState& register_thread();

/// Thread-exit cleanup (called by the thread_local handle's destructor):
/// disarms the sampler; the table stays registered for later reports.
void unregister_thread(ThreadState& st);

/// Lazily arms this thread's SIGPROF sampler for the current epoch.
void arm_sampler(ThreadState& st);

/// Tries to open this thread's hardware counter group once.
void open_thread_counters(ThreadState& st);

inline ThreadState& state() {
  ThreadState* st = detail::t_state;
  return st != nullptr ? *st : register_thread();
}

/// Finds or inserts the slot for `hash`; the path is the thread's base
/// prefix + live frames below `frame_depth` + `tag`.  Returns kNoSlot
/// (and counts a dropped path) when the table is saturated.
inline u32 find_or_insert(ThreadState& st, u64 hash, i32 frame_depth,
                          const char* tag) {
  constexpr u32 mask = kPhaseTableSlots - 1;
  u32 idx = static_cast<u32>(hash) & mask;
  for (u32 probe = 0; probe < kPhaseProbeLimit; ++probe) {
    PhaseSlot& s = st.slots[idx];
    if (s.used.load(std::memory_order_relaxed)) {
      if (s.hash == hash) return idx;
      idx = (idx + 1) & mask;
      continue;
    }
    s.hash = hash;
    i32 n = 0;
    for (i32 i = 0; i < st.base_depth && n < kMaxPathLen; ++i)
      s.tags[n++] = st.base_tags[i];
    for (i32 i = 0; i < frame_depth && n < kMaxPathLen; ++i)
      s.tags[n++] = st.frames[i].tag;
    if (tag != nullptr && n < kMaxPathLen) s.tags[n++] = tag;
    s.path_len = n;
    s.used.store(true, std::memory_order_release);
    return idx;
  }
  ++st.dropped_paths;
  return kNoSlot;
}

/// Single-writer add on a reporter-visible atomic (plain add, no RMW).
inline void slot_add(std::atomic<i64>& a, i64 v) {
  a.store(a.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
}

/// Pushes a phase.  Returns true iff a matching phase_pop is owed (always,
/// once the mode check passed — overflowed pushes are tracked in `skip`
/// so pops stay balanced even if the profiler stops mid-scope).
inline bool phase_push(const char* tag, u64 tag_hash) {
  ThreadState& st = state();
  const u32 modes = g_modes.load(std::memory_order_relaxed);
  if ((modes & kSampleBit) != 0 &&
      st.sample_epoch != g_sample_epoch.load(std::memory_order_relaxed))
    arm_sampler(st);
  const i32 d = st.depth.load(std::memory_order_relaxed);
  if (st.skip > 0 || d >= kMaxPhaseDepth) {
    ++st.skip;
    ++st.depth_overflow;
    return true;
  }
  Frame& f = st.frames[d];
  f.tag = tag;
  const u64 parent = d > 0 ? st.frames[d - 1].hash : st.base_hash;
  f.hash = mix_hash(parent, tag_hash);
  f.slot = find_or_insert(st, f.hash, d, tag);
  f.child_ns = 0;
  f.counted = false;
  if ((modes & kCounterBit) != 0) {
    if (st.counter_state == 0) open_thread_counters(st);
    if (st.counter_state == 1 &&
        st.base_depth + d < g_counter_depth.load(std::memory_order_relaxed))
      f.counted = st.counters.read(f.enter_counts);
  }
  if (f.counted)
    for (i32 i = 0; i < kNumPerfCounters; ++i) f.child_counts[i] = 0;
  f.start_ns = Stopwatch::now_ns();
  st.depth.store(d + 1, std::memory_order_release);
  return true;
}

/// Pops the current phase and accumulates into its slot.  Runs regardless
/// of the mode bits so stacks stay balanced across enable/disable.
inline void phase_pop() {
  ThreadState& st = state();
  if (st.skip > 0) {
    --st.skip;
    return;
  }
  const i32 d = st.depth.load(std::memory_order_relaxed) - 1;
  if (d < 0) return;
  const i64 end_ns = Stopwatch::now_ns();
  Frame& f = st.frames[d];
  st.depth.store(d, std::memory_order_release);
  const i64 elapsed = end_ns - f.start_ns;
  i64 self = elapsed - f.child_ns;
  if (self < 0) self = 0;
  if (d > 0) st.frames[d - 1].child_ns += elapsed;
  i64 delta[kNumPerfCounters];
  bool have_delta = false;
  if (f.counted) {
    i64 now_counts[kNumPerfCounters];
    if (st.counters.read(now_counts)) {
      have_delta = true;
      for (i32 i = 0; i < kNumPerfCounters; ++i)
        delta[i] = now_counts[i] - f.enter_counts[i];
      if (d > 0 && st.frames[d - 1].counted)
        for (i32 i = 0; i < kNumPerfCounters; ++i)
          st.frames[d - 1].child_counts[i] += delta[i];
    }
  }
  if (f.slot == kNoSlot) return;
  PhaseSlot& s = st.slots[f.slot];
  slot_add(s.calls, 1);
  slot_add(s.total_ns, elapsed);
  slot_add(s.self_ns, self);
  if (have_delta) {
    for (i32 i = 0; i < kNumPerfCounters; ++i) {
      i64 self_c = delta[i] - f.child_counts[i];
      if (self_c < 0) self_c = 0;
      slot_add(s.counters[i], self_c);
    }
    s.has_counters.store(true, std::memory_order_relaxed);
  }
}

}  // namespace tp::obs::prof

namespace tp::obs {

/// RAII phase for profiling-only instrumentation, cheaper than a full
/// obs::Scope (no trace span, no registry histogram) — use where the
/// grain is too fine for a metric but right for attribution.
class PhaseScope {
 public:
  PhaseScope(const char* tag, u64 tag_hash) {
    if (prof::phases_on()) pushed_ = prof::phase_push(tag, tag_hash);
  }
  ~PhaseScope() {
    if (pushed_) prof::phase_pop();
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace tp::obs

#define TP_PROF_CONCAT_INNER(a, b) a##b
#define TP_PROF_CONCAT(a, b) TP_PROF_CONCAT_INNER(a, b)

/// Attributes the enclosing scope to phase `name` (a string literal) when
/// profiling is enabled; one predicted branch otherwise.  The tag hash is
/// computed at compile time.
#define TP_PROF_PHASE(name)                                              \
  const ::tp::obs::PhaseScope TP_PROF_CONCAT(tp_prof_phase_, __LINE__)(  \
      name,                                                              \
      ::std::integral_constant<::tp::u64,                                \
                               ::tp::obs::prof::ct_hash(name)>::value)
