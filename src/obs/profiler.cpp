#include "src/obs/profiler.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <iomanip>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#ifdef __linux__
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

#include "src/util/worker_context.h"

#if defined(__linux__) && !defined(sigev_notify_thread_id)
#define sigev_notify_thread_id _sigev_un._tid
#endif
#if defined(__linux__) && !defined(SIGEV_THREAD_ID)
#define SIGEV_THREAD_ID 4
#endif

namespace tp::obs {

namespace {

constexpr const char* kUnattributed = "(unattributed)";

/// The SIGPROF handler: attribute one sample to the interrupted thread's
/// current phase path.  Runs on the interrupted thread itself (the timer
/// targets a specific tid), so frame reads are same-thread; everything
/// it touches is an atomic or handler-owned, and errno is preserved.
void sigprof_handler(int /*signo*/) {
  const int saved_errno = errno;
  prof::ThreadState* st = prof::detail::t_state;
  if (st != nullptr &&
      (prof::g_modes.load(std::memory_order_relaxed) & prof::kSampleBit) !=
          0) {
    const i32 d = st->depth.load(std::memory_order_acquire);
    prof::u32 slot;
    if (d > 0)
      slot = st->frames[d - 1].slot;
    else
      slot = st->base_depth > 0 ? st->base_slot : st->idle_slot;
    if (slot != prof::kNoSlot) {
      st->slots[slot].samples.fetch_add(1, std::memory_order_relaxed);
      const prof::u32 head = st->ring_head.load(std::memory_order_relaxed);
      const prof::u32 tail = st->ring_tail.load(std::memory_order_relaxed);
      if (head - tail >= prof::kSampleRingSlots) {
        st->dropped_samples.fetch_add(1, std::memory_order_relaxed);
      } else {
        prof::ThreadState::Sample& s =
            st->ring[head & (prof::kSampleRingSlots - 1)];
        s.ts_ns = Stopwatch::now_ns();
        s.slot = slot;
        st->ring_head.store(head + 1, std::memory_order_release);
      }
    } else {
      st->dropped_samples.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

#ifdef __linux__

/// Creates and arms this thread's CLOCK_THREAD_CPUTIME_ID SIGPROF timer.
/// Returns false when the host lacks per-thread cputime timers.
bool create_thread_timer(prof::ThreadState& st, i64 interval_us) {
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id =
      static_cast<pid_t>(syscall(SYS_gettid));
  timer_t t{};
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &t) != 0) return false;
  itimerspec spec{};
  spec.it_interval.tv_sec = interval_us / 1000000;
  spec.it_interval.tv_nsec = (interval_us % 1000000) * 1000;
  spec.it_value = spec.it_interval;
  if (timer_settime(t, 0, &spec, nullptr) != 0) {
    timer_delete(t);
    return false;
  }
  st.timer = new timer_t(t);
  return true;
}

void delete_thread_timer(prof::ThreadState& st) {
  if (st.timer == nullptr) return;
  timer_t* t = static_cast<timer_t*>(st.timer);
  timer_delete(*t);
  delete t;
  st.timer = nullptr;
}

#else

bool create_thread_timer(prof::ThreadState&, i64) { return false; }
void delete_thread_timer(prof::ThreadState&) {}

#endif

/// Per-thread exit hook: disarm the sampler and drop the thread_local
/// pointer.  The ThreadState itself stays alive in the profiler's
/// registry so its table survives into the next report.
struct ThreadHandle {
  std::shared_ptr<prof::ThreadState> state;
  ~ThreadHandle();
};

thread_local ThreadHandle t_handle;

/// Phase-context tokens for parallel_for worker adoption: a frozen copy
/// of the caller's path, installed as the workers' untimed base prefix.
struct ContextToken {
  i32 depth = 0;
  u64 hash = prof::kHashSeed;
  const char* tags[prof::kMaxPhaseDepth] = {};
};

struct BaseSave {
  i32 depth;
  u64 hash;
  prof::u32 slot;
  const char* tags[prof::kMaxPhaseDepth];
};

void* ctx_capture() {
  if (!prof::phases_on()) return nullptr;
  prof::ThreadState& st = prof::state();
  const i32 frames = st.depth.load(std::memory_order_relaxed);
  if (st.base_depth + frames == 0) return nullptr;
  auto* token = new ContextToken;
  i32 n = 0;
  for (i32 i = 0; i < st.base_depth && n < prof::kMaxPhaseDepth; ++i)
    token->tags[n++] = st.base_tags[i];
  for (i32 i = 0; i < frames && n < prof::kMaxPhaseDepth; ++i)
    token->tags[n++] = st.frames[i].tag;
  token->depth = n;
  token->hash = frames > 0 ? st.frames[frames - 1].hash : st.base_hash;
  return token;
}

void* ctx_adopt(void* opaque) {
  auto* token = static_cast<ContextToken*>(opaque);
  prof::ThreadState& st = prof::state();
  auto* save = new BaseSave{st.base_depth, st.base_hash, st.base_slot, {}};
  for (i32 i = 0; i < st.base_depth; ++i) save->tags[i] = st.base_tags[i];
  st.base_depth = token->depth;
  st.base_hash = token->hash;
  for (i32 i = 0; i < token->depth; ++i) st.base_tags[i] = token->tags[i];
  // Slot for the base path itself: depth-0 samples on this worker belong
  // to the phase the caller was in.
  st.base_slot = prof::find_or_insert(st, st.base_hash, 0, nullptr);
  return save;
}

void ctx_restore(void* opaque) {
  auto* save = static_cast<BaseSave*>(opaque);
  prof::ThreadState& st = prof::state();
  st.base_depth = save->depth;
  st.base_hash = save->hash;
  st.base_slot = save->slot;
  for (i32 i = 0; i < save->depth; ++i) st.base_tags[i] = save->tags[i];
  delete save;
}

void ctx_release(void* opaque) { delete static_cast<ContextToken*>(opaque); }

constexpr PhaseContextHooks kHooks = {&ctx_capture, &ctx_adopt, &ctx_restore,
                                      &ctx_release};

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += ';';
    out += path[i];
  }
  return out;
}

}  // namespace

namespace prof {

ThreadState& register_thread() {
  Profiler& p = profiler();
  auto st = std::make_shared<ThreadState>();
  {
    const MutexLock lock(p.mu_);
    st->tid = ++p.next_tid_;
    p.states_.push_back(st);
  }
  t_handle.state = st;
  detail::t_state = st.get();
  return *st;
}

void arm_sampler(ThreadState& st) {
  Profiler& p = profiler();
  const MutexLock lock(p.mu_);
  // Re-check under the lock: stop() clears the bit and deletes timers
  // while holding mu_, so no timer outlives a stop.
  if ((g_modes.load(std::memory_order_relaxed) & kSampleBit) == 0) return;
  st.sample_epoch = g_sample_epoch.load(std::memory_order_relaxed);
  if (st.base_depth == 0 && st.idle_slot == kNoSlot)
    st.idle_slot =
        find_or_insert(st, mix_hash(st.base_hash, ct_hash(kUnattributed)), 0,
                       kUnattributed);
  if (!st.timer_armed)
    st.timer_armed = create_thread_timer(st, p.config_.sample_interval_us);
}

void open_thread_counters(ThreadState& st) {
  st.counter_state = st.counters.open() ? 1 : 2;
}

void unregister_thread(ThreadState& st) {
  Profiler& p = profiler();
  {
    const MutexLock lock(p.mu_);
    delete_thread_timer(st);
    st.timer_armed = false;
    st.alive.store(false, std::memory_order_release);
  }
  st.counters.close();
  detail::t_state = nullptr;
}

}  // namespace prof

ThreadHandle::~ThreadHandle() {
  if (state != nullptr) prof::unregister_thread(*state);
}

double PhaseRow::ipc() const {
  return counters[kPerfCycles] > 0
             ? static_cast<double>(counters[kPerfInstructions]) /
                   static_cast<double>(counters[kPerfCycles])
             : 0.0;
}

double PhaseRow::cache_miss_rate() const {
  return counters[kPerfCacheRefs] > 0
             ? static_cast<double>(counters[kPerfCacheMisses]) /
                   static_cast<double>(counters[kPerfCacheRefs])
             : 0.0;
}

double PhaseReport::coverage() const {
  if (wall_ns <= 0) return 0.0;
  i64 root_ns = 0;
  for (const PhaseRow& r : rows)
    if (r.path.size() == 1 && r.path[0] != kUnattributed)
      root_ns += r.total_ns;
  double c = static_cast<double>(root_ns) / static_cast<double>(wall_ns);
  return c > 1.0 ? 1.0 : c;
}

void Profiler::start(const ProfilerConfig& config) {
  const MutexLock lock(mu_);
  config_ = config;
  epoch_ns_ = Stopwatch::now_ns();
  prof::u32 modes = prof::kPhaseBit;
  if (config.sampling) {
    if (!handler_installed_) {
#ifdef __linux__
      struct sigaction sa {};
      sa.sa_handler = &sigprof_handler;
      sa.sa_flags = SA_RESTART;
      sigemptyset(&sa.sa_mask);
      sigaction(SIGPROF, &sa, nullptr);
      handler_installed_ = true;
#endif
    }
    if (handler_installed_) {
      modes |= prof::kSampleBit;
      prof::g_sample_epoch.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (config.counters) {
    PerfCounterSet probe;
    counters_ok_ = probe.open();
    counters_note_ = counters_ok_ ? "" : probe.error();
    probe.close();
    if (counters_ok_) modes |= prof::kCounterBit;
  } else {
    counters_ok_ = false;
    counters_note_ = "disabled by config";
  }
  prof::g_counter_depth.store(config.counter_depth,
                              std::memory_order_relaxed);
  set_phase_context_hooks(&kHooks);
  prof::g_modes.store(modes, std::memory_order_release);
}

void Profiler::stop() {
  const MutexLock lock(mu_);
  prof::g_modes.store(0, std::memory_order_release);
  for (const auto& st : states_) {
    if (!st->timer_armed) continue;
    delete_thread_timer(*st);
    st->timer_armed = false;
  }
}

bool Profiler::sampling_enabled() const {
  return (prof::g_modes.load(std::memory_order_relaxed) &
          prof::kSampleBit) != 0;
}

bool Profiler::counters_available() const {
  const MutexLock lock(mu_);
  return counters_ok_;
}

std::string Profiler::counters_note() const {
  const MutexLock lock(mu_);
  return counters_note_;
}

PhaseReport Profiler::report() {
  const MutexLock lock(mu_);
  PhaseReport rep;
  rep.sampling = config_.sampling;
  rep.counters_available = counters_ok_;
  rep.counters_note = counters_note_;
  rep.wall_ns = epoch_ns_ > 0 ? Stopwatch::now_ns() - epoch_ns_ : 0;

  std::map<std::string, PhaseRow> merged;
  for (const auto& st : states_) {
    bool contributed = false;
    for (const prof::PhaseSlot& s : st->slots) {
      if (!s.used.load(std::memory_order_acquire)) continue;
      std::vector<std::string> path;
      path.reserve(static_cast<std::size_t>(s.path_len));
      for (i32 i = 0; i < s.path_len; ++i) path.emplace_back(s.tags[i]);
      if (path.empty()) continue;
      const i64 calls = s.calls.load(std::memory_order_relaxed);
      const i64 samples = s.samples.load(std::memory_order_relaxed);
      if (calls == 0 && samples == 0) continue;
      contributed = true;
      PhaseRow& row = merged[join_path(path)];
      if (row.path.empty()) row.path = std::move(path);
      row.calls += calls;
      row.total_ns += s.total_ns.load(std::memory_order_relaxed);
      row.self_ns += s.self_ns.load(std::memory_order_relaxed);
      row.samples += samples;
      if (s.has_counters.load(std::memory_order_relaxed)) {
        row.has_counters = true;
        for (i32 i = 0; i < kNumPerfCounters; ++i)
          row.counters[i] += s.counters[i].load(std::memory_order_relaxed);
      }
    }
    if (contributed) ++rep.threads;
    rep.dropped_samples +=
        st->dropped_samples.load(std::memory_order_relaxed);
    rep.dropped_paths += st->dropped_paths;
    rep.depth_overflow += st->depth_overflow;
  }
  rep.rows.reserve(merged.size());
  for (auto& [key, row] : merged) {
    rep.total_samples += row.samples;
    rep.rows.push_back(std::move(row));
  }
  std::sort(rep.rows.begin(), rep.rows.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.path < b.path;
            });
  return rep;
}

void Profiler::reset() {
  const MutexLock lock(mu_);
  // Drop states of exited threads entirely; clear the rest in place.
  // Contract: no instrumented work in flight (tables are single-writer).
  std::vector<std::shared_ptr<prof::ThreadState>> live;
  for (const auto& st : states_) {
    if (!st->alive.load(std::memory_order_acquire)) continue;
    live.push_back(st);
    for (prof::PhaseSlot& s : st->slots) {
      if (!s.used.load(std::memory_order_relaxed)) continue;
      s.calls.store(0, std::memory_order_relaxed);
      s.total_ns.store(0, std::memory_order_relaxed);
      s.self_ns.store(0, std::memory_order_relaxed);
      s.samples.store(0, std::memory_order_relaxed);
      s.has_counters.store(false, std::memory_order_relaxed);
      for (i32 i = 0; i < kNumPerfCounters; ++i)
        s.counters[i].store(0, std::memory_order_relaxed);
    }
    st->ring_tail.store(st->ring_head.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    st->dropped_samples.store(0, std::memory_order_relaxed);
    st->dropped_paths = 0;
    st->depth_overflow = 0;
  }
  states_ = std::move(live);
  epoch_ns_ = Stopwatch::now_ns();
}

void Profiler::emit_samples(Tracer& tracer) {
  if (!tracer.enabled()) return;
  const MutexLock lock(mu_);
  for (const auto& st : states_) {
    const prof::u32 head = st->ring_head.load(std::memory_order_acquire);
    prof::u32 tail = st->ring_tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const prof::ThreadState::Sample& s =
          st->ring[tail & (prof::kSampleRingSlots - 1)];
      if (s.slot == prof::kNoSlot) continue;
      const prof::PhaseSlot& slot = st->slots[s.slot];
      const i32 leaf = slot.path_len - 1;
      if (leaf < 0) continue;
      // Sample lanes sit at tid 1000+ so they don't collide with the
      // tracer's own per-thread lanes.
      tracer.sample(slot.tags[leaf], s.ts_ns, 1000 + st->tid);
    }
    st->ring_tail.store(head, std::memory_order_relaxed);
  }
}

Profiler& profiler() {
  static Profiler instance;
  return instance;
}

void write_collapsed(const PhaseReport& report, std::ostream& out) {
  const bool by_samples = report.total_samples > 0;
  for (const PhaseRow& row : report.rows) {
    i64 weight;
    if (by_samples) {
      weight = row.samples;
      if (weight == 0) continue;
    } else {
      weight = row.self_ns / 1000;
      if (weight < 1) weight = 1;
    }
    out << join_path(row.path) << ' ' << weight << '\n';
  }
}

std::string format_phase_table(const PhaseReport& report) {
  std::ostringstream out;
  const double wall =
      report.wall_ns > 0 ? static_cast<double>(report.wall_ns) : 1.0;
  out << std::setw(7) << "self%" << std::setw(8) << "total%"
      << std::setw(10) << "calls" << std::setw(13) << "ns/call"
      << std::setw(14) << "self_ns" << std::setw(14) << "total_ns";
  if (report.total_samples > 0) out << std::setw(9) << "samples";
  if (report.counters_available)
    out << std::setw(7) << "ipc" << std::setw(8) << "miss%";
  out << "  path\n";
  for (const PhaseRow& row : report.rows) {
    out << std::fixed << std::setprecision(1) << std::setw(6)
        << 100.0 * static_cast<double>(row.self_ns) / wall << '%'
        << std::setw(7)
        << 100.0 * static_cast<double>(row.total_ns) / wall << '%'
        << std::setw(10) << row.calls << std::setw(13)
        << (row.calls > 0 ? row.total_ns / row.calls : 0) << std::setw(14)
        << row.self_ns << std::setw(14) << row.total_ns;
    if (report.total_samples > 0) out << std::setw(9) << row.samples;
    if (report.counters_available) {
      if (row.has_counters)
        out << std::setw(7) << std::setprecision(2) << row.ipc()
            << std::setw(7) << std::setprecision(1)
            << 100.0 * row.cache_miss_rate() << '%';
      else
        out << std::setw(7) << "-" << std::setw(8) << "-";
    }
    out << "  " << join_path(row.path) << '\n';
  }
  out << std::setprecision(1)
      << "wall " << static_cast<double>(report.wall_ns) / 1e6 << " ms, "
      << "coverage " << 100.0 * report.coverage() << "%, " << report.threads
      << " thread(s), " << report.total_samples << " samples";
  if (report.dropped_samples > 0)
    out << " (" << report.dropped_samples << " dropped)";
  if (report.dropped_paths > 0)
    out << ", " << report.dropped_paths << " paths dropped";
  if (report.depth_overflow > 0)
    out << ", " << report.depth_overflow << " over-depth pushes";
  out << '\n';
  if (report.counters_available)
    out << "hardware counters: live (perf_event_open)\n";
  else
    out << "hardware counters: unavailable, wall-clock only ("
        << report.counters_note << ")\n";
  return out.str();
}

JsonValue phase_report_json(const PhaseReport& report) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "torusplace-profile/1");
  doc.set("wall_ns", report.wall_ns);
  doc.set("coverage", report.coverage());
  doc.set("threads", JsonValue(static_cast<i64>(report.threads)));
  doc.set("total_samples", report.total_samples);
  doc.set("dropped_samples", report.dropped_samples);
  doc.set("dropped_paths", report.dropped_paths);
  doc.set("depth_overflow", report.depth_overflow);
  doc.set("counters_available", report.counters_available);
  if (!report.counters_available)
    doc.set("counters_note", report.counters_note);
  JsonValue rows = JsonValue::array();
  for (const PhaseRow& row : report.rows) {
    JsonValue r = JsonValue::object();
    r.set("path", join_path(row.path));
    r.set("calls", row.calls);
    r.set("total_ns", row.total_ns);
    r.set("self_ns", row.self_ns);
    r.set("samples", row.samples);
    if (row.has_counters) {
      for (i32 i = 0; i < kNumPerfCounters; ++i)
        r.set(perf_counter_name(i), row.counters[i]);
      r.set("ipc", row.ipc());
      r.set("cache_miss_rate", row.cache_miss_rate());
    }
    rows.push_back(std::move(r));
  }
  doc.set("rows", std::move(rows));
  return doc;
}

JsonValue profiler_status_json() {
  Profiler& p = profiler();
  const PhaseReport rep = p.report();
  JsonValue doc = JsonValue::object();
  doc.set("enabled", p.enabled());
  doc.set("sampling", p.sampling_enabled());
  doc.set("counters", rep.counters_available);
  doc.set("paths", JsonValue(static_cast<i64>(rep.rows.size())));
  doc.set("samples", rep.total_samples);
  return doc;
}

}  // namespace tp::obs
