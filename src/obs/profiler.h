// In-process profiler: phase attribution, SIGPROF sampling, hardware
// counters, flamegraph export.
//
// The Profiler turns the per-thread phase tables (phase_stack.h) into
// reports:
//
//   obs::profiler().start({});          // phases + sampling + counters
//   ... run the workload ...
//   obs::PhaseReport r = obs::profiler().report();
//   std::cout << obs::format_phase_table(r);   // sorted self-time table
//   obs::write_collapsed(r, out);              // "a;b;c 42" flamegraph
//
// Three independently switchable modes (ProfilerConfig):
//   phases    deterministic wall-ns attribution at every TP_OBS_SCOPE /
//             TP_PROF_PHASE boundary (exclusive + inclusive, per path)
//   sampling  a per-thread timer_create(CLOCK_THREAD_CPUTIME_ID)/SIGPROF
//             sampler that attributes statistical samples to the current
//             phase path — fine-grain insight with no inner-loop
//             instrumentation
//   counters  perf_event_open cycles/instructions/cache/branch-miss
//             deltas per phase, feature-detected at runtime; unprivileged
//             or PMU-less hosts degrade to wall-only and the report says
//             so (counters_note)
//
// report() merges every thread's table by path (calls/ns/samples summed),
// so results are thread-count invariant in paths and call counts.
// reset() clears the tables; call it only while no instrumented work is
// in flight (the tables are single-writer per thread).
//
// See docs/profiling.md for the phase model, the flamegraph workflow and
// perf_event permission notes.

#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/phase_stack.h"
#include "src/obs/trace.h"
#include "src/util/thread_annotations.h"

namespace tp::obs {

struct ProfilerConfig {
  bool sampling = true;
  bool counters = true;  ///< attempt; falls back to wall-only
  i64 sample_interval_us = 997;  ///< prime, to dodge lockstep with loops
  i32 counter_depth = 4;  ///< no counter syscalls below this path depth
};

/// One merged row: a phase path with its accumulated costs.
struct PhaseRow {
  std::vector<std::string> path;  ///< outermost first
  i64 calls = 0;
  i64 total_ns = 0;  ///< inclusive
  i64 self_ns = 0;   ///< exclusive
  i64 samples = 0;
  bool has_counters = false;
  i64 counters[kNumPerfCounters] = {};  ///< exclusive deltas

  /// Instructions per cycle; 0 when unavailable.
  double ipc() const;
  /// cache_misses / cache_refs; 0 when unavailable.
  double cache_miss_rate() const;
};

struct PhaseReport {
  std::vector<PhaseRow> rows;  ///< sorted by self_ns descending
  i64 wall_ns = 0;             ///< start() (or reset()) to report()
  i64 total_samples = 0;
  i64 dropped_samples = 0;  ///< ring overflow
  i64 dropped_paths = 0;    ///< table saturation
  i64 depth_overflow = 0;   ///< pushes past kMaxPhaseDepth
  i32 threads = 0;          ///< threads that recorded at least one path
  bool sampling = false;
  bool counters_available = false;
  std::string counters_note;  ///< why counters are unavailable (empty
                              ///< when they are live)

  /// Fraction of wall_ns covered by root phases (depth-1 paths) — the
  /// attribution coverage the acceptance gate checks.
  double coverage() const;
};

class Profiler {
 public:
  /// Enables profiling process-wide.  Safe to call again with a new
  /// config (bumps the sampling epoch so threads re-arm).
  void start(const ProfilerConfig& config = {}) TP_EXCLUDES(mu_);

  /// Disables all modes and disarms every thread's sampler.  Tables are
  /// kept for a final report().
  void stop() TP_EXCLUDES(mu_);

  bool enabled() const { return prof::phases_on(); }
  bool sampling_enabled() const;
  bool counters_available() const TP_EXCLUDES(mu_);
  std::string counters_note() const TP_EXCLUDES(mu_);

  /// Merges every thread's table into one report.  Callable while
  /// threads are still running (single-writer tables, atomic fields);
  /// numbers are then a live snapshot.
  PhaseReport report() TP_EXCLUDES(mu_);

  /// Clears every thread's table, sample ring, and the report epoch.
  /// Only call while no instrumented work is in flight.
  void reset() TP_EXCLUDES(mu_);

  /// Drains every thread's sample ring into the tracer as timestamped
  /// instant events (cat "sample", one lane per profiled thread) so
  /// --trace exports carry the sampler's view.  No-op when the tracer is
  /// disabled.
  void emit_samples(Tracer& tracer) TP_EXCLUDES(mu_);

 private:
  friend prof::ThreadState& prof::register_thread();
  friend void prof::unregister_thread(prof::ThreadState& st);
  friend void prof::arm_sampler(prof::ThreadState& st);

  mutable Mutex mu_;
  std::vector<std::shared_ptr<prof::ThreadState>> states_ TP_GUARDED_BY(mu_);
  ProfilerConfig config_ TP_GUARDED_BY(mu_);
  bool counters_ok_ TP_GUARDED_BY(mu_) = false;
  std::string counters_note_ TP_GUARDED_BY(mu_) =
      "counters never enabled";
  i64 epoch_ns_ TP_GUARDED_BY(mu_) = 0;  ///< wall_ns origin
  i64 next_tid_ TP_GUARDED_BY(mu_) = 0;
  bool handler_installed_ TP_GUARDED_BY(mu_) = false;
};

/// The process-wide profiler used by all built-in instrumentation.
Profiler& profiler();

/// Writes the report in collapsed-stack format ("a;b;c 42\n"), one line
/// per path, suitable for flamegraph.pl / speedscope.  Weights are sample
/// counts when the sampler ran, else self-µs (min 1) so phase-only runs
/// still produce a well-formed flamegraph.
void write_collapsed(const PhaseReport& report, std::ostream& out);

/// Renders the sorted phase table (self%, total%, calls, ns/call, and —
/// when counters are live — IPC and cache-miss rate).
std::string format_phase_table(const PhaseReport& report);

/// JSON form of the report (rows + totals), used by --stats-json.
JsonValue phase_report_json(const PhaseReport& report);

/// Compact profiler state for statusz: {"enabled":..., "sampling":...,
/// "counters":..., "paths":N, "samples":N}.
JsonValue profiler_status_json();

}  // namespace tp::obs
