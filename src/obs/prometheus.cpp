#include "src/obs/prometheus.h"

#include <cctype>
#include <ostream>
#include <sstream>

namespace tp::obs {

std::string prometheus_name(std::string_view name) {
  std::string out = "tp_";
  out.reserve(name.size() + 3);
  for (const char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  return out;
}

void prometheus_text(const MetricsSnapshot& snap, std::ostream& os) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " histogram\n";
    // Prometheus buckets are cumulative; HistogramData's are per-bucket
    // (bounds are inclusive upper edges, the extra count is overflow).
    i64 cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::ostringstream os;
  prometheus_text(snap, os);
  return os.str();
}

}  // namespace tp::obs
