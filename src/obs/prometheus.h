// Prometheus text exposition of a metrics snapshot.
//
// Renders a MetricsSnapshot in the Prometheus text format (version 0.0.4,
// the format every scraper and pushgateway accepts): counters and gauges
// as single samples, histograms as the conventional cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.  Metric names are
// sanitized ('.' and any other non-[a-zA-Z0-9_] become '_') and prefixed
// with "tp_" so the whole registry lands in one namespace.
//
// The exporter is pure (snapshot in, text out): the service admin surface
// wraps it behind {"op":"metricsz","format":"prometheus"} and a future
// HTTP front-end can serve it from /metrics verbatim.

#pragma once

#include <iosfwd>
#include <string>

#include "src/obs/registry.h"

namespace tp::obs {

/// A metric name sanitized for Prometheus: "service.request_us" ->
/// "tp_service_request_us".
std::string prometheus_name(std::string_view name);

/// The whole snapshot in Prometheus text exposition format.  Every metric
/// is preceded by its `# TYPE` line; output order follows the snapshot
/// (registration order), so repeated exports diff cleanly.
void prometheus_text(const MetricsSnapshot& snap, std::ostream& os);
std::string prometheus_text(const MetricsSnapshot& snap);

}  // namespace tp::obs
