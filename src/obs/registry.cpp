#include "src/obs/registry.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp::obs {

std::vector<i64> default_bucket_bounds() {
  std::vector<i64> bounds;
  for (i64 b = 1; b <= (i64{1} << 20); b <<= 1) bounds.push_back(b);
  return bounds;
}

std::vector<i64> duration_bucket_bounds() {
  std::vector<i64> bounds;
  for (i64 b = 1; b <= (i64{1} << 26); b <<= 1) bounds.push_back(b);
  return bounds;
}

HistogramData::HistogramData(std::vector<i64> bucket_bounds)
    : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1, 0) {
  TP_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
             "histogram bucket bounds must be ascending");
}

void HistogramData::record(i64 v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  counts[static_cast<std::size_t>(it - bounds.begin())] += 1;
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
}

void HistogramData::merge_from(const HistogramData& other) {
  TP_REQUIRE(bounds == other.bounds,
             "cannot merge histograms with different bucket bounds");
  if (other.count == 0) return;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramData::mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double HistogramData::percentile(double q) const {
  if (count == 0) return 0.0;
  TP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  double rank = q * static_cast<double>(count);
  if (rank < 1.0) rank = 1.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double in_bucket = static_cast<double>(counts[i]);
    if (cum + in_bucket >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double hi = i < bounds.size() ? static_cast<double>(bounds[i])
                                          : static_cast<double>(max);
      double est = lo + (hi - lo) * (rank - cum) / in_bucket;
      est = std::max(est, static_cast<double>(min));
      est = std::min(est, static_cast<double>(max));
      return est;
    }
    cum += in_bucket;
  }
  return static_cast<double>(max);
}

const i64* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

const i64* MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return &v;
  return nullptr;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return &v;
  return nullptr;
}

MetricsRegistry::MetricsRegistry() {
  counter_slots_.reserve(kMaxMetrics);
  gauge_slots_.reserve(kMaxMetrics);
  histogram_slots_.reserve(kMaxMetrics);
}

namespace {

i32 find_or_append(std::vector<std::string>& names, std::string_view name,
                   std::size_t cap) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<i32>(i);
  TP_REQUIRE(names.size() < cap, "metrics registry is full");
  names.emplace_back(name);
  return static_cast<i32>(names.size() - 1);
}

}  // namespace

CounterHandle MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const i32 idx = find_or_append(counter_names_, name, kMaxMetrics);
  if (static_cast<std::size_t>(idx) == counter_slots_.size())
    counter_slots_.push_back(0);
  return CounterHandle{idx};
}

GaugeHandle MetricsRegistry::gauge(std::string_view name) {
  const MutexLock lock(mu_);
  const i32 idx = find_or_append(gauge_names_, name, kMaxMetrics);
  if (static_cast<std::size_t>(idx) == gauge_slots_.size())
    gauge_slots_.push_back(0);
  return GaugeHandle{idx};
}

HistogramHandle MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, default_bucket_bounds());
}

HistogramHandle MetricsRegistry::histogram(std::string_view name,
                                           std::vector<i64> bounds) {
  const MutexLock lock(mu_);
  const i32 idx = find_or_append(histogram_names_, name, kMaxMetrics);
  if (static_cast<std::size_t>(idx) == histogram_slots_.size())
    histogram_slots_.emplace_back(std::move(bounds));
  return HistogramHandle{idx};
}

void MetricsRegistry::merge_histogram(std::string_view name,
                                      const HistogramData& local) {
  if (!enabled() || local.count == 0) return;
  const HistogramHandle h = histogram(name, local.bounds);
  if (h.idx >= 0)
    histogram_slots_[static_cast<std::size_t>(h.idx)].merge_from(local);
}

void MetricsRegistry::record_duration_us(std::string_view scope, i64 us) {
  if (!enabled()) return;
  std::string name(scope);
  name += "_us";
  record(histogram(name, duration_bucket_bounds()), us);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    snap.counters.emplace_back(counter_names_[i], counter_slots_[i]);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    snap.gauges.emplace_back(gauge_names_[i], gauge_slots_[i]);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i)
    snap.histograms.emplace_back(histogram_names_[i], histogram_slots_[i]);
  return snap;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  std::fill(counter_slots_.begin(), counter_slots_.end(), 0);
  std::fill(gauge_slots_.begin(), gauge_slots_.end(), 0);
  for (HistogramData& h : histogram_slots_) {
    std::fill(h.counts.begin(), h.counts.end(), 0);
    h.count = h.sum = h.min = h.max = 0;
  }
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace tp::obs
