// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, cheap enough for per-cycle use.
//
// Design for the hot path:
//   * Names are resolved to integer handles ONCE (registration takes a
//     mutex); recording through a handle is a bounds-checked index into a
//     plain i64 slot — no locks, no atomics, no string hashing.
//   * The registry is DISABLED by default.  Every record operation first
//     branches on a single bool; when disabled the whole instrumentation
//     reduces to a handful of well-predicted branches (verified against
//     bench_perf, see docs/observability.md).
//   * Slot storage is pre-reserved (kMaxMetrics per kind) so recording
//     never reallocates; registration beyond the cap throws.
//
// Thread-safety: registration and snapshot() are mutex-protected and may
// run concurrently with recording.  Recording itself is intentionally not
// atomic — the instrumented paths in this codebase are single-threaded.
// Parallel code must NOT record from workers: it accumulates per-worker
// tallies and records the reduced total after the join (see
// odr_loads_parallel / udr_loads_parallel in load/complete_exchange.cpp).
// If two threads do record to the same slot, counts may be lost but
// nothing crashes.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/math.h"
#include "src/util/thread_annotations.h"
#include "src/util/worker_context.h"

namespace tp::obs {

struct CounterHandle {
  i32 idx = -1;
};
struct GaugeHandle {
  i32 idx = -1;
};
struct HistogramHandle {
  i32 idx = -1;
};

/// Default histogram buckets: powers of two 1, 2, 4, ..., 2^20 plus an
/// overflow bucket.  Suits counts (queue depths, per-cycle rates,
/// latencies in cycles) across five orders of magnitude.
std::vector<i64> default_bucket_bounds();

/// Buckets for durations recorded in microseconds: powers of two up to
/// 2^26 us (~67 s) plus overflow.
std::vector<i64> duration_bucket_bounds();

/// A fixed-bucket histogram over i64 samples.  `bounds` are inclusive
/// upper edges in ascending order; counts has bounds.size() + 1 entries,
/// the last being the overflow bucket.  Usable standalone (SimMetrics
/// embeds one) or as a registry slot.
struct HistogramData {
  std::vector<i64> bounds;
  std::vector<i64> counts;
  i64 count = 0;
  i64 sum = 0;
  i64 min = 0;
  i64 max = 0;

  HistogramData() : HistogramData(default_bucket_bounds()) {}
  explicit HistogramData(std::vector<i64> bucket_bounds);

  void record(i64 v);
  double mean() const;

  /// Folds another histogram with identical bucket bounds into this one
  /// (counts, sum, count, min/max all combine).  The reduction step for
  /// worker pools that accumulate per-worker histograms.
  void merge_from(const HistogramData& other);

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  /// containing bucket, clamped to the exact observed [min, max].  Exact
  /// for q = 1 (returns max).
  double percentile(double q) const;
};

/// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, i64>> counters;
  std::vector<std::pair<std::string, i64>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Lookup helpers; return nullptr when the name was never registered.
  const i64* counter(std::string_view name) const;
  const i64* gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Hard cap per metric kind; keeps slot storage reallocation-free so
  /// handles stay valid while other threads record.
  static constexpr std::size_t kMaxMetrics = 256;

  MetricsRegistry();

  /// Registration: resolves (or creates) the slot for `name`.  Takes a
  /// mutex — call once and keep the handle, not per record.
  CounterHandle counter(std::string_view name) TP_EXCLUDES(mu_);
  GaugeHandle gauge(std::string_view name) TP_EXCLUDES(mu_);
  HistogramHandle histogram(std::string_view name) TP_EXCLUDES(mu_);
  HistogramHandle histogram(std::string_view name, std::vector<i64> bounds)
      TP_EXCLUDES(mu_);

  /// False on pool-worker threads even when the registry is on: recording
  /// is single-writer by contract, and every record operation gates on
  /// this, so nested instrumentation (router counters, planner scopes)
  /// reached from parallel_for_blocks or engine workers drops out instead
  /// of racing.  See util/worker_context.h.
  bool enabled() const { return enabled_ && !in_pool_worker(); }
  void set_enabled(bool on) { enabled_ = on; }

  // --- hot path -----------------------------------------------------------

  void add(CounterHandle h, i64 v = 1) {
    if (enabled_ && h.idx >= 0)
      counter_slots_[static_cast<std::size_t>(h.idx)] += v;
  }
  void set(GaugeHandle h, i64 v) {
    if (enabled_ && h.idx >= 0)
      gauge_slots_[static_cast<std::size_t>(h.idx)] = v;
  }
  /// Raises the gauge to v if v is larger (high-water marks).
  void set_max(GaugeHandle h, i64 v) {
    if (enabled_ && h.idx >= 0) {
      i64& slot = gauge_slots_[static_cast<std::size_t>(h.idx)];
      if (v > slot) slot = v;
    }
  }
  void record(HistogramHandle h, i64 v) {
    if (enabled_ && h.idx >= 0)
      histogram_slots_[static_cast<std::size_t>(h.idx)].record(v);
  }

  // --- slow path ----------------------------------------------------------

  /// Records a scope duration into the histogram `<scope>_us` (created on
  /// first use with duration buckets).  Name lookup per call — intended
  /// for phase-granularity scopes, not inner loops.
  void record_duration_us(std::string_view scope, i64 us);

  /// Folds a locally accumulated histogram into the named slot (created
  /// on first use with `local`'s bounds).  This is how multi-threaded
  /// components publish latency distributions under the registry's
  /// threading contract: workers accumulate private HistogramData, one
  /// thread merges the reduction (see src/service/engine.cpp).  No-op
  /// when disabled or `local` is empty.
  void merge_histogram(std::string_view name, const HistogramData& local);

  /// Thread-safe copy of all metrics.
  MetricsSnapshot snapshot() const TP_EXCLUDES(mu_);

  /// Zeroes every slot (registrations survive).
  void reset() TP_EXCLUDES(mu_);

 private:
  bool enabled_ = false;
  mutable Mutex mu_;
  std::vector<std::string> counter_names_ TP_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ TP_GUARDED_BY(mu_);
  std::vector<std::string> histogram_names_ TP_GUARDED_BY(mu_);
  // Slot vectors are deliberately NOT guarded: the hot-path record
  // operations index them without the lock (see the threading contract in
  // the header comment — recording is single-threaded by design, and
  // reserve(kMaxMetrics) keeps the storage stable while registration
  // appends under mu_).
  std::vector<i64> counter_slots_;
  std::vector<i64> gauge_slots_;
  std::vector<HistogramData> histogram_slots_;
};

/// The process-wide registry used by all built-in instrumentation.
MetricsRegistry& registry();

}  // namespace tp::obs
