// Monotonic wall-time measurement recording into the metrics registry.
//
// Stopwatch is a thin steady_clock wrapper; ScopedTimer records its
// lifetime into a counter (accumulated nanoseconds) so repeated scopes sum
// up.  For the combined timer + trace-span RAII used by the phase
// instrumentation, see obs.h (TP_OBS_SCOPE).

#pragma once

#include <chrono>

#include "src/obs/registry.h"

namespace tp::obs {

/// Monotonic nanosecond stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  /// Nanoseconds of steady_clock time since an arbitrary fixed origin.
  static i64 now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void restart() { start_ = now_ns(); }
  i64 elapsed_ns() const { return now_ns() - start_; }
  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  i64 start_;
};

/// Adds the scope's elapsed nanoseconds to a registry counter on
/// destruction.  The handle is resolved by the caller (once), so the
/// per-scope cost when the registry is disabled is two clock reads at most
/// — and none at all if constructed with an inactive registry, since
/// recording is skipped inside MetricsRegistry::add.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& reg, CounterHandle ns_counter)
      : reg_(reg), handle_(ns_counter), active_(reg.enabled()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (active_) reg_.add(handle_, watch_.elapsed_ns());
  }

 private:
  MetricsRegistry& reg_;
  CounterHandle handle_;
  bool active_;
  Stopwatch watch_;
};

}  // namespace tp::obs
