#include "src/obs/timeseries.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp::obs {

TimeSeries::TimeSeries(i64 initial_width, std::size_t capacity)
    : initial_width_(initial_width),
      width_(initial_width),
      windows_(capacity) {
  TP_REQUIRE(initial_width >= 1, "window width must be >= 1");
  TP_REQUIRE(capacity >= 2, "time series needs at least two windows");
}

const WindowStats& TimeSeries::window(std::size_t i) const {
  TP_REQUIRE(i < used_, "time series window index out of range");
  return windows_[i];
}

i64 TimeSeries::total_sum() const {
  i64 sum = 0;
  for (std::size_t i = 0; i < used_; ++i) sum += windows_[i].sum;
  return sum;
}

i64 TimeSeries::total_count() const {
  i64 count = 0;
  for (std::size_t i = 0; i < used_; ++i) count += windows_[i].count;
  return count;
}

void TimeSeries::clear() {
  for (WindowStats& w : windows_) w = WindowStats{};
  width_ = initial_width_;
  used_ = 0;
}

RollingSeries::RollingSeries(std::size_t capacity) : slots_(capacity) {
  TP_REQUIRE(capacity >= 1, "rolling series needs at least one slot");
}

void RollingSeries::record(i64 tick, i64 v) {
  TP_REQUIRE(tick >= 0, "rolling series tick must be >= 0");
  Slot& slot = slots_[static_cast<std::size_t>(tick) % slots_.size()];
  if (slot.tick != tick) {
    slot.tick = tick;
    slot.stats = WindowStats{};
  }
  slot.stats.record(v);
}

WindowStats RollingSeries::last(i64 now_tick, i64 n) const {
  WindowStats out;
  n = std::min<i64>(n, static_cast<i64>(slots_.size()));
  for (const Slot& slot : slots_)
    if (slot.tick > now_tick - n && slot.tick <= now_tick)
      out.merge(slot.stats);
  return out;
}

RollingHistogram::RollingHistogram(std::vector<i64> bounds,
                                   std::size_t capacity)
    : bounds_(std::move(bounds)), slots_(capacity) {
  TP_REQUIRE(capacity >= 1, "rolling histogram needs at least one slot");
  for (Slot& slot : slots_) slot.h = HistogramData(bounds_);
}

void RollingHistogram::record(i64 tick, i64 v) {
  TP_REQUIRE(tick >= 0, "rolling histogram tick must be >= 0");
  Slot& slot = slots_[static_cast<std::size_t>(tick) % slots_.size()];
  if (slot.tick != tick) {
    slot.tick = tick;
    slot.h = HistogramData(bounds_);
  }
  slot.h.record(v);
}

HistogramData RollingHistogram::merged(i64 now_tick, i64 n) const {
  HistogramData out(bounds_);
  n = std::min<i64>(n, static_cast<i64>(slots_.size()));
  for (const Slot& slot : slots_)
    if (slot.tick > now_tick - n && slot.tick <= now_tick)
      out.merge_from(slot.h);
  return out;
}

std::size_t TimeSeries::grow_to(i64 t) {
  TP_REQUIRE(t >= 0, "time series tick must be >= 0");
  const std::size_t cap = windows_.size();
  std::size_t idx = static_cast<std::size_t>(t / width_);
  while (idx >= cap) {
    // Pairwise merge: window j absorbs windows 2j and 2j+1 of the old
    // width, halving the occupied prefix.
    const std::size_t half = (used_ + 1) / 2;
    for (std::size_t j = 0; j < half; ++j) {
      WindowStats merged = windows_[2 * j];
      if (2 * j + 1 < used_) merged.merge(windows_[2 * j + 1]);
      windows_[j] = merged;
    }
    for (std::size_t j = half; j < used_; ++j) windows_[j] = WindowStats{};
    used_ = half;
    width_ *= 2;
    idx = static_cast<std::size_t>(t / width_);
  }
  return idx;
}

}  // namespace tp::obs
