// Bounded-memory windowed time series.
//
// A TimeSeries buckets (tick, value) samples into contiguous time windows
// of equal width and keeps min/max/sum/count per window.  The window
// buffer has a fixed capacity: when a sample lands past the last window,
// adjacent windows are merged pairwise and the window width doubles, so an
// arbitrarily long run always fits in `capacity` windows and memory stays
// bounded.  Resolution degrades gracefully — a run of C cycles is covered
// at width ceil_pow2-ish C/capacity, never dropped.
//
// The simulators feed one series per telemetry channel (link forwards,
// queue depths, stalls) with tick = simulation cycle, which is what makes
// "when did the network saturate" answerable after the fact (see
// linkprobe.h and docs/observability.md).
//
// Not thread-safe; each series is owned by a single recording loop.

#pragma once

#include <cstddef>
#include <vector>

#include "src/obs/registry.h"
#include "src/util/math.h"

namespace tp::obs {

/// Aggregate statistics of the samples that landed in one window.
struct WindowStats {
  i64 count = 0;
  i64 sum = 0;
  i64 min = 0;  ///< meaningful only when count > 0
  i64 max = 0;

  void record(i64 v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
  }

  /// Folds another window into this one (used when windows merge).
  void merge(const WindowStats& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    count += o.count;
    sum += o.sum;
  }

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

class TimeSeries {
 public:
  /// `initial_width` ticks per window (>= 1); `capacity` windows (>= 2).
  explicit TimeSeries(i64 initial_width = 1, std::size_t capacity = 64);

  /// Records one sample at tick t (>= 0).  Amortized O(1): a merge pass
  /// touches `capacity` windows but halves the occupied count, and widths
  /// only ever double.
  void record(i64 t, i64 v) {
    std::size_t idx = static_cast<std::size_t>(t / width_);
    if (idx >= windows_.size()) idx = grow_to(t);
    windows_[idx].record(v);
    if (idx >= used_) used_ = idx + 1;
  }

  i64 window_width() const { return width_; }
  std::size_t capacity() const { return windows_.size(); }

  /// Windows [0, num_windows()); trailing never-touched windows are not
  /// reported.  A window inside the range can still have count == 0 (no
  /// sample landed there).
  std::size_t num_windows() const { return used_; }
  const WindowStats& window(std::size_t i) const;
  /// First tick covered by window i (the window spans width() ticks).
  i64 window_start(std::size_t i) const {
    return static_cast<i64>(i) * width_;
  }

  /// Sum over all windows (total of every recorded value).
  i64 total_sum() const;
  i64 total_count() const;

  /// Zeroes all windows and restores the initial window width.
  void clear();

 private:
  /// Merges windows until tick t falls inside the buffer; returns t's
  /// window index.
  std::size_t grow_to(i64 t);

  i64 initial_width_ = 1;
  i64 width_ = 1;
  std::size_t used_ = 0;
  std::vector<WindowStats> windows_;
};

/// Ring of per-tick aggregates answering "what happened over the last N
/// ticks" — the live-rate counterpart of TimeSeries (which covers a whole
/// run at degrading resolution; this covers only the recent past at full
/// resolution).  Tick is the caller's clock, one slot per tick value
/// (the service engine uses seconds since start, so a 64-slot ring holds
/// the 1s/10s/60s windows statusz reports).  Stale slots are lazily
/// overwritten when their ring position comes around again and ignored by
/// reads, so an idle stretch costs nothing.
///
/// Not thread-safe; guard it with the owning component's lock.
class RollingSeries {
 public:
  explicit RollingSeries(std::size_t capacity = 64);

  void record(i64 tick, i64 v);

  /// Merged stats over ticks in (now_tick - n, now_tick].  `n` is clamped
  /// to the ring capacity (asking for more than the ring remembers
  /// answers with what it has).
  WindowStats last(i64 now_tick, i64 n) const;

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    i64 tick = -1;  ///< -1 = never written
    WindowStats stats;
  };
  std::vector<Slot> slots_;
};

/// Ring of per-tick histograms for windowed percentiles (p50/p99 over the
/// last N ticks).  Same slot discipline as RollingSeries; merged()
/// reduces the live slots into one HistogramData with the configured
/// bounds.  Not thread-safe.
class RollingHistogram {
 public:
  explicit RollingHistogram(std::vector<i64> bounds,
                            std::size_t capacity = 64);

  void record(i64 tick, i64 v);

  /// Histogram of every sample with tick in (now_tick - n, now_tick].
  HistogramData merged(i64 now_tick, i64 n) const;

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    i64 tick = -1;
    HistogramData h;
  };
  std::vector<i64> bounds_;
  std::vector<Slot> slots_;
};

}  // namespace tp::obs
