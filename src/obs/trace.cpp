#include "src/obs/trace.h"

#include <atomic>

#include "src/obs/timer.h"

namespace tp::obs {

namespace {

/// Small dense thread ids (Chrome renders one lane per tid).
i64 current_tid() {
  static std::atomic<i64> next{1};
  thread_local i64 tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer::Tracer() : epoch_ns_(Stopwatch::now_ns()) {}

void Tracer::push(std::string_view name, std::string_view cat, char phase,
                  i64 value, i64 dur_ns) {
  // Complete events end now and started dur_ns ago; everything else is
  // stamped at the current instant.
  const i64 ts = Stopwatch::now_ns() - epoch_ns_ - (phase == 'X' ? dur_ns : 0);
  const MutexLock lock(mu_);
  events_.push_back(TraceEvent{std::string(name), std::string(cat), phase,
                               ts, current_tid(), value, dur_ns});
}

void Tracer::begin(std::string_view name, std::string_view cat) {
  if (!enabled_) return;
  push(name, cat, 'B');
}

void Tracer::end(std::string_view name) {
  if (!enabled_) return;
  push(name, "", 'E');
}

void Tracer::instant(std::string_view name, std::string_view cat) {
  if (!enabled_) return;
  push(name, cat, 'i');
}

void Tracer::counter(std::string_view name, i64 value,
                     std::string_view cat) {
  if (!enabled_) return;
  push(name, cat, 'C', value);
}

void Tracer::complete(std::string_view name, i64 dur_ns,
                      std::string_view cat) {
  if (!enabled_) return;
  push(name, cat, 'X', 0, dur_ns < 0 ? 0 : dur_ns);
}

void Tracer::sample(std::string_view name, i64 ts_abs_ns, i64 tid,
                    std::string_view cat) {
  if (!enabled_) return;
  const i64 ts = ts_abs_ns - epoch_ns_;
  const MutexLock lock(mu_);
  events_.push_back(
      TraceEvent{std::string(name), std::string(cat), 'i', ts, tid, 0, 0});
}

std::vector<TraceEvent> Tracer::events() const {
  const MutexLock lock(mu_);
  return events_;
}

void Tracer::clear() {
  const MutexLock lock(mu_);
  events_.clear();
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace tp::obs
