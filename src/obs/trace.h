// Phase tracer emitting Chrome-trace-format events.
//
// The tracer records begin/end ("B"/"E") event pairs against a steady
// clock epoch fixed at process start.  export_chrome_trace() (export.h)
// serializes the buffer as a Chrome trace that loads directly in
// chrome://tracing and Perfetto.
//
// Like the metrics registry, the tracer is disabled by default; begin/end
// on a disabled tracer is a single predicted branch.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/util/math.h"
#include "src/util/thread_annotations.h"

namespace tp::obs {

/// One trace_event record.  Timestamps are nanoseconds since the tracer's
/// epoch; the exporter converts to the format's microseconds.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'B';  ///< 'B' begin, 'E' end, 'i' instant, 'C' counter,
                     ///< 'X' complete (carries dur_ns)
  i64 ts_ns = 0;
  i64 tid = 0;
  i64 value = 0;   ///< counter events only: the sampled value
  i64 dur_ns = 0;  ///< complete events only: the span duration
};

class Tracer {
 public:
  Tracer();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Opens a span.  Every begin() must be matched by an end() with the
  /// same name (Chrome pairs them per tid by LIFO order).
  void begin(std::string_view name, std::string_view cat = "phase");
  void end(std::string_view name);

  /// A zero-duration marker event.
  void instant(std::string_view name, std::string_view cat = "event");

  /// A complete ('X') event: one self-contained span that ENDS now and
  /// lasted `dur_ns`.  Unlike begin/end pairs this needs no LIFO nesting
  /// per thread, which is what makes it safe for per-request spans whose
  /// lifetimes interleave arbitrarily across engine workers (the tracer
  /// itself is mutex-protected; see src/service/engine.cpp).
  void complete(std::string_view name, i64 dur_ns,
                std::string_view cat = "span");

  /// A counter sample: Chrome/Perfetto render successive samples of the
  /// same name as a filled value-over-time track, which is how the
  /// simulators surface per-window link saturation on the timeline.
  void counter(std::string_view name, i64 value,
               std::string_view cat = "counter");

  /// An instant event at an explicit time and lane: `ts_abs_ns` is an
  /// absolute Stopwatch::now_ns() reading (converted to the tracer's
  /// epoch here) and `tid` picks the lane.  The profiler uses this to
  /// emit SIGPROF samples recorded earlier than the export.
  void sample(std::string_view name, i64 ts_abs_ns, i64 tid,
              std::string_view cat = "sample");

  /// Copy of the recorded buffer (thread-safe).
  std::vector<TraceEvent> events() const TP_EXCLUDES(mu_);

  void clear() TP_EXCLUDES(mu_);

 private:
  void push(std::string_view name, std::string_view cat, char phase,
            i64 value = 0, i64 dur_ns = 0) TP_EXCLUDES(mu_);

  bool enabled_ = false;
  i64 epoch_ns_ = 0;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ TP_GUARDED_BY(mu_);
};

/// The process-wide tracer used by all built-in instrumentation.
Tracer& tracer();

}  // namespace tp::obs
