#include "src/placement/factory.h"

#include <cstdlib>
#include <sstream>

#include "src/placement/io.h"
#include "src/placement/modular.h"
#include "src/util/error.h"

namespace tp {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) parts.push_back(item);
  return parts;
}

i64 to_int(const std::string& s) {
  TP_REQUIRE(!s.empty(), "empty numeric argument in placement spec");
  char* end = nullptr;
  const i64 v = std::strtoll(s.c_str(), &end, 10);
  TP_REQUIRE(end != nullptr && *end == '\0',
             "malformed number '" + s + "' in placement spec");
  return v;
}

}  // namespace

Placement make_placement(const Torus& torus, const std::string& spec) {
  if (spec.rfind("file:", 0) == 0)
    return load_placement(spec.substr(5), torus);
  const auto parts = split(spec, ':');
  TP_REQUIRE(!parts.empty(), "empty placement spec");
  const std::string& family = parts[0];
  const std::size_t nargs = parts.size() - 1;

  auto arg = [&](std::size_t i) { return to_int(parts[i + 1]); };

  if (family == "linear") {
    TP_REQUIRE(nargs <= 1, "linear takes at most one argument");
    return linear_placement(torus,
                            nargs >= 1 ? static_cast<i32>(arg(0)) : 0);
  }
  if (family == "multiple") {
    TP_REQUIRE(nargs == 1, "multiple needs t");
    return multiple_linear_placement(torus, static_cast<i32>(arg(0)));
  }
  if (family == "diagonal") {
    TP_REQUIRE(nargs <= 1, "diagonal takes at most one argument");
    return shifted_diagonal_placement(
        torus, nargs >= 1 ? static_cast<i32>(arg(0)) : 0);
  }
  if (family == "full") {
    TP_REQUIRE(nargs == 0, "full takes no arguments");
    return full_population(torus);
  }
  if (family == "random") {
    TP_REQUIRE(nargs >= 1 && nargs <= 2, "random needs n and optional seed");
    return random_placement(torus, arg(0),
                            nargs >= 2 ? static_cast<u64>(arg(1)) : 1);
  }
  if (family == "clustered") {
    TP_REQUIRE(nargs == 1, "clustered needs n");
    return clustered_placement(torus, arg(0));
  }
  if (family == "subtorus") {
    TP_REQUIRE(nargs == 2, "subtorus needs dim and value");
    return subtorus_placement(torus, static_cast<i32>(arg(0)),
                              static_cast<i32>(arg(1)));
  }
  if (family == "perfect_lee") {
    TP_REQUIRE(nargs == 0, "perfect_lee takes no arguments");
    return perfect_lee_placement(torus);
  }
  if (family == "modular") {
    TP_REQUIRE(nargs >= 1 && nargs <= 2, "modular needs m and optional c");
    SmallVec<i32> coeffs(static_cast<std::size_t>(torus.dims()), 1);
    return modular_placement(torus, coeffs, static_cast<i32>(arg(0)),
                             nargs >= 2 ? static_cast<i32>(arg(1)) : 0);
  }
  throw Error("unknown placement family '" + family + "'");
}

std::vector<std::string> placement_family_names() {
  return {"linear",    "multiple", "diagonal",    "full",    "random",
          "clustered", "subtorus", "perfect_lee", "modular", "file"};
}

}  // namespace tp
