// Placement factory: build placements from textual specs.
//
// Used by the CLI and the experiment harness so every placement family in
// the library is addressable by name:
//
//   "linear"            all-ones linear placement, residue 0
//   "linear:c"          all-ones linear placement, residue c
//   "multiple:t"        union of residues 0..t-1
//   "diagonal"          shifted diagonal (Blaum et al. baseline)
//   "diagonal:shift"
//   "full"              every node
//   "random:n[:seed]"   uniform random subset
//   "clustered:n"       first n node ids
//   "subtorus:dim:v"    one principal subtorus
//   "perfect_lee"       the 5|k perfect Lee code on T_k^2
//   "modular:m[:c]"     all-ones congruence modulo m (m | k)
//   "file:<path>"       placement saved with save_placement (io.h)

#pragma once

#include <string>
#include <vector>

#include "src/placement/placement.h"

namespace tp {

/// Parses a spec and builds the placement.  Throws tp::Error on unknown
/// family names, malformed arguments, or family preconditions (e.g.
/// "perfect_lee" on a torus without 5 | k).
Placement make_placement(const Torus& torus, const std::string& spec);

/// The family names make_placement accepts (for help text).
std::vector<std::string> placement_family_names();

}  // namespace tp
