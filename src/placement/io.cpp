#include "src/placement/io.h"

#include <fstream>
#include <sstream>

#include "src/util/error.h"

namespace tp {

namespace {
constexpr const char* kMagic = "torusplace-placement v1";
}

void write_placement(std::ostream& os, const Torus& torus,
                     const Placement& p) {
  p.check_torus(torus);
  os << kMagic << "\n";
  os << "radices";
  for (i32 d = 0; d < torus.dims(); ++d) os << ' ' << torus.radix(d);
  os << "\n";
  os << "name " << p.name() << "\n";
  os << "nodes " << p.size() << "\n";
  for (NodeId n : p.nodes()) {
    const Coord c = torus.coord(n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i > 0) os << ' ';
      os << c[i];
    }
    os << "\n";
  }
  TP_REQUIRE(os.good(), "placement write failed");
}

Placement read_placement(std::istream& is, const Torus& torus) {
  std::string line;
  TP_REQUIRE(std::getline(is, line) && line == kMagic,
             "not a torusplace placement file");

  TP_REQUIRE(std::getline(is, line), "missing radices line");
  {
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    TP_REQUIRE(tag == "radices", "expected radices line");
    for (i32 d = 0; d < torus.dims(); ++d) {
      i32 k = 0;
      TP_REQUIRE(static_cast<bool>(ss >> k), "radices line too short");
      TP_REQUIRE(k == torus.radix(d),
                 "placement was saved for a different torus");
    }
    i32 extra = 0;
    TP_REQUIRE(!(ss >> extra), "radices line too long");
  }

  TP_REQUIRE(std::getline(is, line) && line.rfind("name ", 0) == 0,
             "missing name line");
  std::string name = line.substr(5);

  TP_REQUIRE(std::getline(is, line) && line.rfind("nodes ", 0) == 0,
             "missing nodes line");
  const i64 count = std::strtoll(line.c_str() + 6, nullptr, 10);
  TP_REQUIRE(count >= 0 && count <= torus.num_nodes(),
             "implausible node count");

  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(count));
  for (i64 i = 0; i < count; ++i) {
    TP_REQUIRE(std::getline(is, line), "truncated placement file");
    std::istringstream ss(line);
    Coord c;
    for (i32 d = 0; d < torus.dims(); ++d) {
      i32 v = 0;
      TP_REQUIRE(static_cast<bool>(ss >> v), "coordinate line too short");
      c.push_back(v);
    }
    nodes.push_back(torus.node_id(c));  // validates ranges
  }
  Placement p(torus, std::move(nodes), std::move(name));
  TP_REQUIRE(p.size() == count, "duplicate nodes in placement file");
  return p;
}

void save_placement(const std::string& path, const Torus& torus,
                    const Placement& p) {
  std::ofstream os(path);
  TP_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  write_placement(os, torus, p);
}

Placement load_placement(const std::string& path, const Torus& torus) {
  std::ifstream is(path);
  TP_REQUIRE(is.good(), "cannot open '" + path + "'");
  return read_placement(is, torus);
}

}  // namespace tp
