// Placement serialization.
//
// A small line-oriented text format so placements survive across runs and
// can be passed between the CLI, the examples, and external tools:
//
//   torusplace-placement v1
//   radices <k_1> <k_2> ... <k_d>
//   name <free text until end of line>
//   nodes <count>
//   <coordinate tuple per line, d integers>
//
// Loading validates the torus shape against the torus the caller supplies
// (a placement is meaningless on a different torus).

#pragma once

#include <iosfwd>
#include <string>

#include "src/placement/placement.h"

namespace tp {

/// Writes the placement in the format above.
void write_placement(std::ostream& os, const Torus& torus,
                     const Placement& p);

/// Parses a placement; throws tp::Error on malformed input or if the
/// stored radices differ from `torus`.
Placement read_placement(std::istream& is, const Torus& torus);

/// File convenience wrappers.
void save_placement(const std::string& path, const Torus& torus,
                    const Placement& p);
Placement load_placement(const std::string& path, const Torus& torus);

}  // namespace tp
