#include "src/placement/modular.h"

#include "src/util/error.h"

namespace tp {

Placement modular_placement(const Torus& torus, const SmallVec<i32>& coeffs,
                            i32 m, i32 c) {
  TP_REQUIRE(coeffs.size() == static_cast<std::size_t>(torus.dims()),
             "one coefficient per dimension required");
  TP_REQUIRE(m >= 2, "modulus must be >= 2");
  for (i32 dim = 0; dim < torus.dims(); ++dim)
    TP_REQUIRE(torus.radix(dim) % m == 0,
               "modulus must divide every radix (congruence must respect "
               "wrap-around)");
  bool any_coprime = false;
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (is_coprime(coeffs[i], m)) any_coprime = true;
  TP_REQUIRE(any_coprime, "at least one coefficient must be coprime to m");

  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 sum = 0;
    for (i32 dim = 0; dim < torus.dims(); ++dim)
      sum += static_cast<i64>(coeffs[static_cast<std::size_t>(dim)]) *
             torus.coord_of(n, dim);
    if (mod_norm(sum, m) == mod_norm(c, m)) nodes.push_back(n);
  }
  return Placement(torus, std::move(nodes),
                   "modular(m=" + std::to_string(m) +
                       ",c=" + std::to_string(mod_norm(c, m)) + ")");
}

Placement perfect_lee_placement(const Torus& torus) {
  TP_REQUIRE(torus.dims() == 2, "perfect Lee placement defined on T_k^2");
  TP_REQUIRE(torus.is_uniform_radix() && torus.radix(0) % 5 == 0,
             "perfect Lee placement requires 5 | k");
  Placement p = modular_placement(torus, SmallVec<i32>{1, 2}, 5, 0);
  return Placement(torus, p.nodes(), "perfect_lee");
}

Placement diagonal_placement_mixed(const Torus& torus, i32 dim, i32 c) {
  TP_REQUIRE(dim >= 0 && dim < torus.dims(), "dimension out of range");
  const i32 kj = torus.radix(dim);
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 others = 0;
    for (i32 i = 0; i < torus.dims(); ++i)
      if (i != dim) others += torus.coord_of(n, i);
    if (torus.coord_of(n, dim) == mod_norm(c + others, kj))
      nodes.push_back(n);
  }
  return Placement(torus, std::move(nodes),
                   "diagonal_mixed(dim=" + std::to_string(dim) +
                       ",c=" + std::to_string(mod_norm(c, kj)) + ")");
}

bool is_dominating(const Torus& torus, const Placement& p, i64 radius) {
  p.check_torus(torus);
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    bool covered = false;
    for (NodeId proc : p.nodes())
      if (torus.lee_distance(n, proc) <= radius) {
        covered = true;
        break;
      }
    if (!covered) return false;
  }
  return true;
}

bool is_perfect_dominating(const Torus& torus, const Placement& p,
                           i64 radius) {
  p.check_torus(torus);
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 covering = 0;
    for (NodeId proc : p.nodes())
      if (torus.lee_distance(n, proc) <= radius) ++covering;
    if (covering != 1) return false;
  }
  return true;
}

}  // namespace tp
