// Generalized modular placements — the Section 8 directions.
//
// Two families beyond Definition 10:
//
//  * modular_placement:  { p : c_1 p_1 + ... + c_d p_d == c (mod m) } with
//    the modulus m dividing k instead of equal to it.  Size k^d / m.  For
//    (c_i) = (1, 2), m = 5, d = 2 this is the classical perfect Lee code:
//    every node of T_k^2 (5 | k) is within Lee distance 1 of exactly one
//    processor — the resource-placement connection to Bose et al. the
//    paper cites.
//
//  * diagonal_placement_mixed:  the linear placement transplanted to
//    mixed-radix tori T_{k_1 x ... x k_d}: fix a dimension j and place
//    processors where p_j == c + sum_{i != j} p_i (mod k_j).  Size
//    N / k_j, and uniform along every dimension other than j (along j
//    itself exactly when some other radix is a multiple of k_j).  One
//    uniform dimension is all the generalized Theorem 1 needs for its
//    bisection, so the linear-load machinery carries over to unequal
//    radices — the paper's Section 8 direction.

#pragma once

#include "src/placement/placement.h"

namespace tp {

/// Placement cut out by a linear congruence modulo m, where m must divide
/// every radix of the torus (so the congruence respects wrap-around).
/// At least one coefficient must be coprime to m; size is N / m.
Placement modular_placement(const Torus& torus, const SmallVec<i32>& coeffs,
                            i32 m, i32 c = 0);

/// The perfect Lee-sphere placement on T_k^2 (requires 5 | k): coeffs
/// (1, 2) modulo 5.  Every node is within Lee distance 1 of exactly one
/// processor.
Placement perfect_lee_placement(const Torus& torus);

/// Mixed-radix diagonal placement: processors where
///   p_dim == c + sum_{i != dim} p_i  (mod radix(dim)).
/// Size N / radix(dim); uniform along every dimension other than `dim`.
Placement diagonal_placement_mixed(const Torus& torus, i32 dim, i32 c = 0);

/// True when every node of the torus is within Lee distance `radius` of at
/// least one processor (a distance-`radius` dominating set).
bool is_dominating(const Torus& torus, const Placement& p, i64 radius);

/// True when every node is within Lee distance `radius` of *exactly* one
/// processor (a perfect placement / perfect Lee code).
bool is_perfect_dominating(const Torus& torus, const Placement& p,
                           i64 radius);

}  // namespace tp
