#include "src/placement/placement.h"

#include <algorithm>
#include <numeric>

#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

Placement::Placement(const Torus& torus, std::vector<NodeId> nodes,
                     std::string name)
    : nodes_(std::move(nodes)),
      member_(static_cast<std::size_t>(torus.num_nodes()), false),
      name_(std::move(name)),
      torus_nodes_(torus.num_nodes()) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  for (NodeId n : nodes_) {
    TP_REQUIRE(torus.valid_node(n), "placement node outside torus");
    member_[static_cast<std::size_t>(n)] = true;
  }
}

bool Placement::contains(NodeId n) const {
  TP_REQUIRE(n >= 0 && n < torus_nodes_, "node id out of range");
  return member_[static_cast<std::size_t>(n)];
}

void Placement::check_torus(const Torus& torus) const {
  TP_REQUIRE(torus.num_nodes() == torus_nodes_,
             "placement was generated for a different torus");
}

Placement linear_placement(const Torus& torus, const SmallVec<i32>& coeffs,
                           i32 c) {
  TP_REQUIRE(torus.is_uniform_radix(),
             "linear placements require a uniform-radix torus");
  TP_REQUIRE(coeffs.size() == static_cast<std::size_t>(torus.dims()),
             "one coefficient per dimension required");
  const i32 k = torus.radix(0);
  bool any_coprime = false;
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (is_coprime(coeffs[i], k)) any_coprime = true;
  TP_REQUIRE(any_coprime,
             "at least one coefficient must be relatively prime to k");

  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 sum = 0;
    for (i32 d = 0; d < torus.dims(); ++d)
      sum += static_cast<i64>(coeffs[static_cast<std::size_t>(d)]) *
             torus.coord_of(n, d);
    if (mod_norm(sum, k) == mod_norm(c, k)) nodes.push_back(n);
  }
  std::string name = "linear(c=" + std::to_string(mod_norm(c, k));
  bool all_ones = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (coeffs[i] != 1) all_ones = false;
  if (!all_ones) {
    name += ",coeffs=[";
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      if (i > 0) name += ",";
      name += std::to_string(coeffs[i]);
    }
    name += "]";
  }
  name += ")";
  return Placement(torus, std::move(nodes), std::move(name));
}

Placement linear_placement(const Torus& torus, i32 c) {
  SmallVec<i32> coeffs(static_cast<std::size_t>(torus.dims()), 1);
  return linear_placement(torus, coeffs, c);
}

Placement multiple_linear_placement(const Torus& torus, i32 t) {
  TP_REQUIRE(torus.is_uniform_radix(),
             "multiple linear placements require a uniform-radix torus");
  const i32 k = torus.radix(0);
  TP_REQUIRE(t >= 1 && t <= k, "t must be in [1, k]");
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 sum = 0;
    for (i32 d = 0; d < torus.dims(); ++d) sum += torus.coord_of(n, d);
    if (mod_norm(sum, k) < t) nodes.push_back(n);
  }
  return Placement(torus, std::move(nodes),
                   "multiple_linear(t=" + std::to_string(t) + ")");
}

Placement shifted_diagonal_placement(const Torus& torus, i32 shift) {
  TP_REQUIRE(torus.is_uniform_radix(),
             "shifted diagonal placements require a uniform-radix torus");
  const i32 k = torus.radix(0);
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < torus.num_nodes(); ++n) {
    i64 head = 0;
    for (i32 d = 0; d < torus.dims() - 1; ++d) head += torus.coord_of(n, d);
    const i64 want = mod_norm(shift - head, k);
    if (torus.coord_of(n, torus.dims() - 1) == want) nodes.push_back(n);
  }
  return Placement(torus, std::move(nodes),
                   "shifted_diagonal(shift=" + std::to_string(shift) + ")");
}

Placement full_population(const Torus& torus) {
  return Placement(torus, torus.all_nodes(), "full");
}

Placement random_placement(const Torus& torus, i64 size, u64 seed) {
  TP_REQUIRE(size >= 0 && size <= torus.num_nodes(),
             "placement size exceeds torus");
  std::vector<NodeId> all = torus.all_nodes();
  Xoshiro256SS rng(seed);
  // Partial Fisher-Yates: shuffle the first `size` positions.
  for (i64 i = 0; i < size; ++i) {
    const auto j =
        i + static_cast<i64>(rng.below(static_cast<u64>(torus.num_nodes() - i)));
    std::swap(all[static_cast<std::size_t>(i)],
              all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(size));
  return Placement(torus, std::move(all),
                   "random(n=" + std::to_string(size) +
                       ",seed=" + std::to_string(seed) + ")");
}

Placement clustered_placement(const Torus& torus, i64 size) {
  TP_REQUIRE(size >= 0 && size <= torus.num_nodes(),
             "placement size exceeds torus");
  std::vector<NodeId> nodes(static_cast<std::size_t>(size));
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  return Placement(torus, std::move(nodes),
                   "clustered(n=" + std::to_string(size) + ")");
}

Placement subtorus_placement(const Torus& torus, i32 dim, i32 value) {
  return Placement(torus, torus.principal_subtorus(dim, value),
                   "subtorus(dim=" + std::to_string(dim) +
                       ",value=" + std::to_string(value) + ")");
}

}  // namespace tp
