// Placements of processors in a torus (Definition 2 of the paper).
//
// A Placement is a subset of the torus's nodes: the nodes that carry a
// processor and inject messages.  It is a value type (nodes are copied and
// indexed) so that placements can outlive the generator that produced them;
// it remembers the node count of the torus it was built for and refuses to
// be combined with a torus of a different size.

#pragma once

#include <string>
#include <vector>

#include "src/torus/torus.h"

namespace tp {

/// An immutable set of processor nodes in a torus.
class Placement {
 public:
  /// Builds a placement from a list of nodes (deduplicated and sorted).
  /// All nodes must be valid in `torus`.
  Placement(const Torus& torus, std::vector<NodeId> nodes, std::string name);

  /// Number of processors |P|.
  i64 size() const { return static_cast<i64>(nodes_.size()); }

  /// Processor nodes in increasing id order.
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// O(1) membership test.
  bool contains(NodeId n) const;

  /// Human-readable generator name, e.g. "linear(c=0)".
  const std::string& name() const { return name_; }

  /// Node count of the torus this placement was generated for.
  i64 torus_nodes() const { return torus_nodes_; }

  /// Throws unless the placement was built for a torus of this size.
  void check_torus(const Torus& torus) const;

 private:
  std::vector<NodeId> nodes_;
  std::vector<bool> member_;
  std::string name_;
  i64 torus_nodes_ = 0;
};

// --- generators -----------------------------------------------------------

/// Linear placement (Definition 10): nodes whose coordinates satisfy
///   coeff_1 p_1 + ... + coeff_d p_d == c (mod k).
/// Requires a uniform-radix torus and at least one coefficient coprime to k
/// (this guarantees exactly k^{d-1} processors).
Placement linear_placement(const Torus& torus, const SmallVec<i32>& coeffs,
                           i32 c);

/// Linear placement with all coefficients 1: p_1 + ... + p_d == c (mod k).
Placement linear_placement(const Torus& torus, i32 c = 0);

/// Multiple linear placement (Section 5): union of the all-ones linear
/// placements with residues 0, 1, ..., t-1.  Size is t * k^{d-1}.
/// Requires 1 <= t <= k.
Placement multiple_linear_placement(const Torus& torus, i32 t);

/// Shifted diagonal placement in the style of Blaum et al.: the set
///   { p : p_d == shift - (p_1 + ... + p_{d-1}) (mod k) }.
/// Equivalent to linear_placement(torus, shift); provided as the named
/// baseline the paper compares against (tests assert the equivalence).
Placement shifted_diagonal_placement(const Torus& torus, i32 shift = 0);

/// Every node carries a processor (the fully populated torus of Section 1).
Placement full_population(const Torus& torus);

/// Uniformly random subset of the requested size (reproducible via seed).
Placement random_placement(const Torus& torus, i64 size, u64 seed);

/// Adversarially non-uniform placement: the first `size` nodes in id order,
/// which clusters all processors into a corner of the torus.  Used as a
/// baseline that violates uniformity.
Placement clustered_placement(const Torus& torus, i64 size);

/// Single fixed-coordinate slab: all nodes whose coordinate in `dim` equals
/// `value` (one principal subtorus).  Size k^{d-1} but maximally non-uniform
/// along `dim` — a natural "wrong" competitor to the linear placement.
Placement subtorus_placement(const Torus& torus, i32 dim, i32 value);

}  // namespace tp
