#include "src/placement/uniformity.h"

#include "src/util/error.h"

namespace tp {

std::vector<i64> subtorus_counts(const Torus& torus, const Placement& p,
                                 i32 dim) {
  p.check_torus(torus);
  TP_REQUIRE(dim >= 0 && dim < torus.dims(), "dimension out of range");
  std::vector<i64> counts(static_cast<std::size_t>(torus.radix(dim)), 0);
  for (NodeId n : p.nodes())
    ++counts[static_cast<std::size_t>(torus.coord_of(n, dim))];
  return counts;
}

bool is_uniform_along(const Torus& torus, const Placement& p, i32 dim) {
  const auto counts = subtorus_counts(torus, p, dim);
  for (std::size_t i = 1; i < counts.size(); ++i)
    if (counts[i] != counts[0]) return false;
  return true;
}

bool is_uniform(const Torus& torus, const Placement& p) {
  for (i32 d = 0; d < torus.dims(); ++d)
    if (!is_uniform_along(torus, p, d)) return false;
  return true;
}

std::vector<i32> uniform_dimensions(const Torus& torus, const Placement& p) {
  std::vector<i32> dims;
  for (i32 d = 0; d < torus.dims(); ++d)
    if (is_uniform_along(torus, p, d)) dims.push_back(d);
  return dims;
}

}  // namespace tp
