// Uniformity of placements (Section 2 of the paper).
//
// A placement is *uniform* when every principal subtorus of the torus
// contains the same number of its processors.  Theorem 1's 4k^{d-1}
// bisection construction relies on this property (in fact only on it
// holding along a single dimension, which `uniform_dimensions` exposes).

#pragma once

#include <vector>

#include "src/placement/placement.h"
#include "src/torus/torus.h"

namespace tp {

/// Processor count of the placement inside each principal subtorus along
/// `dim`: entry v counts processors with coordinate v in that dimension.
std::vector<i64> subtorus_counts(const Torus& torus, const Placement& p,
                                 i32 dim);

/// True when all principal subtori along `dim` hold equally many processors.
bool is_uniform_along(const Torus& torus, const Placement& p, i32 dim);

/// True when the placement is uniform along every dimension (the paper's
/// "uniform placement").
bool is_uniform(const Torus& torus, const Placement& p);

/// The dimensions along which the placement is uniform.  Theorem 1 only
/// needs this list to be non-empty.
std::vector<i32> uniform_dimensions(const Torus& torus, const Placement& p);

}  // namespace tp
