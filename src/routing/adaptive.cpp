#include "src/routing/adaptive.h"

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp {

using routing_detail::steps_in_dir;

namespace {

/// Per-dimension travel plan: committed direction and number of steps.
struct DimPlan {
  Dir dir = Dir::Pos;
  i64 steps = 0;
};

/// Enumerate direction commitments for tie dimensions; call fn(plans).
template <typename Fn>
void for_each_commitment(const Torus& torus, NodeId p, NodeId q, Fn&& fn) {
  SmallVec<i32> tie_dims;
  SmallVec<DimPlan, kMaxDims> plans(
      static_cast<std::size_t>(torus.dims()), DimPlan{});
  for (i32 d = 0; d < torus.dims(); ++d) {
    const i32 a = torus.coord_of(p, d);
    const i32 b = torus.coord_of(q, d);
    auto& plan = plans[static_cast<std::size_t>(d)];
    switch (torus.shortest_way(d, a, b)) {
      case Way::None:
        plan.steps = 0;
        break;
      case Way::Pos:
        plan.dir = Dir::Pos;
        plan.steps = steps_in_dir(torus, d, a, b, Dir::Pos);
        break;
      case Way::Neg:
        plan.dir = Dir::Neg;
        plan.steps = steps_in_dir(torus, d, a, b, Dir::Neg);
        break;
      case Way::Tie:
        plan.dir = Dir::Pos;
        plan.steps = steps_in_dir(torus, d, a, b, Dir::Pos);
        tie_dims.push_back(d);
        break;
    }
  }
  const std::size_t n_ties = tie_dims.size();
  TP_REQUIRE(n_ties <= 20, "too many tie dimensions");
  for (std::uint32_t mask = 0; mask < (1u << n_ties); ++mask) {
    auto local = plans;
    for (std::size_t t = 0; t < n_ties; ++t) {
      if (mask & (1u << t))
        local[static_cast<std::size_t>(tie_dims[t])].dir = Dir::Neg;
      // steps are k/2 either way on a tie, no change needed
    }
    fn(local);
  }
}

}  // namespace

std::vector<Path> AdaptiveMinimalRouter::paths(const Torus& torus, NodeId p,
                                               NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  const i64 total = num_paths(torus, p, q);
  TP_REQUIRE(total <= max_paths_,
             "minimal path set too large to enumerate (" +
                 std::to_string(total) + " paths)");
  std::vector<Path> result;
  result.reserve(static_cast<std::size_t>(total));

  for_each_commitment(torus, p, q, [&](auto plans) {
    Path prefix;
    prefix.source = p;
    prefix.target = q;
    auto recurse = [&](auto&& self, NodeId node) -> void {
      bool any = false;
      for (i32 d = 0; d < torus.dims(); ++d) {
        auto& plan = plans[static_cast<std::size_t>(d)];
        if (plan.steps == 0) continue;
        any = true;
        prefix.edges.push_back(torus.edge_id(node, d, plan.dir));
        --plan.steps;
        self(self, torus.neighbor(node, d, plan.dir));
        ++plan.steps;
        prefix.edges.pop_back();
      }
      if (!any) {
        TP_ASSERT(node == q, "adaptive path did not reach target");
        result.push_back(prefix);
      }
    };
    recurse(recurse, p);
  });
  TP_OBS_COUNT("router.paths_enumerated", static_cast<i64>(result.size()));
  return result;
}

i64 AdaptiveMinimalRouter::num_paths(const Torus& torus, NodeId p,
                                     NodeId q) const {
  return torus.num_minimal_paths(p, q);
}

Path AdaptiveMinimalRouter::sample_path(const Torus& torus, NodeId p,
                                        NodeId q, Xoshiro256SS& rng) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  Path path;
  path.source = p;
  path.target = q;
  // Commit a direction per dimension (ties are a fair coin: each direction
  // carries exactly half of the minimal paths), then draw a uniform
  // interleaving: step in dimension d with probability remaining_d / total.
  SmallVec<i64> remaining(static_cast<std::size_t>(torus.dims()), 0);
  SmallVec<i32> dir(static_cast<std::size_t>(torus.dims()), +1);
  i64 total = 0;
  for (i32 d = 0; d < torus.dims(); ++d) {
    const i32 a = torus.coord_of(p, d);
    const i32 b = torus.coord_of(q, d);
    const Way way = torus.shortest_way(d, a, b);
    if (way == Way::None) continue;
    Dir dd = Dir::Pos;
    if (way == Way::Neg) dd = Dir::Neg;
    if (way == Way::Tie) dd = (rng.below(2) == 0) ? Dir::Pos : Dir::Neg;
    dir[static_cast<std::size_t>(d)] = dd == Dir::Pos ? +1 : -1;
    remaining[static_cast<std::size_t>(d)] =
        steps_in_dir(torus, d, a, b, dd);
    total += remaining[static_cast<std::size_t>(d)];
  }
  NodeId node = p;
  while (total > 0) {
    i64 pick = static_cast<i64>(rng.below(static_cast<u64>(total)));
    i32 d = 0;
    while (pick >= remaining[static_cast<std::size_t>(d)]) {
      pick -= remaining[static_cast<std::size_t>(d)];
      ++d;
    }
    const Dir dd = dir[static_cast<std::size_t>(d)] > 0 ? Dir::Pos : Dir::Neg;
    path.edges.push_back(torus.edge_id(node, d, dd));
    node = torus.neighbor(node, d, dd);
    --remaining[static_cast<std::size_t>(d)];
    --total;
  }
  TP_ASSERT(node == q, "sampled adaptive path did not reach target");
  return path;
}

}  // namespace tp
