// Fully adaptive minimal routing: C_{p->q} is *every* shortest path.
//
// The paper's routers (ODR, UDR) are restrictions of this one.  It serves
// as the reference envelope in experiments: the largest possible path sets
// (hence the best fault tolerance a minimal router can have) and the most
// evenly spread load.  Path counts grow as multinomials, so full
// enumeration is only feasible for nearby pairs / small tori; loads are
// computed without enumeration in src/load/adaptive_loads.

#pragma once

#include "src/routing/router.h"

namespace tp {

class AdaptiveMinimalRouter final : public Router {
 public:
  std::string name() const override { return "ADAPTIVE"; }

  /// All minimal paths.  Throws if there are more than `max_paths`
  /// (default 1M) to guard against accidental factorial blowups.
  std::vector<Path> paths(const Torus& torus, NodeId p,
                          NodeId q) const override;

  i64 num_paths(const Torus& torus, NodeId p, NodeId q) const override;

  /// Uniform sample over all minimal paths, drawn incrementally in
  /// O(Lee distance) time without enumeration.
  Path sample_path(const Torus& torus, NodeId p, NodeId q,
                   Xoshiro256SS& rng) const override;

  void set_max_paths(i64 m) { max_paths_ = m; }

 private:
  i64 max_paths_ = 1 << 20;
};

}  // namespace tp
