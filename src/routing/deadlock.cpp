#include "src/routing/deadlock.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp {

namespace {

/// Deduplicating edge insertion (CDGs are sparse; paths repeat pairs).
void add_dep(ChannelGraph& graph, i32 from, i32 to) {
  auto& succ = graph.adj[static_cast<std::size_t>(from)];
  if (std::find(succ.begin(), succ.end(), to) == succ.end())
    succ.push_back(to);
}

/// True when traversing this link crosses the dateline of its ring: the
/// wrap from coordinate k-1 to 0 (+) or from 0 to k-1 (-).
bool crosses_dateline(const Torus& torus, const Link& link) {
  const i32 k = torus.radix(link.dim);
  const i32 a = torus.coord_of(link.tail, link.dim);
  return (link.dir == Dir::Pos && a == k - 1) ||
         (link.dir == Dir::Neg && a == 0);
}

template <typename ChannelOf>
ChannelGraph build_graph(const Torus& torus, const Placement& p,
                         const Router& router, i64 num_channels,
                         ChannelOf&& channel_of) {
  p.check_torus(torus);
  ChannelGraph graph;
  graph.adj.resize(static_cast<std::size_t>(num_channels));
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      for (const Path& path : router.paths(torus, src, dst)) {
        // Walk the path, assigning a channel per hop; the VC state is
        // tracked per dimension (reset when a new dimension begins).
        i32 prev_channel = -1;
        i32 current_dim = -1;
        i32 vc = 0;
        for (EdgeId e : path.edges) {
          const Link link = torus.link(e);
          if (link.dim != current_dim) {
            current_dim = link.dim;
            vc = 0;
          }
          const i32 channel = channel_of(e, vc);
          if (prev_channel >= 0) add_dep(graph, prev_channel, channel);
          // The VC upgrade applies to the *next* hop in this dimension.
          if (crosses_dateline(torus, link)) vc = 1;
          prev_channel = channel;
        }
      }
    }
  }
  return graph;
}

}  // namespace

ChannelGraph physical_channel_graph(const Torus& torus, const Placement& p,
                                    const Router& router) {
  return build_graph(torus, p, router, torus.num_directed_edges(),
                     [](EdgeId e, i32 /*vc*/) { return static_cast<i32>(e); });
}

ChannelGraph dateline_channel_graph(const Torus& torus, const Placement& p,
                                    const Router& router) {
  return build_graph(
      torus, p, router, torus.num_directed_edges() * 2,
      [](EdgeId e, i32 vc) { return static_cast<i32>(e * 2 + vc); });
}

bool has_cycle(const ChannelGraph& graph) {
  // Iterative three-color DFS.
  enum : unsigned char { White, Gray, Black };
  const std::size_t n = graph.adj.size();
  std::vector<unsigned char> color(n, White);
  std::vector<std::pair<i32, std::size_t>> stack;  // (node, next child idx)
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != White) continue;
    stack.emplace_back(static_cast<i32>(root), 0);
    color[root] = Gray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto& succ = graph.adj[static_cast<std::size_t>(node)];
      if (child < succ.size()) {
        const i32 next = succ[child++];
        if (color[static_cast<std::size_t>(next)] == Gray) return true;
        if (color[static_cast<std::size_t>(next)] == White) {
          color[static_cast<std::size_t>(next)] = Gray;
          stack.emplace_back(next, 0);
        }
      } else {
        color[static_cast<std::size_t>(node)] = Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool deadlock_free_with_datelines(const Torus& torus, const Placement& p,
                                  const Router& router) {
  return !has_cycle(dateline_channel_graph(torus, p, router));
}

}  // namespace tp
