// Wormhole-routing deadlock analysis via channel-dependency graphs.
//
// The paper's networks are wormhole-routed in practice (its reference [11]
// is Ni & McKinley's wormhole survey), where a routing algorithm is
// deadlock-free iff its channel-dependency graph (CDG) is acyclic
// (Dally & Seitz).  This module builds the CDG a routing algorithm induces
// on a torus and placement:
//
//   * over physical channels — on a torus even dimension-ordered routing
//     is cyclic (the wrap-around closes each ring into a cycle);
//   * over dateline virtual channels — each physical channel is split into
//     two VCs and a packet switches from VC0 to VC1 when it crosses its
//     ring's dateline (the wrap between coordinates k-1 and 0).  With this
//     scheme ODR's CDG becomes acyclic while UDR's stays cyclic in
//     general: the quantitative cost of UDR's fault tolerance.

#pragma once

#include <vector>

#include "src/placement/placement.h"
#include "src/routing/router.h"

namespace tp {

/// A dependency graph over channels; node i's successors are adj[i].
struct ChannelGraph {
  std::vector<std::vector<i32>> adj;
  i64 num_dependencies() const {
    i64 n = 0;
    for (const auto& v : adj) n += static_cast<i64>(v.size());
    return n;
  }
};

/// CDG over physical channels: channel ids are EdgeIds; there is a
/// dependency c1 -> c2 whenever some routing path of some processor pair
/// traverses c2 immediately after c1.
ChannelGraph physical_channel_graph(const Torus& torus, const Placement& p,
                                    const Router& router);

/// CDG over dateline virtual channels: channel ids are EdgeId*2 + vc.
/// A packet starts each ring traversal on VC0 and moves to VC1 after
/// crossing the dateline wrap (the link from coordinate k-1 to 0 in the +
/// direction, or 0 to k-1 in the - direction) of the dimension it is
/// currently correcting.
ChannelGraph dateline_channel_graph(const Torus& torus, const Placement& p,
                                    const Router& router);

/// True if the dependency graph contains a directed cycle.
bool has_cycle(const ChannelGraph& graph);

/// Convenience: is the routing algorithm deadlock-free on this placement
/// under the dateline two-VC scheme?
bool deadlock_free_with_datelines(const Torus& torus, const Placement& p,
                                  const Router& router);

}  // namespace tp
