#include "src/routing/disjoint.h"

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "src/placement/placement.h"
#include "src/util/error.h"

namespace tp {

i64 max_edge_disjoint_paths(const Torus& torus, const Router& router,
                            NodeId p, NodeId q) {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  if (p == q) return 0;

  // Union of the allowed paths' links, with unit capacities.
  std::vector<EdgeId> edges;
  for (const Path& path : router.paths(torus, p, q))
    for (EdgeId e : path.edges) edges.push_back(e);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Incidence lists over the union subgraph (indices into `edges`).
  std::map<NodeId, std::vector<std::size_t>> out_of, into;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Link l = torus.link(edges[i]);
    out_of[l.tail].push_back(i);
    into[l.head].push_back(i);
  }

  std::vector<signed char> used(edges.size(), 0);  // 1 = carrying flow
  i64 flow = 0;
  for (;;) {
    // BFS for an augmenting path: forward along unused links, backward
    // along used ones.  Parent bookkeeping: (edge index, direction).
    std::map<NodeId, std::pair<std::size_t, bool>> parent;  // bool: forward
    std::queue<NodeId> queue;
    queue.push(p);
    std::map<NodeId, bool> seen;
    seen[p] = true;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const NodeId u = queue.front();
      queue.pop();
      if (auto it = out_of.find(u); it != out_of.end()) {
        for (std::size_t ei : it->second) {
          if (used[ei]) continue;
          const NodeId v = torus.link(edges[ei]).head;
          if (seen[v]) continue;
          seen[v] = true;
          parent[v] = {ei, true};
          if (v == q) {
            reached = true;
            break;
          }
          queue.push(v);
        }
      }
      if (reached) break;
      if (auto it = into.find(u); it != into.end()) {
        for (std::size_t ei : it->second) {
          if (!used[ei]) continue;
          const NodeId v = torus.link(edges[ei]).tail;
          if (seen[v]) continue;
          seen[v] = true;
          parent[v] = {ei, false};
          queue.push(v);
        }
      }
    }
    if (!reached) break;
    // Augment along the found path.
    NodeId v = q;
    while (v != p) {
      const auto [ei, forward] = parent.at(v);
      used[ei] = forward ? 1 : 0;
      v = forward ? torus.link(edges[ei]).tail : torus.link(edges[ei]).head;
    }
    ++flow;
  }
  return flow;
}

i64 placement_disjoint_connectivity(const Torus& torus, const Placement& p,
                                    const Router& router) {
  p.check_torus(torus);
  TP_REQUIRE(p.size() >= 2, "need at least two processors");
  i64 worst = -1;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const i64 disjoint = max_edge_disjoint_paths(torus, router, src, dst);
      if (worst < 0 || disjoint < worst) worst = disjoint;
    }
  return worst;
}

}  // namespace tp
