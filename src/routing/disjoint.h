// Edge-disjoint path analysis: the exact fault-tolerance number.
//
// Section 7 argues UDR is fault tolerant because it offers s! paths — but
// paths that share a link fail together, so the honest metric is the
// maximum number of pairwise edge-disjoint paths inside the algorithm's
// path set C_{p->q}: that many link failures are needed (and, by Menger,
// sufficient in the worst case) to disconnect the pair under that
// algorithm.  This module computes it by unit-capacity max-flow over the
// union of the allowed paths:
//
//   ODR:  1 for every pair (one path).
//   UDR:  s for a pair differing in s dimensions — the s! paths collapse
//         to s disjoint ones (they all funnel through s first links).
//   Fully adaptive: s as well without ties (same funnel at the source),
//         up to 2s with ties.

#pragma once

#include "src/placement/placement.h"
#include "src/routing/router.h"

namespace tp {

/// Maximum number of pairwise edge-disjoint paths within C_{p->q}.
/// Runs Edmonds-Karp over the union subgraph of the router's paths, so
/// the router must be able to enumerate paths() for the pair.
i64 max_edge_disjoint_paths(const Torus& torus, const Router& router,
                            NodeId p, NodeId q);

/// Minimum over all ordered processor pairs — the number of adversarial
/// link failures guaranteed to be survivable by the whole placement under
/// this algorithm.
i64 placement_disjoint_connectivity(const Torus& torus, const Placement& p,
                                    const Router& router);

}  // namespace tp
