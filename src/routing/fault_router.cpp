#include "src/routing/fault_router.h"

#include "src/util/error.h"

namespace tp {

std::vector<Path> FaultTolerantRouter::filtered(const Torus& torus, NodeId p,
                                                NodeId q) const {
  std::vector<Path> ok;
  for (Path& path : inner_.paths(torus, p, q)) {
    bool clean = true;
    for (EdgeId e : path.edges)
      if (faults_.contains(e)) {
        clean = false;
        break;
      }
    if (clean) ok.push_back(std::move(path));
  }
  return ok;
}

const std::vector<Path>& FaultTolerantRouter::cached(const Torus& torus,
                                                     NodeId p, NodeId q) const {
  if (cache_epoch_ != *epoch_ || cache_.empty()) {
    cache_.clear();
    cache_epoch_ = *epoch_;
  }
  const u64 key = (static_cast<u64>(p) << 32) ^ static_cast<u64>(q);
  auto it = cache_.find(key);
  if (it == cache_.end())
    it = cache_.emplace(key, filtered(torus, p, q)).first;
  return it->second;
}

std::vector<Path> FaultTolerantRouter::paths(const Torus& torus, NodeId p,
                                             NodeId q) const {
  if (epoch_ != nullptr) return cached(torus, p, q);
  if (empty_) return inner_.paths(torus, p, q);
  return filtered(torus, p, q);
}

i64 FaultTolerantRouter::num_paths(const Torus& torus, NodeId p,
                                   NodeId q) const {
  if (epoch_ != nullptr)
    return static_cast<i64>(cached(torus, p, q).size());
  if (empty_) return inner_.num_paths(torus, p, q);
  return static_cast<i64>(filtered(torus, p, q).size());
}

Path FaultTolerantRouter::sample_path(const Torus& torus, NodeId p, NodeId q,
                                      Xoshiro256SS& rng) const {
  if (epoch_ != nullptr) {
    const std::vector<Path>& ok = cached(torus, p, q);
    TP_REQUIRE(!ok.empty(), "no fault-free path between the pair");
    return ok[rng.below(ok.size())];
  }
  if (empty_) return inner_.sample_path(torus, p, q, rng);
  auto ok = filtered(torus, p, q);
  TP_REQUIRE(!ok.empty(), "no fault-free path between the pair");
  return ok[rng.below(ok.size())];
}

}  // namespace tp
