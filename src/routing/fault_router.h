// A Router decorator that avoids failed links.
//
// Wraps any routing algorithm and restricts each pair's path set to the
// paths that avoid every failed link — the operational model of Section 7:
// "if any of the links fails, the network will remain functional by
// routing the messages through paths which do not include the defective
// link."  Pairs whose entire path set is faulted have no paths; callers
// can detect this through num_paths() == 0 (paths() returns empty,
// sample_path() throws).
//
// Two modes:
//   * Static (2-arg constructor): the fault set never changes.  Each call
//     filters the inner router's paths afresh — no state, safe to share
//     across threads, and with an empty fault set the behaviour matches
//     the inner router bit-for-bit.
//   * Dynamic (3-arg constructor): the fault set mutates over time (a
//     FaultClock drives it) and the referenced epoch counter bumps on
//     every mutation.  Filtered path sets are cached per pair and the
//     whole cache is invalidated when the epoch moves, so a simulator
//     rerouting many messages between consecutive fault events pays the
//     enumeration cost once per (pair, epoch).  The cache is not
//     synchronized — dynamic mode is for single-threaded simulator loops.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/routing/router.h"
#include "src/torus/graph.h"

namespace tp {

class FaultTolerantRouter final : public Router {
 public:
  /// Static mode.  The inner router and fault set must outlive this
  /// object.  An empty fault set short-circuits every call straight to the
  /// inner router, so the decorated behaviour (including sample_path's RNG
  /// stream) is bit-for-bit the inner router's.
  FaultTolerantRouter(const Router& inner, const EdgeSet& faults)
      : inner_(inner), faults_(faults), empty_(faults.size() == 0) {}

  /// Dynamic mode: `faults` may mutate between calls as long as `epoch`
  /// changes whenever it does (FaultClock::epoch_ref() provides exactly
  /// that).  All three referents must outlive this object.
  FaultTolerantRouter(const Router& inner, const EdgeSet& faults,
                      const u64& epoch)
      : inner_(inner), faults_(faults), epoch_(&epoch) {}

  std::string name() const override { return inner_.name() + "+faults"; }

  std::vector<Path> paths(const Torus& torus, NodeId p,
                          NodeId q) const override;

  i64 num_paths(const Torus& torus, NodeId p, NodeId q) const override;

  /// Uniform over the fault-free subset.  Throws if no path survives.
  Path sample_path(const Torus& torus, NodeId p, NodeId q,
                   Xoshiro256SS& rng) const override;

  const Router& inner() const { return inner_; }

 private:
  /// Filters the inner path set against the current fault set.
  std::vector<Path> filtered(const Torus& torus, NodeId p, NodeId q) const;
  /// Dynamic mode only: the cached (and epoch-validated) filtered set.
  const std::vector<Path>& cached(const Torus& torus, NodeId p,
                                  NodeId q) const;

  const Router& inner_;
  const EdgeSet& faults_;
  /// Static mode only: the fault set was empty at construction (it cannot
  /// change afterwards), so filtering is the identity.
  const bool empty_ = false;
  const u64* epoch_ = nullptr;
  mutable u64 cache_epoch_ = 0;
  mutable std::unordered_map<u64, std::vector<Path>> cache_;
};

}  // namespace tp
