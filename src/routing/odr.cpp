#include "src/routing/odr.h"

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp {

using routing_detail::allowed_dirs;
using routing_detail::append_segment;

SmallVec<i32> OdrRouter::correction_order(const Torus& torus) const {
  const std::size_t d = static_cast<std::size_t>(torus.dims());
  if (order_.empty()) {
    SmallVec<i32> identity;
    for (std::size_t i = 0; i < d; ++i)
      identity.push_back(static_cast<i32>(i));
    return identity;
  }
  TP_REQUIRE(order_.size() == d, "order must cover every dimension");
  SmallVec<i32> seen(d, 0);
  for (std::size_t i = 0; i < d; ++i) {
    TP_REQUIRE(order_[i] >= 0 && order_[i] < torus.dims(),
               "order entry out of range");
    TP_REQUIRE(seen[static_cast<std::size_t>(order_[i])] == 0,
               "order repeats a dimension");
    seen[static_cast<std::size_t>(order_[i])] = 1;
  }
  return order_;
}

std::vector<Path> OdrRouter::paths(const Torus& torus, NodeId p,
                                   NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  const SmallVec<i32> order = correction_order(torus);
  // Depth-first over the direction choice in each dimension (only tie
  // dimensions with BothDirections ever branch).
  std::vector<Path> result;
  Path prefix;
  prefix.source = p;
  prefix.target = q;

  auto recurse = [&](auto&& self, NodeId node, std::size_t idx) -> void {
    if (idx == order.size()) {
      TP_ASSERT(node == q, "ODR path did not reach target");
      result.push_back(prefix);
      return;
    }
    const i32 dim = order[idx];
    const i32 a = torus.coord_of(node, dim);
    const i32 b = torus.coord_of(q, dim);
    const auto dirs = allowed_dirs(torus, dim, a, b, tie_);
    if (dirs.empty()) {
      self(self, node, idx + 1);
      return;
    }
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      const Dir dir = dirs[i] > 0 ? Dir::Pos : Dir::Neg;
      const std::size_t mark = prefix.edges.size();
      const NodeId next =
          append_segment(torus, node, dim, b, dir, prefix.edges);
      self(self, next, idx + 1);
      prefix.edges.resize(mark);
    }
  };
  recurse(recurse, p, 0);
  TP_OBS_COUNT("router.paths_enumerated", static_cast<i64>(result.size()));
  return result;
}

i64 OdrRouter::num_paths(const Torus& torus, NodeId p, NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  if (tie_ == TieBreak::PositiveOnly) return 1;
  i64 count = 1;
  for (i32 dim = 0; dim < torus.dims(); ++dim) {
    if (torus.shortest_way(dim, torus.coord_of(p, dim),
                           torus.coord_of(q, dim)) == Way::Tie)
      count *= 2;
  }
  return count;
}

Path OdrRouter::sample_path(const Torus& torus, NodeId p, NodeId q,
                            Xoshiro256SS& rng) const {
  if (tie_ == TieBreak::PositiveOnly) return canonical_path(torus, p, q);
  // Flip a fair coin per tie dimension instead of materializing all paths.
  const SmallVec<i32> order = correction_order(torus);
  Path path;
  path.source = p;
  path.target = q;
  NodeId node = p;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const i32 dim = order[idx];
    const i32 a = torus.coord_of(node, dim);
    const i32 b = torus.coord_of(q, dim);
    const auto dirs = allowed_dirs(torus, dim, a, b, tie_);
    if (dirs.empty()) continue;
    const std::size_t pick =
        dirs.size() == 1 ? 0 : static_cast<std::size_t>(rng.below(2));
    const Dir dir = dirs[pick] > 0 ? Dir::Pos : Dir::Neg;
    node = append_segment(torus, node, dim, b, dir, path.edges);
  }
  TP_ASSERT(node == q, "sampled ODR path did not reach target");
  return path;
}

Path OdrRouter::canonical_path(const Torus& torus, NodeId p, NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  const SmallVec<i32> order = correction_order(torus);
  Path path;
  path.source = p;
  path.target = q;
  NodeId node = p;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const i32 dim = order[idx];
    const i32 a = torus.coord_of(node, dim);
    const i32 b = torus.coord_of(q, dim);
    const auto dirs = allowed_dirs(torus, dim, a, b, TieBreak::PositiveOnly);
    if (dirs.empty()) continue;
    const Dir dir = dirs[0] > 0 ? Dir::Pos : Dir::Neg;
    node = append_segment(torus, node, dim, b, dir, path.edges);
  }
  TP_ASSERT(node == q, "canonical ODR path did not reach target");
  return path;
}

}  // namespace tp
