// Ordered Dimensional Routing (Section 6 of the paper).
//
// Dimensions are corrected one after another in a fixed order (1, ..., d);
// each is corrected completely, in the direction of shortest cyclic
// distance, before the next begins.  With the canonical tie-break (ties go
// to the + direction) the algorithm specifies exactly one path per pair —
// the restricted version the paper uses for its load analysis.  With
// TieBreak::BothDirections the algorithm yields 2^(#tie dimensions) paths.

#pragma once

#include "src/routing/router.h"

namespace tp {

class OdrRouter final : public Router {
 public:
  explicit OdrRouter(TieBreak tie = TieBreak::PositiveOnly) : tie_(tie) {}

  /// ODR correcting dimensions in a custom order instead of 0, 1, ..., d-1.
  /// `order` must be a permutation of the torus's dimensions (checked at
  /// first use).  The paper fixes the identity order; the generalization
  /// shows E_max on linear placements is invariant under the choice.
  OdrRouter(SmallVec<i32> order, TieBreak tie = TieBreak::PositiveOnly)
      : tie_(tie), order_(order) {}

  std::string name() const override {
    std::string n = tie_ == TieBreak::PositiveOnly ? "ODR" : "ODR(both)";
    if (!order_.empty()) {
      n += "[";
      for (std::size_t i = 0; i < order_.size(); ++i) {
        if (i > 0) n += ",";
        n += std::to_string(order_[i]);
      }
      n += "]";
    }
    return n;
  }

  std::vector<Path> paths(const Torus& torus, NodeId p,
                          NodeId q) const override;
  i64 num_paths(const Torus& torus, NodeId p, NodeId q) const override;
  Path sample_path(const Torus& torus, NodeId p, NodeId q,
                   Xoshiro256SS& rng) const override;

  /// The single canonical path (tie-break +, dimensions in order).
  /// Cheaper than paths() and available for either tie-break setting.
  Path canonical_path(const Torus& torus, NodeId p, NodeId q) const;

  TieBreak tie_break() const { return tie_; }

  /// The correction order used for a torus: the configured permutation, or
  /// the identity if none was given.  Validates the permutation.
  SmallVec<i32> correction_order(const Torus& torus) const;

 private:
  TieBreak tie_;
  SmallVec<i32> order_;  // empty = identity order
};

}  // namespace tp
