#include "src/routing/path.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp {

std::vector<NodeId> Path::nodes(const Torus& torus) const {
  std::vector<NodeId> seq;
  seq.reserve(edges.size() + 1);
  seq.push_back(source);
  for (EdgeId e : edges) {
    const Link l = torus.link(e);
    TP_REQUIRE(l.tail == seq.back(), "path edges are not contiguous");
    seq.push_back(l.head);
  }
  return seq;
}

void Path::verify_connected(const Torus& torus) const {
  const auto seq = nodes(torus);  // throws if not contiguous
  TP_REQUIRE(seq.back() == target, "path does not end at its target");
}

void Path::verify_minimal(const Torus& torus) const {
  verify_connected(torus);
  TP_REQUIRE(length() == torus.lee_distance(source, target),
             "path is not minimal");
}

bool Path::uses(EdgeId e) const {
  return std::find(edges.begin(), edges.end(), e) != edges.end();
}

}  // namespace tp
