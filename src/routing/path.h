// Paths in the torus.
//
// A Path is the directed-link sequence a message follows from its source
// processor to its destination.  All paths produced by the routers in this
// library are minimal (their length equals the Lee distance between the
// endpoints); Path::verify_minimal checks that invariant.

#pragma once

#include <vector>

#include "src/torus/torus.h"

namespace tp {

/// A directed walk through the torus, stored as its link sequence.
struct Path {
  NodeId source = 0;
  NodeId target = 0;
  std::vector<EdgeId> edges;

  i64 length() const { return static_cast<i64>(edges.size()); }

  /// Node sequence source, ..., target (length()+1 entries).
  std::vector<NodeId> nodes(const Torus& torus) const;

  /// Throws unless the edges form a connected walk from source to target.
  void verify_connected(const Torus& torus) const;

  /// Throws unless the walk is connected *and* its length equals the Lee
  /// distance between source and target (i.e. it is a shortest path).
  void verify_minimal(const Torus& torus) const;

  /// True if the path traverses the given link.
  bool uses(EdgeId e) const;
};

}  // namespace tp
