#include "src/routing/router.h"

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp {

i64 Router::num_paths(const Torus& torus, NodeId p, NodeId q) const {
  return static_cast<i64>(paths(torus, p, q).size());
}

Path Router::sample_path(const Torus& torus, NodeId p, NodeId q,
                         Xoshiro256SS& rng) const {
  auto all = paths(torus, p, q);
  TP_REQUIRE(!all.empty(), "router produced no path");
  return all[rng.below(all.size())];
}

namespace routing_detail {

SmallVec<i32> allowed_dirs(const Torus& torus, i32 dim, i32 a, i32 b,
                           TieBreak tie) {
  SmallVec<i32> dirs;
  switch (torus.shortest_way(dim, a, b)) {
    case Way::None:
      break;
    case Way::Pos:
      dirs.push_back(+1);
      break;
    case Way::Neg:
      dirs.push_back(-1);
      break;
    case Way::Tie:
      TP_OBS_COUNT("router.tie_breaks");
      dirs.push_back(+1);
      if (tie == TieBreak::BothDirections) dirs.push_back(-1);
      break;
  }
  return dirs;
}

i64 steps_in_dir(const Torus& torus, i32 dim, i32 a, i32 b, Dir dir) {
  const i64 k = torus.radix(dim);
  return dir == Dir::Pos ? mod_norm(b - a, k) : mod_norm(a - b, k);
}

NodeId append_segment(const Torus& torus, NodeId node, i32 dim, i32 to,
                      Dir dir, std::vector<EdgeId>& path) {
  const i32 from = torus.coord_of(node, dim);
  const i64 steps = steps_in_dir(torus, dim, from, to, dir);
  NodeId cur = node;
  for (i64 s = 0; s < steps; ++s) {
    path.push_back(torus.edge_id(cur, dim, dir));
    cur = torus.neighbor(cur, dim, dir);
  }
  TP_ASSERT(torus.coord_of(cur, dim) == to, "segment did not land on target");
  return cur;
}

}  // namespace routing_detail

}  // namespace tp
