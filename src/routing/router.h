// Routing algorithms (Definition 3 of the paper).
//
// A Router specifies, for every ordered processor pair (p, q), the set
// C_{p->q} of shortest paths the algorithm allows.  Message delivery picks
// one of those paths uniformly at random, which is why the load of a pair
// on a link is |C_{p->l->q}| / |C_{p->q}| (Definition 4).
//
// Concrete routers:
//   OdrRouter              — Ordered Dimensional Routing  (Section 6)
//   UdrRouter              — Unordered Dimensional Routing (Section 7)
//   AdaptiveMinimalRouter  — every minimal path (reference upper envelope)

#pragma once

#include <string>
#include <vector>

#include "src/routing/path.h"
#include "src/torus/torus.h"
#include "src/util/prng.h"

namespace tp {

/// What to do in a dimension where k is even and the two coordinates are
/// exactly k/2 apart, so both directions are minimal.
enum class TieBreak {
  PositiveOnly,    ///< canonical rule of Section 6: correct in + direction
  BothDirections,  ///< allow either direction (more paths, more tolerance)
};

/// Interface for routing algorithms.
class Router {
 public:
  virtual ~Router() = default;

  /// Short name for reports, e.g. "ODR" or "UDR".
  virtual std::string name() const = 0;

  /// The full path set C_{p->q}.  Paths are minimal and distinct.
  virtual std::vector<Path> paths(const Torus& torus, NodeId p,
                                  NodeId q) const = 0;

  /// |C_{p->q}| without materializing the paths.
  virtual i64 num_paths(const Torus& torus, NodeId p, NodeId q) const;

  /// One path drawn uniformly at random from C_{p->q}.
  virtual Path sample_path(const Torus& torus, NodeId p, NodeId q,
                           Xoshiro256SS& rng) const;
};

namespace routing_detail {

/// Directions the algorithm may use to correct dimension `dim` from
/// coordinate a to b (empty if a == b; two entries only on a tie with
/// TieBreak::BothDirections).
SmallVec<i32> allowed_dirs(const Torus& torus, i32 dim, i32 a, i32 b,
                           TieBreak tie);

/// Appends to `path` the links of a full correction of dimension `dim`
/// from the coordinate of `node` to coordinate `to`, moving in direction
/// `dir`.  Returns the node reached.
NodeId append_segment(const Torus& torus, NodeId node, i32 dim, i32 to,
                      Dir dir, std::vector<EdgeId>& path);

/// Steps needed to correct dimension `dim` from a to b in direction `dir`.
i64 steps_in_dir(const Torus& torus, i32 dim, i32 a, i32 b, Dir dir);

}  // namespace routing_detail

}  // namespace tp
