#include "src/routing/table_router.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp {

RoutingTable::RoutingTable(const Torus& torus, const Placement& p,
                           const Router& router)
    : dests_(p.nodes()),
      dest_index_(static_cast<std::size_t>(torus.num_nodes()), -1),
      num_dests_(p.nodes().size()),
      num_nodes_(torus.num_nodes()) {
  p.check_torus(torus);
  for (std::size_t i = 0; i < dests_.size(); ++i)
    dest_index_[static_cast<std::size_t>(dests_[i])] = static_cast<i64>(i);
  entries_.resize(static_cast<std::size_t>(num_nodes_) * num_dests_);

  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const i64 di = dest_index_[static_cast<std::size_t>(dst)];
      for (const Path& path : router.paths(torus, src, dst)) {
        NodeId node = src;
        for (EdgeId e : path.edges) {
          auto& hops = entries_[index(node, di)];
          if (std::find(hops.begin(), hops.end(), e) == hops.end()) {
            hops.push_back(e);
            ++num_entries_;
          }
          node = torus.link(e).head;
        }
      }
    }
  }
}

i64 RoutingTable::dest_index(NodeId dst) const {
  TP_REQUIRE(dst >= 0 && dst < num_nodes_, "node id out of range");
  const i64 di = dest_index_[static_cast<std::size_t>(dst)];
  TP_REQUIRE(di >= 0, "destination is not a processor of the placement");
  return di;
}

const std::vector<EdgeId>& RoutingTable::next_hops(NodeId node,
                                                   NodeId dst) const {
  TP_REQUIRE(node >= 0 && node < num_nodes_, "node id out of range");
  return entries_[index(node, dest_index(dst))];
}

i64 RoutingTable::max_entries_per_node() const {
  i64 worst = 0;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    i64 total = 0;
    for (std::size_t di = 0; di < num_dests_; ++di)
      total += static_cast<i64>(entries_[index(n, static_cast<i64>(di))].size());
    worst = std::max(worst, total);
  }
  return worst;
}

Path RoutingTable::forward(const Torus& torus, NodeId src, NodeId dst,
                           Xoshiro256SS& rng) const {
  Path path;
  path.source = src;
  path.target = dst;
  NodeId node = src;
  const i64 max_hops = torus.num_nodes() * 2;  // livelock guard
  while (node != dst) {
    const auto& hops = next_hops(node, dst);
    TP_REQUIRE(!hops.empty(), "routing table dead-ends at " +
                                  torus.node_str(node) + " for " +
                                  torus.node_str(dst));
    const EdgeId e = hops[rng.below(hops.size())];
    path.edges.push_back(e);
    node = torus.link(e).head;
    TP_REQUIRE(path.length() <= max_hops, "routing table loops");
  }
  return path;
}

void RoutingTable::verify(const Torus& torus) const {
  for (NodeId node = 0; node < num_nodes_; ++node) {
    for (std::size_t di = 0; di < num_dests_; ++di) {
      const NodeId dst = dests_[di];
      for (EdgeId e : entries_[index(node, static_cast<i64>(di))]) {
        const Link l = torus.link(e);
        TP_REQUIRE(l.tail == node, "entry's link does not leave its node");
        TP_REQUIRE(torus.lee_distance(l.head, dst) ==
                       torus.lee_distance(node, dst) - 1,
                   "table hop does not make minimal progress");
        if (l.head != dst) {
          TP_REQUIRE(!entries_[index(l.head, static_cast<i64>(di))].empty(),
                     "table hop leads to a node without an entry");
        }
      }
    }
  }
}

}  // namespace tp
