// Compiled routing tables — the deployable form of a routing algorithm.
//
// The Router interface describes path *sets*; real torus routers forward
// hop by hop from a table.  RoutingTable compiles any Router over a
// placement into per-node next-hop tables:
//
//   table[node][destination] = set of outgoing links the algorithm allows
//
// For minimal dimension-ordered algorithms the table is consistent: from
// any node reached along an allowed path, repeatedly following any allowed
// next hop reaches the destination in Lee-minimal steps.  compile() also
// reports the memory footprint, which is the practical cost of the larger
// path sets that give UDR its fault tolerance.

#pragma once

#include <vector>

#include "src/placement/placement.h"
#include "src/routing/router.h"

namespace tp {

/// Per-(node, destination) allowed outgoing links, for destinations in a
/// placement.
class RoutingTable {
 public:
  /// Compiles the router's path sets into next-hop tables.  Every node of
  /// every path of every ordered processor pair contributes its outgoing
  /// link to the entry for (node, destination).
  RoutingTable(const Torus& torus, const Placement& p, const Router& router);

  /// Allowed outgoing links at `node` for traffic destined to `dst`
  /// (dst must be a processor).  Empty if this node never appears on an
  /// allowed path to dst.
  const std::vector<EdgeId>& next_hops(NodeId node, NodeId dst) const;

  /// Total number of (node, destination, link) entries.
  i64 num_entries() const { return num_entries_; }

  /// Entries for the worst node (table memory is per-router-node).
  i64 max_entries_per_node() const;

  /// Forwards a message hop by hop from `src` to `dst`, picking uniformly
  /// among allowed next hops.  Throws if the table dead-ends.  The
  /// returned path is minimal for the routers in this library.
  Path forward(const Torus& torus, NodeId src, NodeId dst,
               Xoshiro256SS& rng) const;

  /// Checks global consistency: from every node with a table entry for
  /// every destination, every allowed hop makes progress (reduces Lee
  /// distance) and leads to another entry or the destination.
  void verify(const Torus& torus) const;

 private:
  std::size_t index(NodeId node, i64 dst_idx) const {
    return static_cast<std::size_t>(node) * num_dests_ +
           static_cast<std::size_t>(dst_idx);
  }
  i64 dest_index(NodeId dst) const;

  std::vector<std::vector<EdgeId>> entries_;  // [node * num_dests + dest]
  std::vector<NodeId> dests_;                 // sorted processor list
  std::vector<i64> dest_index_;               // node -> index or -1
  std::size_t num_dests_ = 0;
  i64 num_nodes_ = 0;
  i64 num_entries_ = 0;
};

}  // namespace tp
