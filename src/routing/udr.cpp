#include "src/routing/udr.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/util/combinatorics.h"
#include "src/util/error.h"

namespace tp {

using routing_detail::allowed_dirs;
using routing_detail::append_segment;

SmallVec<i32> UdrRouter::differing_dims(const Torus& torus, NodeId p,
                                        NodeId q) {
  SmallVec<i32> dims;
  for (i32 d = 0; d < torus.dims(); ++d)
    if (torus.coord_of(p, d) != torus.coord_of(q, d)) dims.push_back(d);
  return dims;
}

Path UdrRouter::path_for_order(const Torus& torus, NodeId p, NodeId q,
                               const SmallVec<i32>& order,
                               const SmallVec<i32>& dirs) const {
  TP_REQUIRE(order.size() == dirs.size(),
             "one direction per ordered dimension required");
  Path path;
  path.source = p;
  path.target = q;
  NodeId node = p;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const i32 dim = order[i];
    const Dir dir = dirs[i] > 0 ? Dir::Pos : Dir::Neg;
    node = append_segment(torus, node, dim, torus.coord_of(q, dim), dir,
                          path.edges);
  }
  TP_REQUIRE(node == q, "order/dirs do not route p to q");
  return path;
}

std::vector<Path> UdrRouter::paths(const Torus& torus, NodeId p,
                                   NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  const SmallVec<i32> diff = differing_dims(torus, p, q);

  // Per differing dimension, the directions the tie-break allows.
  SmallVec<i32> dir_options_first(diff.size(), 0);
  SmallVec<i32> dir_options_count(diff.size(), 0);
  for (std::size_t i = 0; i < diff.size(); ++i) {
    const auto dirs = allowed_dirs(torus, diff[i], torus.coord_of(p, diff[i]),
                                   torus.coord_of(q, diff[i]), tie_);
    TP_ASSERT(!dirs.empty(), "differing dimension with no direction");
    dir_options_first[i] = dirs[0];
    dir_options_count[i] = static_cast<i32>(dirs.size());
  }

  std::vector<Path> result;
  for_each_permutation(diff, [&](const SmallVec<i32>& order) {
    // Direction assignment per position in `order`; iterate the product of
    // per-dimension options (each is 1 or 2 entries: first +, then -).
    SmallVec<i32> choice(order.size(), 0);  // index into the option list
    for (;;) {
      SmallVec<i32> dirs(order.size(), 0);
      for (std::size_t i = 0; i < order.size(); ++i) {
        // Find the option list for the dimension at this order position.
        std::size_t di = 0;
        while (diff[di] != order[i]) ++di;
        dirs[i] = choice[i] == 0 ? dir_options_first[di] :
                                   -dir_options_first[di];
      }
      result.push_back(path_for_order(torus, p, q, order, dirs));
      // Increment the mixed-radix choice counter.
      std::size_t i = 0;
      for (; i < order.size(); ++i) {
        std::size_t di = 0;
        while (diff[di] != order[i]) ++di;
        if (++choice[i] < dir_options_count[di]) break;
        choice[i] = 0;
      }
      if (i == order.size()) break;
    }
  });
  TP_OBS_COUNT("router.paths_enumerated", static_cast<i64>(result.size()));
  return result;
}

i64 UdrRouter::num_paths(const Torus& torus, NodeId p, NodeId q) const {
  TP_REQUIRE(torus.valid_node(p) && torus.valid_node(q), "node out of range");
  const SmallVec<i32> diff = differing_dims(torus, p, q);
  i64 count = factorial(static_cast<i64>(diff.size()));
  if (tie_ == TieBreak::BothDirections) {
    for (std::size_t i = 0; i < diff.size(); ++i) {
      if (torus.shortest_way(diff[i], torus.coord_of(p, diff[i]),
                             torus.coord_of(q, diff[i])) == Way::Tie)
        count *= 2;
    }
  }
  return count;
}

Path UdrRouter::sample_path(const Torus& torus, NodeId p, NodeId q,
                            Xoshiro256SS& rng) const {
  SmallVec<i32> order = differing_dims(torus, p, q);
  // Fisher-Yates shuffle of the correction order.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(order[i - 1], order[j]);
  }
  SmallVec<i32> dirs(order.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto options =
        allowed_dirs(torus, order[i], torus.coord_of(p, order[i]),
                     torus.coord_of(q, order[i]), tie_);
    dirs[i] = options.size() == 1
                  ? options[0]
                  : options[static_cast<std::size_t>(rng.below(2))];
  }
  return path_for_order(torus, p, q, order, dirs);
}

}  // namespace tp
