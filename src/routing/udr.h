// Unordered Dimensional Routing (Section 7 of the paper).
//
// Like ODR, each dimension is corrected completely before another begins,
// but the order in which dimensions are corrected is arbitrary: a pair of
// processors differing in s dimensions has s! paths (one per correction
// order), which is what gives UDR its fault tolerance.  Directions within
// a dimension follow the shortest cyclic distance with the same tie-break
// options as ODR; with TieBreak::BothDirections the count becomes
// s! * 2^(#tie dimensions).

#pragma once

#include "src/routing/router.h"

namespace tp {

class UdrRouter final : public Router {
 public:
  explicit UdrRouter(TieBreak tie = TieBreak::PositiveOnly) : tie_(tie) {}

  std::string name() const override {
    return tie_ == TieBreak::PositiveOnly ? "UDR" : "UDR(both)";
  }

  std::vector<Path> paths(const Torus& torus, NodeId p,
                          NodeId q) const override;
  i64 num_paths(const Torus& torus, NodeId p, NodeId q) const override;
  Path sample_path(const Torus& torus, NodeId p, NodeId q,
                   Xoshiro256SS& rng) const override;

  /// Builds the path that corrects the differing dimensions in the given
  /// order, with the given direction per differing dimension (+1/-1 entries
  /// aligned with `order`).  Exposed for the fault-tolerant router, which
  /// searches correction orders avoiding failed links.
  Path path_for_order(const Torus& torus, NodeId p, NodeId q,
                      const SmallVec<i32>& order,
                      const SmallVec<i32>& dirs) const;

  /// Dimensions in which p and q differ, in increasing order.
  static SmallVec<i32> differing_dims(const Torus& torus, NodeId p, NodeId q);

  TieBreak tie_break() const { return tie_; }

 private:
  TieBreak tie_;
};

}  // namespace tp
