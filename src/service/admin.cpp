#include "src/service/admin.h"

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/profiler.h"
#include "src/obs/prometheus.h"
#include "src/obs/registry.h"
#include "src/util/build_info.h"
#include "src/util/error.h"

namespace tp::service {

namespace {

constexpr const char* kAdminOps[] = {"statusz", "metricsz", "cachez", "slowz",
                                     "quitz"};

// Listener provider (set_listener_status_provider).  A plain guarded
// global: statusz is answered from front-end threads while the TCP
// server installs/clears the provider around its lifetime.
Mutex g_listener_mu;
std::function<ListenerStatus()> g_listener_fn TP_GUARDED_BY(g_listener_mu);

ListenerStatus current_listener_status() {
  std::function<ListenerStatus()> fn;
  {
    const MutexLock lock(g_listener_mu);
    fn = g_listener_fn;
  }
  return fn ? fn() : ListenerStatus{};
}

bool is_admin_name(const std::string& op) {
  for (const char* name : kAdminOps)
    if (op == name) return true;
  return false;
}

/// Admin requests accept only {id, op} plus "format" on metricsz.
void check_members(const obs::JsonValue& doc, const std::string& op) {
  for (const auto& [key, value] : doc.members()) {
    if (key == "id" || key == "op") continue;
    if (key == "format" && op == "metricsz") continue;
    throw Error("unknown admin request field '" + key + "'");
  }
}

obs::JsonValue admin_header(const obs::JsonValue& id, const std::string& op) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("id", id);
  out.set("ok", obs::JsonValue(true));
  out.set("op", obs::JsonValue(op));
  return out;
}

obs::JsonValue span_to_json(const RequestSpan& span) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("request_id", obs::JsonValue(span.request_id));
  out.set("key", obs::JsonValue(span.key));
  out.set("outcome", obs::JsonValue(span_outcome_name(span.outcome)));
  out.set("total_us", obs::JsonValue(span.total_us));
  out.set("queue_us", obs::JsonValue(span.queue_us));
  out.set("compute_us", obs::JsonValue(span.compute_us));
  out.set("fanin", obs::JsonValue(span.fanin));
  out.set("shard", obs::JsonValue(span.shard));
  if (span.has_deadline)
    out.set("deadline_margin_us", obs::JsonValue(span.deadline_margin_us));
  return out;
}

/// Durability state shared by statusz and cachez.  Always present (the
/// goldens pin member order), "configured": false when the engine runs
/// without a snapshot path.  age_ms is since the last successful save
/// (-1 before the first); load/save outcomes carry the structured error
/// text when a snapshot was refused (docs/durability.md).
obs::JsonValue snapshot_to_json(Engine& engine) {
  const SnapshotStatus snap = engine.snapshot_status();
  obs::JsonValue out = obs::JsonValue::object();
  out.set("configured", obs::JsonValue(snap.configured));
  out.set("load_outcome", obs::JsonValue(snap.load_outcome));
  out.set("warm_entries", obs::JsonValue(snap.warm_entries));
  out.set("saves", obs::JsonValue(snap.saves));
  out.set("save_failures", obs::JsonValue(snap.save_failures));
  out.set("last_save_outcome", obs::JsonValue(snap.last_save_outcome));
  out.set("last_save_entries", obs::JsonValue(snap.last_save_entries));
  out.set("age_ms", obs::JsonValue(snap.last_save_ms < 0
                                       ? i64{-1}
                                       : engine.uptime_ms() -
                                             snap.last_save_ms));
  return out;
}

/// Listener state for statusz.  Always present (the golden pins member
/// order); "configured": false with state "none" when no network
/// front-end is running (stdio/batch).
obs::JsonValue listener_to_json() {
  const ListenerStatus listener = current_listener_status();
  obs::JsonValue out = obs::JsonValue::object();
  out.set("configured", obs::JsonValue(listener.configured));
  out.set("address", obs::JsonValue(listener.address));
  out.set("state", obs::JsonValue(listener.state));
  out.set("open_connections", obs::JsonValue(listener.open_connections));
  out.set("draining_connections",
          obs::JsonValue(listener.draining_connections));
  out.set("accepted", obs::JsonValue(listener.accepted));
  out.set("rejected", obs::JsonValue(listener.rejected));
  return out;
}

obs::JsonValue statusz(Engine& engine, const obs::JsonValue& id) {
  const BuildInfo& build = build_info();
  const EngineStats stats = engine.stats();
  const ServiceRates rates = engine.rates();

  obs::JsonValue out = admin_header(id, "statusz");
  out.set("uptime_ms", obs::JsonValue(engine.uptime_ms()));
  out.set("version", obs::JsonValue(build.version));
  out.set("git", obs::JsonValue(build.git_describe));
  out.set("compiler", obs::JsonValue(build.compiler));
  out.set("build_type", obs::JsonValue(build.build_type));

  const std::vector<std::string> worker_states = engine.worker_states();
  obs::JsonValue eng = obs::JsonValue::object();
  eng.set("pool_threads", obs::JsonValue(static_cast<i64>(worker_states.size())));
  eng.set("queue_depth", obs::JsonValue(stats.queue_depth));
  eng.set("queue_capacity",
          obs::JsonValue(static_cast<i64>(engine.config().queue_capacity)));
  eng.set("inflight", obs::JsonValue(stats.inflight));
  obs::JsonValue workers = obs::JsonValue::array();
  for (const std::string& state : worker_states)
    workers.push_back(obs::JsonValue(state));
  eng.set("workers", std::move(workers));
  out.set("engine", std::move(eng));

  obs::JsonValue rj = obs::JsonValue::object();
  rj.set("qps_1s", obs::JsonValue(rates.qps_1s));
  rj.set("qps_10s", obs::JsonValue(rates.qps_10s));
  rj.set("qps_60s", obs::JsonValue(rates.qps_60s));
  rj.set("hit_ratio_60s", obs::JsonValue(rates.hit_ratio_60s));
  rj.set("p50_us_10s", obs::JsonValue(rates.p50_us_10s));
  rj.set("p99_us_10s", obs::JsonValue(rates.p99_us_10s));
  out.set("rates", std::move(rj));

  obs::JsonValue totals = obs::JsonValue::object();
  totals.set("requests", obs::JsonValue(stats.requests));
  totals.set("completed", obs::JsonValue(stats.completed));
  totals.set("cache_hits", obs::JsonValue(stats.cache_hits));
  totals.set("coalesced", obs::JsonValue(stats.coalesced));
  totals.set("plans_computed", obs::JsonValue(stats.plans_computed));
  totals.set("timeouts", obs::JsonValue(stats.timeouts));
  totals.set("errors", obs::JsonValue(stats.errors));
  out.set("totals", std::move(totals));
  out.set("snapshot", snapshot_to_json(engine));
  out.set("listener", listener_to_json());
  // Present only while the in-process profiler is on, so default statusz
  // output (and its golden member-order test) is byte-identical to a
  // build without profiling.
  if (obs::profiler().enabled())
    out.set("profiler", obs::profiler_status_json());
  return out;
}

obs::JsonValue metricsz(Engine& engine, const obs::JsonValue& doc,
                        const obs::JsonValue& id) {
  std::string format = "json";
  if (const obs::JsonValue* f = doc.find("format")) {
    format = f->as_string();
    TP_REQUIRE(format == "json" || format == "prometheus",
               "metricsz 'format' must be \"json\" or \"prometheus\"");
  }
  // Fold the engine's private counters/histograms into the registry so
  // the snapshot is current as of this request (no-op when the registry
  // is disabled; the response then reports whatever is registered, which
  // is nothing).
  engine.publish_stats();
  const obs::MetricsSnapshot snap = obs::registry().snapshot();

  obs::JsonValue out = admin_header(id, "metricsz");
  out.set("format", obs::JsonValue(format));
  if (format == "prometheus")
    out.set("text", obs::JsonValue(obs::prometheus_text(snap)));
  else
    out.set("metrics", obs::snapshot_to_json(snap));
  // Same contract as statusz: profiler state appears only while it is on.
  if (obs::profiler().enabled())
    out.set("profiler", obs::profiler_status_json());
  return out;
}

obs::JsonValue cachez(Engine& engine, const obs::JsonValue& id) {
  const PlanCache& cache = engine.cache();

  obs::JsonValue out = admin_header(id, "cachez");
  out.set("capacity",
          obs::JsonValue(static_cast<i64>(cache.per_shard_capacity() *
                                          cache.num_shards())));
  out.set("entries", obs::JsonValue(static_cast<i64>(cache.size())));
  obs::JsonValue shards = obs::JsonValue::array();
  const std::vector<PlanCache::Stats> per_shard = cache.shard_stats();
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    obs::JsonValue row = obs::JsonValue::object();
    row.set("shard", obs::JsonValue(static_cast<i64>(i)));
    row.set("entries", obs::JsonValue(per_shard[i].entries));
    row.set("hits", obs::JsonValue(per_shard[i].hits));
    row.set("misses", obs::JsonValue(per_shard[i].misses));
    row.set("evictions", obs::JsonValue(per_shard[i].evictions));
    shards.push_back(std::move(row));
  }
  out.set("shards", std::move(shards));
  out.set("age_us", obs::histogram_to_json(cache.age_histogram()));
  out.set("snapshot", snapshot_to_json(engine));
  return out;
}

obs::JsonValue slowz(Engine& engine, const obs::JsonValue& id) {
  obs::JsonValue out = admin_header(id, "slowz");
  obs::JsonValue slow = obs::JsonValue::array();
  for (const RequestSpan& span : engine.slowest_requests())
    slow.push_back(span_to_json(span));
  out.set("slowest", std::move(slow));
  obs::JsonValue failed = obs::JsonValue::array();
  for (const RequestSpan& span : engine.recent_failures())
    failed.push_back(span_to_json(span));
  out.set("failed", std::move(failed));
  return out;
}

}  // namespace

void set_listener_status_provider(std::function<ListenerStatus()> provider) {
  const MutexLock lock(g_listener_mu);
  g_listener_fn = std::move(provider);
}

bool is_admin_op(const obs::JsonValue& doc) {
  if (!doc.is_object()) return false;
  const obs::JsonValue* op = doc.find("op");
  return op != nullptr && op->is_string() && is_admin_name(op->as_string());
}

obs::JsonValue handle_admin(Engine& engine, const obs::JsonValue& doc,
                            const obs::JsonValue& id, bool* quit) {
  const std::string& op = doc.find("op")->as_string();
  check_members(doc, op);
  if (op == "statusz") return statusz(engine, id);
  if (op == "metricsz") return metricsz(engine, doc, id);
  if (op == "cachez") return cachez(engine, id);
  if (op == "slowz") return slowz(engine, id);
  TP_ASSERT(op == "quitz", "unhandled admin op");
  if (quit != nullptr) *quit = true;
  obs::JsonValue out = admin_header(id, "quitz");
  out.set("draining", obs::JsonValue(true));
  return out;
}

}  // namespace tp::service
