// Admin query surface for the JSONL front-end.
//
// Admin requests share the JSONL transport with query requests — one JSON
// object per line — but are recognized by their "op" and answered on the
// front-end thread itself, never enqueued: an admin probe is answerable
// mid-stream even when every pool worker is busy and the submission queue
// is full.  Supported ops (schemas in docs/service.md):
//
//   {"op":"statusz"}   uptime, build info, queue/worker/in-flight state,
//                      rolling 1s/10s/60s rates, snapshot + listener state
//   {"op":"metricsz"}  live registry snapshot; "format":"prometheus"
//                      switches the payload to Prometheus text exposition
//   {"op":"cachez"}    per-shard plan-cache occupancy/hits/evictions and
//                      the entry-age histogram
//   {"op":"slowz"}     slow-query log: N slowest + N most recent failures
//   {"op":"quitz"}     acknowledge and stop reading input (graceful
//                      drain: in-flight work still completes)
//
// Admin responses deliberately carry live timing fields — they are exempt
// from the "responses are a pure function of the request" determinism
// contract that query responses honor (jsonl.h).  Golden tests therefore
// pin their member-name sequence, not their values.

#pragma once

#include <functional>
#include <string>

#include "src/obs/json.h"
#include "src/service/engine.h"

namespace tp::service {

/// Network listener state surfaced by statusz.  The TCP server
/// (src/net/tcp_server.h) installs a provider; the default (no provider)
/// renders {"configured": false, "state": "none"} so the statusz member
/// order is transport-independent, matching the snapshot-state precedent.
struct ListenerStatus {
  bool configured = false;
  std::string address;
  std::string state = "none";  ///< "none" | "accepting" | "draining"
  i64 open_connections = 0;
  i64 draining_connections = 0;
  i64 accepted = 0;
  i64 rejected = 0;
};

/// Installs (or, with an empty function, clears) the statusz listener
/// provider.  Thread-safe; the provider must itself be safe to call from
/// any front-end thread and must outlive its installation.
void set_listener_status_provider(std::function<ListenerStatus()> provider);

/// True when `doc` is a request for one of the admin ops above (an object
/// whose "op" member is one of the admin names).  Malformed documents are
/// not admin requests — they fall through to normal request parsing and
/// its error reporting.
bool is_admin_op(const obs::JsonValue& doc);

/// Answers one admin request.  `id` is echoed back (same contract as
/// query responses).  Sets *quit when the op asks the front-end to stop
/// reading (quitz).  Throws tp::Error on unknown members or a bad
/// "format", so typos fail loudly like query requests do.
obs::JsonValue handle_admin(Engine& engine, const obs::JsonValue& doc,
                            const obs::JsonValue& id, bool* quit);

}  // namespace tp::service
