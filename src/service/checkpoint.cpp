#include "src/service/checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "src/util/error.h"

namespace tp::service {
namespace {

constexpr std::string_view kJournalMagic = "TPJRNL01";
constexpr std::uint32_t kJournalVersion = 1;

// mkdir -p: create each prefix of `dir`, tolerating ones that exist.
void make_dirs(const std::string& dir) {
  TP_REQUIRE(!dir.empty(), "checkpoint directory must not be empty");
  for (std::size_t pos = 0; pos != std::string::npos;) {
    pos = dir.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? dir : dir.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      throw Error("cannot create checkpoint directory " + prefix + ": " +
                  std::strerror(errno));
  }
}

std::string encode_header(const std::string& run_key) {
  util::ByteBuffer buf;
  buf.put_u32(kJournalVersion);
  buf.put_string(run_key);
  return buf.data();
}

// TP_CHECKPOINT_CRASH_AFTER=N: SIGKILL this process after the Nth
// successful (fsynced) record() across all journals — deterministic
// crash injection for the kill-restart-resume test.
void maybe_inject_crash() {
  static long crash_after = [] {
    const char* env = std::getenv("TP_CHECKPOINT_CRASH_AFTER");
    return env != nullptr ? std::atol(env) : 0L;
  }();
  static long appended = 0;
  if (crash_after <= 0) return;
  if (++appended >= crash_after) std::raise(SIGKILL);
}

}  // namespace

CheckpointJournal::CheckpointJournal(const std::string& dir,
                                     const std::string& name,
                                     const std::string& run_key) {
  make_dirs(dir);
  path_ = dir + "/" + name + ".journal";
  log_ = std::make_unique<util::AppendLog>(path_, kJournalMagic);

  const auto& records = log_->records();
  if (records.empty()) {
    log_->append(encode_header(run_key));
  } else {
    util::ByteView header(records[0]);
    const std::uint32_t version = header.get_u32();
    TP_REQUIRE(version == kJournalVersion,
               "checkpoint journal " + path_ + ": version " +
                   std::to_string(version) + " != supported " +
                   std::to_string(kJournalVersion));
    const std::string existing_key = header.get_string();
    TP_REQUIRE(existing_key == run_key,
               "checkpoint journal " + path_ + " belongs to a different run:"
               " journal key \"" + existing_key + "\" vs this run's \"" +
                   run_key + "\" (use a fresh --checkpoint directory)");
    for (std::size_t i = 1; i < records.size(); ++i) {
      util::ByteView view(records[i]);
      std::string cell_id = view.get_string();
      std::string payload = view.get_string();
      TP_REQUIRE(view.empty(),
                 "checkpoint journal " + path_ + ": malformed cell record");
      cells_[std::move(cell_id)] = std::move(payload);
    }
    resumed_ = static_cast<i64>(cells_.size());
  }
}

const std::string* CheckpointJournal::find(const std::string& cell_id) const {
  const auto it = cells_.find(cell_id);
  return it == cells_.end() ? nullptr : &it->second;
}

void CheckpointJournal::record(const std::string& cell_id,
                               std::string_view payload) {
  util::ByteBuffer buf;
  buf.put_string(cell_id);
  buf.put_string(payload);
  log_->append(buf.data());
  cells_[cell_id] = std::string(payload);
  maybe_inject_crash();
}

}  // namespace tp::service
