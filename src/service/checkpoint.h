// Checkpointed long runs: an append-only completed-cell journal.
//
// A design-space sweep is a grid of independent cells (one (k, router,
// rate, ...) combination each), every cell expensive and deterministic.
// A CheckpointJournal makes such a run restartable: after each cell
// completes, the caller records its id and encoded result; a rerun with
// the same journal directory finds the completed cells already present
// and recomputes only the missing ones.  The journal is a
// util::AppendLog (src/util/checked_io.h) — CRC-framed records, fsync
// per append, torn tail truncated at open — so a SIGKILL at any byte
// leaves at worst the in-flight cell to redo, and the resumed run's
// output is byte-identical to an uninterrupted one (results are encoded
// with exact bit-pattern doubles; the kill-restart-resume golden test
// in tools/CMakeLists.txt proves it end to end).
//
// The header record carries a run key — the full parameterization of
// the run plus the build key — so a journal is only ever replayed
// against the identical computation.  A journal whose run key disagrees
// is refused with an error naming both keys (delete the directory or
// pick another to start fresh).
//
// Crash injection for tests: when TP_CHECKPOINT_CRASH_AFTER=N is set in
// the environment, the Nth successful record() raises SIGKILL — a real
// uncatchable kill, after the fsync, exactly the scenario the resume
// path recovers from.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/util/checked_io.h"
#include "src/util/math.h"

namespace tp::service {

class CheckpointJournal {
 public:
  /// Opens (creating directory and file as needed) `dir/<name>.journal`.
  /// `run_key` must describe the run completely; an existing journal
  /// written under a different run key throws tp::Error.
  CheckpointJournal(const std::string& dir, const std::string& name,
                    const std::string& run_key);

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// The recorded payload for a completed cell, or nullptr.
  const std::string* find(const std::string& cell_id) const;

  /// Appends one completed cell (fsynced before return).  Honors
  /// TP_CHECKPOINT_CRASH_AFTER (see file comment).
  void record(const std::string& cell_id, std::string_view payload);

  /// Completed cells recovered when the journal was opened.
  i64 resumed_cells() const { return resumed_; }

  /// True when opening truncated a torn tail (crash mid-append).
  bool recovered_torn_tail() const { return log_->recovered_torn_tail(); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unique_ptr<util::AppendLog> log_;
  std::unordered_map<std::string, std::string> cells_;
  i64 resumed_ = 0;
};

}  // namespace tp::service
