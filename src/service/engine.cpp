#include "src/service/engine.h"

#include <chrono>
#include <cstdio>

#include "src/obs/phase_stack.h"
#include "src/obs/trace.h"
#include "src/service/snapshot.h"
#include "src/util/error.h"
#include "src/util/parallel.h"
#include "src/util/worker_context.h"

namespace tp::service {

using Clock = std::chrono::steady_clock;

namespace {

i64 us_between(Clock::time_point from, Clock::time_point to) {
  const i64 us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : us;
}

/// Coalesce fan-in buckets: small exact powers of two — fan-in is a count
/// of waiters, not a duration.
std::vector<i64> fanin_bucket_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128};
}

}  // namespace

struct Engine::Pending {
  Mutex mu;
  CondVar cv;
  bool done TP_GUARDED_BY(mu) = false;
  Response response TP_GUARDED_BY(mu);

  Engine* engine = nullptr;
  QueryKey key;
  std::string id;
  Clock::time_point submitted;
  Clock::time_point deadline;
  bool has_deadline = false;

  // Span ingredients, written by the single thread that fulfills this
  // request BEFORE fulfill() flips `done` (waiters only read `response`
  // after `done`, so these need no extra lock).
  SpanOutcome outcome = SpanOutcome::Hit;
  i64 queue_us = 0;
  i64 compute_us = 0;
  i64 fanin = 1;

  bool expired(Clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

struct Engine::InFlight {
  QueryKey key;
  // Guarded by the engine's inflight_mu_.
  std::vector<std::shared_ptr<Pending>> waiters;
};

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_threads_(config.threads > 0 ? config.threads : default_threads()),
      cache_(config.cache_capacity, config.cache_shards),
      start_(Clock::now()),
      request_us_(obs::duration_bucket_bounds()),
      compute_us_(obs::duration_bucket_bounds()),
      queue_wait_us_(obs::duration_bucket_bounds()),
      fanin_(fanin_bucket_bounds()),
      deadline_margin_us_(obs::duration_bucket_bounds()),
      slow_log_(config.slow_log_capacity < 1 ? 1 : config.slow_log_capacity),
      requests_ring_(64),
      latency_ring_(obs::duration_bucket_bounds(), 64) {
  TP_REQUIRE(config_.queue_capacity >= 1, "queue capacity must be >= 1");
  if (config_.measure_threads < 1) config_.measure_threads = 1;
  worker_state_.assign(static_cast<std::size_t>(pool_threads_), "idle");

  // Warm boot before the pool exists: the load touches the cache with no
  // concurrent readers, and a corrupt/mismatched snapshot degrades to a
  // cold cache (the outcome is kept for statusz, never thrown).
  if (!config_.snapshot_path.empty()) {
    const MutexLock lock(snapshot_mu_);
    snapshot_.configured = true;
    snapshot_.load_outcome = "cold";
  }
  if (config_.snapshot_load && !config_.snapshot_path.empty()) {
    const SnapshotLoadInfo info =
        load_cache_snapshot(cache_, config_.snapshot_path);
    const MutexLock lock(snapshot_mu_);
    snapshot_.load_attempted = true;
    if (info.ok) {
      snapshot_.warm_entries = info.entries;
      snapshot_.load_outcome = "warm";
    } else {
      snapshot_.load_outcome = "error: " + info.error;
    }
  }

  pool_.reserve(static_cast<std::size_t>(pool_threads_));
  for (i32 i = 0; i < pool_threads_; ++i)
    pool_.emplace_back([this, i] { worker_loop(i); });
  if (config_.snapshot_save && !config_.snapshot_path.empty() &&
      config_.snapshot_interval_ms > 0) {
    has_saver_ = true;
    saver_ = Thread([this] { saver_loop(); });
  }
}

Engine::~Engine() {
  if (has_saver_) {
    {
      const MutexLock lock(saver_mu_);
      saver_stop_ = true;
    }
    saver_cv_.notify_all();
    saver_.join();
  }
  drain();
  // Shutdown snapshot: after the drain every computed plan is in the
  // cache, and only_if_dirty makes this a no-op when an explicit final
  // save (CLI graceful-shutdown path) already captured it.
  if (config_.snapshot_save && !config_.snapshot_path.empty())
    save_snapshot(/*only_if_dirty=*/true);
  {
    const MutexLock lock(queue_mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (auto& t : pool_) t.join();
}

void Engine::saver_loop() {
  const auto interval =
      std::chrono::milliseconds(config_.snapshot_interval_ms);
  MutexLock lock(saver_mu_);
  for (;;) {
    const auto deadline = Clock::now() + interval;
    while (!saver_stop_ && Clock::now() < deadline)
      saver_cv_.wait_until(lock, deadline);
    if (saver_stop_) return;
    lock.unlock();
    save_snapshot(/*only_if_dirty=*/true);
    lock.lock();
  }
}

bool Engine::save_snapshot(bool only_if_dirty) {
  if (config_.snapshot_path.empty()) return false;
  const MutexLock io(save_io_mu_);
  i64 plans_now = 0;
  {
    const MutexLock lock(stats_mu_);
    plans_now = counters_.plans_computed;
  }
  if (only_if_dirty) {
    const MutexLock lock(snapshot_mu_);
    if (snapshot_.saves > 0 && plans_now == saved_plans_) return true;
  }

  bool ok = true;
  std::string error;
  SnapshotWriteInfo info;
  try {
    info = save_cache_snapshot(cache_, config_.snapshot_path);
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  }

  const MutexLock lock(snapshot_mu_);
  if (ok) {
    ++snapshot_.saves;
    snapshot_.last_save_outcome = "ok";
    snapshot_.last_save_entries = info.entries;
    snapshot_.last_save_ms = uptime_ms();
    saved_plans_ = plans_now;
  } else {
    ++snapshot_.save_failures;
    snapshot_.last_save_outcome = "error: " + error;
  }
  return ok;
}

SnapshotStatus Engine::snapshot_status() const {
  const MutexLock lock(snapshot_mu_);
  return snapshot_;
}

Response Engine::timeout_response(const QueryKey& key) {
  Response r;
  r.ok = false;
  r.timeout = true;
  r.error = "deadline exceeded: " + key.str();
  return r;
}

void Engine::fulfill(const std::shared_ptr<Pending>& pending,
                     Response response, bool count_completed) {
  // Count BEFORE waking the waiter: once done flips, the submitter may
  // read stats()/publish_stats() and must see this request accounted for.
  const Clock::time_point now = Clock::now();
  const i64 us = us_between(pending->submitted, now);

  RequestSpan span;
  span.request_id = pending->id;
  span.key = pending->key.str();
  span.total_us = us;
  span.queue_us = pending->queue_us;
  span.compute_us = pending->compute_us;
  span.fanin = pending->fanin;
  span.shard = static_cast<i64>(cache_.shard_of(pending->key));
  span.has_deadline = pending->has_deadline;
  if (pending->has_deadline)
    span.deadline_margin_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            pending->deadline - now)
            .count();
  if (!response.ok)
    span.outcome = response.timeout ? SpanOutcome::Timeout : SpanOutcome::Error;
  else if (pending->expired(now))
    // The result arrived, but past the deadline: the waiter's wait() has
    // already returned the structured timeout, so that is what this
    // request's span must say happened.
    span.outcome = SpanOutcome::Timeout;
  else
    span.outcome = pending->outcome;

  const i64 tick = std::chrono::duration_cast<std::chrono::seconds>(
                       now - start_)
                       .count();
  {
    const MutexLock lock(stats_mu_);
    request_us_.record(us);
    queue_wait_us_.record(span.queue_us);
    fanin_.record(span.fanin);
    if (span.has_deadline)
      deadline_margin_us_.record(
          span.deadline_margin_us < 0 ? 0 : span.deadline_margin_us);
    slow_log_.record(span);
    requests_ring_.record(tick, span.outcome == SpanOutcome::Hit ? 1 : 0);
    latency_ring_.record(tick, us);
    if (response.ok && count_completed) ++counters_.completed;
  }

  // Trace outside the stats lock: the tracer has its own mutex and (when
  // enabled) allocates.  'X' complete events need no per-thread nesting,
  // so interleaved requests from many threads render correctly.
  obs::Tracer& tracer = obs::tracer();
  if (tracer.enabled())
    tracer.complete(span.request_id + " " + span.key, us * 1000, "service");

  response.request_id = pending->id;
  {
    const MutexLock lock(pending->mu);
    pending->response = std::move(response);
    pending->done = true;
  }
  pending->cv.notify_all();
}

Engine::Ticket Engine::submit(const Request& req) {
  return submit_impl(req, /*may_block=*/true);
}

Engine::Ticket Engine::try_submit(const Request& req) {
  return submit_impl(req, /*may_block=*/false);
}

Engine::Ticket Engine::submit_impl(const Request& req, bool may_block) {
  auto pending = std::make_shared<Pending>();
  pending->engine = this;
  pending->key = req.key;
  pending->submitted = Clock::now();

  const i64 deadline_ms = req.deadline_ms >= 0 ? req.deadline_ms
                                               : config_.default_deadline_ms;
  // Request-level 0 means "already expired"; a config default of 0 means
  // "no deadline" (the common case).
  if (req.deadline_ms >= 0 || config_.default_deadline_ms > 0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->submitted + std::chrono::milliseconds(deadline_ms);
  }

  {
    const MutexLock lock(stats_mu_);
    ++counters_.requests;
    // Stable request id: client-supplied wins; otherwise derive one from
    // the submit sequence number (unique for the engine's lifetime).
    if (req.id.empty()) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "r%lld",
                    static_cast<long long>(counters_.requests));
      pending->id = buf;
    } else {
      pending->id = req.id;
    }
  }

  if (pending->expired(pending->submitted)) {
    {
      const MutexLock lock(stats_mu_);
      ++counters_.timeouts;
    }
    fulfill(pending, timeout_response(req.key), /*count_completed=*/false);
    return Ticket(std::move(pending));
  }

  std::shared_ptr<InFlight> job;
  {
    // Cache lookup and in-flight attach are one critical section: a
    // worker publishes a finished result to the cache *before* removing
    // its in-flight entry, so under this lock every key is either cached,
    // in flight, or genuinely new — a request can never slip between the
    // two and recompute a plan that is being (or has been) computed.
    const MutexLock lock(inflight_mu_);
    if (auto cached = cache_.get(req.key)) {
      {
        const MutexLock stats_lock(stats_mu_);
        ++counters_.cache_hits;
      }
      Response r;
      r.ok = true;
      r.result = std::move(cached);
      pending->outcome = SpanOutcome::Hit;
      fulfill(pending, std::move(r), /*count_completed=*/true);
      return Ticket(std::move(pending));
    }
    const auto it = inflight_.find(req.key);
    if (it != inflight_.end()) {
      pending->outcome = SpanOutcome::Coalesced;
      it->second->waiters.push_back(pending);
      const MutexLock stats_lock(stats_mu_);
      ++counters_.coalesced;
      return Ticket(std::move(pending));
    }
    pending->outcome = SpanOutcome::Computed;
    job = std::make_shared<InFlight>();
    job->key = req.key;
    job->waiters.push_back(pending);
    inflight_.emplace(req.key, job);
    ++inflight_jobs_;
    const MutexLock stats_lock(stats_mu_);
    ++counters_.cache_misses;
  }

  {
    // Bounded submission queue: back-pressure blocks the submitter, never
    // a worker.  (Enqueued outside inflight_mu_ so a full queue cannot
    // wedge workers trying to retire their in-flight entries.)
    MutexLock lock(queue_mu_);
    if (!may_block && queue_.size() >= config_.queue_capacity &&
        !stopping_) {
      lock.unlock();
      reject_overloaded(job);
      return Ticket(std::move(pending));
    }
    while (queue_.size() >= config_.queue_capacity && !stopping_)
      queue_not_full_.wait(lock);
    TP_REQUIRE(!stopping_, "submit on a stopped engine");
    queue_.push_back(std::move(job));
    const i64 depth = static_cast<i64>(queue_.size());
    const MutexLock stats_lock(stats_mu_);
    if (depth > counters_.peak_queue_depth)
      counters_.peak_queue_depth = depth;
  }
  queue_not_empty_.notify_one();
  return Ticket(std::move(pending));
}

void Engine::reject_overloaded(const std::shared_ptr<InFlight>& job) {
  // A non-blocking submit found the queue full AFTER registering this job
  // as in flight.  Retire the registration and answer every waiter (the
  // submitter, plus any request that coalesced onto the doomed job in the
  // window between the two locks — overload errors are retryable, so a
  // rare collateral rejection is the honest answer) with a structured
  // overload error.
  std::vector<std::shared_ptr<Pending>> waiters;
  {
    const MutexLock lock(inflight_mu_);
    waiters = std::move(job->waiters);
    inflight_.erase(job->key);
    --inflight_jobs_;
  }
  drain_cv_.notify_all();
  {
    const MutexLock lock(stats_mu_);
    counters_.errors += static_cast<i64>(waiters.size());
    // The miss never became a computation: keep cache_misses meaning
    // "computations started" (its documented contract).
    --counters_.cache_misses;
  }
  Response r;
  r.ok = false;
  r.overload = true;
  r.error = "overloaded: submission queue full (capacity " +
            std::to_string(config_.queue_capacity) + "), dropped " +
            job->key.str();
  for (const auto& w : waiters) fulfill(w, r, /*count_completed=*/false);
}

Response Engine::run(const Request& req) { return submit(req).wait(); }

Response Engine::Ticket::wait() {
  Pending& p = *pending_;
  MutexLock lock(p.mu);
  if (p.has_deadline) {
    while (!p.done) {
      if (p.cv.wait_until(lock, p.deadline) == std::cv_status::timeout &&
          !p.done) {
        // Deadline passed first.  The computation (if any) continues and
        // will land in the cache; only this response times out.
        Engine* engine = p.engine;
        const std::string id = p.id;
        lock.unlock();
        {
          const MutexLock stats_lock(engine->stats_mu_);
          ++engine->counters_.timeouts;
        }
        Response r = timeout_response(p.key);
        r.request_id = id;
        return r;
      }
    }
  } else {
    while (!p.done) p.cv.wait(lock);
  }
  return p.response;
}

void Engine::worker_loop(i32 worker) {
  // Engine workers are pool workers: compute_query's nested
  // instrumentation (planner scopes, router counters) must not record
  // into the single-writer registry from here.  The engine's own exact
  // counters/histograms are published by the caller via publish_stats().
  const PoolWorkerScope worker_scope;
  const std::size_t slot = static_cast<std::size_t>(worker);
  for (;;) {
    std::shared_ptr<InFlight> job;
    {
      MutexLock lock(queue_mu_);
      while (!stopping_ && queue_.empty()) queue_not_empty_.wait(lock);
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    {
      const MutexLock lock(stats_mu_);
      worker_state_[slot] = "compute " + job->key.str();
    }
    execute(job);
    {
      const MutexLock lock(stats_mu_);
      worker_state_[slot] = "idle";
    }
  }
}

void Engine::execute(const std::shared_ptr<InFlight>& job) {
  const Clock::time_point dequeued = Clock::now();

  // Dequeue-time deadline sweep: when every waiter has already expired
  // there is no one left to receive the result — skip the computation
  // entirely (and leave the cache untouched).
  {
    MutexLock lock(inflight_mu_);
    bool all_expired = true;
    for (const auto& w : job->waiters)
      if (!w->expired(dequeued)) {
        all_expired = false;
        break;
      }
    if (all_expired) {
      std::vector<std::shared_ptr<Pending>> waiters = std::move(job->waiters);
      inflight_.erase(job->key);
      --inflight_jobs_;
      lock.unlock();
      drain_cv_.notify_all();
      {
        const MutexLock stats_lock(stats_mu_);
        counters_.timeouts += static_cast<i64>(waiters.size());
      }
      for (const auto& w : waiters) {
        w->queue_us = us_between(w->submitted, dequeued);
        w->fanin = static_cast<i64>(waiters.size());
        fulfill(w, timeout_response(job->key), /*count_completed=*/false);
      }
      return;
    }
  }

  Response response;
  const Clock::time_point start = Clock::now();
  try {
    TP_PROF_PHASE("service.compute");
    auto result = std::make_shared<const QueryResult>(compute_query(
        job->key, config_.measure_threads, config_.use_table_router));
    response.ok = true;
    response.result = std::move(result);
  } catch (const Error& e) {
    response.ok = false;
    response.error = e.what();
  }
  const i64 compute_us = us_between(start, Clock::now());

  // Publish to the cache BEFORE retiring the in-flight entry — the
  // ordering submit() relies on for exactly-once computation.  Failed
  // computations are never cached (an error or timeout must not poison
  // the cache for later, well-formed retries of the same key).
  if (response.ok) cache_.put(job->key, response.result);

  std::vector<std::shared_ptr<Pending>> waiters;
  {
    const MutexLock lock(inflight_mu_);
    waiters = std::move(job->waiters);
    inflight_.erase(job->key);
    --inflight_jobs_;
  }
  drain_cv_.notify_all();

  {
    const MutexLock lock(stats_mu_);
    ++counters_.plans_computed;
    compute_us_.record(compute_us);
    if (!response.ok) counters_.errors += static_cast<i64>(waiters.size());
  }
  for (const auto& w : waiters) {
    w->queue_us = us_between(w->submitted, dequeued);
    w->compute_us = compute_us;
    w->fanin = static_cast<i64>(waiters.size());
    fulfill(w, response, /*count_completed=*/true);
  }
}

void Engine::drain() {
  MutexLock lock(inflight_mu_);
  while (inflight_jobs_ != 0) drain_cv_.wait(lock);
}

EngineStats Engine::stats() const {
  EngineStats s;
  {
    const MutexLock lock(stats_mu_);
    s = counters_;
  }
  {
    const MutexLock lock(queue_mu_);
    s.queue_depth = static_cast<i64>(queue_.size());
  }
  {
    const MutexLock lock(inflight_mu_);
    s.inflight = inflight_jobs_;
  }
  const PlanCache::Stats cs = cache_.stats();
  s.cache_entries = cs.entries;
  s.cache_evictions = cs.evictions;
  return s;
}

i64 Engine::uptime_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start_)
      .count();
}

std::vector<std::string> Engine::worker_states() const {
  const MutexLock lock(stats_mu_);
  return worker_state_;
}

ServiceRates Engine::rates() const {
  const i64 tick = std::chrono::duration_cast<std::chrono::seconds>(
                       Clock::now() - start_)
                       .count();
  const MutexLock lock(stats_mu_);
  ServiceRates r;
  const obs::WindowStats w1 = requests_ring_.last(tick, 1);
  const obs::WindowStats w10 = requests_ring_.last(tick, 10);
  const obs::WindowStats w60 = requests_ring_.last(tick, 60);
  r.qps_1s = static_cast<double>(w1.count);
  r.qps_10s = static_cast<double>(w10.count) / 10.0;
  r.qps_60s = static_cast<double>(w60.count) / 60.0;
  r.hit_ratio_60s = w60.count > 0 ? static_cast<double>(w60.sum) /
                                        static_cast<double>(w60.count)
                                  : 0.0;
  const obs::HistogramData lat = latency_ring_.merged(tick, 10);
  if (lat.count > 0) {
    r.p50_us_10s = lat.percentile(0.50);
    r.p99_us_10s = lat.percentile(0.99);
  }
  return r;
}

std::vector<RequestSpan> Engine::slowest_requests() const {
  const MutexLock lock(stats_mu_);
  return slow_log_.slowest();
}

std::vector<RequestSpan> Engine::recent_failures() const {
  const MutexLock lock(stats_mu_);
  return slow_log_.recent_failures();
}

void Engine::publish_stats() {
  obs::MetricsRegistry& reg = obs::registry();
  if (!reg.enabled()) return;

  const EngineStats cur = stats();
  obs::HistogramData request_delta(obs::duration_bucket_bounds());
  obs::HistogramData compute_delta(obs::duration_bucket_bounds());
  obs::HistogramData queue_wait_delta(obs::duration_bucket_bounds());
  obs::HistogramData fanin_delta(fanin_bucket_bounds());
  obs::HistogramData margin_delta(obs::duration_bucket_bounds());
  {
    const MutexLock lock(stats_mu_);
    std::swap(request_delta, request_us_);
    std::swap(compute_delta, compute_us_);
    std::swap(queue_wait_delta, queue_wait_us_);
    std::swap(fanin_delta, fanin_);
    std::swap(margin_delta, deadline_margin_us_);
  }

  const auto publish = [&reg](const char* name, i64 now, i64& last) {
    if (now > last) reg.add(reg.counter(name), now - last);
    last = now;
  };
  publish("service.requests", cur.requests, published_.requests);
  publish("service.completed", cur.completed, published_.completed);
  publish("service.cache_hits", cur.cache_hits, published_.cache_hits);
  publish("service.cache_misses", cur.cache_misses, published_.cache_misses);
  publish("service.coalesced", cur.coalesced, published_.coalesced);
  publish("service.plans_computed", cur.plans_computed,
          published_.plans_computed);
  publish("service.timeouts", cur.timeouts, published_.timeouts);
  publish("service.errors", cur.errors, published_.errors);
  publish("service.cache_evictions", cur.cache_evictions,
          published_.cache_evictions);

  reg.set(reg.gauge("service.queue_depth"), cur.queue_depth);
  reg.set_max(reg.gauge("service.queue_depth_peak"), cur.peak_queue_depth);
  reg.set(reg.gauge("service.cache_entries"), cur.cache_entries);
  reg.set(reg.gauge("service.pool_threads"), pool_threads_);
  reg.set(reg.gauge("service.inflight"), cur.inflight);

  reg.merge_histogram("service.request_us", request_delta);
  reg.merge_histogram("service.compute_us", compute_delta);
  reg.merge_histogram("service.queue_wait_us", queue_wait_delta);
  reg.merge_histogram("service.fanin", fanin_delta);
  reg.merge_histogram("service.deadline_margin_us", margin_delta);
}

}  // namespace tp::service
