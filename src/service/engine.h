// Concurrent plan/load query engine.
//
// The Engine owns a persistent worker pool and answers QueryKey requests
// with memoization and request coalescing:
//
//   submit() ──> cache hit ───────────────> fulfilled immediately
//            └─> in-flight for this key? ─> attach as waiter (coalesced)
//            └─> else: new in-flight ─────> bounded queue ─> worker pool
//
// Concurrent identical requests block on ONE computation: the first
// submitter enqueues an in-flight record, later submitters attach to it,
// and the worker that computes it stores the result in the cache and
// fulfills every waiter with the same shared immutable QueryResult — so a
// key is planned exactly once no matter how many clients hammer it
// (EngineStats::plans_computed counts real computations).
//
// Deadlines: a request may carry a relative deadline.  It is checked at
// submit (an already-expired deadline is answered with a structured
// timeout response without ever enqueueing), at dequeue (a job whose
// waiters have all expired is dropped without computing), and while
// waiting (Ticket::wait returns the timeout response when the deadline
// passes first; the computation still completes and is cached — timeouts
// never poison the cache with partial results).
//
// Shutdown drains gracefully: the destructor waits for every queued and
// in-flight computation to finish before joining the pool, so tickets
// already fulfilled stay valid and nothing is dropped mid-compute.
//
// Request-scoped observability: every request carries a stable id
// (client-supplied via Request::id or generated "r<seq>") from submit
// through compute to fulfill.  Each fulfilled request produces a
// RequestSpan (telemetry.h) — outcome, queue wait, compute time, coalesce
// fan-in, cache shard, deadline margin — that feeds the slow-query log,
// the rolling 1s/10s/60s rate windows behind rates(), and (when the
// tracer is on) a Chrome complete event.  The {"op":"statusz"} /
// {"op":"slowz"} admin responses (admin.h) render these live.
//
// Registry publication: the engine keeps exact atomic counters and
// per-request latency histograms internally (workers must not record
// into the global registry concurrently — see obs/registry.h) and
// publishes them from the calling thread via publish_stats():
//
//   counters   service.requests / completed / cache_hits / cache_misses /
//              coalesced / plans_computed / timeouts / errors /
//              cache_evictions
//   gauges     service.queue_depth (current), service.queue_depth_peak,
//              service.cache_entries, service.pool_threads,
//              service.inflight
//   histograms service.request_us (submit->fulfill), service.compute_us,
//              service.queue_wait_us, service.fanin,
//              service.deadline_margin_us

#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/timeseries.h"
#include "src/service/plan_cache.h"
#include "src/service/query.h"
#include "src/service/telemetry.h"
#include "src/util/thread_annotations.h"

namespace tp::service {

struct EngineConfig {
  i32 threads = 0;          ///< worker pool width; 0 = default_threads()
  i32 measure_threads = 1;  ///< analyzer width per query (the engine's
                            ///< pool width is passed down instead of each
                            ///< call sizing itself off hardware
                            ///< concurrency); keep 1 for bit-stable UDR
                            ///< results independent of machine shape
  std::size_t queue_capacity = 256;   ///< bounded submission queue
  std::size_t cache_capacity = 1024;  ///< PlanCache entries
  std::size_t cache_shards = 8;
  i64 default_deadline_ms = 0;  ///< 0 = no deadline unless the request
                                ///< carries one
  std::size_t slow_log_capacity = 16;  ///< spans per slow/failed ring
  bool use_table_router = false;  ///< measure ODR loads via precompiled
                                  ///< next-hop tables (identical results,
                                  ///< different cost profile; not part of
                                  ///< the cache key)

  // Durability (src/service/snapshot.h, docs/durability.md).  A non-empty
  // snapshot_path names the PlanCache snapshot file.  snapshot_load warms
  // the cache from it before the pool starts (corruption or a build-key
  // mismatch degrades to a cold cache — see snapshot_status()).
  // snapshot_save arms the shutdown save in the destructor, and
  // snapshot_interval_ms > 0 additionally runs a background thread that
  // re-snapshots whenever plans were computed since the last save.
  std::string snapshot_path{};
  bool snapshot_load = false;
  bool snapshot_save = false;
  i64 snapshot_interval_ms = 0;
};

/// Durability bookkeeping surfaced by the {"op":"statusz"} and
/// {"op":"cachez"} admin responses: how the cache booted and how snapshot
/// saves have gone since.
struct SnapshotStatus {
  bool configured = false;      ///< a snapshot path is set
  bool load_attempted = false;  ///< boot-time warm-up ran
  i64 warm_entries = 0;         ///< entries restored at boot
  std::string load_outcome = "disabled";  ///< "disabled"/"cold"/"warm"/error
  i64 saves = 0;                ///< successful snapshot writes
  i64 save_failures = 0;
  std::string last_save_outcome = "none";  ///< "none"/"ok"/error
  i64 last_save_entries = 0;
  i64 last_save_ms = -1;  ///< uptime at the last successful save; -1 never
};

/// One submitted request: a canonical key, an optional stable id (empty =
/// the engine generates "r<seq>"), and an optional relative deadline
/// (-1 = use the engine default; 0 = already expired, which
/// deterministically yields a timeout response).
struct Request {
  QueryKey key;
  std::string id{};
  i64 deadline_ms = -1;
};

/// The engine's answer.  Exactly one of {result, error} is meaningful:
/// ok => result != nullptr; !ok => error text (timeout => the structured
/// deadline error).  request_id echoes the request's stable id.
struct Response {
  std::shared_ptr<const QueryResult> result;
  bool ok = false;
  bool timeout = false;
  bool overload = false;  ///< rejected by try_submit on a full queue
  std::string error;
  std::string request_id;
};

/// Exact point-in-time engine statistics (all counted atomically).
struct EngineStats {
  i64 requests = 0;        ///< total submits
  i64 completed = 0;       ///< responses fulfilled with a result
  i64 cache_hits = 0;      ///< answered from the cache at submit
  i64 cache_misses = 0;    ///< computations started (unique misses)
  i64 coalesced = 0;       ///< requests attached to an in-flight compute
  i64 plans_computed = 0;  ///< compute_query executions
  i64 timeouts = 0;        ///< structured deadline responses
  i64 errors = 0;          ///< error responses (invalid parameters)
  i64 queue_depth = 0;     ///< current submission-queue depth
  i64 peak_queue_depth = 0;
  i64 inflight = 0;        ///< jobs queued or executing right now
  i64 cache_entries = 0;
  i64 cache_evictions = 0;
};

/// Windowed rates over the recent past (statusz reports these instead of
/// lifetime totals).  The 1s window is the current partial second, so
/// qps_1s is a live gauge, not a settled average.
struct ServiceRates {
  double qps_1s = 0.0;
  double qps_10s = 0.0;
  double qps_60s = 0.0;
  double hit_ratio_60s = 0.0;  ///< cache hits / requests over 60s
  double p50_us_10s = 0.0;     ///< request latency percentiles over 10s
  double p99_us_10s = 0.0;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Drains every queued and in-flight request, then joins the pool.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  class Ticket;

  /// Submits a request.  Blocks only when the submission queue is full
  /// (back-pressure); cache hits and expired deadlines return an already
  /// fulfilled ticket.  Tickets must not outlive the engine.
  Ticket submit(const Request& req)
      TP_EXCLUDES(queue_mu_, inflight_mu_, stats_mu_);

  /// Non-blocking submit for network front-ends: identical to submit()
  /// except that a full submission queue never blocks — the returned
  /// ticket is already fulfilled with a structured overload error
  /// (Response::overload), so the caller can answer the client and keep
  /// its socket loop responsive.  Cache hits and coalesced waits are
  /// unaffected (neither touches the queue).
  Ticket try_submit(const Request& req)
      TP_EXCLUDES(queue_mu_, inflight_mu_, stats_mu_);

  /// submit + wait.
  Response run(const Request& req)
      TP_EXCLUDES(queue_mu_, inflight_mu_, stats_mu_);

  /// Blocks until every request submitted so far has been computed (or
  /// dropped as expired).  The pool stays alive for further submits.
  void drain() TP_EXCLUDES(inflight_mu_);

  EngineStats stats() const TP_EXCLUDES(stats_mu_, queue_mu_, inflight_mu_);
  const EngineConfig& config() const { return config_; }
  const PlanCache& cache() const { return cache_; }

  /// Milliseconds since the engine was constructed.
  i64 uptime_ms() const;

  /// One human-readable state string per pool worker ("idle" or
  /// "compute <key>"), indexed by worker.
  std::vector<std::string> worker_states() const TP_EXCLUDES(stats_mu_);

  /// Windowed QPS / hit-ratio / latency percentiles (see ServiceRates).
  ServiceRates rates() const TP_EXCLUDES(stats_mu_);

  /// Slow-query log views (telemetry.h): the slowest spans seen
  /// (slowest first) and the most recent timeout/error spans (newest
  /// first).
  std::vector<RequestSpan> slowest_requests() const TP_EXCLUDES(stats_mu_);
  std::vector<RequestSpan> recent_failures() const TP_EXCLUDES(stats_mu_);

  /// Publishes counters/gauges/latency histograms into the global obs
  /// registry (no-op when the registry is disabled).  Counters are
  /// published as deltas since the previous call, so repeated publishes
  /// never double-count.  Call from one thread only (the same contract as
  /// the registry itself).
  void publish_stats() TP_EXCLUDES(stats_mu_);

  /// Writes a PlanCache snapshot to config().snapshot_path now.  Returns
  /// false when no path is configured or the write failed (the failure is
  /// recorded in snapshot_status(); this never throws — a full disk must
  /// not take the service down).  With only_if_dirty, a save is skipped
  /// (returning true) when no plan has been computed since the last one.
  /// Thread-safe: concurrent saves serialize, and the atomic-replace
  /// protocol means readers never see a partial file.
  bool save_snapshot(bool only_if_dirty = false)
      TP_EXCLUDES(stats_mu_, snapshot_mu_, save_io_mu_);

  /// Durability bookkeeping for statusz/cachez.
  SnapshotStatus snapshot_status() const TP_EXCLUDES(snapshot_mu_);

 private:
  struct Pending;
  struct InFlight;

 public:
  /// Handle to one submitted request.
  class Ticket {
   public:
    /// Blocks until the response is ready or the request's deadline
    /// expires, whichever is first.  Safe to call once per ticket.
    Response wait();

   private:
    friend class Engine;
    explicit Ticket(std::shared_ptr<Pending> pending)
        : pending_(std::move(pending)) {}
    std::shared_ptr<Pending> pending_;
  };

 private:
  Ticket submit_impl(const Request& req, bool may_block)
      TP_EXCLUDES(queue_mu_, inflight_mu_, stats_mu_);
  void reject_overloaded(const std::shared_ptr<InFlight>& job)
      TP_EXCLUDES(queue_mu_, inflight_mu_, stats_mu_);
  void worker_loop(i32 worker);
  void saver_loop();
  void execute(const std::shared_ptr<InFlight>& job);
  void fulfill(const std::shared_ptr<Pending>& pending, Response response,
               bool count_completed);
  static Response timeout_response(const QueryKey& key);

  EngineConfig config_;
  i32 pool_threads_ = 1;
  PlanCache cache_;
  std::chrono::steady_clock::time_point start_;

  // Submission queue (bounded) and pool.
  mutable Mutex queue_mu_;
  CondVar queue_not_empty_;
  CondVar queue_not_full_;
  std::deque<std::shared_ptr<InFlight>> queue_ TP_GUARDED_BY(queue_mu_);
  bool stopping_ TP_GUARDED_BY(queue_mu_) = false;
  std::vector<Thread> pool_;

  // In-flight coalescing map, keyed on the query.
  mutable Mutex inflight_mu_;
  CondVar drain_cv_;
  std::unordered_map<QueryKey, std::shared_ptr<InFlight>, QueryKeyHash>
      inflight_ TP_GUARDED_BY(inflight_mu_);
  i64 inflight_jobs_ TP_GUARDED_BY(inflight_mu_) =
      0;  ///< queued or executing jobs (for drain)

  // Exact stats and request-scoped telemetry.  Counters live behind
  // stats_mu_ together with the local latency histograms, the slow-query
  // log, and the rolling rate windows; everything is touched once per
  // request, so one short lock is cheaper than it looks next to a plan
  // computation.
  mutable Mutex stats_mu_;
  EngineStats counters_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData request_us_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData compute_us_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData queue_wait_us_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData fanin_ TP_GUARDED_BY(stats_mu_);
  obs::HistogramData deadline_margin_us_ TP_GUARDED_BY(stats_mu_);
  SlowQueryLog slow_log_ TP_GUARDED_BY(stats_mu_);
  obs::RollingSeries requests_ring_ TP_GUARDED_BY(stats_mu_);
  obs::RollingHistogram latency_ring_ TP_GUARDED_BY(stats_mu_);
  std::vector<std::string> worker_state_ TP_GUARDED_BY(stats_mu_);
  EngineStats published_;  ///< last snapshot pushed into the registry;
                           ///< single-caller contract (publish_stats), so
                           ///< deliberately unguarded

  // Durability: snapshot bookkeeping and the periodic saver thread.
  // save_io_mu_ serializes the file writes themselves (held across the
  // whole save so concurrent savers cannot interleave temp files);
  // snapshot_mu_ guards only the status record, so statusz never blocks
  // behind an in-progress save.
  mutable Mutex snapshot_mu_;
  SnapshotStatus snapshot_ TP_GUARDED_BY(snapshot_mu_);
  i64 saved_plans_ TP_GUARDED_BY(snapshot_mu_) = 0;  ///< plans_computed at
                                                     ///< the last save
  Mutex save_io_mu_;
  Mutex saver_mu_;
  CondVar saver_cv_;
  bool saver_stop_ TP_GUARDED_BY(saver_mu_) = false;
  Thread saver_;
  bool has_saver_ = false;
};

}  // namespace tp::service
