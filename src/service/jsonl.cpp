#include "src/service/jsonl.h"

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/service/admin.h"
#include "src/util/error.h"

namespace tp::service {

BatchRequest parse_request_line(std::string_view line, i64 line_no) {
  return parse_request_doc(obs::parse_json(line), line_no);
}

BatchRequest parse_request_doc(const obs::JsonValue& doc, i64 line_no) {
  TP_REQUIRE(doc.is_object(), "request must be a JSON object");

  static const char* const kKnown[] = {"id", "op",     "d",     "k",
                                       "radices", "t", "router", "deadline_ms"};
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const char* k : kKnown)
      if (key == k) {
        known = true;
        break;
      }
    TP_REQUIRE(known, "unknown request field '" + key + "'");
  }

  BatchRequest out;
  if (const obs::JsonValue* id = doc.find("id")) {
    out.id = *id;
    // The echoed id doubles as the engine-level request id (strings pass
    // through; other JSON values keep their serialized form).  Lines
    // without an id leave it empty so the engine generates one.
    out.request.id = id->is_string() ? id->as_string() : id->dump();
  } else {
    out.id = obs::JsonValue(line_no);
  }

  const QueryOp op =
      parse_op(doc.find("op") ? doc.find("op")->as_string() : "");
  const RouterKind router = parse_router_kind(
      doc.find("router") ? doc.find("router")->as_string() : "");
  const i32 t =
      doc.find("t") ? static_cast<i32>(doc.find("t")->as_int()) : 1;

  Radices radices;
  if (const obs::JsonValue* rad = doc.find("radices")) {
    TP_REQUIRE(rad->is_array(), "'radices' must be an array");
    TP_REQUIRE(!rad->items().empty() && rad->items().size() <= kMaxDims,
               "'radices' needs 1.." + std::to_string(kMaxDims) +
                   " entries");
    for (const obs::JsonValue& r : rad->items())
      radices.push_back(static_cast<i32>(r.as_int()));
    if (const obs::JsonValue* d = doc.find("d"))
      TP_REQUIRE(static_cast<std::size_t>(d->as_int()) == radices.size(),
                 "'d' contradicts the length of 'radices'");
    TP_REQUIRE(doc.find("k") == nullptr,
               "give either 'k' (with 'd') or 'radices', not both");
  } else {
    const obs::JsonValue* d = doc.find("d");
    const obs::JsonValue* k = doc.find("k");
    TP_REQUIRE(d != nullptr && k != nullptr,
               "request needs 'd' and 'k' (or 'radices')");
    const i64 dims = d->as_int();
    TP_REQUIRE(dims >= 1 && dims <= static_cast<i64>(kMaxDims),
               "'d' must be in [1, " + std::to_string(kMaxDims) + "]");
    for (i64 i = 0; i < dims; ++i)
      radices.push_back(static_cast<i32>(k->as_int()));
  }

  out.request.key = make_query_key(radices, t, router, op);
  if (const obs::JsonValue* deadline = doc.find("deadline_ms")) {
    const i64 ms = deadline->as_int();
    TP_REQUIRE(ms >= 0, "'deadline_ms' must be >= 0");
    out.request.deadline_ms = ms;
  }
  return out;
}

obs::JsonValue response_to_json(const obs::JsonValue& id,
                                const Response& response) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("id", id);
  out.set("ok", obs::JsonValue(response.ok));
  if (!response.ok) {
    out.set("error", obs::JsonValue(response.error));
    if (response.timeout) out.set("timeout", obs::JsonValue(true));
    if (response.overload) out.set("overload", obs::JsonValue(true));
    return out;
  }

  const QueryResult& r = *response.result;
  out.set("op", obs::JsonValue(op_name(r.key.op())));
  out.set("key", obs::JsonValue(r.key.str()));
  out.set("d", obs::JsonValue(static_cast<i64>(r.key.dims())));
  out.set("k", obs::JsonValue(static_cast<i64>(r.key.radices[0])));
  out.set("t", obs::JsonValue(static_cast<i64>(r.key.t)));
  out.set("router", obs::JsonValue(router_name_short(r.key.router)));
  out.set("placement", obs::JsonValue(r.placement_name));
  out.set("processors", obs::JsonValue(r.placement_size));
  out.set("predicted_emax", obs::JsonValue(r.predicted_emax));
  out.set("prediction_exact", obs::JsonValue(r.prediction_exact));
  out.set("lower_bound", obs::JsonValue(r.lower_bound));
  if (r.key.measure) {
    out.set("measured_emax", obs::JsonValue(r.measured_emax));
    out.set("mean_load", obs::JsonValue(r.mean_load));
    out.set("loaded_links", obs::JsonValue(r.loaded_links));
  }
  if (r.key.bounds) {
    obs::JsonValue bounds = obs::JsonValue::array();
    for (const BoundValue& b : r.bound_table) {
      obs::JsonValue row = obs::JsonValue::object();
      row.set("name", obs::JsonValue(b.name));
      row.set("value", obs::JsonValue(b.value));
      row.set("applicable", obs::JsonValue(b.applicable));
      row.set("note", obs::JsonValue(b.note));
      bounds.push_back(std::move(row));
    }
    out.set("bounds", std::move(bounds));
    if (r.has_slab) {
      obs::JsonValue slab = obs::JsonValue::object();
      slab.set("value", obs::JsonValue(r.slab.value));
      slab.set("dim", obs::JsonValue(static_cast<i64>(r.slab.dim)));
      slab.set("lo", obs::JsonValue(static_cast<i64>(r.slab.lo)));
      slab.set("len", obs::JsonValue(static_cast<i64>(r.slab.len)));
      out.set("slab", std::move(slab));
    }
  }
  out.set("summary", obs::JsonValue(r.summary));
  return out;
}

namespace {

/// One batch slot: a submitted ticket, an already rendered admin
/// response, or an immediate (parse) error response.
struct Slot {
  obs::JsonValue id;
  std::optional<Engine::Ticket> ticket;
  std::optional<obs::JsonValue> admin;
  Response error;
};

}  // namespace

Response error_response(const std::string& what) {
  Response r;
  r.ok = false;
  r.error = what;
  return r;
}

obs::JsonValue salvage_request_id(std::string_view line, i64 line_no) {
  try {
    const obs::JsonValue doc = obs::parse_json(line);
    if (doc.is_object())
      if (const obs::JsonValue* id = doc.find("id")) return *id;
  } catch (const Error&) {
  }
  return obs::JsonValue(line_no);
}

i64 run_batch(Engine& engine, std::istream& in, std::ostream& out) {
  TP_OBS_SCOPE("service.batch");
  std::vector<Slot> slots;
  std::string line;
  i64 line_no = 0;
  {
    // Submit everything first: identical keys coalesce onto one
    // computation or hit the cache, independent of their distance in the
    // file.
    TP_OBS_SCOPE("service.batch_submit");
    bool quit = false;
    while (!quit && std::getline(in, line)) {
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Slot slot;
      try {
        const obs::JsonValue doc = obs::parse_json(line);
        if (is_admin_op(doc)) {
          // Admin ops are answered on this thread at submit time (their
          // point is a live view while the pool is busy); quitz stops
          // reading further lines, already-submitted work still completes.
          if (const obs::JsonValue* id = doc.find("id"))
            slot.id = *id;
          else
            slot.id = obs::JsonValue(line_no);
          slot.admin = handle_admin(engine, doc, slot.id, &quit);
        } else {
          BatchRequest req = parse_request_doc(doc, line_no);
          slot.id = std::move(req.id);
          slot.ticket = engine.submit(req.request);
        }
      } catch (const Error& e) {
        slot.id = salvage_request_id(line, line_no);
        slot.error = error_response(e.what());
      }
      slots.push_back(std::move(slot));
    }
  }
  {
    TP_OBS_SCOPE("service.batch_collect");
    for (Slot& slot : slots) {
      if (slot.admin) {
        out << slot.admin->dump() << "\n";
        continue;
      }
      const Response response =
          slot.ticket ? slot.ticket->wait() : slot.error;
      out << response_to_json(slot.id, response).dump() << "\n";
    }
  }
  return static_cast<i64>(slots.size());
}

i64 run_serve(Engine& engine, std::istream& in, std::ostream& out) {
  TP_OBS_SCOPE("service.serve");
  std::string line;
  i64 line_no = 0;
  i64 served = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    obs::JsonValue id(line_no);
    obs::JsonValue reply;
    bool quit = false;
    try {
      const obs::JsonValue doc = obs::parse_json(line);
      if (is_admin_op(doc)) {
        if (const obs::JsonValue* client_id = doc.find("id"))
          id = *client_id;
        reply = handle_admin(engine, doc, id, &quit);
      } else {
        BatchRequest req = parse_request_doc(doc, line_no);
        id = std::move(req.id);
        reply = response_to_json(id, engine.run(req.request));
      }
    } catch (const Error& e) {
      id = salvage_request_id(line, line_no);
      reply = response_to_json(id, error_response(e.what()));
    }
    out << reply.dump() << "\n" << std::flush;
    ++served;
    if (quit) break;
  }
  return served;
}

}  // namespace tp::service
