#include "src/service/jsonl.h"

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp::service {

BatchRequest parse_request_line(std::string_view line, i64 line_no) {
  const obs::JsonValue doc = obs::parse_json(line);
  TP_REQUIRE(doc.is_object(), "request must be a JSON object");

  static const char* const kKnown[] = {"id", "op",     "d",     "k",
                                       "radices", "t", "router", "deadline_ms"};
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const char* k : kKnown)
      if (key == k) {
        known = true;
        break;
      }
    TP_REQUIRE(known, "unknown request field '" + key + "'");
  }

  BatchRequest out;
  if (const obs::JsonValue* id = doc.find("id"))
    out.id = *id;
  else
    out.id = obs::JsonValue(line_no);

  const QueryOp op =
      parse_op(doc.find("op") ? doc.find("op")->as_string() : "");
  const RouterKind router = parse_router_kind(
      doc.find("router") ? doc.find("router")->as_string() : "");
  const i32 t =
      doc.find("t") ? static_cast<i32>(doc.find("t")->as_int()) : 1;

  Radices radices;
  if (const obs::JsonValue* rad = doc.find("radices")) {
    TP_REQUIRE(rad->is_array(), "'radices' must be an array");
    TP_REQUIRE(!rad->items().empty() && rad->items().size() <= kMaxDims,
               "'radices' needs 1.." + std::to_string(kMaxDims) +
                   " entries");
    for (const obs::JsonValue& r : rad->items())
      radices.push_back(static_cast<i32>(r.as_int()));
    if (const obs::JsonValue* d = doc.find("d"))
      TP_REQUIRE(static_cast<std::size_t>(d->as_int()) == radices.size(),
                 "'d' contradicts the length of 'radices'");
    TP_REQUIRE(doc.find("k") == nullptr,
               "give either 'k' (with 'd') or 'radices', not both");
  } else {
    const obs::JsonValue* d = doc.find("d");
    const obs::JsonValue* k = doc.find("k");
    TP_REQUIRE(d != nullptr && k != nullptr,
               "request needs 'd' and 'k' (or 'radices')");
    const i64 dims = d->as_int();
    TP_REQUIRE(dims >= 1 && dims <= static_cast<i64>(kMaxDims),
               "'d' must be in [1, " + std::to_string(kMaxDims) + "]");
    for (i64 i = 0; i < dims; ++i)
      radices.push_back(static_cast<i32>(k->as_int()));
  }

  out.request.key = make_query_key(radices, t, router, op);
  if (const obs::JsonValue* deadline = doc.find("deadline_ms")) {
    const i64 ms = deadline->as_int();
    TP_REQUIRE(ms >= 0, "'deadline_ms' must be >= 0");
    out.request.deadline_ms = ms;
  }
  return out;
}

obs::JsonValue response_to_json(const obs::JsonValue& id,
                                const Response& response) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("id", id);
  out.set("ok", obs::JsonValue(response.ok));
  if (!response.ok) {
    out.set("error", obs::JsonValue(response.error));
    if (response.timeout) out.set("timeout", obs::JsonValue(true));
    return out;
  }

  const QueryResult& r = *response.result;
  out.set("op", obs::JsonValue(op_name(r.key.op())));
  out.set("key", obs::JsonValue(r.key.str()));
  out.set("d", obs::JsonValue(static_cast<i64>(r.key.dims())));
  out.set("k", obs::JsonValue(static_cast<i64>(r.key.radices[0])));
  out.set("t", obs::JsonValue(static_cast<i64>(r.key.t)));
  out.set("router", obs::JsonValue(router_name_short(r.key.router)));
  out.set("placement", obs::JsonValue(r.placement_name));
  out.set("processors", obs::JsonValue(r.placement_size));
  out.set("predicted_emax", obs::JsonValue(r.predicted_emax));
  out.set("prediction_exact", obs::JsonValue(r.prediction_exact));
  out.set("lower_bound", obs::JsonValue(r.lower_bound));
  if (r.key.measure) {
    out.set("measured_emax", obs::JsonValue(r.measured_emax));
    out.set("mean_load", obs::JsonValue(r.mean_load));
    out.set("loaded_links", obs::JsonValue(r.loaded_links));
  }
  if (r.key.bounds) {
    obs::JsonValue bounds = obs::JsonValue::array();
    for (const BoundValue& b : r.bound_table) {
      obs::JsonValue row = obs::JsonValue::object();
      row.set("name", obs::JsonValue(b.name));
      row.set("value", obs::JsonValue(b.value));
      row.set("applicable", obs::JsonValue(b.applicable));
      row.set("note", obs::JsonValue(b.note));
      bounds.push_back(std::move(row));
    }
    out.set("bounds", std::move(bounds));
    if (r.has_slab) {
      obs::JsonValue slab = obs::JsonValue::object();
      slab.set("value", obs::JsonValue(r.slab.value));
      slab.set("dim", obs::JsonValue(static_cast<i64>(r.slab.dim)));
      slab.set("lo", obs::JsonValue(static_cast<i64>(r.slab.lo)));
      slab.set("len", obs::JsonValue(static_cast<i64>(r.slab.len)));
      out.set("slab", std::move(slab));
    }
  }
  out.set("summary", obs::JsonValue(r.summary));
  return out;
}

namespace {

/// One batch slot: either a submitted ticket or an immediate (parse)
/// error response.
struct Slot {
  obs::JsonValue id;
  std::optional<Engine::Ticket> ticket;
  Response error;
};

Response error_response(const std::string& what) {
  Response r;
  r.ok = false;
  r.error = what;
  return r;
}

/// Best-effort id for a line that failed validation: echo its "id" field
/// when the line is at least well-formed JSON, else fall back to the line
/// number.
obs::JsonValue salvage_id(std::string_view line, i64 line_no) {
  try {
    const obs::JsonValue doc = obs::parse_json(line);
    if (doc.is_object())
      if (const obs::JsonValue* id = doc.find("id")) return *id;
  } catch (const Error&) {
  }
  return obs::JsonValue(line_no);
}

}  // namespace

i64 run_batch(Engine& engine, std::istream& in, std::ostream& out) {
  TP_OBS_SCOPE("service.batch");
  std::vector<Slot> slots;
  std::string line;
  i64 line_no = 0;
  {
    // Submit everything first: identical keys coalesce onto one
    // computation or hit the cache, independent of their distance in the
    // file.
    TP_OBS_SCOPE("service.batch_submit");
    while (std::getline(in, line)) {
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Slot slot;
      try {
        BatchRequest req = parse_request_line(line, line_no);
        slot.id = std::move(req.id);
        slot.ticket = engine.submit(req.request);
      } catch (const Error& e) {
        slot.id = salvage_id(line, line_no);
        slot.error = error_response(e.what());
      }
      slots.push_back(std::move(slot));
    }
  }
  {
    TP_OBS_SCOPE("service.batch_collect");
    for (Slot& slot : slots) {
      const Response response =
          slot.ticket ? slot.ticket->wait() : slot.error;
      out << response_to_json(slot.id, response).dump() << "\n";
    }
  }
  return static_cast<i64>(slots.size());
}

i64 run_serve(Engine& engine, std::istream& in, std::ostream& out) {
  TP_OBS_SCOPE("service.serve");
  std::string line;
  i64 line_no = 0;
  i64 served = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    obs::JsonValue id(line_no);
    Response response;
    try {
      BatchRequest req = parse_request_line(line, line_no);
      id = std::move(req.id);
      response = engine.run(req.request);
    } catch (const Error& e) {
      id = salvage_id(line, line_no);
      response = error_response(e.what());
    }
    out << response_to_json(id, response).dump() << "\n" << std::flush;
    ++served;
  }
  return served;
}

}  // namespace tp::service
