// JSONL batch/serve front-end for the query engine.
//
// One request per line, one response line per request, emitted in request
// order.  Request schema (unknown keys are rejected so typos fail loudly):
//
//   {"id": <any JSON value, echoed back>,      // optional; default: line no.
//    "op": "plan"|"bounds"|"load"|"analyze",   // optional; default "plan"
//    "d": 3, "k": 8,                           // uniform torus T_k^d
//    "radices": [4,6,8],                       // or explicit radices
//    "t": 1,                                   // optional multiplicity
//    "router": "odr"|"udr"|"adaptive",         // optional; default "odr"
//    "deadline_ms": 250}                       // optional deadline
//
// Response (success):
//
//   {"id":..., "ok":true, "op":"load", "key":"load d3 k8 t1 odr",
//    "d":3, "k":8, "t":1, "router":"odr",
//    "placement":"...", "processors":64,
//    "predicted_emax":32, "prediction_exact":true, "lower_bound":10.5,
//    "measured_emax":32, "mean_load":..., "loaded_links":...,   // load ops
//    "bounds":[{"name":...,"value":...,"applicable":...,"note":...},...],
//    "slab":{"value":...,"dim":...,"lo":...,"len":...},         // bound ops
//    "summary":"..."}
//
// Response (failure):   {"id":..., "ok":false, "error":"...",
//                        "timeout":true,       // only on deadline
//                        "overload":true}      // only on queue-full reject
//                                              // (TCP front-end, net/)
//
// Responses are a pure function of the request: no timing, thread-count,
// or cache-state fields — so batch output is byte-identical across worker
// pool widths and across cold/warm caches (golden-tested).  The client
// "id" (or its JSON dump for non-strings) doubles as the engine-level
// request id carried through submit/compute/fulfill for tracing and the
// slow-query log; lines without an id get an engine-generated one, which
// never appears in the response.
//
// Admin ops (statusz/metricsz/cachez/slowz/quitz — see admin.h) share
// the transport: both front-ends answer them inline on the reading
// thread, so they work mid-stream while every worker is busy, and quitz
// stops further reading while in-flight requests still complete.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "src/obs/json.h"
#include "src/service/engine.h"

namespace tp::service {

/// A parsed request line: the canonical request plus the id to echo.
struct BatchRequest {
  obs::JsonValue id;
  Request request;
};

/// Parses one JSONL request line.  `line_no` (1-based) becomes the id
/// when the request carries none.  Throws tp::Error on malformed JSON,
/// unknown keys, or missing dimensions.
BatchRequest parse_request_line(std::string_view line, i64 line_no);

/// Same, from an already parsed document (the front-ends parse each line
/// once to sniff admin ops, then reuse the document here).
BatchRequest parse_request_doc(const obs::JsonValue& doc, i64 line_no);

/// Renders a response line (deterministic member order, compact).
obs::JsonValue response_to_json(const obs::JsonValue& id,
                                const Response& response);

/// A bare failure Response carrying `what` (no timeout/overload flags).
/// Both front-ends and the TCP server use it for parse/validation errors.
Response error_response(const std::string& what);

/// Best-effort id for a line that failed validation: echoes its "id"
/// field when the line is at least well-formed JSON, else falls back to
/// the 1-based line number (the same default parse_request_doc assigns).
obs::JsonValue salvage_request_id(std::string_view line, i64 line_no);

/// Reads every request line from `in`, submits them all to the engine
/// (identical keys coalesce / hit the cache), and writes one response
/// line per request in input order.  Malformed lines produce in-place
/// error responses instead of aborting the batch.  Returns the number of
/// requests processed.
i64 run_batch(Engine& engine, std::istream& in, std::ostream& out);

/// Request/response loop for `serve --stdio`: answers each line as it
/// arrives and flushes after every response, so interactive and piped
/// clients both work.  Returns the number of requests served.
i64 run_serve(Engine& engine, std::istream& in, std::ostream& out);

}  // namespace tp::service
