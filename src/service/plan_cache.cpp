#include "src/service/plan_cache.h"

#include "src/obs/timer.h"
#include "src/util/error.h"

namespace tp::service {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  TP_REQUIRE(capacity >= 1, "cache capacity must be at least 1");
  TP_REQUIRE(shards >= 1, "cache needs at least one shard");
  shards = std::min(shards, capacity);
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const QueryResult> PlanCache::get(const QueryKey& key) {
  Shard& shard = *shards_[shard_of(key)];
  const MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void PlanCache::put(const QueryKey& key,
                    std::shared_ptr<const QueryResult> result) {
  TP_REQUIRE(result != nullptr, "cannot cache a null result");
  const i64 now_ns = obs::Stopwatch::now_ns();
  Shard& shard = *shards_[shard_of(key)];
  const MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    it->second->insert_ns = now_ns;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(result), now_ns});
  shard.index.emplace(key, shard.lru.begin());
}

PlanCache::Stats PlanCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += static_cast<i64>(shard->lru.size());
  }
  return total;
}

std::vector<PlanCache::Stats> PlanCache::shard_stats() const {
  std::vector<Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    Stats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.evictions = shard->evictions;
    s.entries = static_cast<i64>(shard->lru.size());
    out.push_back(s);
  }
  return out;
}

obs::HistogramData PlanCache::age_histogram() const {
  obs::HistogramData ages(obs::duration_bucket_bounds());
  const i64 now_ns = obs::Stopwatch::now_ns();
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    for (const Entry& e : shard->lru)
      ages.record((now_ns - e.insert_ns) / 1000);
  }
  return ages;
}

std::size_t PlanCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

std::vector<QueryKey> PlanCache::shard_keys_mru(std::size_t shard_idx) const {
  TP_REQUIRE(shard_idx < shards_.size(), "shard index out of range");
  const Shard& shard = *shards_[shard_idx];
  const MutexLock lock(shard.mu);
  std::vector<QueryKey> keys;
  keys.reserve(shard.lru.size());
  for (const Entry& e : shard.lru) keys.push_back(e.key);
  return keys;
}

std::vector<std::pair<QueryKey, std::shared_ptr<const QueryResult>>>
PlanCache::entries_mru() const {
  std::vector<std::pair<QueryKey, std::shared_ptr<const QueryResult>>> out;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    for (const Entry& e : shard->lru) out.emplace_back(e.key, e.result);
  }
  return out;
}

}  // namespace tp::service
