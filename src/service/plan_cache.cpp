#include "src/service/plan_cache.h"

#include "src/util/error.h"

namespace tp::service {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  TP_REQUIRE(capacity >= 1, "cache capacity must be at least 1");
  TP_REQUIRE(shards >= 1, "cache needs at least one shard");
  shards = std::min(shards, capacity);
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const QueryResult> PlanCache::get(const QueryKey& key) {
  Shard& shard = *shards_[shard_of(key)];
  const MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void PlanCache::put(const QueryKey& key,
                    std::shared_ptr<const QueryResult> result) {
  TP_REQUIRE(result != nullptr, "cannot cache a null result");
  Shard& shard = *shards_[shard_of(key)];
  const MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, std::move(result));
  shard.index.emplace(key, shard.lru.begin());
}

PlanCache::Stats PlanCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += static_cast<i64>(shard->lru.size());
  }
  return total;
}

std::size_t PlanCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

std::vector<QueryKey> PlanCache::shard_keys_mru(std::size_t shard_idx) const {
  TP_REQUIRE(shard_idx < shards_.size(), "shard index out of range");
  const Shard& shard = *shards_[shard_idx];
  const MutexLock lock(shard.mu);
  std::vector<QueryKey> keys;
  keys.reserve(shard.lru.size());
  for (const auto& [key, value] : shard.lru) keys.push_back(key);
  return keys;
}

}  // namespace tp::service
