// Sharded LRU cache of computed query results.
//
// The cache maps QueryKey -> shared_ptr<const QueryResult>.  Results are
// immutable, so a hit hands back the exact object a miss produced —
// responses rendered from a hit are byte-identical to responses rendered
// from the original computation.
//
// Sharding: the key's stable hash selects one of `shards` independent
// LRU lists, each behind its own mutex, so concurrent engine workers
// touching different keys do not serialize on one lock.  Eviction is
// strictly per-shard LRU and therefore deterministic for a given sequence
// of get/put calls (tests pin shards = 1 to observe the global order).

#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/registry.h"
#include "src/service/query.h"
#include "src/util/thread_annotations.h"

namespace tp::service {

class PlanCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    i64 entries = 0;
  };

  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry).
  explicit PlanCache(std::size_t capacity, std::size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached result and promotes it to most-recently-used;
  /// nullptr on miss.
  std::shared_ptr<const QueryResult> get(const QueryKey& key);

  /// Inserts (or refreshes) an entry, evicting the shard's least-recently
  /// used entry when the shard is full.  Re-putting an existing key
  /// replaces the value and promotes it.
  void put(const QueryKey& key, std::shared_ptr<const QueryResult> result);

  /// Aggregated over all shards.
  Stats stats() const;

  /// One Stats per shard, indexed by shard id — the {"op":"cachez"}
  /// admin view (docs/service.md).
  std::vector<Stats> shard_stats() const;

  /// Ages (µs since insert, duration buckets) of every resident entry.
  /// Refreshing a key via put() resets its age; a get() promotion does
  /// not — age measures data staleness, not access recency.
  obs::HistogramData age_histogram() const;

  std::size_t per_shard_capacity() const { return per_shard_capacity_; }

  std::size_t size() const;
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(const QueryKey& key) const {
    return static_cast<std::size_t>(key.hash()) % shards_.size();
  }

  /// Keys of one shard, most-recently-used first (eviction happens from
  /// the back).  For tests and introspection.
  std::vector<QueryKey> shard_keys_mru(std::size_t shard) const;

  /// Every resident entry, shard by shard, each shard most-recently-used
  /// first.  Does not promote and does not count as hits — this is the
  /// snapshot path (src/service/snapshot.h), not a lookup.
  std::vector<std::pair<QueryKey, std::shared_ptr<const QueryResult>>>
  entries_mru() const;

 private:
  struct Entry {
    QueryKey key;
    std::shared_ptr<const QueryResult> result;
    i64 insert_ns = 0;  ///< steady clock at insert/refresh (for ages)
  };

  struct Shard {
    mutable Mutex mu;
    // front = most recently used; eviction pops the back.
    std::list<Entry> lru TP_GUARDED_BY(mu);
    std::unordered_map<QueryKey, decltype(lru)::iterator, QueryKeyHash> index
        TP_GUARDED_BY(mu);
    i64 hits TP_GUARDED_BY(mu) = 0;
    i64 misses TP_GUARDED_BY(mu) = 0;
    i64 evictions TP_GUARDED_BY(mu) = 0;
  };

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tp::service
