#include "src/service/query.h"

#include <algorithm>

#include "src/placement/placement.h"
#include "src/util/error.h"

namespace tp::service {

const char* op_name(QueryOp op) {
  switch (op) {
    case QueryOp::Plan:
      return "plan";
    case QueryOp::Bounds:
      return "bounds";
    case QueryOp::Load:
      return "load";
    case QueryOp::Analyze:
      return "analyze";
  }
  TP_ASSERT(false, "unknown query op");
}

QueryOp parse_op(const std::string& name) {
  if (name == "plan" || name.empty()) return QueryOp::Plan;
  if (name == "bounds") return QueryOp::Bounds;
  if (name == "load") return QueryOp::Load;
  if (name == "analyze") return QueryOp::Analyze;
  throw Error("unknown op '" + name + "' (plan|bounds|load|analyze)");
}

const char* router_name_short(RouterKind kind) {
  switch (kind) {
    case RouterKind::Odr:
      return "odr";
    case RouterKind::Udr:
      return "udr";
    case RouterKind::Adaptive:
      return "adaptive";
  }
  TP_ASSERT(false, "unknown router kind");
}

RouterKind parse_router_kind(const std::string& name) {
  if (name == "odr" || name.empty()) return RouterKind::Odr;
  if (name == "udr") return RouterKind::Udr;
  if (name == "adaptive") return RouterKind::Adaptive;
  throw Error("unknown router '" + name + "' (odr|udr|adaptive)");
}

QueryOp QueryKey::op() const {
  if (measure && bounds) return QueryOp::Analyze;
  if (measure) return QueryOp::Load;
  if (bounds) return QueryOp::Bounds;
  return QueryOp::Plan;
}

u64 QueryKey::hash() const {
  // FNV-1a over the normalized fields; stable across runs and platforms.
  u64 h = 14695981039346656037ull;
  const auto mix = [&h](u64 v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<u64>(radices.size()));
  for (const i32 r : radices) mix(static_cast<u64>(r));
  mix(static_cast<u64>(t));
  mix(static_cast<u64>(router));
  mix((measure ? 1u : 0u) | (bounds ? 2u : 0u));
  return h;
}

bool QueryKey::operator==(const QueryKey& o) const {
  return radices == o.radices && t == o.t && router == o.router &&
         measure == o.measure && bounds == o.bounds;
}

std::string QueryKey::str() const {
  std::string s(op_name(op()));
  s += " d" + std::to_string(dims());
  const bool uniform =
      std::all_of(radices.begin(), radices.end(),
                  [&](i32 r) { return r == radices[0]; });
  if (uniform && !radices.empty()) {
    s += " k" + std::to_string(radices[0]);
  } else {
    s += " k";
    for (std::size_t i = 0; i < radices.size(); ++i) {
      if (i > 0) s += "x";
      s += std::to_string(radices[i]);
    }
  }
  s += " t" + std::to_string(t);
  s += " ";
  s += router_name_short(router);
  return s;
}

QueryKey make_query_key(const Radices& radices, i32 t, RouterKind router,
                        QueryOp op) {
  QueryKey key;
  key.radices = radices;
  std::sort(key.radices.begin(), key.radices.end());
  key.t = t;
  key.router = router;
  key.measure = op == QueryOp::Load || op == QueryOp::Analyze;
  key.bounds = op == QueryOp::Bounds || op == QueryOp::Analyze;
  return key;
}

QueryResult compute_query(const QueryKey& key, i32 measure_threads,
                          bool use_table) {
  TP_REQUIRE(!key.radices.empty(), "query needs at least one dimension");
  const Torus torus(key.radices);

  QueryResult r;
  r.key = key;

  PlacementPlan plan = plan_placement(torus, key.t, key.router);
  r.placement_name = plan.placement.name();
  r.router_name = plan.router->name();
  r.summary = plan.summary;
  r.placement_size = plan.placement.size();
  r.predicted_emax = plan.predicted_emax;
  r.prediction_exact = plan.prediction_exact;
  r.lower_bound = plan.lower_bound;

  if (key.measure) {
    auto loads = std::make_shared<LoadMap>(measure_loads(
        torus, plan.placement, key.router, measure_threads, use_table));
    r.measured_emax = loads->max_load();
    r.mean_load = loads->mean_load();
    r.loaded_links = loads->num_loaded_edges();
    r.loads = std::move(loads);
  }

  if (key.bounds) {
    r.bound_table = all_bounds(torus, plan.placement);
    if (plan.placement.size() >= 2) {
      r.slab = best_slab_bound(torus, plan.placement);
      r.has_slab = true;
    }
  }
  return r;
}

}  // namespace tp::service
