// Canonicalized design queries and their immutable results.
//
// The paper's deliverable is a closed-form answer to "given (d, k, t),
// what is the optimal placement and its exact E_max?" — a request/response
// shape.  A QueryKey is the normalized form of one such request: radices
// sorted ascending, multiplicity, router kind, and which outputs the
// caller wants (exact loads, the full bound table).  Two requests that
// normalize to the same key are the same computation, which is what makes
// caching and request coalescing sound.
//
// QueryResult is the complete, immutable answer: everything any front-end
// (JSONL batch/serve, CLI sweep/analyze, benches) needs to render a
// response without recomputing.  Results are shared by const pointer
// between the cache and all coalesced waiters; render paths must treat
// them as frozen.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/bounds/lower_bounds.h"
#include "src/bounds/slab_search.h"
#include "src/core/planner.h"
#include "src/load/load_map.h"

namespace tp::service {

/// What a query asks for.  Load implies the plan; Analyze is Load plus
/// the full bound table (the CLI `analyze` view).
enum class QueryOp {
  Plan,     ///< placement + router + predicted E_max + best lower bound
  Bounds,   ///< Plan plus every lower bound and the slab search
  Load,     ///< Plan plus the exact load map (measured E_max)
  Analyze,  ///< Load plus Bounds
};

const char* op_name(QueryOp op);
QueryOp parse_op(const std::string& name);
const char* router_name_short(RouterKind kind);
RouterKind parse_router_kind(const std::string& name);

/// Normalized request identity.  Construct through make_query_key so the
/// radices are always sorted; equality and hashing are field-wise.
struct QueryKey {
  Radices radices;                     ///< sorted ascending
  i32 t = 1;                           ///< placement multiplicity
  RouterKind router = RouterKind::Odr;
  bool measure = false;                ///< compute the exact load map
  bool bounds = false;                 ///< compute the full bound table

  i32 dims() const { return static_cast<i32>(radices.size()); }
  QueryOp op() const;

  /// Stable FNV-1a hash of the normalized fields — identical across runs
  /// and processes (cache sharding and lookup both key on it).
  u64 hash() const;

  bool operator==(const QueryKey& o) const;

  /// Canonical text form, e.g. "load d3 k8 t1 udr".
  std::string str() const;
};

/// Canonicalizes a request into its key (sorts the radices).  Radix and
/// multiplicity *validity* is checked at compute time, not here: invalid
/// requests still need a well-defined key to carry their error response.
QueryKey make_query_key(const Radices& radices, i32 t, RouterKind router,
                        QueryOp op);

/// Hasher for unordered containers keyed on QueryKey.
struct QueryKeyHash {
  std::size_t operator()(const QueryKey& k) const {
    return static_cast<std::size_t>(k.hash());
  }
};

/// The immutable answer to one query.
struct QueryResult {
  QueryKey key;

  // Plan (always present).
  std::string placement_name;
  std::string router_name;
  std::string summary;
  i64 placement_size = 0;
  double predicted_emax = 0.0;
  bool prediction_exact = false;
  double lower_bound = 0.0;

  // Exact loads (present iff key.measure).
  double measured_emax = 0.0;
  double mean_load = 0.0;
  i64 loaded_links = 0;
  std::shared_ptr<const LoadMap> loads;

  // Bound table (present iff key.bounds).
  std::vector<BoundValue> bound_table;
  bool has_slab = false;
  SlabBound slab;
};

/// Executes a query synchronously — the engine's work function, also
/// usable directly for a poolless one-shot.  `measure_threads` is the
/// analyzer width passed to the parallel load analyzers (1 = serial);
/// `use_table` routes ODR load measurement through the precompiled
/// next-hop table analyzer (same results, different cost profile — see
/// measure_loads), so it is an engine configuration, not part of the key.
/// Throws tp::Error on invalid parameters (non-uniform radices, t out of
/// [1, k], ...); the engine converts the throw into an error response.
QueryResult compute_query(const QueryKey& key, i32 measure_threads = 1,
                          bool use_table = false);

}  // namespace tp::service
