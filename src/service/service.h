// Umbrella header for the query-service subsystem.
//
//   QueryKey / QueryResult  canonical requests + immutable answers (query.h)
//   compute_query           the synchronous work function        (query.h)
//   PlanCache               sharded LRU over results         (plan_cache.h)
//   Engine                  worker pool + coalescing + deadlines (engine.h)
//   RequestSpan/SlowQueryLog per-request telemetry            (telemetry.h)
//   is_admin_op/handle_admin statusz/metricsz/cachez/slowz/quitz (admin.h)
//   run_batch / run_serve   JSONL front-ends                      (jsonl.h)
//   save/load_cache_snapshot crash-safe PlanCache persistence (snapshot.h)
//   CheckpointJournal       completed-cell journal for long runs
//                                                            (checkpoint.h)
//
// The service turns the paper's closed-form deliverable — "given
// (d, k, t), what is the optimal placement and its exact E_max?" — into a
// request/response system: canonicalize the request, answer it once, and
// share that answer with every client that asks again.  See
// docs/service.md for the architecture and the JSONL wire schema.

#pragma once

#include "src/service/admin.h"
#include "src/service/checkpoint.h"
#include "src/service/engine.h"
#include "src/service/jsonl.h"
#include "src/service/plan_cache.h"
#include "src/service/query.h"
#include "src/service/snapshot.h"
#include "src/service/telemetry.h"
