#include "src/service/snapshot.h"

#include <algorithm>
#include <utility>

#include "src/torus/torus.h"
#include "src/util/build_info.h"
#include "src/util/checked_io.h"
#include "src/util/error.h"

namespace tp::service {
namespace {

constexpr std::string_view kSnapshotMagic = "TPSNAP01";

// QueryKey field codecs.  The decoded key is re-hashed and compared
// against the stored hash, so a record whose key bytes were damaged (but
// whose CRC was regenerated, as corruption tests do deliberately) is
// still refused.
constexpr i32 kMaxSnapshotDims = 8;

void encode_query_key(util::ByteBuffer& buf, const QueryKey& key) {
  buf.put_u8(static_cast<std::uint8_t>(key.dims()));
  for (i32 r : key.radices) buf.put_i32(r);
  buf.put_i32(key.t);
  buf.put_u8(static_cast<std::uint8_t>(key.router));
  buf.put_u8(key.measure ? 1 : 0);
  buf.put_u8(key.bounds ? 1 : 0);
}

QueryKey decode_query_key(util::ByteView& view) {
  QueryKey key;
  const i32 ndims = static_cast<i32>(view.get_u8());
  TP_REQUIRE(ndims >= 1 && ndims <= kMaxSnapshotDims,
             "snapshot entry: dimension count out of range");
  for (i32 d = 0; d < ndims; ++d) key.radices.push_back(view.get_i32());
  TP_REQUIRE(std::is_sorted(key.radices.begin(), key.radices.end()),
             "snapshot entry: radices not in canonical (sorted) order");
  key.t = view.get_i32();
  const std::uint8_t router = view.get_u8();
  TP_REQUIRE(router <= 2, "snapshot entry: unknown router kind");
  key.router = static_cast<RouterKind>(router);
  key.measure = view.get_u8() != 0;
  key.bounds = view.get_u8() != 0;
  return key;
}

}  // namespace

std::string snapshot_build_key() {
  const auto& info = build_info();
  return std::string(info.version) + " " + info.git_describe;
}

std::string encode_query_result(const QueryResult& result) {
  util::ByteBuffer buf;
  buf.put_u64(result.key.hash());
  encode_query_key(buf, result.key);

  buf.put_string(result.placement_name);
  buf.put_string(result.router_name);
  buf.put_string(result.summary);
  buf.put_i64(result.placement_size);
  buf.put_f64(result.predicted_emax);
  buf.put_u8(result.prediction_exact ? 1 : 0);
  buf.put_f64(result.lower_bound);

  buf.put_f64(result.measured_emax);
  buf.put_f64(result.mean_load);
  buf.put_i64(result.loaded_links);
  buf.put_u8(result.loads ? 1 : 0);
  if (result.loads) {
    const auto& raw = result.loads->raw();
    buf.put_u64(static_cast<u64>(raw.size()));
    for (double w : raw) buf.put_f64(w);
  }

  buf.put_u32(static_cast<std::uint32_t>(result.bound_table.size()));
  for (const auto& b : result.bound_table) {
    buf.put_string(b.name);
    buf.put_f64(b.value);
    buf.put_u8(b.applicable ? 1 : 0);
    buf.put_string(b.note);
  }
  buf.put_u8(result.has_slab ? 1 : 0);
  if (result.has_slab) {
    buf.put_f64(result.slab.value);
    buf.put_i32(result.slab.dim);
    buf.put_i32(result.slab.lo);
    buf.put_i32(result.slab.len);
    buf.put_i64(result.slab.procs_in);
    buf.put_i64(result.slab.boundary);
  }
  return buf.data();
}

QueryResult decode_query_result(std::string_view payload) {
  util::ByteView view(payload);
  QueryResult result;

  const u64 stored_hash = view.get_u64();
  result.key = decode_query_key(view);
  TP_REQUIRE(result.key.hash() == stored_hash,
             "snapshot entry: key hash mismatch (damaged key fields)");

  result.placement_name = view.get_string();
  result.router_name = view.get_string();
  result.summary = view.get_string();
  result.placement_size = view.get_i64();
  result.predicted_emax = view.get_f64();
  result.prediction_exact = view.get_u8() != 0;
  result.lower_bound = view.get_f64();

  result.measured_emax = view.get_f64();
  result.mean_load = view.get_f64();
  result.loaded_links = view.get_i64();
  const bool has_loads = view.get_u8() != 0;
  if (has_loads) {
    const Torus torus(result.key.radices);
    const u64 n = view.get_u64();
    TP_REQUIRE(n == static_cast<u64>(torus.num_directed_edges()),
               "snapshot entry: load map size disagrees with the torus");
    auto loads = std::make_shared<LoadMap>(torus);
    for (EdgeId e = 0; e < static_cast<EdgeId>(n); ++e)
      loads->add(e, view.get_f64());
    result.loads = std::move(loads);
  }

  const std::uint32_t nbounds = view.get_u32();
  TP_REQUIRE(nbounds <= 64, "snapshot entry: implausible bound table size");
  result.bound_table.reserve(nbounds);
  for (std::uint32_t i = 0; i < nbounds; ++i) {
    BoundValue b;
    b.name = view.get_string();
    b.value = view.get_f64();
    b.applicable = view.get_u8() != 0;
    b.note = view.get_string();
    result.bound_table.push_back(std::move(b));
  }
  result.has_slab = view.get_u8() != 0;
  if (result.has_slab) {
    result.slab.value = view.get_f64();
    result.slab.dim = view.get_i32();
    result.slab.lo = view.get_i32();
    result.slab.len = view.get_i32();
    result.slab.procs_in = view.get_i64();
    result.slab.boundary = view.get_i64();
  }
  TP_REQUIRE(view.empty(), "snapshot entry: trailing bytes after result");
  return result;
}

SnapshotWriteInfo save_cache_snapshot(const PlanCache& cache,
                                      const std::string& path,
                                      const SnapshotIdentity& identity) {
  // One consistent pass over the shards: shard order, MRU-first within
  // each shard; the loader re-inserts in reverse so relative recency
  // survives a round trip.
  const auto entries = cache.entries_mru();

  util::CheckedFileWriter writer(path, kSnapshotMagic);
  util::ByteBuffer header;
  header.put_u32(identity.format_version);
  header.put_string(identity.build_key.empty() ? snapshot_build_key()
                                               : identity.build_key);
  header.put_u64(static_cast<u64>(entries.size()));
  writer.append(header.data());
  for (const auto& entry : entries)
    writer.append(encode_query_result(*entry.second));
  writer.commit();

  SnapshotWriteInfo info;
  info.entries = static_cast<i64>(entries.size());
  info.bytes = writer.bytes_written();
  return info;
}

SnapshotLoadInfo load_cache_snapshot(PlanCache& cache,
                                     const std::string& path) {
  SnapshotLoadInfo info;
  std::vector<std::shared_ptr<const QueryResult>> entries;
  try {
    const std::vector<std::string> records =
        util::read_checked_file(path, kSnapshotMagic);
    TP_REQUIRE(!records.empty(), "snapshot has no header record");

    util::ByteView header(records[0]);
    const std::uint32_t version = header.get_u32();
    TP_REQUIRE(version == kSnapshotFormatVersion,
               "snapshot format version " + std::to_string(version) +
                   " != supported " + std::to_string(kSnapshotFormatVersion));
    const std::string build_key = header.get_string();
    TP_REQUIRE(build_key == snapshot_build_key(),
               "snapshot build key \"" + build_key +
                   "\" != this binary's \"" + snapshot_build_key() + "\"");
    const u64 count = header.get_u64();
    TP_REQUIRE(header.empty(), "snapshot header has trailing bytes");
    TP_REQUIRE(count == records.size() - 1,
               "snapshot header count disagrees with record count");

    // Decode (and thereby verify) everything before touching the cache:
    // a bad entry anywhere must leave the cache cold, not half-warm.
    entries.reserve(records.size() - 1);
    for (std::size_t i = 1; i < records.size(); ++i)
      entries.push_back(
          std::make_shared<QueryResult>(decode_query_result(records[i])));
  } catch (const Error& e) {
    info.error = e.what();
    return info;
  } catch (const std::exception& e) {
    info.error = e.what();
    return info;
  }

  // Saved order is shard-by-shard MRU-first; inserting in reverse makes
  // the last put the most recent, restoring relative recency per shard.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    cache.put((*it)->key, *it);
  info.ok = true;
  info.entries = static_cast<i64>(entries.size());
  return info;
}

}  // namespace tp::service
