// Versioned binary snapshots of the PlanCache.
//
// A snapshot makes the service's expensive-but-immutable working set
// survive a restart: save_cache_snapshot() serializes every resident
// (QueryKey, QueryResult) pair into one checked file
// (src/util/checked_io.h — CRC-framed records, whole-file CRC, atomic
// temp+fsync+rename replacement) and load_cache_snapshot() warms a cache
// back up from it.
//
// File layout (record payloads inside the checked container):
//   record 0   header: format version (u32), build key (string),
//              entry count (u64)
//   record i   one cache entry: the QueryKey's stable hash (u64,
//              cross-checked against the hash recomputed from the decoded
//              key), the key fields, and the full QueryResult — doubles
//              as raw IEEE-754 bits, so a loaded result is bit-identical
//              to the computed one and a warmed cache serves responses
//              byte-identical to cold computation.
//
// Compatibility: the build key is "<version> <git describe>" — the same
// provenance `torusplace version` prints.  A snapshot written by a
// different build is refused (results could legitimately differ across
// code changes), as is a different format version.
//
// Failure model: load_cache_snapshot NEVER throws and NEVER partially
// populates.  The whole file is parsed and verified first; only then are
// entries inserted.  Any corruption — truncation, bit-flip, version or
// build-key mismatch, a scrambled length field — yields {ok = false,
// error = "<what>"} and an untouched (cold) cache.  save_cache_snapshot
// throws tp::Error on I/O failure (callers report and carry on serving).
//
// Entry order: shards are walked in index order, each most-recently-used
// first, and the loader re-inserts least-recent first — so a cache
// reloaded with the same shape preserves the saved eviction order.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/service/plan_cache.h"
#include "src/service/query.h"

namespace tp::service {

/// Bumped whenever the record layout changes; old files are refused.
constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// The compatibility key baked into every snapshot: "<version> <git>".
/// `torusplace version` prints the same fields (docs/durability.md).
std::string snapshot_build_key();

/// Identity stamped into a snapshot header.  Overridable only so tests
/// can fabricate version/build mismatches.
struct SnapshotIdentity {
  std::uint32_t format_version = kSnapshotFormatVersion;
  std::string build_key;  ///< empty = snapshot_build_key()
};

struct SnapshotWriteInfo {
  i64 entries = 0;
  i64 bytes = 0;
};

struct SnapshotLoadInfo {
  bool ok = false;
  i64 entries = 0;     ///< entries inserted (0 unless ok)
  std::string error;   ///< structured reason when !ok
};

/// Serializes every resident entry of `cache` into `path`, atomically
/// replacing any previous snapshot.  Throws tp::Error on I/O failure; on
/// throw the previous snapshot (if any) is intact.
SnapshotWriteInfo save_cache_snapshot(const PlanCache& cache,
                                      const std::string& path,
                                      const SnapshotIdentity& identity = {});

/// Loads `path` into `cache`.  All-or-nothing and never throws: on any
/// corruption or mismatch the cache is left untouched and the returned
/// info carries the reason.
SnapshotLoadInfo load_cache_snapshot(PlanCache& cache,
                                     const std::string& path);

/// One cache entry's record payload — shared with the checkpoint journals
/// (a sweep cell is exactly one QueryResult).  decode throws tp::Error on
/// any malformed input, including a stored-vs-recomputed key hash
/// mismatch.
std::string encode_query_result(const QueryResult& result);
QueryResult decode_query_result(std::string_view payload);

}  // namespace tp::service
