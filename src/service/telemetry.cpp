#include "src/service/telemetry.h"

#include <algorithm>

#include "src/util/error.h"

namespace tp::service {

const char* span_outcome_name(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::Hit:
      return "hit";
    case SpanOutcome::Computed:
      return "computed";
    case SpanOutcome::Coalesced:
      return "coalesced";
    case SpanOutcome::Timeout:
      return "timeout";
    case SpanOutcome::Error:
      return "error";
  }
  TP_ASSERT(false, "unknown span outcome");
}

SlowQueryLog::SlowQueryLog(std::size_t capacity) : capacity_(capacity) {
  TP_REQUIRE(capacity >= 1, "slow-query log needs capacity >= 1");
  slow_.reserve(capacity);
}

void SlowQueryLog::record(const RequestSpan& span) {
  // Slowest ring: cheap reject first (the common case on a warm cache),
  // then a short sorted insert — the ring is small by construction.
  if (slow_.size() < capacity_ || span.total_us > slow_.back().total_us) {
    const auto pos = std::upper_bound(
        slow_.begin(), slow_.end(), span,
        [](const RequestSpan& a, const RequestSpan& b) {
          return a.total_us > b.total_us;
        });
    slow_.insert(pos, span);
    if (slow_.size() > capacity_) slow_.pop_back();
  }

  if (span.outcome == SpanOutcome::Timeout ||
      span.outcome == SpanOutcome::Error) {
    failures_.push_back(span);
    if (failures_.size() > capacity_) failures_.pop_front();
  }
}

std::vector<RequestSpan> SlowQueryLog::slowest() const { return slow_; }

std::vector<RequestSpan> SlowQueryLog::recent_failures() const {
  return std::vector<RequestSpan>(failures_.rbegin(), failures_.rend());
}

}  // namespace tp::service
