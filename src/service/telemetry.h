// Per-request span records and the bounded slow-query log.
//
// A RequestSpan is the engine's account of one request's life: who asked
// (the stable request id), what they asked for (the canonical key), how
// it ended, and where the time went (queue wait vs compute), plus the
// coalesce fan-in and the deadline margin.  The engine materializes one
// span per fulfilled request and feeds it three ways: into its local
// histograms (published to the registry by publish_stats), into the
// Chrome tracer as a complete event, and into the SlowQueryLog below.
//
// SlowQueryLog keeps two bounded rings: the N slowest requests seen so
// far (by total latency, so a pathological key sticks around long after
// the burst that exposed it) and the N most recent failures (timeouts
// and errors, newest first, so "what just broke" is answerable).  Both
// are queryable live via {"op":"slowz"} and dumped on serve shutdown.
//
// Neither type is thread-safe: the engine guards its instance with the
// same mutex as its counters (see Engine::stats_mu_).

#pragma once

#include <deque>
#include <string>
#include <vector>

#include "src/util/math.h"

namespace tp::service {

/// How one request ended, from the requester's point of view.
enum class SpanOutcome {
  Hit,        ///< answered from the plan cache at submit
  Computed,   ///< first waiter of a fresh computation
  Coalesced,  ///< attached to an in-flight computation
  Timeout,    ///< structured deadline response (or fulfilled past it)
  Error,      ///< computation failed (invalid parameters)
};

const char* span_outcome_name(SpanOutcome o);

/// One request's timing breakdown.
struct RequestSpan {
  std::string request_id;  ///< client-supplied or engine-generated id
  std::string key;         ///< canonical query key text
  SpanOutcome outcome = SpanOutcome::Hit;
  i64 total_us = 0;    ///< submit -> fulfill
  i64 queue_us = 0;    ///< submit -> worker dequeue (0 for cache hits)
  i64 compute_us = 0;  ///< compute_query wall time (0 for cache hits)
  i64 fanin = 1;       ///< waiters fulfilled by the same computation
  i64 shard = 0;       ///< plan-cache shard of the key
  bool has_deadline = false;
  i64 deadline_margin_us = 0;  ///< deadline minus fulfill time; negative
                               ///< means the deadline was missed
};

class SlowQueryLog {
 public:
  /// Each ring holds up to `capacity` spans.
  explicit SlowQueryLog(std::size_t capacity = 16);

  void record(const RequestSpan& span);

  /// The slowest spans seen, slowest first.
  std::vector<RequestSpan> slowest() const;

  /// Timeout/error spans, newest first.
  std::vector<RequestSpan> recent_failures() const;

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<RequestSpan> slow_;     ///< sorted descending by total_us
  std::deque<RequestSpan> failures_;  ///< oldest .. newest
};

}  // namespace tp::service
