#include "src/simulate/adaptive_sim.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>

#include "src/obs/obs.h"
#include "src/routing/fault_router.h"
#include "src/util/error.h"
#include "src/util/small_vec.h"

namespace tp {

AdaptiveNetworkSim::AdaptiveNetworkSim(const Torus& torus,
                                       AdaptivePolicy policy,
                                       const EdgeSet* faults,
                                       obs::LinkProbe* probe,
                                       RecoveryConfig recovery)
    : torus_(torus),
      policy_(policy),
      faults_(torus),
      probe_(probe),
      recovery_(recovery) {
  if (faults != nullptr) {
    has_faults_ = true;
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      if (faults->contains(e)) faults_.insert(e);
  }
  if (probe_ != nullptr)
    TP_REQUIRE(probe_->num_links() == torus.num_directed_edges(),
               "link probe sized for a different torus");
  if (recovery_.enabled()) {
    TP_REQUIRE(recovery_.reroute_router != nullptr,
               "a dynamic fault schedule needs recovery.reroute_router");
    TP_REQUIRE(recovery_.max_retries >= 0, "max_retries must be non-negative");
    TP_REQUIRE(recovery_.backoff_base >= 1, "backoff_base must be >= 1");
  }
}

SimMetrics AdaptiveNetworkSim::run(const std::vector<Demand>& demands,
                                   u64 seed, i64 max_cycles) {
  struct MsgState {
    NodeId node = 0;
    NodeId src = 0;  ///< original source (retransmission fallback)
    NodeId dst = 0;
    i64 inject_cycle = 0;
    i64 attempts = 0;  ///< backoff waits consumed so far
  };

  SimMetrics metrics;
  metrics.link_forwards.assign(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);

  const bool dynamic = recovery_.enabled();
  std::optional<FaultClock> clock;
  std::optional<FaultTolerantRouter> oracle;
  std::multimap<i64, MsgState> retry_queue;
  if (dynamic) {
    clock.emplace(torus_, *recovery_.schedule,
                  has_faults_ ? &faults_ : nullptr);
    oracle.emplace(*recovery_.reroute_router, clock->dead(),
                   clock->epoch_ref());
  }

  std::vector<const Demand*> by_inject;
  by_inject.reserve(demands.size());
  i64 total_work = 0;
  i64 last_inject = 0;
  for (const Demand& d : demands) {
    TP_REQUIRE(torus_.valid_node(d.src) && torus_.valid_node(d.dst),
               "demand node out of range");
    TP_REQUIRE(d.inject_cycle >= 0, "negative injection cycle");
    by_inject.push_back(&d);
    total_work += torus_.lee_distance(d.src, d.dst);
    last_inject = std::max(last_inject, d.inject_cycle);
  }
  std::stable_sort(by_inject.begin(), by_inject.end(),
                   [](const Demand* a, const Demand* b) {
                     return a->inject_cycle < b->inject_cycle;
                   });
  if (max_cycles == 0) {
    max_cycles = total_work + last_inject + 2;
    if (dynamic) {
      const i64 cap = recovery_.backoff_base
                      << std::min<i64>(recovery_.max_retries, 20);
      max_cycles += recovery_.schedule->last_cycle() +
                    2 * (recovery_.max_retries + 1) * cap + 2;
    }
  }

  std::vector<std::deque<MsgState>> queue(
      static_cast<std::size_t>(torus_.num_directed_edges()));
  std::vector<EdgeId> active;
  std::vector<bool> is_active(
      static_cast<std::size_t>(torus_.num_directed_edges()), false);
  Xoshiro256SS rng(seed);

  // Minimal outgoing links from `node` toward `dst`, skipping dead links
  // (static faults, plus the live dynamic set when a schedule runs).
  SmallVec<i64, 2 * kMaxDims> candidates;
  auto link_alive = [&](EdgeId e) {
    if (has_faults_ && faults_.contains(e)) return false;
    if (dynamic && clock->is_dead(e)) return false;
    return true;
  };
  auto minimal_links = [&](NodeId node, NodeId dst) {
    candidates.clear();
    for (i32 dim = 0; dim < torus_.dims(); ++dim) {
      const i32 a = torus_.coord_of(node, dim);
      const i32 b = torus_.coord_of(dst, dim);
      const Way way = torus_.shortest_way(dim, a, b);
      if (way == Way::None) continue;
      if (way != Way::Neg) {
        const EdgeId e = torus_.edge_id(node, dim, Dir::Pos);
        if (link_alive(e)) candidates.push_back(e);
      }
      if (way != Way::Pos) {
        const EdgeId e = torus_.edge_id(node, dim, Dir::Neg);
        if (link_alive(e)) candidates.push_back(e);
      }
    }
  };

  obs::Tracer& tr = obs::tracer();
  const bool trace_on = tr.enabled();

  i64 cycle = 0;
  i64 in_flight = 0;
  // Joins the queue the policy picks among the live minimal links; false
  // when every minimal link is currently dead.
  auto try_route = [&](MsgState s) -> bool {
    minimal_links(s.node, s.dst);
    if (dynamic && clock->dead_wires() > 0 && !candidates.empty()) {
      // Reachability lookahead: only enter links from whose head the
      // oracle still sees a fault-free path, so a message never wanders
      // into a region the live faults cut off from its destination.
      std::size_t keep = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const EdgeId e = static_cast<EdgeId>(candidates[i]);
        const NodeId head = torus_.link(e).head;
        if (head == s.dst || oracle->num_paths(torus_, head, s.dst) > 0)
          candidates[keep++] = candidates[i];
      }
      candidates.resize(keep);
    }
    if (candidates.empty()) return false;
    EdgeId pick = static_cast<EdgeId>(candidates[0]);
    if (policy_ == AdaptivePolicy::RandomMinimal) {
      pick = static_cast<EdgeId>(
          candidates[static_cast<std::size_t>(rng.below(candidates.size()))]);
    } else {
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const EdgeId e = static_cast<EdgeId>(candidates[i]);
        if (queue[static_cast<std::size_t>(e)].size() <
            queue[static_cast<std::size_t>(pick)].size())
          pick = e;
      }
    }
    queue[static_cast<std::size_t>(pick)].push_back(s);
    const i64 depth =
        static_cast<i64>(queue[static_cast<std::size_t>(pick)].size());
    metrics.max_queue_depth = std::max(metrics.max_queue_depth, depth);
    if (probe_ != nullptr) probe_->on_queue_depth(pick, cycle, depth);
    if (!is_active[static_cast<std::size_t>(pick)]) {
      is_active[static_cast<std::size_t>(pick)] = true;
      active.push_back(pick);
    }
    return true;
  };

  // Every minimal link is dead right now.  Statically that is terminal
  // (unroutable); under a dynamic schedule the message waits out a backoff
  // at its node and retries until the budget is spent.
  auto handle_blocked = [&](MsgState s) {
    if (!dynamic) {
      ++metrics.unroutable;
      --in_flight;
      return;
    }
    if (s.attempts >= recovery_.max_retries) {
      ++metrics.dropped;
      --in_flight;
      if (trace_on) tr.instant("sim.drop", "fault");
      return;
    }
    const i64 wait = recovery_.backoff_base
                     << std::min<i64>(s.attempts, 20);
    ++s.attempts;
    ++metrics.retries;
    if (trace_on) tr.instant("sim.retry", "fault");
    retry_queue.emplace(cycle + wait, s);
  };

  std::size_t next_inject = 0;
  double latency_sum = 0.0;
  std::vector<MsgState> arrivals;

  constexpr i64 kCounterWindow = 64;
  i64 window_forwards = 0;

  auto outstanding = [&] {
    return next_inject < by_inject.size() || in_flight > 0;
  };

  while (outstanding()) {
    TP_REQUIRE(cycle <= max_cycles, "simulation exceeded cycle budget");
    if (dynamic && clock->advance_to(cycle) && trace_on) {
      tr.instant("sim.fault_event", "fault");
      tr.counter("sim.dead_wires", clock->dead_wires(), "sim");
    }
    // Wake messages whose backoff expired.
    while (dynamic && !retry_queue.empty() &&
           retry_queue.begin()->first <= cycle) {
      MsgState s = retry_queue.begin()->second;
      retry_queue.erase(retry_queue.begin());
      if (try_route(s)) {
        ++metrics.rerouted;
        if (trace_on) tr.instant("sim.reroute", "fault");
        continue;
      }
      // Cut off where it sits but the pair still connected end-to-end:
      // retransmit from the original source.
      if (s.node != s.src &&
          oracle->num_paths(torus_, s.src, s.dst) > 0) {
        s.node = s.src;
        if (try_route(s)) {
          ++metrics.rerouted;
          if (trace_on) tr.instant("sim.reroute", "fault");
          continue;
        }
      }
      handle_blocked(s);
    }
    while (next_inject < by_inject.size() &&
           by_inject[next_inject]->inject_cycle == cycle) {
      const Demand* d = by_inject[next_inject++];
      ++metrics.injected;
      if (d->src == d->dst) {
        ++metrics.delivered;
        continue;
      }
      ++in_flight;
      MsgState s{d->src, d->src, d->dst, d->inject_cycle, 0};
      if (!try_route(s)) handle_blocked(s);
    }

    arrivals.clear();
    for (std::size_t ai = 0; ai < active.size();) {
      const EdgeId e = active[ai];
      auto& q = queue[static_cast<std::size_t>(e)];
      if (q.empty()) {
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      if (dynamic && clock->is_dead(e)) {
        // The wire died with a backlog: the node immediately re-routes
        // each queued message over its other minimal links (native
        // adaptivity), backing off only when all of them are dead too.
        while (!q.empty()) {
          MsgState s = q.front();
          q.pop_front();
          if (!try_route(s)) handle_blocked(s);
        }
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      MsgState s = q.front();
      q.pop_front();
      ++metrics.link_forwards[static_cast<std::size_t>(e)];
      if (probe_ != nullptr) {
        probe_->on_forward(e, cycle);
        // One message crosses per cycle; the rest of the backlog waits.
        if (!q.empty())
          probe_->on_stall(e, cycle, static_cast<i64>(q.size()));
      }
      ++window_forwards;
      s.node = torus_.link(e).head;
      if (s.node == s.dst) {
        ++metrics.delivered;
        --in_flight;
        latency_sum += static_cast<double>(cycle + 1 - s.inject_cycle);
        metrics.cycles = std::max(metrics.cycles, cycle + 1);
      } else {
        arrivals.push_back(s);
      }
      ++ai;
    }
    for (const MsgState& s : arrivals)
      if (!try_route(s)) handle_blocked(s);
    if (trace_on && cycle % kCounterWindow == kCounterWindow - 1) {
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
      tr.counter("sim.active_links", static_cast<i64>(active.size()), "sim");
      if (dynamic)
        tr.counter("sim.retries_pending",
                   static_cast<i64>(retry_queue.size()), "sim");
      window_forwards = 0;
    }
    ++cycle;
    // Nothing queued anywhere: jump to the next injection or retry wake
    // instead of spinning through backoff waits.
    if (dynamic && active.empty()) {
      i64 next = std::numeric_limits<i64>::max();
      if (next_inject < by_inject.size())
        next = by_inject[next_inject]->inject_cycle;
      if (!retry_queue.empty())
        next = std::min(next, retry_queue.begin()->first);
      if (next != std::numeric_limits<i64>::max() && next > cycle)
        cycle = next;
    }
  }
  if (trace_on) {
    if (window_forwards > 0)
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
    tr.counter("sim.active_links", 0, "sim");
  }

  metrics.max_link_forwards =
      metrics.link_forwards.empty()
          ? 0
          : *std::max_element(metrics.link_forwards.begin(),
                              metrics.link_forwards.end());
  metrics.mean_latency =
      metrics.delivered > 0
          ? latency_sum / static_cast<double>(metrics.delivered)
          : 0.0;
  if (dynamic) {
    metrics.fail_events = clock->fails_applied();
    metrics.repair_events = clock->repairs_applied();
  }
  return metrics;
}

}  // namespace tp
