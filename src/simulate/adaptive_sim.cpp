#include "src/simulate/adaptive_sim.h"

#include <algorithm>
#include <deque>

#include "src/obs/obs.h"
#include "src/util/error.h"
#include "src/util/small_vec.h"

namespace tp {

AdaptiveNetworkSim::AdaptiveNetworkSim(const Torus& torus,
                                       AdaptivePolicy policy,
                                       const EdgeSet* faults,
                                       obs::LinkProbe* probe)
    : torus_(torus), policy_(policy), faults_(torus), probe_(probe) {
  if (faults != nullptr) {
    has_faults_ = true;
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      if (faults->contains(e)) faults_.insert(e);
  }
  if (probe_ != nullptr)
    TP_REQUIRE(probe_->num_links() == torus.num_directed_edges(),
               "link probe sized for a different torus");
}

SimMetrics AdaptiveNetworkSim::run(const std::vector<Demand>& demands,
                                   u64 seed, i64 max_cycles) {
  struct MsgState {
    NodeId node = 0;
    NodeId dst = 0;
    i64 inject_cycle = 0;
  };

  SimMetrics metrics;
  metrics.link_forwards.assign(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);

  std::vector<const Demand*> by_inject;
  by_inject.reserve(demands.size());
  i64 total_work = 0;
  i64 last_inject = 0;
  for (const Demand& d : demands) {
    TP_REQUIRE(torus_.valid_node(d.src) && torus_.valid_node(d.dst),
               "demand node out of range");
    TP_REQUIRE(d.inject_cycle >= 0, "negative injection cycle");
    by_inject.push_back(&d);
    total_work += torus_.lee_distance(d.src, d.dst);
    last_inject = std::max(last_inject, d.inject_cycle);
  }
  std::stable_sort(by_inject.begin(), by_inject.end(),
                   [](const Demand* a, const Demand* b) {
                     return a->inject_cycle < b->inject_cycle;
                   });
  if (max_cycles == 0) max_cycles = total_work + last_inject + 2;

  std::vector<std::deque<MsgState>> queue(
      static_cast<std::size_t>(torus_.num_directed_edges()));
  std::vector<EdgeId> active;
  std::vector<bool> is_active(
      static_cast<std::size_t>(torus_.num_directed_edges()), false);
  Xoshiro256SS rng(seed);

  // Minimal outgoing links from `node` toward `dst`, skipping faults.
  SmallVec<i64, 2 * kMaxDims> candidates;
  auto minimal_links = [&](NodeId node, NodeId dst) {
    candidates.clear();
    for (i32 dim = 0; dim < torus_.dims(); ++dim) {
      const i32 a = torus_.coord_of(node, dim);
      const i32 b = torus_.coord_of(dst, dim);
      const Way way = torus_.shortest_way(dim, a, b);
      if (way == Way::None) continue;
      if (way != Way::Neg) {
        const EdgeId e = torus_.edge_id(node, dim, Dir::Pos);
        if (!has_faults_ || !faults_.contains(e)) candidates.push_back(e);
      }
      if (way != Way::Pos) {
        const EdgeId e = torus_.edge_id(node, dim, Dir::Neg);
        if (!has_faults_ || !faults_.contains(e)) candidates.push_back(e);
      }
    }
  };

  i64 cycle = 0;
  auto route_or_drop = [&](MsgState s) {
    if (s.node == s.dst) return;  // handled by caller
    minimal_links(s.node, s.dst);
    if (candidates.empty()) {
      ++metrics.unroutable;
      return;
    }
    EdgeId pick = static_cast<EdgeId>(candidates[0]);
    if (policy_ == AdaptivePolicy::RandomMinimal) {
      pick = static_cast<EdgeId>(
          candidates[static_cast<std::size_t>(rng.below(candidates.size()))]);
    } else {
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const EdgeId e = static_cast<EdgeId>(candidates[i]);
        if (queue[static_cast<std::size_t>(e)].size() <
            queue[static_cast<std::size_t>(pick)].size())
          pick = e;
      }
    }
    queue[static_cast<std::size_t>(pick)].push_back(s);
    const i64 depth =
        static_cast<i64>(queue[static_cast<std::size_t>(pick)].size());
    metrics.max_queue_depth = std::max(metrics.max_queue_depth, depth);
    if (probe_ != nullptr) probe_->on_queue_depth(pick, cycle, depth);
    if (!is_active[static_cast<std::size_t>(pick)]) {
      is_active[static_cast<std::size_t>(pick)] = true;
      active.push_back(pick);
    }
  };

  std::size_t next_inject = 0;
  i64 in_flight = 0;
  double latency_sum = 0.0;
  std::vector<MsgState> arrivals;

  obs::Tracer& tr = obs::tracer();
  const bool trace_on = tr.enabled();
  constexpr i64 kCounterWindow = 64;
  i64 window_forwards = 0;

  auto outstanding = [&] {
    return next_inject < by_inject.size() || in_flight > 0;
  };

  while (outstanding()) {
    TP_REQUIRE(cycle <= max_cycles, "simulation exceeded cycle budget");
    while (next_inject < by_inject.size() &&
           by_inject[next_inject]->inject_cycle == cycle) {
      const Demand* d = by_inject[next_inject++];
      ++metrics.injected;
      if (d->src == d->dst) {
        ++metrics.delivered;
        continue;
      }
      const i64 before_unroutable = metrics.unroutable;
      route_or_drop(MsgState{d->src, d->dst, d->inject_cycle});
      if (metrics.unroutable == before_unroutable) ++in_flight;
    }

    arrivals.clear();
    for (std::size_t ai = 0; ai < active.size();) {
      const EdgeId e = active[ai];
      auto& q = queue[static_cast<std::size_t>(e)];
      if (q.empty()) {
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      MsgState s = q.front();
      q.pop_front();
      ++metrics.link_forwards[static_cast<std::size_t>(e)];
      if (probe_ != nullptr) {
        probe_->on_forward(e, cycle);
        // One message crosses per cycle; the rest of the backlog waits.
        if (!q.empty())
          probe_->on_stall(e, cycle, static_cast<i64>(q.size()));
      }
      ++window_forwards;
      s.node = torus_.link(e).head;
      if (s.node == s.dst) {
        ++metrics.delivered;
        --in_flight;
        latency_sum += static_cast<double>(cycle + 1 - s.inject_cycle);
        metrics.cycles = std::max(metrics.cycles, cycle + 1);
      } else {
        arrivals.push_back(s);
      }
      ++ai;
    }
    for (const MsgState& s : arrivals) {
      const i64 before_unroutable = metrics.unroutable;
      route_or_drop(s);
      if (metrics.unroutable != before_unroutable) --in_flight;
    }
    if (trace_on && cycle % kCounterWindow == kCounterWindow - 1) {
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
      tr.counter("sim.active_links", static_cast<i64>(active.size()), "sim");
      window_forwards = 0;
    }
    ++cycle;
  }
  if (trace_on) {
    if (window_forwards > 0)
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
    tr.counter("sim.active_links", 0, "sim");
  }

  metrics.max_link_forwards =
      metrics.link_forwards.empty()
          ? 0
          : *std::max_element(metrics.link_forwards.begin(),
                              metrics.link_forwards.end());
  metrics.mean_latency =
      metrics.delivered > 0
          ? latency_sum / static_cast<double>(metrics.delivered)
          : 0.0;
  return metrics;
}

}  // namespace tp
