// Hop-by-hop minimal-adaptive simulation.
//
// NetworkSim replays source-routed paths (Definition 3's model).  This
// simulator instead decides each hop when the message reaches a node: it
// considers every minimal direction (any dimension with remaining cyclic
// distance; both directions on a tie) and joins the queue the policy
// picks.  Because every hop reduces the Lee distance, delivery is
// guaranteed; because decisions see queue state, congestion is routed
// around — the natural "more adaptive than UDR" end of the design space
// the paper's fault-tolerance discussion points toward.

#pragma once

#include <vector>

#include "src/obs/linkprobe.h"
#include "src/simulate/metrics.h"
#include "src/torus/graph.h"
#include "src/torus/torus.h"
#include "src/util/prng.h"

namespace tp {

/// How a node chooses among the allowed minimal outgoing links.
enum class AdaptivePolicy {
  RandomMinimal,  ///< uniform among minimal links (oblivious)
  LeastQueue,     ///< shortest queue, ties by link id (congestion-aware)
};

/// A source/destination demand for the adaptive simulator.
struct Demand {
  NodeId src = 0;
  NodeId dst = 0;
  i64 inject_cycle = 0;
};

class AdaptiveNetworkSim {
 public:
  /// `probe` (optional, not owned) receives per-link telemetry; null = off
  /// at the cost of one predicted null check per site (obs/linkprobe.h).
  AdaptiveNetworkSim(const Torus& torus, AdaptivePolicy policy,
                     const EdgeSet* faults = nullptr,
                     obs::LinkProbe* probe = nullptr);

  /// Runs all demands to delivery.  Faulted links are never chosen; a
  /// message whose every minimal link is faulted at some node counts as
  /// unroutable and is dropped there (minimal-adaptive routing does not
  /// misroute around faults).
  SimMetrics run(const std::vector<Demand>& demands, u64 seed = 1,
                 i64 max_cycles = 0);

 private:
  const Torus& torus_;
  AdaptivePolicy policy_;
  EdgeSet faults_;
  bool has_faults_ = false;
  obs::LinkProbe* probe_ = nullptr;
};

}  // namespace tp
