// Hop-by-hop minimal-adaptive simulation.
//
// NetworkSim replays source-routed paths (Definition 3's model).  This
// simulator instead decides each hop when the message reaches a node: it
// considers every minimal direction (any dimension with remaining cyclic
// distance; both directions on a tie) and joins the queue the policy
// picks.  Because every hop reduces the Lee distance, delivery is
// guaranteed; because decisions see queue state, congestion is routed
// around — the natural "more adaptive than UDR" end of the design space
// the paper's fault-tolerance discussion points toward.

#pragma once

#include <vector>

#include "src/obs/linkprobe.h"
#include "src/simulate/fault_schedule.h"
#include "src/simulate/metrics.h"
#include "src/torus/graph.h"
#include "src/torus/torus.h"
#include "src/util/prng.h"

namespace tp {

/// How a node chooses among the allowed minimal outgoing links.
enum class AdaptivePolicy {
  RandomMinimal,  ///< uniform among minimal links (oblivious)
  LeastQueue,     ///< shortest queue, ties by link id (congestion-aware)
};

/// A source/destination demand for the adaptive simulator.
struct Demand {
  NodeId src = 0;
  NodeId dst = 0;
  i64 inject_cycle = 0;
};

class AdaptiveNetworkSim {
 public:
  /// `probe` (optional, not owned) receives per-link telemetry; null = off
  /// at the cost of one predicted null check per site (obs/linkprobe.h).
  /// `recovery` attaches a dynamic FaultSchedule: wires then fail and
  /// repair mid-run.  recovery.reroute_router (required; normally the
  /// AdaptiveMinimal router) serves as the reachability oracle: while any
  /// wire is dead, hop choices are restricted to links from whose head a
  /// fault-free path still exists, so messages never wander into dead-end
  /// regions.  A message finding no viable link waits out an exponential
  /// backoff (bounded by max_retries) and tries again — falling back to a
  /// retransmission from its source when its current node is cut off but
  /// the pair is still connected — instead of being dropped on the spot.
  /// With a null/empty schedule the dynamic machinery is off and results
  /// match the fault-free run bit-for-bit.
  AdaptiveNetworkSim(const Torus& torus, AdaptivePolicy policy,
                     const EdgeSet* faults = nullptr,
                     obs::LinkProbe* probe = nullptr,
                     RecoveryConfig recovery = {});

  /// Runs all demands to delivery.  Faulted links are never chosen; with
  /// no dynamic schedule a message whose every minimal link is faulted at
  /// some node counts as unroutable and is dropped there (minimal-adaptive
  /// routing does not misroute around faults); with one, it retries under
  /// backoff and counts as dropped only once the budget is spent.
  SimMetrics run(const std::vector<Demand>& demands, u64 seed = 1,
                 i64 max_cycles = 0);

 private:
  const Torus& torus_;
  AdaptivePolicy policy_;
  EdgeSet faults_;
  bool has_faults_ = false;
  obs::LinkProbe* probe_ = nullptr;
  RecoveryConfig recovery_;
};

}  // namespace tp
