#include "src/simulate/fault.h"

#include <string>
#include <vector>

#include "src/simulate/traffic.h"
#include "src/util/error.h"
#include "src/util/parallel.h"
#include "src/util/prng.h"

namespace tp {

EdgeSet sample_wire_faults(const Torus& torus, i64 count, u64 seed) {
  TP_REQUIRE(count >= 0, "fault count must be non-negative, got " +
                             std::to_string(count));
  TP_REQUIRE(count <= torus.num_undirected_edges(),
             "cannot fail " + std::to_string(count) +
                 " wires: the torus has only " +
                 std::to_string(torus.num_undirected_edges()) + " wires");
  // Collect canonical wire ids, then partially shuffle.
  std::vector<EdgeId> wires;
  wires.reserve(static_cast<std::size_t>(torus.num_undirected_edges()));
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    if (torus.undirected_id(e) == e) wires.push_back(e);

  Xoshiro256SS rng(seed);
  EdgeSet faults(torus);
  for (i64 i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.below(
                       static_cast<u64>(wires.size() - static_cast<std::size_t>(i))));
    std::swap(wires[static_cast<std::size_t>(i)], wires[j]);
    const EdgeId e = wires[static_cast<std::size_t>(i)];
    faults.insert(e);
    faults.insert(torus.reverse_edge(e));
  }
  return faults;
}

i64 count_unroutable_pairs(const Torus& torus, const Placement& p,
                           const Router& router, const EdgeSet& faults,
                           i32 threads) {
  p.check_torus(torus);
  TP_REQUIRE(threads >= 1, "need at least one thread");
  const std::vector<NodeId>& nodes = p.nodes();
  const i64 n = p.size();

  // The ordered pairs decompose perfectly over a flat [0, n*n) index
  // space; each worker tallies its own block and the reduction below adds
  // the per-worker counts in worker order, so the result is exact and
  // identical for every thread count.
  const i32 workers =
      static_cast<i32>(std::min<i64>(threads, std::max<i64>(n, 1)));
  std::vector<i64> tally(static_cast<std::size_t>(workers), 0);
  parallel_for_blocks(n * n, workers, [&](i32 worker, i64 begin, i64 end) {
    i64 bad = 0;
    for (i64 i = begin; i < end; ++i) {
      const NodeId src = nodes[static_cast<std::size_t>(i / n)];
      const NodeId dst = nodes[static_cast<std::size_t>(i % n)];
      if (src == dst) continue;
      if (fault_free_paths(torus, router, src, dst, faults).empty()) ++bad;
    }
    tally[static_cast<std::size_t>(worker)] = bad;
  });

  i64 unroutable = 0;
  for (i64 bad : tally) unroutable += bad;
  return unroutable;
}

double routable_pair_fraction(const Torus& torus, const Placement& p,
                              const Router& router, const EdgeSet& faults,
                              i32 threads) {
  const i64 pairs = p.size() * (p.size() - 1);
  if (pairs == 0) return 1.0;
  const i64 bad = count_unroutable_pairs(torus, p, router, faults, threads);
  return 1.0 - static_cast<double>(bad) / static_cast<double>(pairs);
}

}  // namespace tp
