#include "src/simulate/fault.h"

#include <vector>

#include "src/simulate/traffic.h"
#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

EdgeSet sample_wire_faults(const Torus& torus, i64 count, u64 seed) {
  TP_REQUIRE(count >= 0 && count <= torus.num_undirected_edges(),
             "fault count exceeds wire count");
  // Collect canonical wire ids, then partially shuffle.
  std::vector<EdgeId> wires;
  wires.reserve(static_cast<std::size_t>(torus.num_undirected_edges()));
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    if (torus.undirected_id(e) == e) wires.push_back(e);

  Xoshiro256SS rng(seed);
  EdgeSet faults(torus);
  for (i64 i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.below(
                       static_cast<u64>(wires.size() - static_cast<std::size_t>(i))));
    std::swap(wires[static_cast<std::size_t>(i)], wires[j]);
    const EdgeId e = wires[static_cast<std::size_t>(i)];
    faults.insert(e);
    faults.insert(torus.reverse_edge(e));
  }
  return faults;
}

i64 count_unroutable_pairs(const Torus& torus, const Placement& p,
                           const Router& router, const EdgeSet& faults) {
  p.check_torus(torus);
  i64 unroutable = 0;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      if (fault_free_paths(torus, router, src, dst, faults).empty())
        ++unroutable;
    }
  return unroutable;
}

double routable_pair_fraction(const Torus& torus, const Placement& p,
                              const Router& router, const EdgeSet& faults) {
  const i64 pairs = p.size() * (p.size() - 1);
  if (pairs == 0) return 1.0;
  const i64 bad = count_unroutable_pairs(torus, p, router, faults);
  return 1.0 - static_cast<double>(bad) / static_cast<double>(pairs);
}

}  // namespace tp
