// Link-fault injection (the fault-tolerance scenario of Section 7).
//
// Faults are modeled at the directed-link level; a "wire" failure takes
// out both directions, which is how sample_wire_faults generates them.

#pragma once

#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/torus/graph.h"

namespace tp {

/// Fails `count` distinct wires (both directed links of each) chosen
/// uniformly at random.  Deterministic given `seed`.
EdgeSet sample_wire_faults(const Torus& torus, i64 count, u64 seed);

/// Fraction of ordered processor pairs that still have at least one
/// routing path avoiding every failed link, under the given router.
/// 1.0 means the placement remains fully connected for that algorithm.
/// The pair scan runs on `threads` workers (util/parallel.h); the result
/// is exactly identical for every thread count.
double routable_pair_fraction(const Torus& torus, const Placement& p,
                              const Router& router, const EdgeSet& faults,
                              i32 threads = 1);

/// Ordered pairs (p, q) whose entire path set is faulted.  Parallel over
/// `threads` workers with a deterministic block partition and per-worker
/// tallies, so any thread count returns the same count.
i64 count_unroutable_pairs(const Torus& torus, const Placement& p,
                           const Router& router, const EdgeSet& faults,
                           i32 threads = 1);

}  // namespace tp
