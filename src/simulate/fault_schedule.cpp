#include "src/simulate/fault_schedule.h"

#include <algorithm>

#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

namespace {

void check_wire(const Torus& torus, EdgeId wire) {
  TP_REQUIRE(wire >= 0 && wire < torus.num_directed_edges(),
             "fault event wire " + std::to_string(wire) +
                 " out of range (torus has " +
                 std::to_string(torus.num_directed_edges()) +
                 " directed links)");
  TP_REQUIRE(torus.undirected_id(wire) == wire,
             "fault event wire " + std::to_string(wire) +
                 " is not a canonical undirected id");
}

/// Canonical wire ids in ascending order (one per undirected link).
std::vector<EdgeId> all_wires(const Torus& torus) {
  std::vector<EdgeId> wires;
  wires.reserve(static_cast<std::size_t>(torus.num_undirected_edges()));
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    if (torus.undirected_id(e) == e) wires.push_back(e);
  return wires;
}

}  // namespace

FaultSchedule FaultSchedule::from_events(const Torus& torus,
                                         std::vector<FaultEvent> events) {
  for (const FaultEvent& ev : events) {
    TP_REQUIRE(ev.cycle >= 0, "fault event cycle must be non-negative");
    check_wire(torus, ev.wire);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  return schedule;
}

FaultSchedule FaultSchedule::single_wire(const Torus& torus, EdgeId wire,
                                         i64 fail_cycle) {
  return from_events(torus, {{fail_cycle, torus.undirected_id(wire),
                              FaultEventKind::Fail}});
}

FaultSchedule FaultSchedule::bernoulli(const Torus& torus, double fail_prob,
                                       double repair_prob, i64 horizon,
                                       u64 seed) {
  TP_REQUIRE(fail_prob >= 0.0 && fail_prob <= 1.0,
             "fail probability must be in [0, 1]");
  TP_REQUIRE(repair_prob >= 0.0 && repair_prob <= 1.0,
             "repair probability must be in [0, 1]");
  TP_REQUIRE(horizon >= 0, "horizon must be non-negative");
  const std::vector<EdgeId> wires = all_wires(torus);
  std::vector<bool> dead(wires.size(), false);
  Xoshiro256SS rng(seed);
  std::vector<FaultEvent> events;
  for (i64 cycle = 0; cycle < horizon; ++cycle) {
    for (std::size_t w = 0; w < wires.size(); ++w) {
      // One draw per (cycle, wire) regardless of state keeps the stream
      // alignment independent of the evolving fault pattern.
      const double draw = rng.uniform();
      if (!dead[w]) {
        if (draw < fail_prob) {
          dead[w] = true;
          events.push_back({cycle, wires[w], FaultEventKind::Fail});
        }
      } else if (draw < repair_prob) {
        dead[w] = false;
        events.push_back({cycle, wires[w], FaultEventKind::Repair});
      }
    }
  }
  FaultSchedule schedule;
  schedule.events_ = std::move(events);  // generated in cycle order
  return schedule;
}

FaultSchedule FaultSchedule::periodic(const Torus& torus, i64 mtbf, i64 mttr,
                                      i64 horizon, u64 seed) {
  TP_REQUIRE(mtbf >= 1, "MTBF must be >= 1 cycle");
  TP_REQUIRE(mttr >= 1, "MTTR must be >= 1 cycle");
  TP_REQUIRE(horizon >= 0, "horizon must be non-negative");
  const std::vector<EdgeId> wires = all_wires(torus);
  const i64 period = mtbf + mttr;
  Xoshiro256SS rng(seed);
  std::vector<FaultEvent> events;
  for (const EdgeId wire : wires) {
    // First failure lands uniformly inside one period, so the fleet's
    // outages are spread rather than synchronized.
    const i64 phase = static_cast<i64>(rng.below(static_cast<u64>(period)));
    for (i64 fail = phase; fail < horizon; fail += period) {
      events.push_back({fail, wire, FaultEventKind::Fail});
      const i64 repair = fail + mttr;
      if (repair < horizon)
        events.push_back({repair, wire, FaultEventKind::Repair});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  return schedule;
}

i64 FaultSchedule::num_failures() const {
  i64 n = 0;
  for (const FaultEvent& ev : events_)
    if (ev.kind == FaultEventKind::Fail) ++n;
  return n;
}

i64 FaultSchedule::num_repairs() const {
  return static_cast<i64>(events_.size()) - num_failures();
}

FaultClock::FaultClock(const Torus& torus, const FaultSchedule& schedule,
                       const EdgeSet* initial)
    : torus_(torus), schedule_(schedule), dead_(torus) {
  if (initial != nullptr) {
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      if (initial->contains(e)) {
        dead_.insert(e);
        if (torus.undirected_id(e) == e) ++dead_wires_;
      }
  }
}

bool FaultClock::advance_to(i64 cycle) {
  const auto& events = schedule_.events();
  bool changed = false;
  while (next_ < events.size() && events[next_].cycle <= cycle) {
    const FaultEvent& ev = events[next_++];
    const EdgeId fwd = ev.wire;
    const EdgeId rev = torus_.reverse_edge(fwd);
    if (ev.kind == FaultEventKind::Fail) {
      if (!dead_.contains(fwd)) {
        dead_.insert(fwd);
        dead_.insert(rev);
        ++dead_wires_;
        ++fails_;
        changed = true;
      }
    } else if (dead_.contains(fwd)) {
      dead_.erase(fwd);
      dead_.erase(rev);
      --dead_wires_;
      ++repairs_;
      changed = true;
    }
  }
  if (changed) ++epoch_;
  return changed;
}

i64 FaultClock::next_event_cycle() const {
  const auto& events = schedule_.events();
  return next_ < events.size() ? events[next_].cycle : -1;
}

}  // namespace tp
