// Dynamic fault injection: a deterministic timeline of wire failures and
// repairs, replayed by the simulators.
//
// The static fault model (fault.h / sample_wire_faults) freezes a fault
// set before routing begins — the regime of Section 7's connectivity
// argument.  Real networks fail *during* operation: links die and recover
// mid-exchange, and messages in flight must be retried or rerouted.  A
// FaultSchedule is a seeded, reproducible sequence of
// {cycle, wire, FAIL|REPAIR} events over the torus's wires (a wire is an
// undirected link; failing it takes out both directed links, exactly as
// sample_wire_faults does).  A FaultClock replays a schedule against a
// live EdgeSet as simulated time advances, bumping an epoch counter on
// every change so path caches (FaultTolerantRouter) know to invalidate.
//
// Generators:
//   * bernoulli — every live wire fails with probability fail_prob per
//     cycle; every dead wire repairs with probability repair_prob per
//     cycle (memoryless MTBF/MTTR).
//   * periodic  — fixed MTBF/MTTR: each wire fails every mtbf + mttr
//     cycles and stays dead for mttr, with a per-wire random phase.
//   * single_wire — one permanent failure, the unit of the per-wire
//     criticality analysis (analysis/resilience.h).
// All generators are deterministic given (torus, parameters, seed).

#pragma once

#include <vector>

#include "src/torus/graph.h"
#include "src/torus/torus.h"

namespace tp {

class Router;  // routing/router.h; referenced by RecoveryConfig

enum class FaultEventKind { Fail, Repair };

/// One timeline entry.  `wire` is a canonical undirected link id
/// (Torus::undirected_id(wire) == wire); applying the event affects both
/// directed links of the wire.
struct FaultEvent {
  i64 cycle = 0;
  EdgeId wire = 0;
  FaultEventKind kind = FaultEventKind::Fail;
};

/// An immutable, cycle-sorted fault timeline.
class FaultSchedule {
 public:
  /// The empty schedule: no dynamic faults.  Simulators treat a null or
  /// empty schedule as "dynamic machinery off" and reproduce their
  /// fault-free behaviour bit-for-bit.
  FaultSchedule() = default;

  /// Validates and stably sorts arbitrary events by cycle (events at the
  /// same cycle apply in the given order).  Throws tp::Error on a
  /// non-canonical wire id or negative cycle.
  static FaultSchedule from_events(const Torus& torus,
                                   std::vector<FaultEvent> events);

  /// One wire fails at `fail_cycle` and never recovers.
  static FaultSchedule single_wire(const Torus& torus, EdgeId wire,
                                   i64 fail_cycle = 0);

  /// Bernoulli-per-cycle failures over [0, horizon): each live wire fails
  /// with probability `fail_prob` per cycle, each dead wire repairs with
  /// probability `repair_prob` per cycle.  Deterministic given `seed`.
  static FaultSchedule bernoulli(const Torus& torus, double fail_prob,
                                 double repair_prob, i64 horizon, u64 seed);

  /// Fixed MTBF/MTTR over [0, horizon): each wire cycles through
  /// `mtbf` cycles up, `mttr` cycles down, starting at a per-wire random
  /// phase drawn from `seed`.
  static FaultSchedule periodic(const Torus& torus, i64 mtbf, i64 mttr,
                                i64 horizon, u64 seed);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  /// Cycle of the last event (0 for the empty schedule).
  i64 last_cycle() const { return events_.empty() ? 0 : events_.back().cycle; }
  i64 num_failures() const;
  i64 num_repairs() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Replays a FaultSchedule against a live fault set as time advances.
/// The schedule (and the optional initial fault set) must outlive the
/// clock.  Redundant events (failing a dead wire, repairing a live one)
/// are no-ops and do not bump the epoch.
class FaultClock {
 public:
  /// `initial` seeds the live set with pre-existing (static) faults; its
  /// links count as dead but are not wires the clock ever repairs unless
  /// the schedule says so.
  FaultClock(const Torus& torus, const FaultSchedule& schedule,
             const EdgeSet* initial = nullptr);

  /// Applies every event with event.cycle <= `cycle`.  Returns true if
  /// the live set changed (and the epoch advanced).
  bool advance_to(i64 cycle);

  const EdgeSet& dead() const { return dead_; }
  bool is_dead(EdgeId e) const { return dead_.contains(e); }

  /// Monotone counter, bumped once per advance_to() call that changed the
  /// set.  FaultTolerantRouter watches it to invalidate cached paths.
  u64 epoch() const { return epoch_; }
  /// Stable reference for binding a FaultTolerantRouter to this clock.
  const u64& epoch_ref() const { return epoch_; }

  i64 dead_wires() const { return dead_wires_; }
  i64 fails_applied() const { return fails_; }
  i64 repairs_applied() const { return repairs_; }

  /// Cycle of the next unapplied event, or -1 when the schedule is
  /// exhausted (lets simulators fast-forward idle stretches).
  i64 next_event_cycle() const;

 private:
  const Torus& torus_;
  const FaultSchedule& schedule_;
  EdgeSet dead_;
  std::size_t next_ = 0;
  u64 epoch_ = 0;
  i64 dead_wires_ = 0;
  i64 fails_ = 0;
  i64 repairs_ = 0;
};

/// Shared recovery knobs for the simulators' dynamic-fault mode.  The
/// schedule pointer is not owned; null (or an empty schedule) disables the
/// dynamic machinery entirely — the hot loops then run their fault-free
/// code paths bit-for-bit.
struct RecoveryConfig {
  const FaultSchedule* schedule = nullptr;

  /// Router used to find replacement paths when a message's next hop
  /// crosses a dead wire (source-routed simulators only; the adaptive
  /// simulator reroutes natively).  Wrapped in a FaultTolerantRouter over
  /// the live fault set at reroute time.
  const Router* reroute_router = nullptr;

  /// Reroute attempts per message before it is counted as dropped.
  i64 max_retries = 8;

  /// First retry waits this many cycles; each further attempt doubles the
  /// wait (exponential backoff, capped at backoff_base << 20).
  i64 backoff_base = 1;

  /// Seed for the reroute path draws (independent of traffic seeds).
  u64 seed = 1;

  bool enabled() const { return schedule != nullptr && !schedule->empty(); }
};

}  // namespace tp
