// Result metrics of a network simulation run.

#pragma once

#include <vector>

#include "src/obs/registry.h"
#include "src/torus/torus.h"

namespace tp {

struct SimMetrics {
  i64 cycles = 0;            ///< makespan: cycle at which the last message arrived
  i64 injected = 0;          ///< messages entering the network
  i64 delivered = 0;         ///< messages that reached their destination
  i64 unroutable = 0;        ///< messages with no fault-free path (dropped at source)

  // Dynamic-fault recovery accounting (zero unless a FaultSchedule ran).
  i64 dropped = 0;           ///< messages that exhausted their retry budget
  i64 retries = 0;           ///< backoff waits scheduled after a dead hop
  i64 rerouted = 0;          ///< successful mid-flight path replacements
  i64 fail_events = 0;       ///< wire failures applied during the run
  i64 repair_events = 0;     ///< wire repairs applied during the run
  i64 flits_per_message = 1; ///< serialization factor the run used
  double mean_latency = 0.0; ///< mean deliver-inject cycle difference
  i64 max_queue_depth = 0;   ///< peak backlog on any single link
  i64 max_link_forwards = 0; ///< busiest link's total transmissions
  std::vector<i64> link_forwards;  ///< per directed link, indexed by EdgeId

  /// Per-message latency distribution (deliver - inject cycles); filled on
  /// every run, independent of the global metrics registry.
  obs::HistogramData latency;

  double latency_p50() const { return latency.percentile(0.50); }
  double latency_p95() const { return latency.percentile(0.95); }
  i64 latency_max() const { return latency.max; }

  /// Fraction of the makespan the busiest link spent transmitting: each
  /// forward occupies the link for flits_per_message cycles, so 1.0 means
  /// some link was busy every cycle (the network ran at that link's
  /// capacity).
  double bottleneck_utilization() const {
    return cycles > 0
               ? static_cast<double>(max_link_forwards * flits_per_message) /
                     static_cast<double>(cycles)
               : 0.0;
  }
};

}  // namespace tp
