// Result metrics of a network simulation run.

#pragma once

#include <vector>

#include "src/torus/torus.h"

namespace tp {

struct SimMetrics {
  i64 cycles = 0;            ///< makespan: cycle at which the last message arrived
  i64 injected = 0;          ///< messages entering the network
  i64 delivered = 0;         ///< messages that reached their destination
  i64 unroutable = 0;        ///< messages with no fault-free path (dropped at source)
  double mean_latency = 0.0; ///< mean deliver-inject cycle difference
  i64 max_queue_depth = 0;   ///< peak backlog on any single link
  i64 max_link_forwards = 0; ///< busiest link's total transmissions
  std::vector<i64> link_forwards;  ///< per directed link, indexed by EdgeId

  /// Busiest-link transmissions divided by makespan: 1.0 means some link
  /// was busy every cycle (the network ran at that link's capacity).
  double bottleneck_utilization() const {
    return cycles > 0 ? static_cast<double>(max_link_forwards) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

}  // namespace tp
