#include "src/simulate/network_sim.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <tuple>

#include "src/obs/obs.h"
#include "src/routing/fault_router.h"
#include "src/util/error.h"

namespace tp {

NetworkSim::NetworkSim(const Torus& torus, const EdgeSet* faults,
                       SimConfig config)
    : torus_(torus), faults_(torus), config_(config) {
  TP_REQUIRE(config_.flits_per_message >= 1, "flits_per_message must be >= 1");
  if (faults != nullptr) {
    has_faults_ = true;
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      if (faults->contains(e)) faults_.insert(e);
  }
  if (config_.recovery.enabled()) {
    TP_REQUIRE(config_.recovery.reroute_router != nullptr,
               "a dynamic fault schedule needs recovery.reroute_router");
    TP_REQUIRE(config_.recovery.max_retries >= 0,
               "max_retries must be non-negative");
    TP_REQUIRE(config_.recovery.backoff_base >= 1,
               "backoff_base must be >= 1");
  }
}

SimMetrics NetworkSim::run(const std::vector<SimMessage>& messages,
                           i64 max_cycles) {
  struct MsgState {
    const SimMessage* msg = nullptr;
    const Path* path = nullptr;  ///< current path (original or reroute)
    std::size_t hop = 0;
    i64 attempts = 0;  ///< backoff waits consumed so far
  };

  TP_OBS_SCOPE("sim.run");
  obs::MetricsRegistry& reg = obs::registry();
  const bool obs_on = reg.enabled();
  obs::HistogramHandle h_qdepth, h_inj_cycle, h_del_cycle, h_latency;
  if (obs_on) {
    h_qdepth = reg.histogram("sim.queue_depth");
    h_inj_cycle = reg.histogram("sim.injected_per_cycle");
    h_del_cycle = reg.histogram("sim.delivered_per_cycle");
    h_latency = reg.histogram("sim.latency");
  }
  obs::Tracer& tr = obs::tracer();
  const bool trace_on = tr.enabled();
  obs::LinkProbe* const probe = config_.probe;
  if (probe != nullptr)
    TP_REQUIRE(probe->num_links() == torus_.num_directed_edges(),
               "link probe sized for a different torus");

  // Dynamic fault replay: the clock owns the live fault set (seeded with
  // the static faults), the decorator caches fault-free path sets per
  // epoch, and the retry queue holds messages waiting out a backoff.
  const bool dynamic = config_.recovery.enabled();
  std::optional<FaultClock> clock;
  std::optional<FaultTolerantRouter> live_router;
  std::optional<Xoshiro256SS> reroute_rng;
  std::deque<Path> reroutes;  // owned replacement paths; deque = stable ptrs
  std::multimap<i64, MsgState> retry_queue;
  if (dynamic) {
    clock.emplace(torus_, *config_.recovery.schedule,
                  has_faults_ ? &faults_ : nullptr);
    live_router.emplace(*config_.recovery.reroute_router, clock->dead(),
                        clock->epoch_ref());
    reroute_rng.emplace(config_.recovery.seed);
  }

  SimMetrics metrics;
  metrics.flits_per_message = config_.flits_per_message;
  metrics.link_forwards.assign(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);

  // Sort injections by cycle (stable: FIFO among same-cycle injections).
  std::vector<const SimMessage*> by_inject;
  by_inject.reserve(messages.size());
  i64 total_work = 0;
  i64 last_inject = 0;
  {
    TP_PROF_PHASE("sim.prepare");
    for (const SimMessage& m : messages) {
      TP_REQUIRE(m.inject_cycle >= 0, "negative injection cycle");
      m.path.verify_connected(torus_);
      by_inject.push_back(&m);
      total_work += m.path.length();
      last_inject = std::max(last_inject, m.inject_cycle);
    }
    std::stable_sort(by_inject.begin(), by_inject.end(),
                     [](const SimMessage* a, const SimMessage* b) {
                       return a->inject_cycle < b->inject_cycle;
                     });
  }
  const i64 flits = config_.flits_per_message;
  if (max_cycles == 0) {
    max_cycles = total_work * flits + last_inject + 2;
    if (dynamic) {
      // Livelock guard only: generous slack for backoff waits (retries of
      // distinct messages overlap, so per-message slack suffices) plus the
      // schedule's tail.
      const i64 cap = config_.recovery.backoff_base
                      << std::min<i64>(config_.recovery.max_retries, 20);
      max_cycles += config_.recovery.schedule->last_cycle() +
                    2 * (config_.recovery.max_retries + 1) * cap + 2;
    }
  }

  std::vector<std::deque<MsgState>> queue(
      static_cast<std::size_t>(torus_.num_directed_edges()));
  std::vector<EdgeId> active;
  std::vector<bool> is_active(
      static_cast<std::size_t>(torus_.num_directed_edges()), false);
  i64 cycle = 0;
  i64 in_flight = 0;
  auto enqueue = [&](EdgeId e, MsgState s) {
    queue[static_cast<std::size_t>(e)].push_back(s);
    const i64 depth =
        static_cast<i64>(queue[static_cast<std::size_t>(e)].size());
    metrics.max_queue_depth = std::max(metrics.max_queue_depth, depth);
    if (obs_on) reg.record(h_qdepth, depth);
    if (probe != nullptr) probe->on_queue_depth(e, cycle, depth);
    if (!is_active[static_cast<std::size_t>(e)]) {
      is_active[static_cast<std::size_t>(e)] = true;
      active.push_back(e);
    }
  };

  // A message whose next hop is dead waits out an exponential backoff,
  // then (re)samples a fault-free path; the retry budget bounds the loop.
  auto schedule_retry = [&](MsgState s) {
    if (s.attempts >= config_.recovery.max_retries) {
      ++metrics.dropped;
      --in_flight;
      if (trace_on) tr.instant("sim.drop", "fault");
      return;
    }
    const i64 wait = config_.recovery.backoff_base
                     << std::min<i64>(s.attempts, 20);
    ++s.attempts;
    ++metrics.retries;
    if (trace_on) tr.instant("sim.retry", "fault");
    retry_queue.emplace(cycle + wait, s);
  };

  std::vector<i64> busy_until(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);
  std::size_t next_inject = 0;
  double latency_sum = 0.0;
  // Messages in transit across a link, arriving at (cycle + flits).
  std::deque<std::tuple<i64, EdgeId, MsgState>> in_transit;

  // Per-window counter-track samples for the trace timeline.
  constexpr i64 kCounterWindow = 64;
  i64 window_forwards = 0;

  // Phase spans: "sim.inject" while sources still have messages to issue,
  // "sim.drain" once the network is only emptying.
  if (trace_on) tr.begin("sim.inject", "sim");
  bool draining = false;

  TP_PROF_PHASE("sim.cycles");
  while (next_inject < by_inject.size() || in_flight > 0) {
    TP_REQUIRE(cycle <= max_cycles, "simulation exceeded cycle budget");
    const i64 injected_before = metrics.injected;
    const i64 delivered_before = metrics.delivered;
    // Apply this cycle's fault/repair events before any link transmits.
    if (dynamic && clock->advance_to(cycle) && trace_on) {
      tr.instant("sim.fault_event", "fault");
      tr.counter("sim.dead_wires", clock->dead_wires(), "sim");
    }
    // Land messages whose link traversal completes now.
    while (!in_transit.empty() && std::get<0>(in_transit.front()) <= cycle) {
      const EdgeId e = std::get<1>(in_transit.front());
      const MsgState s = std::get<2>(in_transit.front());
      in_transit.pop_front();
      enqueue(e, s);
    }
    // Wake messages whose backoff expired: reroute from where they sit,
    // against the live fault set, or back off again.
    while (dynamic && !retry_queue.empty() &&
           retry_queue.begin()->first <= cycle) {
      MsgState s = retry_queue.begin()->second;
      retry_queue.erase(retry_queue.begin());
      const NodeId at = s.hop == 0
                            ? s.path->source
                            : torus_.link(s.path->edges[s.hop - 1]).head;
      const NodeId dst = s.path->target;
      NodeId from = at;
      if (live_router->num_paths(torus_, at, dst) == 0) {
        // Cornered: no fault-free path from where the message sits, but
        // the pair may still be connected end-to-end — fall back to a
        // retransmission from the original source.  A pair is dropped
        // only once its source-to-target path set is (still) dead when
        // the budget runs out.
        from = s.msg->path.source;
        if (from == at || live_router->num_paths(torus_, from, dst) == 0) {
          schedule_retry(s);
          continue;
        }
      }
      reroutes.push_back(
          live_router->sample_path(torus_, from, dst, *reroute_rng));
      s.path = &reroutes.back();
      s.hop = 0;
      ++metrics.rerouted;
      if (trace_on) tr.instant("sim.reroute", "fault");
      enqueue(s.path->edges.front(), s);
    }
    // Inject this cycle's messages.
    while (next_inject < by_inject.size() &&
           by_inject[next_inject]->inject_cycle == cycle) {
      const SimMessage* m = by_inject[next_inject++];
      ++metrics.injected;
      if (m->path.edges.empty()) {
        ++metrics.delivered;  // self-delivery (not generated normally)
        continue;
      }
      // With dynamic recovery the static pre-check is skipped: a blocked
      // hop is discovered at forward time and rerouted, not dropped.
      if (!dynamic && has_faults_) {
        bool routable = true;
        for (EdgeId e : m->path.edges)
          if (faults_.contains(e)) {
            routable = false;
            break;
          }
        if (!routable) {
          ++metrics.unroutable;
          continue;
        }
      }
      enqueue(m->path.edges.front(), MsgState{m, &m->path, 0, 0});
      ++in_flight;
    }
    if (trace_on && !draining && next_inject == by_inject.size()) {
      tr.end("sim.inject");
      tr.begin("sim.drain", "sim");
      draining = true;
    }

    // Every free active link starts forwarding one message; the traversal
    // completes `flits` cycles later.
    for (std::size_t ai = 0; ai < active.size();) {
      const EdgeId e = active[ai];
      auto& q = queue[static_cast<std::size_t>(e)];
      if (q.empty()) {
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      if (dynamic && clock->is_dead(e)) {
        // The wire died with a backlog: every queued message backs off and
        // reroutes (an in-progress transmission already left the wire).
        while (!q.empty()) {
          schedule_retry(q.front());
          q.pop_front();
        }
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      if (busy_until[static_cast<std::size_t>(e)] > cycle) {
        // Still transmitting an earlier message: everything queued here
        // waits the cycle out.
        if (probe != nullptr)
          probe->on_stall(e, cycle, static_cast<i64>(q.size()));
        ++ai;
        continue;
      }
      MsgState s = q.front();
      q.pop_front();
      busy_until[static_cast<std::size_t>(e)] = cycle + flits;
      ++metrics.link_forwards[static_cast<std::size_t>(e)];
      if (probe != nullptr) probe->on_forward(e, cycle, flits);
      ++window_forwards;
      ++s.hop;
      if (s.hop == s.path->edges.size()) {
        ++metrics.delivered;
        --in_flight;
        const i64 latency = cycle + flits - s.msg->inject_cycle;
        latency_sum += static_cast<double>(latency);
        metrics.latency.record(latency);
        if (obs_on) reg.record(h_latency, latency);
        metrics.cycles = std::max(metrics.cycles, cycle + flits);
      } else {
        in_transit.emplace_back(cycle + flits, s.path->edges[s.hop], s);
      }
      ++ai;
    }
    if (obs_on) {
      reg.record(h_inj_cycle, metrics.injected - injected_before);
      reg.record(h_del_cycle, metrics.delivered - delivered_before);
    }
    if (trace_on && cycle % kCounterWindow == kCounterWindow - 1) {
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
      tr.counter("sim.active_links", static_cast<i64>(active.size()), "sim");
      if (dynamic)
        tr.counter("sim.retries_pending",
                   static_cast<i64>(retry_queue.size()), "sim");
      window_forwards = 0;
    }
    ++cycle;
    // Nothing moving and nothing in transit: jump to the next injection
    // or retry wake instead of spinning through backoff waits.
    if (dynamic && active.empty() && in_transit.empty()) {
      i64 next = std::numeric_limits<i64>::max();
      if (next_inject < by_inject.size())
        next = by_inject[next_inject]->inject_cycle;
      if (!retry_queue.empty())
        next = std::min(next, retry_queue.begin()->first);
      if (next != std::numeric_limits<i64>::max() && next > cycle)
        cycle = next;
    }
  }
  if (trace_on) {
    if (window_forwards > 0)
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
    tr.counter("sim.active_links", 0, "sim");
    tr.end(draining ? "sim.drain" : "sim.inject");
  }

  metrics.max_link_forwards = metrics.link_forwards.empty()
                                  ? 0
                                  : *std::max_element(
                                        metrics.link_forwards.begin(),
                                        metrics.link_forwards.end());
  metrics.mean_latency = metrics.delivered > 0
                             ? latency_sum / static_cast<double>(metrics.delivered)
                             : 0.0;
  if (dynamic) {
    metrics.fail_events = clock->fails_applied();
    metrics.repair_events = clock->repairs_applied();
  }
  if (obs_on) {
    reg.add(reg.counter("sim.cycles"), metrics.cycles);
    reg.add(reg.counter("sim.injected"), metrics.injected);
    reg.add(reg.counter("sim.delivered"), metrics.delivered);
    reg.add(reg.counter("sim.unroutable"), metrics.unroutable);
    reg.set_max(reg.gauge("sim.max_queue_depth"), metrics.max_queue_depth);
    reg.set_max(reg.gauge("sim.max_link_forwards"),
                metrics.max_link_forwards);
    if (dynamic) {
      reg.add(reg.counter("sim.dropped"), metrics.dropped);
      reg.add(reg.counter("sim.retries"), metrics.retries);
      reg.add(reg.counter("sim.rerouted"), metrics.rerouted);
      reg.add(reg.counter("sim.fail_events"), metrics.fail_events);
      reg.add(reg.counter("sim.repair_events"), metrics.repair_events);
    }
  }
  return metrics;
}

}  // namespace tp
