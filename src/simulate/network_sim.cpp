#include "src/simulate/network_sim.h"

#include <algorithm>
#include <deque>
#include <tuple>

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp {

NetworkSim::NetworkSim(const Torus& torus, const EdgeSet* faults,
                       SimConfig config)
    : torus_(torus), faults_(torus), config_(config) {
  TP_REQUIRE(config_.flits_per_message >= 1, "flits_per_message must be >= 1");
  if (faults != nullptr) {
    has_faults_ = true;
    for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
      if (faults->contains(e)) faults_.insert(e);
  }
}

SimMetrics NetworkSim::run(const std::vector<SimMessage>& messages,
                           i64 max_cycles) {
  struct MsgState {
    const SimMessage* msg = nullptr;
    std::size_t hop = 0;
  };

  TP_OBS_SCOPE("sim.run");
  obs::MetricsRegistry& reg = obs::registry();
  const bool obs_on = reg.enabled();
  obs::HistogramHandle h_qdepth, h_inj_cycle, h_del_cycle, h_latency;
  if (obs_on) {
    h_qdepth = reg.histogram("sim.queue_depth");
    h_inj_cycle = reg.histogram("sim.injected_per_cycle");
    h_del_cycle = reg.histogram("sim.delivered_per_cycle");
    h_latency = reg.histogram("sim.latency");
  }
  obs::Tracer& tr = obs::tracer();
  const bool trace_on = tr.enabled();
  obs::LinkProbe* const probe = config_.probe;
  if (probe != nullptr)
    TP_REQUIRE(probe->num_links() == torus_.num_directed_edges(),
               "link probe sized for a different torus");

  SimMetrics metrics;
  metrics.flits_per_message = config_.flits_per_message;
  metrics.link_forwards.assign(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);

  // Sort injections by cycle (stable: FIFO among same-cycle injections).
  std::vector<const SimMessage*> by_inject;
  by_inject.reserve(messages.size());
  i64 total_work = 0;
  i64 last_inject = 0;
  for (const SimMessage& m : messages) {
    TP_REQUIRE(m.inject_cycle >= 0, "negative injection cycle");
    m.path.verify_connected(torus_);
    by_inject.push_back(&m);
    total_work += m.path.length();
    last_inject = std::max(last_inject, m.inject_cycle);
  }
  std::stable_sort(by_inject.begin(), by_inject.end(),
                   [](const SimMessage* a, const SimMessage* b) {
                     return a->inject_cycle < b->inject_cycle;
                   });
  const i64 flits = config_.flits_per_message;
  if (max_cycles == 0) max_cycles = total_work * flits + last_inject + 2;

  std::vector<std::deque<MsgState>> queue(
      static_cast<std::size_t>(torus_.num_directed_edges()));
  std::vector<EdgeId> active;
  std::vector<bool> is_active(
      static_cast<std::size_t>(torus_.num_directed_edges()), false);
  i64 cycle = 0;
  auto enqueue = [&](EdgeId e, MsgState s) {
    queue[static_cast<std::size_t>(e)].push_back(s);
    const i64 depth =
        static_cast<i64>(queue[static_cast<std::size_t>(e)].size());
    metrics.max_queue_depth = std::max(metrics.max_queue_depth, depth);
    if (obs_on) reg.record(h_qdepth, depth);
    if (probe != nullptr) probe->on_queue_depth(e, cycle, depth);
    if (!is_active[static_cast<std::size_t>(e)]) {
      is_active[static_cast<std::size_t>(e)] = true;
      active.push_back(e);
    }
  };

  std::vector<i64> busy_until(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);
  std::size_t next_inject = 0;
  i64 in_flight = 0;
  double latency_sum = 0.0;
  // Messages in transit across a link, arriving at (cycle + flits).
  std::deque<std::tuple<i64, EdgeId, MsgState>> in_transit;

  // Per-window counter-track samples for the trace timeline.
  constexpr i64 kCounterWindow = 64;
  i64 window_forwards = 0;

  // Phase spans: "sim.inject" while sources still have messages to issue,
  // "sim.drain" once the network is only emptying.
  if (trace_on) tr.begin("sim.inject", "sim");
  bool draining = false;

  while (next_inject < by_inject.size() || in_flight > 0) {
    TP_REQUIRE(cycle <= max_cycles, "simulation exceeded cycle budget");
    const i64 injected_before = metrics.injected;
    const i64 delivered_before = metrics.delivered;
    // Land messages whose link traversal completes now.
    while (!in_transit.empty() && std::get<0>(in_transit.front()) <= cycle) {
      const EdgeId e = std::get<1>(in_transit.front());
      const MsgState s = std::get<2>(in_transit.front());
      in_transit.pop_front();
      enqueue(e, s);
    }
    // Inject this cycle's messages.
    while (next_inject < by_inject.size() &&
           by_inject[next_inject]->inject_cycle == cycle) {
      const SimMessage* m = by_inject[next_inject++];
      ++metrics.injected;
      if (m->path.edges.empty()) {
        ++metrics.delivered;  // self-delivery (not generated normally)
        continue;
      }
      bool routable = true;
      if (has_faults_) {
        for (EdgeId e : m->path.edges)
          if (faults_.contains(e)) {
            routable = false;
            break;
          }
      }
      if (!routable) {
        ++metrics.unroutable;
        continue;
      }
      enqueue(m->path.edges.front(), MsgState{m, 0});
      ++in_flight;
    }
    if (trace_on && !draining && next_inject == by_inject.size()) {
      tr.end("sim.inject");
      tr.begin("sim.drain", "sim");
      draining = true;
    }

    // Every free active link starts forwarding one message; the traversal
    // completes `flits` cycles later.
    for (std::size_t ai = 0; ai < active.size();) {
      const EdgeId e = active[ai];
      auto& q = queue[static_cast<std::size_t>(e)];
      if (q.empty()) {
        is_active[static_cast<std::size_t>(e)] = false;
        active[ai] = active.back();
        active.pop_back();
        continue;
      }
      if (busy_until[static_cast<std::size_t>(e)] > cycle) {
        // Still transmitting an earlier message: everything queued here
        // waits the cycle out.
        if (probe != nullptr)
          probe->on_stall(e, cycle, static_cast<i64>(q.size()));
        ++ai;
        continue;
      }
      MsgState s = q.front();
      q.pop_front();
      busy_until[static_cast<std::size_t>(e)] = cycle + flits;
      ++metrics.link_forwards[static_cast<std::size_t>(e)];
      if (probe != nullptr) probe->on_forward(e, cycle, flits);
      ++window_forwards;
      ++s.hop;
      if (s.hop == s.msg->path.edges.size()) {
        ++metrics.delivered;
        --in_flight;
        const i64 latency = cycle + flits - s.msg->inject_cycle;
        latency_sum += static_cast<double>(latency);
        metrics.latency.record(latency);
        if (obs_on) reg.record(h_latency, latency);
        metrics.cycles = std::max(metrics.cycles, cycle + flits);
      } else {
        in_transit.emplace_back(cycle + flits, s.msg->path.edges[s.hop], s);
      }
      ++ai;
    }
    if (obs_on) {
      reg.record(h_inj_cycle, metrics.injected - injected_before);
      reg.record(h_del_cycle, metrics.delivered - delivered_before);
    }
    if (trace_on && cycle % kCounterWindow == kCounterWindow - 1) {
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
      tr.counter("sim.active_links", static_cast<i64>(active.size()), "sim");
      window_forwards = 0;
    }
    ++cycle;
  }
  if (trace_on) {
    if (window_forwards > 0)
      tr.counter("sim.forwards_per_window", window_forwards, "sim");
    tr.counter("sim.active_links", 0, "sim");
    tr.end(draining ? "sim.drain" : "sim.inject");
  }

  metrics.max_link_forwards = metrics.link_forwards.empty()
                                  ? 0
                                  : *std::max_element(
                                        metrics.link_forwards.begin(),
                                        metrics.link_forwards.end());
  metrics.mean_latency = metrics.delivered > 0
                             ? latency_sum / static_cast<double>(metrics.delivered)
                             : 0.0;
  if (obs_on) {
    reg.add(reg.counter("sim.cycles"), metrics.cycles);
    reg.add(reg.counter("sim.injected"), metrics.injected);
    reg.add(reg.counter("sim.delivered"), metrics.delivered);
    reg.add(reg.counter("sim.unroutable"), metrics.unroutable);
    reg.set_max(reg.gauge("sim.max_queue_depth"), metrics.max_queue_depth);
    reg.set_max(reg.gauge("sim.max_link_forwards"),
                metrics.max_link_forwards);
  }
  return metrics;
}

}  // namespace tp
