// Cycle-accurate store-and-forward simulator for torus networks.
//
// The model matches the paper's notion of load: every directed link can
// transmit one message per cycle, messages follow the full path assigned at
// injection (source routing, as Definition 3's random choice over C_{p->q}),
// and links queue messages FIFO.  Under complete exchange the makespan is
// therefore lower-bounded by the busiest link's message count — i.e. by
// E_max — which is exactly the connection the experiments probe.
//
// Statically failed links never transmit; messages are never assigned
// paths through them (path selection happens in traffic generation, see
// traffic.h).  A FaultSchedule (config.recovery) additionally fails and
// repairs wires *during* the run: a message whose next hop crosses a
// currently-dead wire is pulled out of the link queue and rerouted through
// a FaultTolerantRouter against the live fault set, waiting out an
// exponential backoff between attempts; messages that exhaust the retry
// budget (or whose surviving path set is empty on the final attempt) are
// counted as dropped, never crashed.

#pragma once

#include <vector>

#include "src/obs/linkprobe.h"
#include "src/routing/path.h"
#include "src/simulate/fault_schedule.h"
#include "src/simulate/metrics.h"
#include "src/torus/graph.h"
#include "src/torus/torus.h"

namespace tp {

/// A message to simulate: a source-routed path plus its injection time.
struct SimMessage {
  Path path;
  i64 inject_cycle = 0;
};

/// Simulator knobs.
struct SimConfig {
  /// Flits per message: a link forwarding a message stays busy this many
  /// cycles (store-and-forward serialization).  1 = single-flit messages,
  /// the model matching the paper's unit loads.
  i64 flits_per_message = 1;

  /// Optional per-link telemetry sink (not owned; must outlive run()).
  /// Null = link probing off; the hot path then pays one predicted null
  /// check per site.  See obs/linkprobe.h.
  obs::LinkProbe* probe = nullptr;

  /// Dynamic fault injection and retry/reroute recovery.  With a null or
  /// empty schedule the dynamic machinery is compiled out of the run
  /// behind one predicted branch and results match the fault-free path
  /// bit-for-bit.  A non-empty schedule requires recovery.reroute_router.
  RecoveryConfig recovery;
};

class NetworkSim {
 public:
  /// `faults` may be null (no failed links).  The fault set is copied.
  NetworkSim(const Torus& torus, const EdgeSet* faults = nullptr,
             SimConfig config = {});

  /// Runs all messages to delivery and returns the metrics.  Messages whose
  /// path crosses a failed link are counted as unroutable and dropped at
  /// the source (traffic generation normally prevents this).
  /// `max_cycles` guards against livelock bugs; 0 means automatic
  /// (a generous bound derived from total work).
  SimMetrics run(const std::vector<SimMessage>& messages, i64 max_cycles = 0);

 private:
  const Torus& torus_;
  EdgeSet faults_;
  bool has_faults_ = false;
  SimConfig config_;
};

}  // namespace tp
