#include "src/simulate/traffic.h"

#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

std::vector<Path> fault_free_paths(const Torus& torus, const Router& router,
                                   NodeId p, NodeId q, const EdgeSet& faults) {
  std::vector<Path> ok;
  for (Path& path : router.paths(torus, p, q)) {
    bool clean = true;
    for (EdgeId e : path.edges)
      if (faults.contains(e)) {
        clean = false;
        break;
      }
    if (clean) ok.push_back(std::move(path));
  }
  return ok;
}

namespace {

/// Draws a path for (p, q), honoring faults if present.  Returns false if
/// every allowed path is faulted.
bool draw_path(const Torus& torus, const Router& router, NodeId p, NodeId q,
               const EdgeSet* faults, Xoshiro256SS& rng, Path& out) {
  if (faults == nullptr) {
    out = router.sample_path(torus, p, q, rng);
    return true;
  }
  auto ok = fault_free_paths(torus, router, p, q, *faults);
  if (ok.empty()) return false;
  out = std::move(ok[rng.below(ok.size())]);
  return true;
}

}  // namespace

TrafficResult complete_exchange_traffic(const Torus& torus,
                                        const Placement& p,
                                        const Router& router, u64 seed,
                                        const EdgeSet* faults) {
  p.check_torus(torus);
  TrafficResult result;
  result.messages.reserve(
      static_cast<std::size_t>(p.size() * (p.size() - 1)));
  Xoshiro256SS rng(seed);
  for (NodeId src : p.nodes()) {
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      Path path;
      if (!draw_path(torus, router, src, dst, faults, rng, path)) {
        ++result.unroutable_pairs;
        continue;
      }
      result.messages.push_back(SimMessage{std::move(path), 0});
    }
  }
  return result;
}

TrafficResult hotspot_traffic(const Torus& torus, const Placement& p,
                              const Router& router, NodeId target, u64 seed,
                              const EdgeSet* faults) {
  p.check_torus(torus);
  TP_REQUIRE(p.contains(target), "hotspot target must carry a processor");
  TrafficResult result;
  Xoshiro256SS rng(seed);
  for (NodeId src : p.nodes()) {
    if (src == target) continue;
    Path path;
    if (!draw_path(torus, router, src, target, faults, rng, path)) {
      ++result.unroutable_pairs;
      continue;
    }
    result.messages.push_back(SimMessage{std::move(path), 0});
  }
  return result;
}

TrafficResult h_relation_traffic(const Torus& torus, const Placement& p,
                                 const Router& router, i64 h, u64 seed,
                                 const EdgeSet* faults) {
  p.check_torus(torus);
  TP_REQUIRE(h >= 0, "h must be non-negative");
  TP_REQUIRE(p.size() >= 2, "h-relation needs at least two processors");
  TrafficResult result;
  Xoshiro256SS rng(seed);
  const auto& nodes = p.nodes();
  for (NodeId src : nodes) {
    for (i64 i = 0; i < h; ++i) {
      // Uniform destination among the *other* processors.
      NodeId dst = src;
      while (dst == src)
        dst = nodes[rng.below(nodes.size())];
      Path path;
      if (!draw_path(torus, router, src, dst, faults, rng, path)) {
        ++result.unroutable_pairs;
        continue;
      }
      result.messages.push_back(SimMessage{std::move(path), 0});
    }
  }
  return result;
}

TrafficResult random_rate_traffic(const Torus& torus, const Placement& p,
                                  const Router& router, double rate,
                                  i64 horizon, u64 seed,
                                  const EdgeSet* faults) {
  p.check_torus(torus);
  TP_REQUIRE(rate >= 0.0 && rate <= 1.0, "rate must be in [0, 1]");
  TP_REQUIRE(horizon >= 1, "horizon must be >= 1");
  TP_REQUIRE(p.size() >= 2, "need at least two processors");
  TrafficResult result;
  Xoshiro256SS rng(seed);
  const auto& nodes = p.nodes();
  for (i64 cycle = 0; cycle < horizon; ++cycle) {
    for (NodeId src : nodes) {
      if (rng.uniform() >= rate) continue;
      NodeId dst = src;
      while (dst == src) dst = nodes[rng.below(nodes.size())];
      Path path;
      if (!draw_path(torus, router, src, dst, faults, rng, path)) {
        ++result.unroutable_pairs;
        continue;
      }
      result.messages.push_back(SimMessage{std::move(path), cycle});
    }
  }
  return result;
}

TrafficResult permutation_traffic(const Torus& torus, const Placement& p,
                                  const Router& router, u64 seed,
                                  const EdgeSet* faults) {
  p.check_torus(torus);
  TrafficResult result;
  Xoshiro256SS rng(seed);
  std::vector<NodeId> dst = p.nodes();
  // Fisher-Yates shuffle for the destination permutation.
  for (std::size_t i = dst.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(dst[i - 1], dst[j]);
  }
  const auto& src = p.nodes();
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == dst[i]) continue;  // fixed point: nothing to send
    Path path;
    if (!draw_path(torus, router, src[i], dst[i], faults, rng, path)) {
      ++result.unroutable_pairs;
      continue;
    }
    result.messages.push_back(SimMessage{std::move(path), 0});
  }
  return result;
}

}  // namespace tp
