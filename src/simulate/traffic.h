// Traffic generation for the simulator.
//
// complete_exchange_traffic realizes the paper's all-to-all personalized
// communication: every processor of the placement sends one message to
// every other processor, with each message's path drawn uniformly from the
// routing algorithm's path set C_{p->q} (Definition 3).  When a fault set
// is supplied, the draw is uniform over the fault-free subset of C_{p->q};
// pairs whose entire path set is faulted are recorded as unroutable (the
// returned message carries an empty path and is skipped at injection).

#pragma once

#include <vector>

#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/simulate/network_sim.h"
#include "src/torus/graph.h"

namespace tp {

struct TrafficResult {
  std::vector<SimMessage> messages;
  i64 unroutable_pairs = 0;  ///< ordered pairs with no fault-free path
};

/// All-to-all personalized traffic over the placement, injected at cycle 0.
/// `faults` may be null.  Deterministic given `seed`.
TrafficResult complete_exchange_traffic(const Torus& torus,
                                        const Placement& p,
                                        const Router& router, u64 seed,
                                        const EdgeSet* faults = nullptr);

/// Random permutation traffic: each processor sends one message, and the
/// destinations form a random derangement-free permutation of the
/// processors (fixed points are skipped).  A lighter load pattern used by
/// the throughput experiments for contrast.
TrafficResult permutation_traffic(const Torus& torus, const Placement& p,
                                  const Router& router, u64 seed,
                                  const EdgeSet* faults = nullptr);

/// Hot-spot traffic: every other processor sends one message to `target`
/// (which must be in the placement).  The worst case for link contention
/// around the target; used to contrast with complete exchange.
TrafficResult hotspot_traffic(const Torus& torus, const Placement& p,
                              const Router& router, NodeId target, u64 seed,
                              const EdgeSet* faults = nullptr);

/// BSP-style h-relation (Valiant): every processor sends exactly h
/// messages to destinations drawn uniformly from the other processors.
/// The makespan of an h-relation divided by h estimates the BSP gap g of
/// the placement+routing design.
TrafficResult h_relation_traffic(const Torus& torus, const Placement& p,
                                 const Router& router, i64 h, u64 seed,
                                 const EdgeSet* faults = nullptr);

/// Open-loop random traffic for saturation studies: during cycles
/// [0, horizon) every processor independently injects a message with
/// probability `rate` per cycle, destined to a uniformly random other
/// processor.  rate = 1 means one message per processor per cycle.
TrafficResult random_rate_traffic(const Torus& torus, const Placement& p,
                                  const Router& router, double rate,
                                  i64 horizon, u64 seed,
                                  const EdgeSet* faults = nullptr);

/// Paths of C_{p->q} that avoid every failed link.
std::vector<Path> fault_free_paths(const Torus& torus, const Router& router,
                                   NodeId p, NodeId q, const EdgeSet& faults);

}  // namespace tp
