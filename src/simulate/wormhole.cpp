#include "src/simulate/wormhole.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>

#include "src/obs/obs.h"
#include "src/routing/fault_router.h"
#include "src/util/error.h"
#include "src/util/prng.h"

namespace tp {

namespace {

/// True when traversing this link crosses its ring's dateline (the wrap
/// from k-1 to 0 in +, or 0 to k-1 in -).
bool crosses_dateline(const Torus& torus, const Link& link) {
  const i32 k = torus.radix(link.dim);
  const i32 a = torus.coord_of(link.tail, link.dim);
  return (link.dir == Dir::Pos && a == k - 1) ||
         (link.dir == Dir::Neg && a == 0);
}

}  // namespace

WormholeSim::WormholeSim(const Torus& torus, WormholeConfig config)
    : torus_(torus), config_(config) {
  TP_REQUIRE(config_.vcs_per_link >= 1, "need at least one VC per link");
  TP_REQUIRE(config_.buffer_flits >= 1, "need at least one buffer flit");
  TP_REQUIRE(config_.message_flits >= 1, "messages need at least one flit");
  TP_REQUIRE(config_.stall_threshold >= 1, "stall threshold must be >= 1");
  if (config_.policy == VcPolicy::Dateline)
    TP_REQUIRE(config_.vcs_per_link >= 2,
               "the dateline discipline needs two VCs");
  if (config_.probe != nullptr)
    TP_REQUIRE(config_.probe->num_links() == torus.num_directed_edges(),
               "link probe sized for a different torus");
  if (config_.recovery.enabled()) {
    TP_REQUIRE(config_.recovery.reroute_router != nullptr,
               "a dynamic fault schedule needs recovery.reroute_router");
    TP_REQUIRE(config_.recovery.max_retries >= 0,
               "max_retries must be non-negative");
    TP_REQUIRE(config_.recovery.backoff_base >= 1,
               "backoff_base must be >= 1");
  }
}

WormholeResult WormholeSim::run(const std::vector<Path>& messages) {
  struct Vc {
    i32 owner = -1;   // message index, -1 = free
    i32 flits = 0;    // buffered flits
    i32 fresh = 0;    // flits that arrived this cycle (cannot depart yet)
  };
  struct Msg {
    const Path* path = nullptr;
    i64 at_source = 0;  // flits not yet injected
    i64 ejected = 0;
    i32 head_idx = -1;  // furthest path link with an allocated VC
    i32 tail_idx = 0;   // earliest path link still allocated
    std::vector<i32> vc_of;  // allocated VC index per path link
    bool done = false;
    i64 attempts = 0;   // backoff waits consumed (dynamic faults only)
    i64 retry_at = -1;  // cycle the next retry wakes at; -1 = not waiting
  };

  const i32 V = config_.vcs_per_link;
  const i64 L = config_.message_flits;
  std::vector<Vc> vcs(
      static_cast<std::size_t>(torus_.num_directed_edges() * V));
  auto vc_at = [&](EdgeId e, i32 v) -> Vc& {
    return vcs[static_cast<std::size_t>(e * V + v)];
  };

  std::vector<Msg> msgs(messages.size());
  i64 outstanding = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    messages[i].verify_connected(torus_);
    TP_REQUIRE(messages[i].length() >= 1,
               "wormhole messages need at least one hop");
    msgs[i].path = &messages[i];
    msgs[i].at_source = L;
    msgs[i].vc_of.assign(messages[i].edges.size(), -1);
    ++outstanding;
  }

  // The VC class the dateline discipline assigns on path link j: 1 if an
  // earlier link of the same dimension segment crossed the dateline.
  auto dateline_class = [&](const Path& path, std::size_t j) -> i32 {
    const i32 dim = torus_.link(path.edges[j]).dim;
    for (std::size_t i = j; i > 0; --i) {
      const Link prev = torus_.link(path.edges[i - 1]);
      if (prev.dim != dim) break;
      if (crosses_dateline(torus_, prev)) return 1;
    }
    return 0;
  };

  // Chooses (and validates) the VC for message m's head on path link j.
  // Returns the VC index or -1 if none is available.
  auto choose_vc = [&](const Msg& m, std::size_t j) -> i32 {
    const EdgeId e = m.path->edges[j];
    switch (config_.policy) {
      case VcPolicy::SingleVc:
        return vc_at(e, 0).owner < 0 ? 0 : -1;
      case VcPolicy::AnyFree:
        for (i32 v = 0; v < V; ++v)
          if (vc_at(e, v).owner < 0) return v;
        return -1;
      case VcPolicy::Dateline: {
        const i32 v = dateline_class(*m.path, j);
        return vc_at(e, v).owner < 0 ? v : -1;
      }
    }
    return -1;
  };

  WormholeResult result;
  obs::LinkProbe* const probe = config_.probe;
  obs::Tracer& tr = obs::tracer();
  const bool trace_on = tr.enabled();
  i64 cycle = 0;
  i64 last_progress = 0;
  std::vector<std::size_t> rr(
      static_cast<std::size_t>(torus_.num_directed_edges()), 0);

  // Dynamic-fault machinery; entirely dormant without a schedule, so the
  // fault-free run is reproduced bit-for-bit.
  const bool dynamic = config_.recovery.enabled();
  std::optional<FaultClock> clock;
  std::optional<FaultTolerantRouter> live_router;
  std::optional<Xoshiro256SS> reroute_rng;
  std::deque<Path> reroutes;  // deque: re-sampled paths keep stable addresses
  if (dynamic) {
    clock.emplace(torus_, *config_.recovery.schedule);
    live_router.emplace(*config_.recovery.reroute_router, clock->dead(),
                        clock->epoch_ref());
    reroute_rng.emplace(config_.recovery.seed);
  }

  // Frees every VC the worm holds and discards all its flits; the message
  // is back at its source with the full payload to retransmit.
  auto teardown = [&](Msg& m) {
    for (i32 j = m.tail_idx; j <= m.head_idx; ++j) {
      Vc& vc = vc_at(m.path->edges[static_cast<std::size_t>(j)],
                     m.vc_of[static_cast<std::size_t>(j)]);
      vc.owner = -1;
      vc.flits = 0;
      vc.fresh = 0;
    }
    m.head_idx = -1;
    m.tail_idx = 0;
    m.at_source = L;
    m.ejected = 0;
    std::fill(m.vc_of.begin(), m.vc_of.end(), -1);
  };

  // Charges one retry attempt: schedules a backoff wake, or drops the
  // message once the budget is spent.
  auto handle_blocked = [&](std::size_t mi) {
    Msg& m = msgs[mi];
    if (m.attempts >= config_.recovery.max_retries) {
      m.done = true;
      m.retry_at = -1;
      --outstanding;
      ++result.dropped;
      if (trace_on) tr.instant("sim.drop", "fault");
      return;
    }
    const i64 wait = config_.recovery.backoff_base
                     << std::min<i64>(m.attempts, 20);
    ++m.attempts;
    ++result.retries;
    if (trace_on) tr.instant("sim.retry", "fault");
    m.retry_at = cycle + wait;
  };

  while (outstanding > 0) {
    bool moved = false;
    bool recovered = false;
    if (dynamic) {
      if (clock->advance_to(cycle) && trace_on) {
        tr.instant("sim.fault_event", "fault");
        tr.counter("sim.dead_wires", clock->dead_wires(), "sim");
      }
      // Tear down every worm cut by a dead wire: any link of its
      // allocated chain, the head's next hop, or (if still at the
      // source) its first link.
      for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
        Msg& m = msgs[mi];
        if (m.done || m.retry_at >= 0) continue;
        const auto& edges = m.path->edges;
        bool cut = false;
        if (m.head_idx < 0) {
          cut = m.at_source > 0 && clock->is_dead(edges[0]);
        } else {
          for (i32 j = m.tail_idx; j <= m.head_idx && !cut; ++j)
            cut = clock->is_dead(edges[static_cast<std::size_t>(j)]);
          const auto next = static_cast<std::size_t>(m.head_idx) + 1;
          if (!cut && next < edges.size()) cut = clock->is_dead(edges[next]);
        }
        if (cut) {
          teardown(m);
          handle_blocked(mi);
          recovered = true;
        }
      }
      // Wake messages whose backoff expired: re-inject over a path
      // sampled against the live fault set (or charge another attempt
      // when no path survives right now).
      for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
        Msg& m = msgs[mi];
        if (m.done || m.retry_at < 0 || m.retry_at > cycle) continue;
        m.retry_at = -1;
        recovered = true;
        const NodeId src = m.path->source;
        const NodeId dst = torus_.link(m.path->edges.back()).head;
        if (live_router->num_paths(torus_, src, dst) == 0) {
          handle_blocked(mi);
          continue;
        }
        reroutes.push_back(
            live_router->sample_path(torus_, src, dst, *reroute_rng));
        m.path = &reroutes.back();
        m.vc_of.assign(m.path->edges.size(), -1);
        ++result.rerouted;
        if (trace_on) tr.instant("sim.reroute", "fault");
      }
    }
    for (auto& vc : vcs) vc.fresh = 0;

    // Ejection: each message drains one flit per cycle at its destination.
    for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
      Msg& m = msgs[mi];
      if (m.done || m.head_idx < 0) continue;
      const auto last = static_cast<i32>(m.path->edges.size()) - 1;
      if (m.head_idx != last) continue;
      Vc& vc = vc_at(m.path->edges[static_cast<std::size_t>(last)],
                     m.vc_of[static_cast<std::size_t>(last)]);
      if (vc.flits - vc.fresh <= 0) continue;
      --vc.flits;
      ++m.ejected;
      moved = true;
      if (vc.flits == 0 && m.tail_idx == last && m.at_source == 0) {
        // Tail left the network.
        vc.owner = -1;
        if (m.ejected == L) {
          m.done = true;
          --outstanding;
          ++result.delivered;
          result.cycles = std::max(result.cycles, cycle + 1);
        }
      }
    }

    // One flit transfer per physical link.
    for (EdgeId e = 0; e < torus_.num_directed_edges(); ++e) {
      if (dynamic && clock->is_dead(e)) continue;  // dead wires never transmit
      // Candidates: (message, source position) pairs whose next hop is e.
      // Positions: -1 = injection from the source node.
      struct Candidate {
        std::size_t mi;
        i32 idx;  // chain position whose flit crosses e; -1 = inject
      };
      SmallVec<Candidate, 32> candidates;
      for (std::size_t mi = 0;
           mi < msgs.size() && candidates.size() < candidates.capacity();
           ++mi) {
        Msg& m = msgs[mi];
        if (m.done || m.retry_at >= 0) continue;
        const auto& edges = m.path->edges;
        // Injection into link 0.
        if (m.at_source > 0 && edges[0] == e) {
          if (m.head_idx >= 0) {
            Vc& vc = vc_at(e, m.vc_of[0]);
            if (vc.flits < config_.buffer_flits)
              candidates.push_back({mi, -1});
          } else if (choose_vc(m, 0) >= 0) {
            candidates.push_back({mi, -1});
          }
          continue;
        }
        // Forwarding from chain position idx across edges[idx + 1] == e.
        if (m.head_idx < 0) continue;
        for (i32 idx = m.tail_idx; idx <= m.head_idx; ++idx) {
          const auto j = static_cast<std::size_t>(idx);
          if (j + 1 >= edges.size() || edges[j + 1] != e) continue;
          Vc& src = vc_at(edges[j], m.vc_of[j]);
          if (src.flits - src.fresh <= 0) continue;
          if (idx + 1 <= m.head_idx) {
            Vc& dst = vc_at(e, m.vc_of[j + 1]);
            if (dst.flits < config_.buffer_flits)
              candidates.push_back({mi, idx});
          } else if (choose_vc(m, j + 1) >= 0) {
            candidates.push_back({mi, idx});
          }
        }
      }
      if (candidates.empty()) continue;
      if (probe != nullptr) {
        // Contention for the physical wire: all candidates want link e this
        // cycle but only one flit crosses; the rest stall a cycle.
        probe->on_queue_depth(e, cycle, static_cast<i64>(candidates.size()));
        if (candidates.size() > 1)
          probe->on_stall(e, cycle, static_cast<i64>(candidates.size()) - 1);
      }
      const Candidate pick =
          candidates[rr[static_cast<std::size_t>(e)] % candidates.size()];
      ++rr[static_cast<std::size_t>(e)];

      Msg& m = msgs[pick.mi];
      if (pick.idx < 0) {
        // Injection.
        if (m.head_idx < 0) {
          const i32 v = choose_vc(m, 0);
          TP_ASSERT(v >= 0, "injection candidate lost its VC");
          m.vc_of[0] = v;
          m.head_idx = 0;
          vc_at(e, v).owner = static_cast<i32>(pick.mi);
        }
        Vc& dst = vc_at(e, m.vc_of[0]);
        ++dst.flits;
        ++dst.fresh;
        --m.at_source;
      } else {
        const auto j = static_cast<std::size_t>(pick.idx);
        Vc& src = vc_at(m.path->edges[j], m.vc_of[j]);
        if (pick.idx + 1 > m.head_idx) {
          const i32 v = choose_vc(m, j + 1);
          TP_ASSERT(v >= 0, "head candidate lost its VC");
          m.vc_of[j + 1] = v;
          m.head_idx = pick.idx + 1;
          vc_at(e, v).owner = static_cast<i32>(pick.mi);
        }
        Vc& dst = vc_at(e, m.vc_of[j + 1]);
        --src.flits;
        ++dst.flits;
        ++dst.fresh;
        // Tail bookkeeping: free the source VC once drained and no flits
        // can ever enter it again.
        if (src.flits == 0 && pick.idx == m.tail_idx &&
            (pick.idx > 0 || m.at_source == 0)) {
          src.owner = -1;
          ++m.tail_idx;
        }
      }
      ++result.flits_moved;
      if (probe != nullptr) probe->on_forward(e, cycle);
      moved = true;
    }

    if (moved || recovered) last_progress = cycle;
    // Every live message parked on a backoff wait: jump straight to the
    // earliest wake instead of spinning (and spuriously "stalling").
    if (dynamic && !moved && !recovered) {
      i64 next_wake = std::numeric_limits<i64>::max();
      bool any_active = false;
      for (const Msg& m : msgs) {
        if (m.done) continue;
        if (m.retry_at >= 0)
          next_wake = std::min(next_wake, m.retry_at);
        else
          any_active = true;
      }
      if (!any_active && next_wake != std::numeric_limits<i64>::max() &&
          next_wake > cycle) {
        cycle = next_wake;
        last_progress = cycle;
        continue;
      }
    }
    if (cycle - last_progress >= config_.stall_threshold) {
      result.deadlocked = true;
      result.cycles = cycle;
      for (const Msg& m : msgs)
        if (!m.done) ++result.stuck_messages;
      if (dynamic) {
        result.fail_events = clock->fails_applied();
        result.repair_events = clock->repairs_applied();
      }
      return result;
    }
    ++cycle;
    TP_REQUIRE(cycle < (1 << 26), "wormhole simulation runaway");
  }
  if (dynamic) {
    result.fail_events = clock->fails_applied();
    result.repair_events = clock->repairs_applied();
  }
  return result;
}

}  // namespace tp
