// Flit-level wormhole simulation with virtual channels.
//
// The store-and-forward simulator (network_sim.h) cannot deadlock: queues
// are unbounded and a message occupies one link at a time.  Wormhole
// routers — the hardware the paper's networks used in practice (its
// ref. [11] is the wormhole survey) — stretch a message across a chain of
// small per-link buffers, so messages hold several links at once and
// cyclic waits become real deadlocks.  This simulator makes the static
// channel-dependency analysis of routing/deadlock.h observable:
//
//   * one VC per link + dimension-ordered routing on a ring -> deadlock
//   * two VCs with the dateline discipline -> same traffic drains
//
// Model.  Each directed link has `vcs_per_link` virtual channels; a VC is
// an input buffer of `buffer_flits` flits at the link's head node,
// allocated to one message from head arrival until the tail leaves.  Each
// link transfers at most one flit per cycle (VCs share the wire,
// round-robin).  A message of `message_flits` flits follows a source-
// routed path; its head must allocate a VC on the next link (per the
// policy below) before any flit crosses.  Ejection at the destination is
// unbounded.  If no flit moves for `stall_threshold` cycles while
// messages are outstanding, the run reports deadlock.

#pragma once

#include <vector>

#include "src/obs/linkprobe.h"
#include "src/routing/path.h"
#include "src/simulate/fault_schedule.h"
#include "src/torus/torus.h"

namespace tp {

/// How the head picks a virtual channel on the next link.
enum class VcPolicy {
  SingleVc,    ///< always VC 0 (equivalent to no virtual channels)
  AnyFree,     ///< lowest-index unallocated VC (no deadlock protection)
  Dateline,    ///< VC 0, switching to VC 1 after crossing the ring's
               ///< dateline in the dimension being traversed
};

struct WormholeConfig {
  i32 vcs_per_link = 2;
  i32 buffer_flits = 2;
  i64 message_flits = 8;
  VcPolicy policy = VcPolicy::Dateline;
  i64 stall_threshold = 1000;  ///< idle cycles before declaring deadlock

  /// Optional per-link telemetry sink (not owned; must outlive run()).
  /// Null = link probing off; the hot path then pays one predicted null
  /// check per site.  See obs/linkprobe.h.
  obs::LinkProbe* probe = nullptr;

  /// Dynamic fault injection (fault_schedule.h).  Wormhole recovery is
  /// teardown-and-retry: when a wire carrying any part of a worm (or the
  /// head's next hop) dies, the whole worm is torn down — its VCs freed,
  /// all flits discarded — and the message waits out an exponential
  /// backoff before re-injecting from its source over a path freshly
  /// sampled from recovery.reroute_router against the live fault set.
  /// Retransmission restarts the full message_flits payload.  A non-empty
  /// schedule requires recovery.reroute_router; with a null/empty
  /// schedule results match the fault-free run bit-for-bit.
  RecoveryConfig recovery;
};

struct WormholeResult {
  bool deadlocked = false;
  i64 cycles = 0;          ///< cycle of last flit ejection (or of the stall)
  i64 delivered = 0;       ///< messages fully ejected
  i64 stuck_messages = 0;  ///< in flight when deadlock was declared
  i64 flits_moved = 0;     ///< total flit transfers (excludes ejections)

  // Dynamic-fault recovery accounting (zero unless a FaultSchedule ran).
  i64 dropped = 0;         ///< messages that exhausted their retry budget
  i64 retries = 0;         ///< backoff waits scheduled after a teardown
  i64 rerouted = 0;        ///< successful re-injections over a fresh path
  i64 fail_events = 0;     ///< wire failures applied during the run
  i64 repair_events = 0;   ///< wire repairs applied during the run
};

class WormholeSim {
 public:
  WormholeSim(const Torus& torus, WormholeConfig config);

  /// Runs the messages (all injected at cycle 0) to completion or
  /// deadlock.  Paths must be non-empty walks.
  WormholeResult run(const std::vector<Path>& messages);

 private:
  const Torus& torus_;
  WormholeConfig config_;
};

}  // namespace tp
