#include "src/torus/graph.h"

#include <algorithm>
#include <queue>

#include "src/util/error.h"

namespace tp {

std::vector<i64> bfs_distances(const Torus& torus, NodeId source,
                               const EdgeSet* removed) {
  TP_REQUIRE(torus.valid_node(source), "source out of range");
  std::vector<i64> dist(static_cast<std::size_t>(torus.num_nodes()), -1);
  std::queue<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop();
    for (i32 dim = 0; dim < torus.dims(); ++dim) {
      for (Dir dir : {Dir::Pos, Dir::Neg}) {
        const EdgeId e = torus.edge_id(n, dim, dir);
        if (removed != nullptr && removed->contains(e)) continue;
        const NodeId m = torus.neighbor(n, dim, dir);
        auto& dm = dist[static_cast<std::size_t>(m)];
        if (dm < 0) {
          dm = dist[static_cast<std::size_t>(n)] + 1;
          queue.push(m);
        }
      }
    }
  }
  return dist;
}

std::vector<i32> components(const Torus& torus, const EdgeSet* removed) {
  std::vector<i32> label(static_cast<std::size_t>(torus.num_nodes()), -1);
  i32 next = 0;
  for (NodeId s = 0; s < torus.num_nodes(); ++s) {
    if (label[static_cast<std::size_t>(s)] >= 0) continue;
    const auto dist = bfs_distances(torus, s, removed);
    for (NodeId n = 0; n < torus.num_nodes(); ++n)
      if (dist[static_cast<std::size_t>(n)] >= 0)
        label[static_cast<std::size_t>(n)] = next;
    ++next;
  }
  return label;
}

i32 num_components(const Torus& torus, const EdgeSet* removed) {
  const auto label = components(torus, removed);
  return label.empty() ? 0 : *std::max_element(label.begin(), label.end()) + 1;
}

bool is_connected(const Torus& torus, const EdgeSet* removed) {
  return num_components(torus, removed) == 1;
}

}  // namespace tp
