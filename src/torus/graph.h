// Graph algorithms over a torus with an optional set of removed links.
//
// Used to verify bisections (removing a cut must disconnect the two sides)
// and to reason about reachability under link faults.

#pragma once

#include <vector>

#include "src/torus/torus.h"

namespace tp {

/// A set of directed links, stored as a dense bitmap over edge ids.
class EdgeSet {
 public:
  explicit EdgeSet(const Torus& torus)
      : removed_(static_cast<std::size_t>(torus.num_directed_edges()),
                 false) {}

  void insert(EdgeId e) { removed_.at(static_cast<std::size_t>(e)) = true; }
  void erase(EdgeId e) { removed_.at(static_cast<std::size_t>(e)) = false; }
  bool contains(EdgeId e) const {
    return removed_.at(static_cast<std::size_t>(e));
  }
  i64 size() const {
    i64 n = 0;
    for (bool b : removed_) n += b ? 1 : 0;
    return n;
  }

 private:
  std::vector<bool> removed_;
};

/// BFS distances (hop counts) from a source, ignoring links in `removed`.
/// Unreachable nodes get distance -1.
std::vector<i64> bfs_distances(const Torus& torus, NodeId source,
                               const EdgeSet* removed = nullptr);

/// Connected-component label per node when links in `removed` are deleted
/// (a node pair is connected if a directed path exists each way; on a torus
/// with symmetric removals this matches undirected connectivity).
/// Labels are 0-based and dense.
std::vector<i32> components(const Torus& torus, const EdgeSet* removed);

/// Number of connected components after removing links.
i32 num_components(const Torus& torus, const EdgeSet* removed);

/// True if every node can reach every other node.
bool is_connected(const Torus& torus, const EdgeSet* removed = nullptr);

}  // namespace tp
