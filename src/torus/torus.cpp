#include "src/torus/torus.h"

#include <limits>

#include "src/util/error.h"

namespace tp {

Torus::Torus(const Radices& radices) : radices_(radices) { init(); }

Torus::Torus(i32 d, i32 k) {
  TP_REQUIRE(d >= 1 && static_cast<std::size_t>(d) <= kMaxDims,
             "dimension out of range");
  radices_ = Radices(static_cast<std::size_t>(d), k);
  init();
}

void Torus::init() {
  TP_REQUIRE(!radices_.empty() && radices_.size() <= kMaxDims,
             "torus needs 1..kMaxDims dimensions");
  for (std::size_t i = 0; i < radices_.size(); ++i)
    TP_REQUIRE(radices_[i] >= 2, "torus radix must be >= 2");
  strides_.resize(radices_.size(), 0);
  i64 stride = 1;
  for (std::size_t i = radices_.size(); i > 0; --i) {
    strides_[i - 1] = stride;
    TP_REQUIRE(stride <= std::numeric_limits<i64>::max() / radices_[i - 1],
               "torus too large for 64-bit node ids");
    stride *= radices_[i - 1];
  }
  num_nodes_ = stride;
}

i32 Torus::radix(i32 dim) const {
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  return radices_[static_cast<std::size_t>(dim)];
}

bool Torus::is_uniform_radix() const {
  for (std::size_t i = 1; i < radices_.size(); ++i)
    if (radices_[i] != radices_[0]) return false;
  return true;
}

NodeId Torus::node_id(const Coord& c) const {
  TP_REQUIRE(c.size() == radices_.size(), "coordinate arity mismatch");
  i64 id = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    TP_REQUIRE(c[i] >= 0 && c[i] < radices_[i], "coordinate out of range");
    id += static_cast<i64>(c[i]) * strides_[i];
  }
  return id;
}

Coord Torus::coord(NodeId n) const {
  TP_REQUIRE(valid_node(n), "node id out of range");
  Coord c(radices_.size(), 0);
  for (std::size_t i = 0; i < radices_.size(); ++i)
    c[i] = static_cast<i32>((n / strides_[i]) % radices_[i]);
  return c;
}

i32 Torus::coord_of(NodeId n, i32 dim) const {
  TP_REQUIRE(valid_node(n), "node id out of range");
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  const auto i = static_cast<std::size_t>(dim);
  return static_cast<i32>((n / strides_[i]) % radices_[i]);
}

NodeId Torus::neighbor(NodeId n, i32 dim, Dir dir) const {
  TP_REQUIRE(valid_node(n), "node id out of range");
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  const auto i = static_cast<std::size_t>(dim);
  const i64 k = radices_[i];
  const i64 a = (n / strides_[i]) % k;
  const i64 b = dir == Dir::Pos ? (a + 1) % k : (a + k - 1) % k;
  return n + (b - a) * strides_[i];
}

EdgeId Torus::edge_id(NodeId n, i32 dim, Dir dir) const {
  TP_REQUIRE(valid_node(n), "node id out of range");
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  return n * (2 * dims()) + 2 * dim + (dir == Dir::Neg ? 1 : 0);
}

Link Torus::link(EdgeId e) const {
  TP_REQUIRE(valid_edge(e), "edge id out of range");
  Link l;
  const i64 per_node = 2 * dims();
  l.tail = e / per_node;
  const i64 rem = e % per_node;
  l.dim = static_cast<i32>(rem / 2);
  l.dir = (rem % 2 == 0) ? Dir::Pos : Dir::Neg;
  l.head = neighbor(l.tail, l.dim, l.dir);
  return l;
}

EdgeId Torus::reverse_edge(EdgeId e) const {
  const Link l = link(e);
  const Dir opposite = (l.dir == Dir::Pos) ? Dir::Neg : Dir::Pos;
  return edge_id(l.head, l.dim, opposite);
}

EdgeId Torus::undirected_id(EdgeId e) const {
  const EdgeId r = reverse_edge(e);
  return r < e ? r : e;
}

i64 Torus::cyclic_dist(i32 dim, i32 a, i32 b) const {
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  return cyclic_distance(a, b, radices_[static_cast<std::size_t>(dim)]);
}

i64 Torus::lee_distance(NodeId a, NodeId b) const {
  TP_REQUIRE(valid_node(a) && valid_node(b), "node id out of range");
  i64 sum = 0;
  for (i32 d = 0; d < dims(); ++d)
    sum += cyclic_dist(d, coord_of(a, d), coord_of(b, d));
  return sum;
}

Way Torus::shortest_way(i32 dim, i32 a, i32 b) const {
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  const i64 k = radices_[static_cast<std::size_t>(dim)];
  const i64 fwd = mod_norm(b - a, k);
  if (fwd == 0) return Way::None;
  const i64 bwd = k - fwd;
  if (fwd < bwd) return Way::Pos;
  if (bwd < fwd) return Way::Neg;
  return Way::Tie;
}

i64 Torus::num_minimal_paths(NodeId a, NodeId b) const {
  TP_REQUIRE(valid_node(a) && valid_node(b), "node id out of range");
  // A minimal path corrects each dimension by its cyclic distance; steps of
  // different dimensions interleave freely, so the count is the multinomial
  //   (sum of per-dim distances)! / prod(per-dim distance!)
  // multiplied by 2 for each dimension where both directions are minimal.
  i64 total = 0;
  i64 ties = 0;
  SmallVec<i64> dist(static_cast<std::size_t>(dims()), 0);
  for (i32 d = 0; d < dims(); ++d) {
    const i32 ca = coord_of(a, d);
    const i32 cb = coord_of(b, d);
    dist[static_cast<std::size_t>(d)] = cyclic_dist(d, ca, cb);
    total += dist[static_cast<std::size_t>(d)];
    if (shortest_way(d, ca, cb) == Way::Tie) ++ties;
  }
  // Multinomial computed as a product of binomials to delay overflow.
  i64 count = 1;
  i64 remaining = total;
  for (i32 d = 0; d < dims(); ++d) {
    const i64 dd = dist[static_cast<std::size_t>(d)];
    count *= binomial(remaining, dd);  // binomial() checks overflow
    remaining -= dd;
  }
  for (i64 t = 0; t < ties; ++t) {
    TP_REQUIRE(count <= std::numeric_limits<i64>::max() / 2,
               "minimal path count overflow");
    count *= 2;
  }
  return count;
}

std::vector<NodeId> Torus::principal_subtorus(i32 dim, i32 value) const {
  TP_REQUIRE(dim >= 0 && dim < dims(), "dimension out of range");
  TP_REQUIRE(value >= 0 && value < radix(dim), "coordinate out of range");
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes_ / radix(dim)));
  for (NodeId n = 0; n < num_nodes_; ++n)
    if (coord_of(n, dim) == value) nodes.push_back(n);
  return nodes;
}

std::vector<NodeId> Torus::all_nodes() const {
  std::vector<NodeId> nodes(static_cast<std::size_t>(num_nodes_));
  for (NodeId n = 0; n < num_nodes_; ++n)
    nodes[static_cast<std::size_t>(n)] = n;
  return nodes;
}

std::string Torus::node_str(NodeId n) const {
  const Coord c = coord(n);
  std::string s = "(";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(c[i]);
  }
  s += ")";
  return s;
}

std::string Torus::edge_str(EdgeId e) const {
  const Link l = link(e);
  return node_str(l.tail) + "->" + node_str(l.head);
}

}  // namespace tp
