// The d-dimensional torus network T (Definition 1 of the paper).
//
// Nodes are the tuples (a_1, ..., a_d) with a_i in Z_{k_i}; the paper's
// T_k^d is the special case where every radix equals k.  Each node has a
// directed link to each of its 2d neighbors (one +, one - neighbor per
// dimension), so the network has 2 * d * N directed links in total.
//
// Nodes and links are identified by dense integer ids so that per-link
// quantities (loads, queue states, fault flags) can live in flat vectors:
//
//   NodeId  = mixed-radix value of the coordinate tuple (last dim fastest)
//   EdgeId  = node * 2d + 2*dim + (0 for the + direction, 1 for the -)
//
// For radix 2 the two directed links from a node in a dimension reach the
// same neighbor; they are kept as distinct parallel links, matching the
// usual convention for k-ary tori.

#pragma once

#include <string>
#include <vector>

#include "src/util/math.h"
#include "src/util/ndrange.h"
#include "src/util/small_vec.h"

namespace tp {

using NodeId = i64;
using EdgeId = i64;

/// Direction of travel along a dimension.
enum class Dir : i32 { Pos = +1, Neg = -1 };

/// Which way the shortest cyclic correction goes in one dimension.
enum class Way : i32 {
  None,  ///< coordinates already equal
  Pos,   ///< strictly shorter in the + direction
  Neg,   ///< strictly shorter in the - direction
  Tie,   ///< k even and distance exactly k/2: both directions minimal
};

/// A directed link decoded into its components.
struct Link {
  NodeId tail = 0;  ///< node the link leaves
  NodeId head = 0;  ///< node the link enters
  i32 dim = 0;      ///< dimension the link travels along
  Dir dir = Dir::Pos;
};

/// The d-dimensional torus with per-dimension radices.
class Torus {
 public:
  /// Mixed-radix torus.  Every radix must be >= 2; 1 <= d <= kMaxDims.
  explicit Torus(const Radices& radices);

  /// The paper's T_k^d: d dimensions, all radices k.
  Torus(i32 d, i32 k);

  i32 dims() const { return static_cast<i32>(radices_.size()); }
  i32 radix(i32 dim) const;
  const Radices& radices() const { return radices_; }

  /// True when all radices are equal (the paper's T_k^d).
  bool is_uniform_radix() const;

  i64 num_nodes() const { return num_nodes_; }
  i64 num_directed_edges() const { return num_nodes_ * 2 * dims(); }
  i64 num_undirected_edges() const { return num_nodes_ * dims(); }

  // --- node <-> coordinate ---------------------------------------------

  NodeId node_id(const Coord& c) const;
  Coord coord(NodeId n) const;
  /// Coordinate of node n in one dimension (no full decode).
  i32 coord_of(NodeId n, i32 dim) const;
  bool valid_node(NodeId n) const { return n >= 0 && n < num_nodes_; }

  // --- neighbors and links ---------------------------------------------

  /// The node one step from n along dim in direction dir.
  NodeId neighbor(NodeId n, i32 dim, Dir dir) const;

  /// Id of the directed link leaving n along dim in direction dir.
  EdgeId edge_id(NodeId n, i32 dim, Dir dir) const;

  /// Decode a link id.
  Link link(EdgeId e) const;
  bool valid_edge(EdgeId e) const {
    return e >= 0 && e < num_directed_edges();
  }

  /// The link traversing the same wire in the opposite direction.
  EdgeId reverse_edge(EdgeId e) const;

  /// Canonical id for the undirected wire under a link: the smaller of the
  /// two directed ids.  Two directed links share a wire iff their canonical
  /// ids are equal.
  EdgeId undirected_id(EdgeId e) const;

  // --- distances ---------------------------------------------------------

  /// Cyclic distance between coordinates a and b in a dimension (Def. 6).
  i64 cyclic_dist(i32 dim, i32 a, i32 b) const;

  /// Lee distance between nodes (Def. 6): the shortest-path length.
  i64 lee_distance(NodeId a, NodeId b) const;

  /// Which direction gives the shortest correction from a to b in dim.
  Way shortest_way(i32 dim, i32 a, i32 b) const;

  /// Number of minimal paths between a and b (product over dimensions of
  /// multinomials; accounts for tie dimensions contributing 2 directions).
  /// Exact as long as the result fits in i64; throws on overflow.
  i64 num_minimal_paths(NodeId a, NodeId b) const;

  // --- structure ---------------------------------------------------------

  /// Nodes of the principal subtorus obtained by fixing `dim` to `value`.
  std::vector<NodeId> principal_subtorus(i32 dim, i32 value) const;

  /// All nodes, 0..num_nodes()-1 (for range-for convenience).
  std::vector<NodeId> all_nodes() const;

  /// Human-readable coordinate string "(a1,a2,...,ad)".
  std::string node_str(NodeId n) const;
  /// Human-readable link string "(a)->(b)".
  std::string edge_str(EdgeId e) const;

 private:
  void init();

  Radices radices_;
  SmallVec<i64> strides_;  // strides_[i] = product of radices after i
  i64 num_nodes_ = 0;
};

}  // namespace tp
