// Build provenance baked in at configure time.
//
// The definitions live in a CMake-generated build_info.cpp (template:
// cmake/build_info.cpp.in) compiled into tp_util, so every binary in the
// tree can answer "which build is this?" — `torusplace version` prints
// it, and the service's {"op":"statusz"} admin response carries it so a
// live server is attributable to a commit without shell access.
//
// Fields are plain strings resolved once per configure: git describe is
// captured with execute_process (falling back to "unknown" outside a git
// checkout, e.g. a source tarball), so an incremental build after new
// commits can lag until the next CMake rerun — provenance, not a
// tamper-proof seal.

#pragma once

namespace tp {

struct BuildInfo {
  const char* version;      ///< project version (CMake PROJECT_VERSION)
  const char* git_describe; ///< `git describe --always --dirty --tags`
  const char* compiler;     ///< compiler id + version
  const char* flags;        ///< CXX flags incl. the build-type set
  const char* build_type;   ///< CMAKE_BUILD_TYPE
};

/// The build this binary came from.
const BuildInfo& build_info();

}  // namespace tp
