#include "src/util/checked_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/error.h"

namespace tp::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Directory part of a path ("." when there is none) — for fsyncing the
/// directory entry after a rename.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

/// Record framing constants shared by writer and readers.
constexpr std::uint32_t kTrailerMarker = 0xFFFFFFFFu;
constexpr std::size_t kFrameHeader = 2 * sizeof(std::uint32_t);
/// A single record larger than this is treated as corruption (no snapshot
/// entry is anywhere near it; a huge length is a scrambled length field).
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

}  // namespace

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table.entries[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t n) {
  return crc32_update(0, data, n);
}

// ---------------------------------------------------------------------------
// ByteBuffer / ByteView
// ---------------------------------------------------------------------------

void ByteBuffer::put_u8(std::uint8_t v) {
  data_.push_back(static_cast<char>(v));
}

void ByteBuffer::put_u32(std::uint32_t v) {
  data_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void ByteBuffer::put_u64(u64 v) {
  data_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void ByteBuffer::put_i32(i32 v) {
  data_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void ByteBuffer::put_i64(i64 v) {
  data_.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void ByteBuffer::put_f64(double v) {
  u64 bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void ByteBuffer::put_string(std::string_view s) {
  TP_REQUIRE(s.size() < kMaxRecordBytes, "string too large to serialize");
  put_u32(static_cast<std::uint32_t>(s.size()));
  data_.append(s.data(), s.size());
}

void ByteView::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw Error("truncated record: need " + std::to_string(n) +
                " byte(s), have " + std::to_string(data_.size() - pos_));
}

std::uint8_t ByteView::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteView::get_u32() {
  need(sizeof(std::uint32_t));
  std::uint32_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

u64 ByteView::get_u64() {
  need(sizeof(u64));
  u64 v;
  std::memcpy(&v, data_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

i32 ByteView::get_i32() {
  need(sizeof(i32));
  i32 v;
  std::memcpy(&v, data_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

i64 ByteView::get_i64() {
  need(sizeof(i64));
  i64 v;
  std::memcpy(&v, data_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

double ByteView::get_f64() {
  const u64 bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteView::get_string() {
  const std::uint32_t n = get_u32();
  if (n >= kMaxRecordBytes)
    throw Error("truncated record: implausible string length " +
                std::to_string(n));
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

// ---------------------------------------------------------------------------
// CheckedFileWriter
// ---------------------------------------------------------------------------

CheckedFileWriter::CheckedFileWriter(std::string path, std::string_view magic)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  TP_REQUIRE(magic.size() == kFileMagicSize,
             "file magic must be exactly 8 bytes");
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0)
    throw Error("cannot create '" + tmp_path_ + "': " + errno_text());
  write_raw(magic.data(), magic.size(), /*count_in_crc=*/true);
}

CheckedFileWriter::~CheckedFileWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!committed_) ::unlink(tmp_path_.c_str());
}

void CheckedFileWriter::write_raw(const void* data, std::size_t n,
                                  bool count_in_crc) {
  const char* p = static_cast<const char*>(data);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t wrote = ::write(fd_, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw Error("write to '" + tmp_path_ + "' failed: " + errno_text());
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  if (count_in_crc) file_crc_ = crc32_update(file_crc_, data, n);
  bytes_ += static_cast<i64>(n);
}

void CheckedFileWriter::append(std::string_view payload) {
  TP_REQUIRE(!committed_, "append after commit");
  TP_REQUIRE(payload.size() < kMaxRecordBytes, "record payload too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  write_raw(&len, sizeof len, true);
  write_raw(&crc, sizeof crc, true);
  write_raw(payload.data(), payload.size(), true);
  ++records_;
}

void CheckedFileWriter::commit() {
  TP_REQUIRE(!committed_, "commit called twice");
  // Trailer: marker + whole-file CRC (over everything before the trailer)
  // + record count.  Not part of the running CRC by construction.
  const std::uint32_t marker = kTrailerMarker;
  const std::uint32_t crc = file_crc_;
  const u64 count = records_;
  write_raw(&marker, sizeof marker, false);
  write_raw(&crc, sizeof crc, false);
  write_raw(&count, sizeof count, false);
  if (::fsync(fd_) != 0)
    throw Error("fsync '" + tmp_path_ + "' failed: " + errno_text());
  ::close(fd_);
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0)
    throw Error("rename '" + tmp_path_ + "' -> '" + path_ +
                "' failed: " + errno_text());
  committed_ = true;
  fsync_dir(dir_of(path_));
}

// ---------------------------------------------------------------------------
// read_checked_file
// ---------------------------------------------------------------------------

namespace {

/// Reads a whole file; throws on open/read failure.
std::string slurp(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("cannot open '" + path + "': " + errno_text());
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      throw Error("read '" + path + "' failed: " + err);
    }
    if (got == 0) break;
    data.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return data;
}

/// Parses one frame at `pos`.  Returns false on a clean trailer marker;
/// throws on anything that does not parse as a complete, CRC-valid
/// record.
bool parse_frame(const std::string& data, std::size_t& pos,
                 std::string& payload) {
  if (data.size() - pos < kFrameHeader)
    throw Error("truncated frame header at offset " + std::to_string(pos));
  std::uint32_t len, crc;
  std::memcpy(&len, data.data() + pos, sizeof len);
  std::memcpy(&crc, data.data() + pos + sizeof len, sizeof crc);
  if (len == kTrailerMarker) return false;  // trailer begins here
  if (len >= kMaxRecordBytes)
    throw Error("implausible record length " + std::to_string(len) +
                " at offset " + std::to_string(pos));
  if (data.size() - pos - kFrameHeader < len)
    throw Error("truncated record payload at offset " + std::to_string(pos));
  const char* body = data.data() + pos + kFrameHeader;
  if (crc32(body, len) != crc)
    throw Error("record CRC mismatch at offset " + std::to_string(pos));
  payload.assign(body, len);
  pos += kFrameHeader + len;
  return true;
}

}  // namespace

std::vector<std::string> read_checked_file(const std::string& path,
                                           std::string_view magic) {
  TP_REQUIRE(magic.size() == kFileMagicSize,
             "file magic must be exactly 8 bytes");
  const std::string data = slurp(path);
  if (data.size() < kFileMagicSize)
    throw Error("'" + path + "' is shorter than the file magic");
  if (std::string_view(data).substr(0, kFileMagicSize) != magic)
    throw Error("'" + path + "' has the wrong magic (not a " +
                std::string(magic) + " file)");

  std::vector<std::string> records;
  std::size_t pos = kFileMagicSize;
  std::string payload;
  while (parse_frame(data, pos, payload)) records.push_back(payload);

  // Trailer: marker (already seen) + file CRC + record count, and nothing
  // after it.
  const std::size_t trailer = pos;
  const std::size_t trailer_size =
      2 * sizeof(std::uint32_t) + sizeof(u64);
  if (data.size() - trailer < trailer_size)
    throw Error("truncated trailer in '" + path + "'");
  if (data.size() - trailer > trailer_size)
    throw Error("trailing garbage after the trailer in '" + path + "'");
  std::uint32_t stored_crc;
  u64 stored_count;
  std::memcpy(&stored_crc, data.data() + trailer + sizeof(std::uint32_t),
              sizeof stored_crc);
  std::memcpy(&stored_count,
              data.data() + trailer + 2 * sizeof(std::uint32_t),
              sizeof stored_count);
  if (stored_count != records.size())
    throw Error("record count mismatch in '" + path + "': trailer says " +
                std::to_string(stored_count) + ", found " +
                std::to_string(records.size()));
  if (crc32(data.data(), trailer) != stored_crc)
    throw Error("whole-file CRC mismatch in '" + path +
                "' (snapshot is corrupt)");
  return records;
}

// ---------------------------------------------------------------------------
// AppendLog
// ---------------------------------------------------------------------------

AppendLog::AppendLog(const std::string& path, std::string_view magic)
    : path_(path) {
  TP_REQUIRE(magic.size() == kFileMagicSize,
             "file magic must be exactly 8 bytes");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0)
    throw Error("cannot open journal '" + path_ + "': " + errno_text());

  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t got = ::read(fd_, buf, sizeof buf);
      if (got < 0) {
        if (errno == EINTR) continue;
        const std::string err = errno_text();
        ::close(fd_);
        fd_ = -1;
        throw Error("read journal '" + path_ + "' failed: " + err);
      }
      if (got == 0) break;
      data.append(buf, static_cast<std::size_t>(got));
    }
  }

  if (data.empty()) {
    // Fresh journal: write the magic now so a crash right after creation
    // still leaves a parseable (empty) journal.
    std::size_t off = 0;
    while (off < magic.size()) {
      const ssize_t wrote =
          ::write(fd_, magic.data() + off, magic.size() - off);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        const std::string err = errno_text();
        ::close(fd_);
        fd_ = -1;
        throw Error("write journal '" + path_ + "' failed: " + err);
      }
      off += static_cast<std::size_t>(wrote);
    }
    ::fsync(fd_);
    return;
  }

  if (data.size() < kFileMagicSize ||
      std::string_view(data).substr(0, kFileMagicSize) != magic) {
    ::close(fd_);
    fd_ = -1;
    throw Error("journal '" + path_ + "' has the wrong magic (not a " +
                std::string(magic) + " journal)");
  }

  // Replay complete records; stop at the first frame that does not parse
  // (torn tail from a crash mid-append) and truncate it away so appends
  // continue from a clean boundary.
  std::size_t pos = kFileMagicSize;
  std::string payload;
  for (;;) {
    if (pos == data.size()) break;
    const std::size_t frame_start = pos;
    try {
      if (!parse_frame(data, pos, payload)) {
        // A trailer marker cannot appear in a journal; treat as torn.
        torn_ = true;
        pos = frame_start;
        break;
      }
    } catch (const Error&) {
      torn_ = true;
      pos = frame_start;
      break;
    }
    records_.push_back(payload);
  }
  if (torn_) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      const std::string err = errno_text();
      ::close(fd_);
      fd_ = -1;
      throw Error("truncate journal '" + path_ + "' failed: " + err);
    }
    ::fsync(fd_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const std::string err = errno_text();
    ::close(fd_);
    fd_ = -1;
    throw Error("seek journal '" + path_ + "' failed: " + err);
  }
}

AppendLog::~AppendLog() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendLog::append(std::string_view payload) {
  TP_REQUIRE(fd_ >= 0, "append on a closed journal");
  TP_REQUIRE(payload.size() < kMaxRecordBytes, "record payload too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof len);
  frame.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  frame.append(payload.data(), payload.size());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t wrote = ::write(fd_, frame.data() + off, frame.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw Error("append to journal '" + path_ + "' failed: " +
                  errno_text());
    }
    off += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd_) != 0)
    throw Error("fsync journal '" + path_ + "' failed: " + errno_text());
  records_.push_back(std::string(payload));
}

}  // namespace tp::util
