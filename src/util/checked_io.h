// Checked binary I/O: CRC-framed record files with atomic replacement.
//
// Two durable file shapes share one record framing, and everything that
// persists state in this repo (PlanCache snapshots, sweep checkpoint
// journals — src/service/snapshot.h, src/service/checkpoint.h) goes
// through them instead of raw stdio (tp_lint's raw-io rule enforces it):
//
//   * CheckedFileWriter / read_checked_file — a write-once snapshot.
//     Layout: [8-byte magic] [record...] [trailer].  Each record is
//     [u32 payload_len][u32 payload_crc32][payload]; the trailer is
//     [u32 0xFFFFFFFF][u32 file_crc32][u64 record_count] where file_crc32
//     covers every byte before the trailer.  The writer streams into
//     `path + ".tmp"` and commit() fsyncs, renames over `path`, and
//     fsyncs the directory — readers see either the complete old file or
//     the complete new one, never a torn mix.  read_checked_file verifies
//     magic, per-record CRCs, the whole-file CRC, and the record count,
//     and throws tp::Error naming the first deviation: any truncation or
//     bit-flip anywhere in the file is detected.
//
//   * AppendLog — an append-only journal for checkpointing long runs.
//     Layout: [8-byte magic] [record...] with no trailer (the file grows
//     in place; append() fsyncs each record).  Opening replays the
//     complete records and *truncates* a torn tail — the expected residue
//     of a crash mid-append — rather than failing, so a SIGKILLed run
//     resumes from its last fully-written record.
//
// Byte order is the host's; persisted files additionally carry a build
// key at the layer above (snapshot.h), so a file is only ever replayed by
// a compatible binary.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/math.h"

namespace tp::util {

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, zlib-compatible).
// ---------------------------------------------------------------------------

/// Extends a running CRC32 with `n` more bytes (start from crc = 0).
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t n);

/// CRC32 of one buffer: crc32_update(0, data, n).
std::uint32_t crc32(const void* data, std::size_t n);

// ---------------------------------------------------------------------------
// Payload serialization: bounds-checked little building blocks.
// ---------------------------------------------------------------------------

/// Append-only byte serializer for record payloads.  Fixed-width integers
/// are memcpy'd host-endian; doubles travel as their raw bit pattern so a
/// round trip is bit-exact; strings/blobs carry a u32 length prefix.
class ByteBuffer {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(u64 v);
  void put_i32(i32 v);
  void put_i64(i64 v);
  void put_f64(double v);  ///< raw IEEE-754 bits (exact round trip)
  void put_string(std::string_view s);

  const std::string& data() const { return data_; }

 private:
  std::string data_;
};

/// Bounds-checked deserializer over a payload.  Every read past the end
/// throws tp::Error("truncated record: ..."), so corrupt length fields
/// can never walk out of the buffer.
class ByteView {
 public:
  explicit ByteView(std::string_view data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  u64 get_u64();
  i32 get_i32();
  i64 get_i64();
  double get_f64();
  std::string get_string();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Checked snapshot files (write-once, atomically replaced).
// ---------------------------------------------------------------------------

constexpr std::size_t kFileMagicSize = 8;

/// Streams CRC-framed records into `path + ".tmp"`; commit() seals the
/// trailer and atomically renames over `path` (fsync file + directory).
/// Destruction without commit() unlinks the temp file, so a failed or
/// abandoned save never disturbs the previous snapshot.
class CheckedFileWriter {
 public:
  /// `magic` must be exactly kFileMagicSize bytes.  Throws tp::Error when
  /// the temp file cannot be created.
  CheckedFileWriter(std::string path, std::string_view magic);
  ~CheckedFileWriter();

  CheckedFileWriter(const CheckedFileWriter&) = delete;
  CheckedFileWriter& operator=(const CheckedFileWriter&) = delete;

  /// Appends one framed record.  Throws tp::Error on write failure.
  void append(std::string_view payload);

  /// Writes the trailer, fsyncs, renames over the target, fsyncs the
  /// directory.  Call at most once; no appends after.
  void commit();

  i64 bytes_written() const { return bytes_; }

 private:
  void write_raw(const void* data, std::size_t n, bool count_in_crc);

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  std::uint32_t file_crc_ = 0;
  u64 records_ = 0;
  i64 bytes_ = 0;
  bool committed_ = false;
};

/// Reads a committed CheckedFileWriter file back into its record
/// payloads.  Throws tp::Error on any deviation: unreadable file, wrong
/// magic, short header, per-record CRC mismatch, missing or malformed
/// trailer (truncation), whole-file CRC mismatch (any bit-flip), or a
/// record count that disagrees with the trailer.
std::vector<std::string> read_checked_file(const std::string& path,
                                           std::string_view magic);

// ---------------------------------------------------------------------------
// Append-only journals (checkpointing).
// ---------------------------------------------------------------------------

/// Opens (creating if absent) an append-only framed log and replays its
/// complete records.  A torn or corrupt tail — the residue of a crash
/// mid-append — is truncated away and reported via recovered_torn_tail();
/// a wrong magic throws (the file is not ours).  append() frames and
/// fsyncs one record, so every record that append() returned from
/// survives a subsequent SIGKILL.
class AppendLog {
 public:
  AppendLog(const std::string& path, std::string_view magic);
  ~AppendLog();

  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Complete records recovered at open, in append order.
  const std::vector<std::string>& records() const { return records_; }

  bool recovered_torn_tail() const { return torn_; }

  void append(std::string_view payload);

 private:
  std::string path_;
  int fd_ = -1;
  std::vector<std::string> records_;
  bool torn_ = false;
};

}  // namespace tp::util
