// Permutation and subset enumeration used by the UDR load analysis.
//
// ForEachPermutation enumerates all orderings of a small index set (the
// dimension-correction orders of Unordered Dimensional Routing); subsets are
// enumerated as bitmasks.  Both are generator-style to avoid materializing
// factorially many sequences.

#pragma once

#include <cstdint>

#include "src/util/math.h"
#include "src/util/small_vec.h"

namespace tp {

/// Calls fn(perm) for every permutation of {items[0], ..., items[n-1]}.
/// Uses Heap's algorithm; perm is a SmallVec<i32> reused across calls.
/// fn may return void, or bool (return false to stop early).
template <typename Fn>
void for_each_permutation(SmallVec<i32> items, Fn&& fn) {
  const std::size_t n = items.size();
  if (n == 0) {
    fn(items);
    return;
  }
  // Iterative Heap's algorithm.
  SmallVec<i32> c(n, 0);
  fn(items);
  std::size_t i = 0;
  while (i < n) {
    if (static_cast<std::size_t>(c[i]) < i) {
      std::size_t j = (i % 2 == 0) ? 0 : static_cast<std::size_t>(c[i]);
      i32 tmp = items[j];
      items[j] = items[i];
      items[i] = tmp;
      fn(items);
      ++c[i];
      i = 0;
    } else {
      c[i] = 0;
      ++i;
    }
  }
}

/// Calls fn(mask) for every subset mask of an n-element ground set,
/// including the empty set and the full set.  Requires n <= 30.
template <typename Fn>
void for_each_subset(int n, Fn&& fn) {
  TP_REQUIRE(n >= 0 && n <= 30, "subset ground set too large");
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) fn(mask);
}

/// Number of set bits.
inline int popcount32(std::uint32_t x) { return __builtin_popcount(x); }

}  // namespace tp
