// Error handling for torusplace.
//
// The library throws tp::Error (derived from std::runtime_error) for all
// precondition violations.  TP_REQUIRE is used at public API boundaries;
// TP_ASSERT guards internal invariants and compiles to the same check (the
// cost is negligible next to the combinatorial work this library does, and
// a hard failure beats silently wrong combinatorics).

#pragma once

#include <stdexcept>
#include <string>

namespace tp {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::string full(kind);
  full += ": (";
  full += expr;
  full += ") at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " — ";
    full += msg;
  }
  throw Error(full);
}
}  // namespace detail

}  // namespace tp

#define TP_REQUIRE(cond, msg)                                             \
  do {                                                                    \
    if (!(cond))                                                          \
      ::tp::detail::raise("precondition failed", #cond, __FILE__,         \
                          __LINE__, (msg));                               \
  } while (false)

#define TP_ASSERT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::tp::detail::raise("internal invariant violated", #cond, __FILE__, \
                          __LINE__, (msg));                               \
  } while (false)
