#include "src/util/math.h"

#include <limits>

#include "src/util/error.h"

namespace tp {

i64 mod_norm(i64 x, i64 m) {
  TP_REQUIRE(m > 0, "modulus must be positive");
  i64 r = x % m;
  if (r < 0) r += m;
  return r;
}

i64 gcd(i64 a, i64 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool is_coprime(i64 a, i64 m) {
  TP_REQUIRE(m >= 1, "modulus must be >= 1");
  return gcd(a, m) == 1;
}

i64 powi(i64 base, i64 exp) {
  TP_REQUIRE(exp >= 0, "negative exponent");
  i64 result = 1;
  for (i64 i = 0; i < exp; ++i) {
    TP_REQUIRE(base == 0 ||
                   (result <= std::numeric_limits<i64>::max() / (base < 0 ? -base : base)),
               "powi overflow");
    result *= base;
  }
  return result;
}

i64 factorial(i64 n) {
  TP_REQUIRE(n >= 0 && n <= 20, "factorial argument out of [0, 20]");
  i64 result = 1;
  for (i64 i = 2; i <= n; ++i) result *= i;
  return result;
}

i64 binomial(i64 n, i64 r) {
  TP_REQUIRE(n >= 0 && r >= 0 && r <= n, "binomial requires 0 <= r <= n");
  if (r > n - r) r = n - r;
  i64 result = 1;
  for (i64 i = 1; i <= r; ++i) {
    TP_REQUIRE(result <= std::numeric_limits<i64>::max() / (n - r + i),
               "binomial overflow");
    result = result * (n - r + i) / i;
  }
  return result;
}

i64 cyclic_distance(i64 i, i64 j, i64 k) {
  TP_REQUIRE(k >= 1, "ring size must be >= 1");
  i64 fwd = mod_norm(j - i, k);
  i64 bwd = mod_norm(i - j, k);
  return fwd < bwd ? fwd : bwd;
}

i64 ceil_div(i64 a, i64 b) {
  TP_REQUIRE(b > 0 && a >= 0, "ceil_div requires a >= 0, b > 0");
  return (a + b - 1) / b;
}

i64 mod_inverse(i64 a, i64 m) {
  TP_REQUIRE(m >= 1, "modulus must be >= 1");
  a = mod_norm(a, m);
  TP_REQUIRE(gcd(a, m) == 1, "mod_inverse requires gcd(a, m) == 1");
  // Extended Euclid on (a, m).
  i64 old_r = a, r = m;
  i64 old_s = 1, s = 0;
  while (r != 0) {
    i64 q = old_r / r;
    i64 tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
  }
  return mod_norm(old_s, m);
}

}  // namespace tp
