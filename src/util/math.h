// Integer and modular arithmetic helpers used throughout the library.
//
// All functions are total over their stated preconditions and throw
// tp::Error otherwise.  Overflow in powi/factorial/binomial is checked.

#pragma once

#include <cstdint>

namespace tp {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u16 = std::uint16_t;  ///< TCP port numbers (src/net/)
using u64 = std::uint64_t;

/// x mod m normalized into [0, m).  Requires m > 0; x may be negative.
i64 mod_norm(i64 x, i64 m);

/// Greatest common divisor (non-negative).  gcd(0, 0) == 0.
i64 gcd(i64 a, i64 b);

/// True iff a and m are relatively prime.  Requires m >= 1.
bool is_coprime(i64 a, i64 m);

/// base^exp with overflow checking.  Requires exp >= 0.
i64 powi(i64 base, i64 exp);

/// n! with overflow checking.  Requires 0 <= n <= 20.
i64 factorial(i64 n);

/// Binomial coefficient C(n, r) with overflow checking.
/// Requires 0 <= r <= n.
i64 binomial(i64 n, i64 r);

/// Cyclic distance between residues i and j modulo k (Definition 6):
/// min(i-j mod k, j-i mod k).  Requires k >= 1; i, j may be any integers.
i64 cyclic_distance(i64 i, i64 j, i64 k);

/// Ceiling division for non-negative integers.  Requires b > 0, a >= 0.
i64 ceil_div(i64 a, i64 b);

/// Modular inverse of a modulo m.  Requires m >= 1 and gcd(a, m) == 1.
i64 mod_inverse(i64 a, i64 m);

}  // namespace tp
