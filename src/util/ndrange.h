// Mixed-radix counting: iterate all coordinate tuples of a torus/array.
//
// NdRange walks tuples (a_1, ..., a_d) with 0 <= a_i < radix_i in
// lexicographic order without materializing them.

#pragma once

#include "src/util/math.h"
#include "src/util/small_vec.h"

namespace tp {

using Coord = SmallVec<i32>;
using Radices = SmallVec<i32>;

/// Iterates every coordinate tuple below the given radices.
///
///   for (NdRange r(radices); !r.done(); r.next()) use(r.coord());
class NdRange {
 public:
  explicit NdRange(const Radices& radices)
      : radices_(radices), coord_(radices.size(), 0) {
    for (std::size_t i = 0; i < radices_.size(); ++i)
      TP_REQUIRE(radices_[i] >= 1, "radices must be >= 1");
    done_ = radices_.empty();
  }

  bool done() const { return done_; }
  const Coord& coord() const { return coord_; }

  void next() {
    TP_REQUIRE(!done_, "next() past end of NdRange");
    std::size_t i = radices_.size();
    while (i > 0) {
      --i;
      if (++coord_[i] < radices_[i]) return;
      coord_[i] = 0;
    }
    done_ = true;
  }

 private:
  Radices radices_;
  Coord coord_;
  bool done_ = false;
};

/// Product of all radices (the number of tuples NdRange will produce).
inline i64 radix_product(const Radices& radices) {
  i64 p = 1;
  for (std::size_t i = 0; i < radices.size(); ++i) {
    TP_REQUIRE(radices[i] >= 1, "radices must be >= 1");
    p *= radices[i];
  }
  return p;
}

}  // namespace tp
