// Minimal shared-memory parallelism for the load analyzers.
//
// The analyzers' work decomposes perfectly over source processors, so a
// static block partition over std::thread workers is all that is needed
// (no work stealing, no locks — each worker accumulates into its own
// buffer and the caller reduces).  parallel_for_blocks is deterministic:
// the same partition is produced for a given (count, threads).

#pragma once

#include <thread>
#include <vector>

#include "src/util/error.h"
#include "src/util/math.h"
#include "src/util/thread_annotations.h"
#include "src/util/worker_context.h"

namespace tp {

/// Invokes fn(worker_index, begin, end) on `workers` blocks, partitioning
/// [0, count) into contiguous ranges (the last blocks may be one shorter),
/// where workers = min(threads, count): tiny work items never spawn idle
/// threads.  The calling thread runs the last block itself, so only
/// workers - 1 threads are spawned and with threads == 1 (or count <= 1)
/// the call runs entirely inline.  The partition is deterministic for a
/// given (count, threads).  fn must be safe to run concurrently against
/// itself on disjoint ranges.
///
/// Every block (spawned AND inline, including the workers == 1 fast path)
/// runs under a PoolWorkerScope: obs-registry recording inside fn is
/// dropped so nested instrumentation cannot race the single-writer
/// registry, and the registry sees the same records for every thread
/// count.  Record reduced per-worker tallies after this returns instead
/// (see load/complete_exchange.cpp).
template <typename Fn>
void parallel_for_blocks(i64 count, i32 threads, Fn&& fn) {
  TP_REQUIRE(count >= 0, "negative work count");
  TP_REQUIRE(threads >= 1, "need at least one thread");
  const i32 workers =
      static_cast<i32>(std::min<i64>(threads, std::max<i64>(count, 1)));
  if (workers == 1) {
    const PoolWorkerScope worker_scope;
    fn(0, i64{0}, count);
    return;
  }
  // Spawned workers adopt the caller's phase context (profiler hooks, see
  // worker_context.h) so phases pushed inside fn report the same path as
  // the caller-inline block; the inline block below needs no adoption —
  // it already runs on the caller's stack.
  const PhaseContextHooks* hooks = phase_context_hooks();
  void* token = hooks != nullptr ? hooks->capture() : nullptr;
  std::vector<Thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  const i64 base = count / workers;
  const i64 extra = count % workers;
  i64 begin = 0;
  for (i32 w = 0; w < workers - 1; ++w) {
    const i64 len = base + (w < extra ? 1 : 0);
    const i64 end = begin + len;
    pool.emplace_back([&fn, hooks, token, w, begin, end] {
      const PoolWorkerScope worker_scope;
      void* cookie = token != nullptr ? hooks->adopt(token) : nullptr;
      fn(w, begin, end);
      if (cookie != nullptr) hooks->restore(cookie);
    });
    begin = end;
  }
  {
    const PoolWorkerScope worker_scope;
    fn(workers - 1, begin, count);
  }
  for (auto& t : pool) t.join();
  if (token != nullptr) hooks->release(token);
}

/// Work-size cutover: how many of `threads` workers are worth spawning
/// for `count` work items when each worker should own at least
/// `min_per_worker` of them.  Below the threshold the answer is 1 —
/// thread spawn/join (~tens of µs) plus the per-worker buffer reduction
/// costs more than it saves, which is exactly the odr_loads_parallel4
/// regression BENCH_4 flagged on T8^3 (4032 pairs across 4 workers).
/// Callers take the serial path when this returns 1.
inline i32 effective_workers(i64 count, i32 threads, i64 min_per_worker) {
  TP_REQUIRE(threads >= 1, "need at least one thread");
  TP_REQUIRE(min_per_worker >= 1, "need a positive work cutover");
  const i64 by_work = std::max<i64>(count / min_per_worker, 1);
  return static_cast<i32>(std::min<i64>(threads, by_work));
}

/// A sensible default worker count for this machine.
inline i32 default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<i32>(hw);
}

}  // namespace tp
