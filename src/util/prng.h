// Deterministic pseudo-random number generation.
//
// The simulator and randomized placements need reproducible streams that are
// stable across platforms and standard-library versions, so the library ships
// its own generators instead of relying on std::mt19937 distributions:
//   * SplitMix64  — seeding / stream splitting
//   * Xoshiro256SS — bulk generation (xoshiro256**, Blackman & Vigna)
// Bounded draws use Lemire-style rejection so results are exactly uniform.

#pragma once

#include <cstdint>

#include "src/util/error.h"

namespace tp {

/// SplitMix64: tiny, fast generator used to seed other generators and to
/// derive independent streams from a single user seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator.
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256SS {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Xoshiro256SS(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw from [0, bound).  Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    TP_REQUIRE(bound > 0, "below(0) is ill-defined");
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold)
        return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tp
