#include "src/util/rational.h"

#include <limits>

namespace tp {

i64 Rational::checked_mul(i64 a, i64 b) {
  i64 result = 0;
  TP_REQUIRE(!__builtin_mul_overflow(a, b, &result), "rational overflow");
  return result;
}

i64 Rational::checked_add(i64 a, i64 b) {
  i64 result = 0;
  TP_REQUIRE(!__builtin_add_overflow(a, b, &result), "rational overflow");
  return result;
}

void Rational::normalize() {
  TP_REQUIRE(den_ != 0, "zero denominator");
  if (den_ < 0) {
    TP_REQUIRE(den_ != std::numeric_limits<i64>::min() &&
                   num_ != std::numeric_limits<i64>::min(),
               "rational overflow");
    num_ = -num_;
    den_ = -den_;
  }
  const i64 g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational& Rational::operator+=(const Rational& other) {
  // Reduce cross terms by gcd of denominators to delay overflow.
  const i64 g = gcd(den_, other.den_);
  const i64 scale_self = other.den_ / g;
  const i64 scale_other = den_ / g;
  num_ = checked_add(checked_mul(num_, scale_self),
                     checked_mul(other.num_, scale_other));
  den_ = checked_mul(den_, scale_self);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  return *this += Rational(-other.num_, other.den_);
}

Rational& Rational::operator*=(const Rational& other) {
  // Cross-cancel before multiplying.
  const i64 g1 = gcd(num_, other.den_);
  const i64 g2 = gcd(other.num_, den_);
  num_ = checked_mul(num_ / g1, other.num_ / g2);
  den_ = checked_mul(den_ / g2, other.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  TP_REQUIRE(other.num_ != 0, "division by zero rational");
  return *this *= Rational(other.den_, other.num_);
}

}  // namespace tp
