// Exact rational arithmetic for load bookkeeping.
//
// Definition 4's loads are sums of fractions 1/|C_{p->q}| — rationals with
// denominators dividing lcm(1!, ..., d!) (times 2^d with tie splitting).
// The double-precision analyzers are exact for ODR and accurate to ~1e-12
// elsewhere; Rational removes even that caveat so equality assertions in
// tests and cross-checks are airtight.  Overflow throws (tp::Error) rather
// than wrapping.

#pragma once

#include <compare>
#include <string>

#include "src/util/error.h"
#include "src/util/math.h"

namespace tp {

/// An exact fraction num/den, always normalized (den > 0, gcd = 1).
class Rational {
 public:
  constexpr Rational() = default;
  Rational(i64 num, i64 den = 1) : num_(num), den_(den) { normalize(); }

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  std::string str() const {
    return den_ == 1 ? std::to_string(num_)
                     : std::to_string(num_) + "/" + std::to_string(den_);
  }

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) {
    return Rational(-a.num_, a.den_);
  }

  friend bool operator==(const Rational& a, const Rational& b) = default;
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    // a/b <=> c/d  iff  a*d <=> c*b  (denominators positive).
    return checked_mul(a.num_, b.den_) <=> checked_mul(b.num_, a.den_);
  }

 private:
  static i64 checked_mul(i64 a, i64 b);
  static i64 checked_add(i64 a, i64 b);
  void normalize();

  i64 num_ = 0;
  i64 den_ = 1;
};

}  // namespace tp
