// SmallVec — fixed-capacity inline vector used for torus coordinates.
//
// Torus dimensionality in this library is bounded by kMaxDims (8); storing
// coordinates inline keeps the load-analysis inner loops free of heap
// traffic.  The interface is the subset of std::vector the library needs.

#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>

#include "src/util/error.h"

namespace tp {

/// Maximum number of torus dimensions supported by inline containers.
inline constexpr std::size_t kMaxDims = 8;

/// Fixed-capacity vector with inline storage.  Element type must be
/// trivially copyable (coordinates, small counters).
template <typename T, std::size_t Cap = kMaxDims>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr SmallVec() = default;

  constexpr SmallVec(std::size_t n, const T& value) {
    TP_REQUIRE(n <= Cap, "SmallVec capacity exceeded");
    size_ = n;
    std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(n),
              value);
  }

  constexpr SmallVec(std::initializer_list<T> init) {
    TP_REQUIRE(init.size() <= Cap, "SmallVec capacity exceeded");
    size_ = init.size();
    std::copy(init.begin(), init.end(), data_.begin());
  }

  template <typename It>
  constexpr SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  static constexpr std::size_t capacity() { return Cap; }

  constexpr T& operator[](std::size_t i) { return data_[i]; }
  constexpr const T& operator[](std::size_t i) const { return data_[i]; }

  constexpr T& at(std::size_t i) {
    TP_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }
  constexpr const T& at(std::size_t i) const {
    TP_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }

  constexpr T& front() { return data_[0]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr T& back() { return data_[size_ - 1]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

  constexpr void push_back(const T& v) {
    TP_REQUIRE(size_ < Cap, "SmallVec capacity exceeded");
    data_[size_++] = v;
  }
  constexpr void pop_back() {
    TP_REQUIRE(size_ > 0, "pop_back on empty SmallVec");
    --size_;
  }
  constexpr void clear() { size_ = 0; }
  constexpr void resize(std::size_t n, const T& value = T{}) {
    TP_REQUIRE(n <= Cap, "SmallVec capacity exceeded");
    for (std::size_t i = size_; i < n; ++i) data_[i] = value;
    size_ = n;
  }

  constexpr iterator begin() { return data_.data(); }
  constexpr const_iterator begin() const { return data_.data(); }
  constexpr iterator end() { return data_.data() + size_; }
  constexpr const_iterator end() const { return data_.data() + size_; }

  friend constexpr bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (a.data_[i] != b.data_[i]) return false;
    return true;
  }
  friend constexpr bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  std::array<T, Cap> data_{};
  std::size_t size_ = 0;
};

}  // namespace tp
