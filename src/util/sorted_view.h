// Deterministic iteration over unordered containers.
//
// Iterating a std::unordered_map/unordered_set while writing any output
// sink bakes the hash order — which varies across libstdc++ versions,
// hash seeds, and platforms — into the emitted bytes, silently breaking
// the repo's byte-identical-output contract.  The lint layer's
// unordered-output pass flags exactly that pattern; these helpers are the
// blessed fix it recognizes:
//
//   for (const auto& [k, v] : tp::sorted_items(cache_)) ...
//   for (const auto& k : tp::sorted_keys(seen_)) ...
//
// Both take an O(n log n) sorted snapshot.  That cost is fine on output
// paths (serialization dominates); on hot paths, prefer an ordered
// container or a maintained index instead of sorting per call.

#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace tp {

/// Key-sorted snapshot of a map-like container's (key, mapped) pairs.
/// Values are copied; keys must be totally ordered by '<'.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& kv : m) items.emplace_back(kv.first, kv.second);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

/// Sorted snapshot of a container's keys (for sets, the elements).
template <typename Container>
auto sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& item : c) {
    if constexpr (requires { item.first; })
      keys.push_back(item.first);
    else
      keys.push_back(item);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace tp
