// Annotated synchronization primitives for torusplace.
//
// House rule (enforced by tools/tp_lint): library code outside src/util/
// never names std::mutex / std::thread / std::lock_guard directly.  It
// uses the wrappers below, which carry Clang thread-safety attributes so
// the locking discipline is checked at compile time:
//
//   clang++ -Wthread-safety -Werror=thread-safety ...
//
// (the `thread-safety` CMake preset; see docs/static-analysis.md).  On
// GCC the attributes compile away and the wrappers are zero-cost shims
// over the std types.
//
// Idiom — label every piece of guarded state and hold locks via RAII:
//
//   class Cache {
//     mutable tp::Mutex mu_;
//     std::map<Key, Value> entries_ TP_GUARDED_BY(mu_);
//    public:
//     Value get(const Key& k) const TP_EXCLUDES(mu_) {
//       const tp::MutexLock lock(mu_);
//       return entries_.at(k);   // checked: mu_ is held here
//     }
//   };
//
// Condition variables: tp::CondVar deliberately has NO predicate
// overloads.  Clang's analysis does not propagate the held-lock set into
// lambda bodies, so a `cv.wait(lock, [&]{ return guarded_field; })` would
// read guarded state in a scope the checker believes is unlocked.  Write
// the loop explicitly instead — the guarded reads then sit in the scope
// that provably holds the lock:
//
//   tp::MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define TP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TP_THREAD_ANNOTATION__(x)
#endif

/// Declares a class to be a lockable capability (tp::Mutex below).
#define TP_CAPABILITY(x) TP_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define TP_SCOPED_CAPABILITY TP_THREAD_ANNOTATION__(scoped_lockable)

/// Data member `x` may only be touched while holding the named mutex.
#define TP_GUARDED_BY(x) TP_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded.
#define TP_PT_GUARDED_BY(x) TP_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function must be called with the named mutexes held.
#define TP_REQUIRES(...) \
  TP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function acquires the named mutexes (held on return).
#define TP_ACQUIRE(...) \
  TP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the named mutexes (held on entry).
#define TP_RELEASE(...) \
  TP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function acquires the mutex iff it returns `ret`.
#define TP_TRY_ACQUIRE(ret, ...) \
  TP_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/// The function must NOT be called with the named mutexes held
/// (deadlock prevention for self-calling APIs).
#define TP_EXCLUDES(...) TP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named mutex.
#define TP_RETURN_CAPABILITY(x) TP_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables analysis for one function.  Every use must
/// carry a comment explaining why the checker cannot see the invariant.
#define TP_NO_THREAD_SAFETY_ANALYSIS \
  TP_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace tp {

class CondVar;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// std::mutex with a capability annotation so members can be labelled
/// TP_GUARDED_BY(mu_).  Prefer tp::MutexLock over manual lock()/unlock().
class TP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TP_ACQUIRE() { mu_.lock(); }
  void unlock() TP_RELEASE() { mu_.unlock(); }
  bool try_lock() TP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// MutexLock
// ---------------------------------------------------------------------------

/// RAII lock holder (the annotated replacement for both std::lock_guard
/// and std::unique_lock).  Supports early release — unlock() — and
/// re-acquisition for the handful of sites that drop the lock to notify
/// or to take another one.
class TP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TP_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() TP_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope end (no-op state for the destructor).
  void unlock() TP_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an early unlock().
  void lock() TP_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// std::condition_variable over tp::Mutex/MutexLock.  No predicate
/// overloads on purpose — write explicit while loops so the thread-safety
/// analysis sees every guarded read under the lock (see the header
/// comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, re-acquires before returning.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// wait() with a deadline; std::cv_status::timeout when it passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Thread
// ---------------------------------------------------------------------------

/// The one blessed spelling of a worker thread outside src/util/
/// (tp_lint's raw-sync rule bans the std:: name so thread creation stays
/// auditable from this header).  Plain std::thread semantics.
using Thread = std::thread;

}  // namespace tp
