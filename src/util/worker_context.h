// Thread-role context: is the current thread a pool worker?
//
// The metrics registry (obs/registry.h) is single-writer by contract:
// recording is plain unsynchronized stores, so pool workers must NOT
// record — components accumulate per-worker tallies and record the
// reduced totals after the join.  That contract used to be enforced by
// review only; instrumentation buried deep in shared code (router tie
// counters, planner phase scopes) raced the moment a sweep ran it from
// parallel_for_blocks or an engine worker with the registry enabled.
//
// PoolWorkerScope makes the contract mechanical.  Every pool entry point
// (parallel_for_blocks blocks, service::Engine workers) installs one, and
// MetricsRegistry::enabled() reports false on such threads, turning every
// nested record into the same predicted-branch no-op as a disabled
// registry.  A side benefit: registry contents become thread-count
// invariant, because a sweep contributes the same (reduced) records
// whether it ran on 1 thread or 16.
//
// This lives in util (not obs) so that parallel.h can install the scope
// without inverting the util <- obs layering; obs only reads the flag.
//
// PhaseContextHooks is the same layering trick for the profiler
// (obs/phase_stack.h): spawned pool workers must report phase paths as if
// they ran inline in the caller (thread-count-invariant attribution), so
// parallel_for_blocks captures the caller's phase context and each worker
// adopts it for the duration of its block.  util cannot depend on obs, so
// the profiler installs function pointers here (profiler.cpp) and
// parallel.h calls through them; with the profiler off, capture() returns
// nullptr and the workers skip adoption entirely.

#pragma once

#include <atomic>

namespace tp {

/// Profiler-installed callbacks for propagating phase context into
/// spawned pool workers.  capture() runs on the caller (nullptr = nothing
/// to propagate), adopt() on each worker before its block (returns a
/// restore cookie), restore() on the worker after the block, release() on
/// the caller after the join.
struct PhaseContextHooks {
  void* (*capture)();
  void* (*adopt)(void* token);
  void (*restore)(void* cookie);
  void (*release)(void* token);
};

namespace detail {
inline std::atomic<const PhaseContextHooks*> t_phase_hooks{nullptr};
}  // namespace detail

inline const PhaseContextHooks* phase_context_hooks() {
  return detail::t_phase_hooks.load(std::memory_order_acquire);
}

/// Installed once by the profiler; hooks must have static lifetime.
inline void set_phase_context_hooks(const PhaseContextHooks* hooks) {
  detail::t_phase_hooks.store(hooks, std::memory_order_release);
}

namespace detail {
/// One flag per thread; inline so the header stays self-contained.
inline thread_local bool t_pool_worker = false;
}  // namespace detail

/// True on threads (or inline blocks) running under a PoolWorkerScope.
inline bool in_pool_worker() { return detail::t_pool_worker; }

/// RAII: marks the current thread a pool worker for the scope's lifetime.
/// Nests correctly (restores the previous value), so a worker that itself
/// fans out keeps its role.
class PoolWorkerScope {
 public:
  PoolWorkerScope() : prev_(detail::t_pool_worker) {
    detail::t_pool_worker = true;
  }
  ~PoolWorkerScope() { detail::t_pool_worker = prev_; }

  PoolWorkerScope(const PoolWorkerScope&) = delete;
  PoolWorkerScope& operator=(const PoolWorkerScope&) = delete;

 private:
  bool prev_;
};

}  // namespace tp
