// Thread-role context: is the current thread a pool worker?
//
// The metrics registry (obs/registry.h) is single-writer by contract:
// recording is plain unsynchronized stores, so pool workers must NOT
// record — components accumulate per-worker tallies and record the
// reduced totals after the join.  That contract used to be enforced by
// review only; instrumentation buried deep in shared code (router tie
// counters, planner phase scopes) raced the moment a sweep ran it from
// parallel_for_blocks or an engine worker with the registry enabled.
//
// PoolWorkerScope makes the contract mechanical.  Every pool entry point
// (parallel_for_blocks blocks, service::Engine workers) installs one, and
// MetricsRegistry::enabled() reports false on such threads, turning every
// nested record into the same predicted-branch no-op as a disabled
// registry.  A side benefit: registry contents become thread-count
// invariant, because a sweep contributes the same (reduced) records
// whether it ran on 1 thread or 16.
//
// This lives in util (not obs) so that parallel.h can install the scope
// without inverting the util <- obs layering; obs only reads the flag.

#pragma once

namespace tp {

namespace detail {
/// One flag per thread; inline so the header stays self-contained.
inline thread_local bool t_pool_worker = false;
}  // namespace detail

/// True on threads (or inline blocks) running under a PoolWorkerScope.
inline bool in_pool_worker() { return detail::t_pool_worker; }

/// RAII: marks the current thread a pool worker for the scope's lifetime.
/// Nests correctly (restores the previous value), so a worker that itself
/// fans out keeps its role.
class PoolWorkerScope {
 public:
  PoolWorkerScope() : prev_(detail::t_pool_worker) {
    detail::t_pool_worker = true;
  }
  ~PoolWorkerScope() { detail::t_pool_worker = prev_; }

  PoolWorkerScope(const PoolWorkerScope&) = delete;
  PoolWorkerScope& operator=(const PoolWorkerScope&) = delete;

 private:
  bool prev_;
};

}  // namespace tp
