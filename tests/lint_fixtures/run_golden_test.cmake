# Golden test for tp_lint (driven by the `lint_golden` ctest).
#
# Variables:
#   TP_LINT   path to the built tp_lint binary
#   FIXTURES  path to tests/lint_fixtures
#
# Asserts that (1) linting the violating fixture tree reproduces
# expected.txt byte-for-byte with exit code 1, (2) the same scan under
# --format=json / --format=sarif reproduces expected.json /
# expected.sarif (the machine-readable schemas are part of the CLI
# contract — CI uploads them as artifacts), and (3) the clean fixture
# alone lints silently with exit code 0.

function(tp_lint_golden format golden)
  if(format STREQUAL "text")
    set(format_args "")
  else()
    set(format_args "--format=${format}")
  endif()
  execute_process(
    COMMAND ${TP_LINT} --root ${FIXTURES} ${format_args} src
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "expected exit 1 on the violating tree (${format}), got ${rc}\n${out}${err}")
  endif()
  file(READ ${FIXTURES}/${golden} want)
  if(NOT out STREQUAL want)
    message(FATAL_ERROR
      "${format} diagnostics drifted from ${golden}.\n"
      "--- got ---\n${out}\n--- want ---\n${want}\n"
      "If the change is intentional, regenerate with\n"
      "  tp_lint --root tests/lint_fixtures ${format_args} src > tests/lint_fixtures/${golden}")
  endif()
endfunction()

tp_lint_golden(text expected.txt)
tp_lint_golden(json expected.json)
tp_lint_golden(sarif expected.sarif)

execute_process(
  COMMAND ${TP_LINT} --root ${FIXTURES} src/clean.cpp
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out STREQUAL "")
  message(FATAL_ERROR "clean fixture must lint silently: exit ${rc}\n${out}${err}")
endif()

# A baseline accepting one finding per (file, rule) drops those findings
# and flips nowhere else; a stale entry turns the exit code back to 1
# with a stderr notice.
# (CMAKE_CURRENT_BINARY_DIR is the working directory in -P script mode,
# i.e. somewhere under build/ — never the source tree.)
set(baseline_tmp ${CMAKE_CURRENT_BINARY_DIR}/lint_golden_baseline_tmp.txt)
file(WRITE ${baseline_tmp}
  "# temporary baseline written by run_golden_test.cmake\n"
  "src/bad_cout.cpp:cout-in-lib: exercised by the golden test\n")
execute_process(
  COMMAND ${TP_LINT} --root ${FIXTURES} --baseline ${baseline_tmp} src/bad_cout.cpp
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
file(REMOVE ${baseline_tmp})
if(NOT rc EQUAL 0 OR NOT out STREQUAL "")
  message(FATAL_ERROR
    "baselined fixture must lint silently: exit ${rc}\n${out}${err}")
endif()
