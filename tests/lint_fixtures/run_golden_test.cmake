# Golden test for tp_lint (driven by the `lint_golden` ctest).
#
# Variables:
#   TP_LINT   path to the built tp_lint binary
#   FIXTURES  path to tests/lint_fixtures
#
# Asserts that (1) linting the violating fixture tree reproduces
# expected.txt byte-for-byte with exit code 1, and (2) the clean fixture
# alone lints silently with exit code 0.
execute_process(
  COMMAND ${TP_LINT} --root ${FIXTURES} src
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "expected exit 1 on the violating tree, got ${rc}\n${out}${err}")
endif()
file(READ ${FIXTURES}/expected.txt want)
if(NOT out STREQUAL want)
  message(FATAL_ERROR
    "diagnostics drifted from expected.txt.\n--- got ---\n${out}\n--- want ---\n${want}\n"
    "If the change is intentional, regenerate with\n"
    "  tp_lint --root tests/lint_fixtures src > tests/lint_fixtures/expected.txt")
endif()

execute_process(
  COMMAND ${TP_LINT} --root ${FIXTURES} src/clean.cpp
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out STREQUAL "")
  message(FATAL_ERROR "clean fixture must lint silently: exit ${rc}\n${out}${err}")
endif()
