// Fixture: bare-assert — C assert in library code.
#include <cassert>

namespace bad {

int half(int n) {
  assert(n % 2 == 0);
  return n / 2;
}

}  // namespace bad
