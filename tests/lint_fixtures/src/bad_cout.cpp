// Fixture: cout-in-lib — a library file printing to stdout directly.
#include <iostream>

namespace bad {

void report(int value) { std::cout << "value = " << value << "\n"; }

}  // namespace bad
