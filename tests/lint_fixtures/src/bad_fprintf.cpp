// Fixture: no-fprintf — library code chattering on stderr with printf.
// std::snprintf into a buffer is formatting, not output, and must pass.
#include <cstdio>

namespace bad {

void warn(int code) { fprintf(stderr, "warning: code %d\n", code); }

void shout(int code) { std::printf("code %d\n", code); }

int format(char* buf, int n, int code) {
  return std::snprintf(buf, static_cast<unsigned long>(n), "%d", code);
}

}  // namespace bad
