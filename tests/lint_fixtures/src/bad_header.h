// Fixture: iostream-in-header — a library header pulling in <iostream>.
#pragma once

#include <iostream>

namespace bad {

struct Printer {
  template <typename T>
  void print(const T& value) { std::cerr << value; }
};

}  // namespace bad
