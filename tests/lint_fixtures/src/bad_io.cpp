// Fixture: raw-io — unchecked stdio file I/O for persistent state.
#include <cstdio>

namespace bad {

int save_counters(const double* values, int n) {
  FILE* f = fopen("counters.bin", "wb");
  if (f == nullptr) return -1;
  fwrite(values, sizeof(double), static_cast<unsigned long>(n), f);
  return fclose(f);
}

int load_counters(double* values, int n) {
  FILE* f = fopen("counters.bin", "rb");
  if (f == nullptr) return -1;
  const auto got =
      fread(values, sizeof(double), static_cast<unsigned long>(n), f);
  fclose(f);
  return static_cast<int>(got);
}

// snprintf formatting is fine (not flagged); so are identifiers that
// merely end in the banned names.
int profile_fwrite = 0;

}  // namespace bad
