// Fixture: raw-random — unseeded randomness / wall-clock entropy.
#include <cstdlib>
#include <ctime>
#include <random>

namespace bad {

int roll() {
  srand(static_cast<unsigned>(time(nullptr)));
  return rand() % 6;
}

unsigned hw_entropy() { return std::random_device{}(); }

}  // namespace bad
