// Fixture: require-message — TP_REQUIRE/TP_ASSERT without a usable
// failure message (missing entirely, or the empty string literal).
namespace bad {

int checked(int n, int d) {
  TP_REQUIRE(d != 0);
  TP_REQUIRE(n >= 0, "");
  TP_ASSERT((n / d) * d + n % d == n,
            "");
  return n / d;
}

}  // namespace bad
