// Fixture: raw-socket — BSD socket syscalls outside src/net/.
#include <sys/socket.h>

namespace bad {

int open_and_greet(const sockaddr* addr, unsigned long len) {
  const int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, 1, 2, &one, sizeof one);
  if (connect(fd, addr, static_cast<unsigned>(len)) != 0) return -1;
  char buf[16];
  if (send(fd, buf, sizeof buf, 0) < 0) return -1;
  return static_cast<int>(recv(fd, buf, sizeof buf, 0));
}

int serve_one(const sockaddr* addr, unsigned len) {
  const int fd = socket(2, 1, 0);
  if (bind(fd, addr, len) != 0) return -1;
  if (listen(fd, 8) != 0) return -1;
  return accept(fd, nullptr, nullptr);
}

// Qualified names, member calls, and lookalike identifiers pass: the
// wrappers themselves are spelled tp::net::connect_to(...), callers say
// listener.accept_connection(), and counters like accept_reject exist.
int accept_reject = 0;

}  // namespace bad
