// Fixture: raw-sync — std synchronization primitives outside src/util/.
#include <mutex>
#include <thread>

namespace bad {

std::mutex g_mu;

void spawn() {
  const std::lock_guard<std::mutex> lock(g_mu);
  std::thread worker([] {});
  worker.join();
}

std::condition_variable* leaked();

}  // namespace bad
