// Fixture: raw-sync — std synchronization primitives outside src/util/.
#include <mutex>
#include <thread>

namespace bad {

std::mutex g_mu;

void spawn() {
  const std::lock_guard<std::mutex> lock(g_mu);
  std::thread worker([] {});
  worker.join();
}

std::condition_variable* leaked();

}  // namespace bad

// The tokenizer-backed rule sees through using-declarations: the bare
// names below are still std synchronization primitives (the regex-era
// tool missed all four of these lines).
using std::mutex;

mutex g_aliased;

using Mtx = std::mutex;

Mtx* g_typedefed;
