// Fixture: raw-timing — non-monotonic / mixed-semantics time sources.
#include <chrono>
#include <ctime>
#include <sys/time.h>

namespace bad {

long long wall_ns() {
  // system_clock jumps with NTP/wall-clock adjustments.
  return std::chrono::system_clock::now().time_since_epoch().count();
}

double cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

long stale_us() {
  timeval tv;
  gettimeofday(&tv, nullptr);
  return tv.tv_usec;
}

// steady_clock and CLOCK_* constants are fine (not flagged).
long long ok_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace bad
