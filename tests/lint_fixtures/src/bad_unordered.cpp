// Fixture: unordered-output — hash-order iteration while writing a sink.
#include <map>
#include <ostream>
#include <unordered_map>

#include "src/util/sorted_view.h"

namespace bad {

std::unordered_map<int, int> g_table;

// Range-for over an unordered container in a function that writes an
// std::ostream: the emitted bytes depend on the hash order.
void dump(std::ostream& out) {
  for (const auto& [k, v] : g_table) out << k << " " << v << "\n";
}

// Iterator form of the same bug.
void dump_iter(std::ostream& out) {
  for (auto it = g_table.begin(); it != g_table.end(); ++it)
    out << it->first << "\n";
}

// The blessed fix: tp::sorted_items snapshots and key-sorts first.
void dump_sorted(std::ostream& out) {
  for (const auto& [k, v] : tp::sorted_items(g_table))
    out << k << " " << v << "\n";
}

// No sink in scope: counting is order-independent, so this is fine.
int total() {
  int sum = 0;
  for (const auto& [k, v] : g_table) sum += v;
  return sum;
}

}  // namespace bad
