// Fixture: a clean library file that MENTIONS every banned token in
// comments and string literals only — the linter must stay silent here.
//
// std::mutex, std::thread, std::lock_guard — discussed, not used.
// rand() and time() show up in prose all the time (e.g. "mutates over
// time (a wire fails)"), as does assert( in documentation.
// FILE* handles and fopen(/fwrite(/fread(/fclose( are fine to discuss.
/* Block comments too: std::cout << std::random_device{}(); */
#include <string>

namespace clean {

// TP_REQUIRE-style contract checks carry real messages.
inline int divide(int n, int d) {
  TP_REQUIRE(d != 0, "division by zero");
  TP_ASSERT(n >= 0, std::string("negative numerator: ") + std::to_string(n));
  return n / d;
}

inline std::string docs() {
  return "never call rand() or time(0); srand( is banned; "
         "use tp::Mutex not std::mutex; assert( only in tests";
}

}  // namespace clean
