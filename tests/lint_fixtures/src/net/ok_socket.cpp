// Fixture: the raw-socket exemption — src/net/ is where the RAII
// wrappers live, so the same syscalls are legal here (and the other
// library rules still apply: no std::cout, no bare assert, ...).
#include <sys/socket.h>

namespace tp::net {

int wrapped_dial(const sockaddr* addr, unsigned len) {
  const int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  if (fd < 0) return -1;
  if (connect(fd, addr, len) != 0) return -1;
  char byte = 0;
  if (send(fd, &byte, 1, 0) < 0) return -1;
  return static_cast<int>(recv(fd, &byte, 1, 0));
}

}  // namespace tp::net
