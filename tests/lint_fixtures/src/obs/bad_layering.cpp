// Fixture: arch-layering — obs (infrastructure over util) reaching up
// into the service layer.  The allowed-edges DAG in
// src/lint/include_graph.cpp gives obs only {util}.
#include "src/service/engine.h"

namespace bad {
int use_engine();
}  // namespace bad
