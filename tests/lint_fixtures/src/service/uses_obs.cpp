// Fixture: arch-cycle — service -> obs is a declared (legal) edge on its
// own, but together with src/obs/bad_layering.cpp's obs -> service
// include the *observed* graph closes the cycle obs -> service -> obs.
#include "src/obs/registry.h"

namespace bad {
int use_registry();
}  // namespace bad
