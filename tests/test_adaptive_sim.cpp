// Tests for the hop-by-hop minimal-adaptive simulator.

#include <gtest/gtest.h>

#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/odr.h"
#include "src/simulate/adaptive_sim.h"
#include "src/simulate/fault.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"
#include "src/util/error.h"

namespace tp {
namespace {

std::vector<Demand> complete_exchange_demands(const Placement& p) {
  std::vector<Demand> demands;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes())
      if (src != dst) demands.push_back(Demand{src, dst, 0});
  return demands;
}

TEST(AdaptiveSim, SingleMessageMinimalLatency) {
  Torus t(2, 5);
  const NodeId src = 0, dst = t.node_id(Coord{2, 2});
  for (AdaptivePolicy policy :
       {AdaptivePolicy::RandomMinimal, AdaptivePolicy::LeastQueue}) {
    AdaptiveNetworkSim sim(t, policy);
    const SimMetrics m = sim.run({Demand{src, dst, 0}});
    EXPECT_EQ(m.delivered, 1);
    EXPECT_EQ(m.cycles, t.lee_distance(src, dst));
  }
}

TEST(AdaptiveSim, DeliversTheCompleteExchange) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  const auto demands = complete_exchange_demands(p);
  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue);
  const SimMetrics m = sim.run(demands, 3);
  EXPECT_EQ(m.delivered, static_cast<i64>(demands.size()));
  EXPECT_EQ(m.unroutable, 0);
  // Every delivery took at least its Lee distance; mean latency too.
  EXPECT_GE(m.mean_latency, 1.0);
}

TEST(AdaptiveSim, TotalForwardsEqualTotalLeeDistance) {
  // Minimal-adaptive hops never detour, so the sum of link forwards must
  // equal the sum of Lee distances over all demands.
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  const auto demands = complete_exchange_demands(p);
  AdaptiveNetworkSim sim(t, AdaptivePolicy::RandomMinimal);
  const SimMetrics m = sim.run(demands, 9);
  i64 total = 0;
  for (i64 f : m.link_forwards) total += f;
  EXPECT_EQ(static_cast<double>(total), expected_total_load(t, p));
}

TEST(AdaptiveSim, LeastQueueNeverWorseThanOdrOnHeavyLoad) {
  // Against source-routed ODR under the same complete exchange, the
  // queue-aware adaptive policy routes around the diagonal hot links.
  Torus t(2, 8);
  const Placement p = multiple_linear_placement(t, 2);
  OdrRouter odr;
  const auto odr_traffic = complete_exchange_traffic(t, p, odr, 5);
  const SimMetrics odr_m = NetworkSim(t).run(odr_traffic.messages);

  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue);
  const SimMetrics ad_m = sim.run(complete_exchange_demands(p), 5);
  EXPECT_EQ(ad_m.delivered, odr_m.delivered);
  EXPECT_LE(ad_m.cycles, odr_m.cycles);
}

TEST(AdaptiveSim, RoutesAroundFaultsWhenAMinimalLinkSurvives) {
  Torus t(2, 6);
  const NodeId src = t.node_id(Coord{0, 0});
  const NodeId dst = t.node_id(Coord{2, 2});
  // Fail one of the two minimal first hops; the other direction remains.
  EdgeSet faults(t);
  const EdgeId blocked = t.edge_id(src, 0, Dir::Pos);
  faults.insert(blocked);
  faults.insert(t.reverse_edge(blocked));
  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue, &faults);
  const SimMetrics m = sim.run({Demand{src, dst, 0}});
  EXPECT_EQ(m.delivered, 1);
  EXPECT_EQ(m.cycles, 4);
  EXPECT_EQ(m.link_forwards[static_cast<std::size_t>(blocked)], 0);
}

TEST(AdaptiveSim, DropsWhenEveryMinimalLinkIsFaulted) {
  Torus t(2, 6);
  const NodeId src = t.node_id(Coord{0, 0});
  const NodeId dst = t.node_id(Coord{2, 2});  // strictly +,+ minimal
  EdgeSet faults(t);
  for (i32 dim = 0; dim < 2; ++dim) {
    const EdgeId e = t.edge_id(src, dim, Dir::Pos);
    faults.insert(e);
    faults.insert(t.reverse_edge(e));
  }
  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue, &faults);
  const SimMetrics m = sim.run({Demand{src, dst, 0}});
  EXPECT_EQ(m.delivered, 0);
  EXPECT_EQ(m.unroutable, 1);
}

TEST(AdaptiveSim, SelfDemandDeliversImmediately) {
  Torus t(2, 4);
  AdaptiveNetworkSim sim(t, AdaptivePolicy::RandomMinimal);
  const SimMetrics m = sim.run({Demand{3, 3, 0}});
  EXPECT_EQ(m.delivered, 1);
  EXPECT_EQ(m.cycles, 0);
}

TEST(AdaptiveSim, ValidatesDemands) {
  Torus t(2, 4);
  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue);
  EXPECT_THROW(sim.run({Demand{0, 99, 0}}), Error);
  EXPECT_THROW(sim.run({Demand{0, 1, -1}}), Error);
}

TEST(AdaptiveSim, StaggeredInjection) {
  Torus t(1, 8);
  AdaptiveNetworkSim sim(t, AdaptivePolicy::LeastQueue);
  const SimMetrics m = sim.run({Demand{0, 1, 5}});
  EXPECT_EQ(m.cycles, 6);
  EXPECT_DOUBLE_EQ(m.mean_latency, 1.0);
}

}  // namespace
}  // namespace tp
