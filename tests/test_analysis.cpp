// Tests for the analysis helpers: table formatting and 2-D grid rendering.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/analysis/csv.h"
#include "src/analysis/grid_render.h"
#include "src/analysis/table.h"
#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Table, AlignedOutput) {
  Table table({"k", "E_max"});
  table.add_row({"4", "2.0"});
  table.add_row({"16", "8.0"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("k"), std::string::npos);
  EXPECT_NE(out.find("E_max"), std::string::npos);
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, MarkdownOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_markdown(os);
  EXPECT_EQ(os.str(), "| a | b |\n|---|---|\n| 1 | 2 |\n");
}

TEST(Table, RowWidthEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Fmt, Formats) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(7LL), "7");
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
}

TEST(GridRender, PlacementShowsProcessors) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);  // 3 processors on T_3^2
  const std::string grid = render_placement(t, p);
  // Exactly three processor markers.
  std::size_t count = 0, pos = 0;
  while ((pos = grid.find("[*]", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 3u);
  // And 9 - 3 = 6 empty nodes.
  count = 0;
  pos = 0;
  while ((pos = grid.find("[ ]", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 6u);
}

TEST(GridRender, LoadsAnnotateLinks) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  const LoadMap loads = odr_loads(t, p);
  const std::string grid = render_loads(t, p, loads);
  EXPECT_NE(grid.find("[*]"), std::string::npos);
  EXPECT_NE(grid.find("wrap link load"), std::string::npos);
}

TEST(GridRender, WrapLinksCarryTheirOwnLoads) {
  // Wrap loads must come from the actual wrap wires, not from the interior
  // links next to the border.  Put distinctive loads on one wrap wire per
  // dimension and nothing anywhere else.
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  LoadMap loads(t);
  // Dimension-1 wrap out of row 1: (1,3) -> (1,0), rendered as "~7.5~".
  loads.add(t.edge_id(t.node_id(Coord{1, 3}), 1, Dir::Pos), 7.5);
  // Dimension-0 wrap out of column 2: (3,2) -> (0,2), rendered in the
  // bottom "~x" row.
  loads.add(t.edge_id(t.node_id(Coord{3, 2}), 0, Dir::Pos), 9.5);
  const std::string grid = render_loads(t, p, loads);
  EXPECT_NE(grid.find("~7.5~"), std::string::npos) << grid;
  EXPECT_NE(grid.find("~9.5"), std::string::npos) << grid;
  // Every other annotation is 0.0: the distinctive values appear once.
  EXPECT_EQ(grid.find("7.5"), grid.rfind("7.5"));
  EXPECT_EQ(grid.find("9.5"), grid.rfind("9.5"));
}

TEST(GridRender, Requires2D) {
  Torus t(3, 3);
  const Placement p = linear_placement(t);
  EXPECT_THROW(render_placement(t, p), Error);
  EXPECT_THROW(render_loads(t, p, LoadMap(t)), Error);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, TableRoundTripText) {
  Table table({"k", "name"});
  table.add_row({"4", "linear,odd"});
  std::ostringstream os;
  write_csv(os, table);
  EXPECT_EQ(os.str(), "k,name\n4,\"linear,odd\"\n");
}

TEST(Csv, SaveToFileAndFailure) {
  Table table({"a"});
  table.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/tp_test.csv";
  save_csv(path, table);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  EXPECT_THROW(save_csv("/nonexistent_dir_xyz/out.csv", table), Error);
}

}  // namespace
}  // namespace tp
