// Tests for the bisection machinery:
//   * Theorem 1: the dimension cut bisects uniform placements with exactly
//     4 k^{d-1} directed links (k even)
//   * Proposition 1 / Appendix: the hyperplane sweep bisects any placement
//     crossing at most 2 d k^{d-1} array wires (6 d k^{d-1} directed links
//     with the wrap wires, Corollary 1)
//   * removing a bisection's links really disconnects the two sides
//   * the exact small-case optimum never exceeds the constructions

#include <gtest/gtest.h>

#include <cmath>

#include "src/bisection/cut.h"
#include "src/bisection/dimension_cut.h"
#include "src/bisection/exact_bisection.h"
#include "src/bisection/hyperplane_sweep.h"
#include "src/load/formulas.h"
#include "src/placement/placement.h"
#include "src/torus/graph.h"
#include "src/util/error.h"

namespace tp {
namespace {

// --- Cut basics --------------------------------------------------------------

TEST(Cut, SizesAndSplits) {
  Torus t(2, 4);
  // Side B = nodes with first coordinate in {1, 2}.
  std::vector<bool> side(static_cast<std::size_t>(t.num_nodes()), false);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    side[static_cast<std::size_t>(n)] =
        t.coord_of(n, 0) == 1 || t.coord_of(n, 0) == 2;
  Cut cut(t, side);
  EXPECT_EQ(cut.node_split(), (std::pair<i64, i64>{8, 8}));
  // Two layer boundaries, k wires each, 2 directions: 4k directed links.
  EXPECT_EQ(cut.directed_cut_size(t), 16);
  EXPECT_EQ(cut.undirected_cut_size(t), 8);
  const Placement p = linear_placement(t);
  EXPECT_TRUE(cut.bisects(t, p));
}

TEST(Cut, RemovingCrossingEdgesDisconnects) {
  Torus t(2, 4);
  std::vector<bool> side(static_cast<std::size_t>(t.num_nodes()), false);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    side[static_cast<std::size_t>(n)] = t.coord_of(n, 0) >= 2;
  Cut cut(t, side);
  EdgeSet removed = cut.crossing_edges(t);
  EXPECT_EQ(num_components(t, &removed), 2);
}

TEST(Cut, RejectsWrongSize) {
  Torus t(2, 3);
  EXPECT_THROW(Cut(t, std::vector<bool>(5, false)), Error);
}

// --- Theorem 1 ----------------------------------------------------------------

TEST(DimensionCut, Theorem1ExactWidthAndBalance) {
  for (i32 d = 2; d <= 4; ++d)
    for (i32 k : {4, 6, 8}) {
      if (d == 4 && k == 8) continue;  // keep runtime modest
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const auto result = best_dimension_cut(t, p);
      EXPECT_EQ(result.imbalance, 0) << "d=" << d << " k=" << k;
      EXPECT_EQ(result.directed_edges, uniform_bisection_width(k, d))
          << "d=" << d << " k=" << k;
      EXPECT_TRUE(result.cut.bisects(t, p));
    }
}

TEST(DimensionCut, WorksForMultipleLinearPlacements) {
  Torus t(3, 4);
  for (i32 tt = 1; tt <= 3; ++tt) {
    const Placement p = multiple_linear_placement(t, tt);
    const auto result = best_dimension_cut(t, p);
    EXPECT_EQ(result.imbalance, 0) << "t=" << tt;
    EXPECT_EQ(result.directed_edges, uniform_bisection_width(4, 3));
  }
}

TEST(DimensionCut, CutDisconnectsTheTorus) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  const auto result = best_dimension_cut(t, p);
  EdgeSet removed = result.cut.crossing_edges(t);
  EXPECT_EQ(num_components(t, &removed), 2);
}

TEST(DimensionCut, OddKLeavesBoundedImbalance) {
  // k odd: layers hold |P|/k processors each; the best two-boundary cut
  // leaves an imbalance of exactly one layer's worth.
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  const auto result = best_dimension_cut(t, p);
  EXPECT_EQ(result.imbalance, 1);  // |P| = 5 over layers of 1
  EXPECT_EQ(result.directed_edges, uniform_bisection_width(5, 2));
}

TEST(DimensionCut, NonUniformPlacementStillGetsBestEffort) {
  Torus t(2, 4);
  const Placement p = clustered_placement(t, 8);  // first two rows
  const auto result = best_dimension_cut(t, p);
  // Clustered into rows 0-1: a cut separating rows 0-1 from 2-3 balances
  // the nodes but puts all processors on one side along dim 0; along dim 1
  // the cluster is uniform, so the best cut balances exactly.
  EXPECT_EQ(result.imbalance, 0);
  EXPECT_TRUE(result.cut.bisects(t, p));
}

TEST(DimensionCut, InvalidDimensionThrows) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  EXPECT_THROW(dimension_cut(t, p, 2), Error);
  EXPECT_THROW(dimension_cut(t, p, -1), Error);
}

// --- Proposition 1 / Appendix ---------------------------------------------------

TEST(HyperplaneSweep, BisectsLinearPlacements) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5, 6}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const auto result = hyperplane_sweep_bisection(t, p);
      EXPECT_TRUE(result.cut.bisects(t, p)) << "d=" << d << " k=" << k;
      EXPECT_LE(result.array_crossings, sweep_separator_upper_bound(k, d))
          << "d=" << d << " k=" << k;
      EXPECT_LE(result.directed_edges, bisection_width_upper_bound(k, d))
          << "d=" << d << " k=" << k;
    }
}

TEST(HyperplaneSweep, BisectsArbitraryPlacements) {
  // Proposition 1 assumes nothing about P: try random and adversarial.
  Torus t(3, 4);
  for (u64 seed : {1u, 2u, 3u}) {
    const Placement p = random_placement(t, 21, seed);
    const auto result = hyperplane_sweep_bisection(t, p);
    const auto [a, b] = result.cut.processor_split(t, p);
    EXPECT_EQ(a, 10);  // floor(21/2) on the origin side
    EXPECT_EQ(b, 11);
    EXPECT_LE(result.array_crossings, sweep_separator_upper_bound(4, 3));
  }
  const Placement clustered = clustered_placement(t, 16);
  const auto result = hyperplane_sweep_bisection(t, clustered);
  EXPECT_TRUE(result.cut.bisects(t, clustered));
  EXPECT_LE(result.array_crossings, sweep_separator_upper_bound(4, 3));
}

TEST(HyperplaneSweep, GammaIsInTheProofInterval) {
  for (i32 d = 2; d <= 6; ++d) {
    const long double g = default_gamma(d);
    EXPECT_GT(g, 1.0L);
    EXPECT_LT(g, std::pow(2.0L, 1.0L / (d - 1)));
  }
}

TEST(HyperplaneSweep, CutDisconnects) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  const auto result = hyperplane_sweep_bisection(t, p);
  EdgeSet removed = result.cut.crossing_edges(t);
  EXPECT_GE(num_components(t, &removed), 2);
}

TEST(HyperplaneSweep, WorksInOneDimension) {
  Torus t(1, 8);
  const Placement p = full_population(t);
  const auto result = hyperplane_sweep_bisection(t, p);
  EXPECT_TRUE(result.cut.bisects(t, p));
}

TEST(HyperplaneSweep, EmptyPlacementRejected) {
  Torus t(2, 3);
  const Placement p(t, {}, "empty");
  EXPECT_THROW(hyperplane_sweep_bisection(t, p), Error);
}

// --- exact small cases -----------------------------------------------------------

TEST(ExactBisection, MatchesHandComputedRing) {
  // A ring of 6 nodes, all populated: the optimal bisection removes two
  // wires = 4 directed links.
  Torus t(1, 6);
  const auto result = exact_bisection(t, full_population(t));
  EXPECT_EQ(result.directed_edges, 4);
  EXPECT_TRUE(result.cut.bisects(t, full_population(t)));
}

TEST(ExactBisection, FullyPopulated2DTorus) {
  // T_4^2 fully populated: bisection width is 4k^{d-1} directed = 16.
  Torus t(2, 4);
  const auto result = exact_bisection(t, full_population(t));
  EXPECT_EQ(result.directed_edges, 16);
}

TEST(ExactBisection, NeverExceedsConstructions) {
  // The exact optimum is at most the Theorem 1 cut and the sweep cut.
  for (i32 k : {3, 4}) {
    Torus t(2, k);
    const Placement p = linear_placement(t);
    const auto exact = exact_bisection(t, p);
    EXPECT_LE(exact.directed_edges,
              best_dimension_cut(t, p).directed_edges);
    EXPECT_LE(exact.directed_edges,
              hyperplane_sweep_bisection(t, p).directed_edges);
    EXPECT_TRUE(exact.cut.bisects(t, p));
  }
}

TEST(ExactBisection, SparsePlacementCanBeCheaperThanTheTorusBisection) {
  // With only two processors, splitting them apart needs far fewer links
  // than bisecting the whole torus — the paper's motivation for defining
  // bisection width *with respect to a placement*.
  Torus t(2, 4);
  const Placement p(t, {t.node_id(Coord{0, 0}), t.node_id(Coord{2, 2})},
                    "two");
  const auto result = exact_bisection(t, p);
  EXPECT_LE(result.directed_edges, 8);
  const auto full = exact_bisection(t, full_population(t));
  EXPECT_LT(result.directed_edges, full.directed_edges);
}

TEST(ExactBisection, SizeGuard) {
  Torus t(3, 3);  // 27 nodes > 24
  EXPECT_THROW(exact_bisection(t, full_population(t)), Error);
}

}  // namespace
}  // namespace tp
