// Tests for the concrete bound calculators (Lemma 1, eqs. (1)/(8)/(9),
// Section 4) instantiated on real tori and placements.

#include <gtest/gtest.h>

#include "src/bounds/lower_bounds.h"
#include "src/bounds/optimal_size.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(BlaumBound, MatchesFormula) {
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const BoundValue b = blaum_bound(t, p);
  EXPECT_TRUE(b.applicable);
  EXPECT_DOUBLE_EQ(b.value, blaum_lower_bound(16, 3));
}

TEST(BlaumBound, TrivialForTinyPlacements) {
  Torus t(2, 3);
  const Placement p(t, {0}, "single");
  EXPECT_DOUBLE_EQ(blaum_bound(t, p).value, 0.0);
}

TEST(SeparatorBound, SingletonRecoversBlaum) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  const BoundValue b = separator_bound(t, p, {p.nodes()[0]});
  EXPECT_TRUE(b.applicable);
  // |S| = 1 processor, |dS| = 4d boundary links around one node.
  EXPECT_DOUBLE_EQ(b.value, blaum_lower_bound(p.size(), 2));
}

TEST(SeparatorBound, LargerSubsetsTightenTheBoundInHighDimensions) {
  // The bisection-style subset only beats the singleton (Blaum) bound once
  // 2d outgrows the constant 8 of the c^2 k^{d-1}/8 form — i.e. for d >= 5
  // (the Section 4 motivation).  Check the crossover concretely at d = 5.
  Torus t(5, 3);
  const Placement p = linear_placement(t);  // |P| = 81
  std::vector<NodeId> layer0;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.coord_of(n, 0) == 0) layer0.push_back(n);
  const BoundValue b = separator_bound(t, p, layer0);
  EXPECT_TRUE(b.applicable);
  EXPECT_GT(b.value, blaum_bound(t, p).value);  // 9 > 80/10
}

TEST(SeparatorBound, MeasuredLoadRespectsIt) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  std::vector<NodeId> half;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.coord_of(n, 0) < 3) half.push_back(n);
  const BoundValue b = separator_bound(t, p, half);
  EXPECT_GE(odr_loads(t, p).max_load(), b.value - 1e-9);
  EXPECT_GE(udr_loads(t, p).max_load(), b.value - 1e-9);
}

TEST(SeparatorBound, WholeTorusNotApplicable) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  const BoundValue b = separator_bound(t, p, t.all_nodes());
  EXPECT_FALSE(b.applicable);
}

TEST(BisectionBound, UsesTheorem1ForUniformPlacements) {
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const BoundValue b = bisection_bound(t, p);
  EXPECT_TRUE(b.applicable);
  EXPECT_EQ(b.note, "dimension cut (Theorem 1)");
  EXPECT_DOUBLE_EQ(b.value,
                   bisection_lower_bound(16, uniform_bisection_width(4, 3)));
}

TEST(BisectionBound, FallsBackToSweepWhenLayersCannotBalance) {
  // A placement deliberately unbalanced along every dimension: two
  // processors in one corner cell and one elsewhere (odd count, clustered).
  Torus t(2, 4);
  const Placement p(t, {0, 1, 5}, "lopsided");
  const BoundValue b = bisection_bound(t, p);
  EXPECT_TRUE(b.applicable);
  // Whichever construction was used, a measured load respects the bound.
  EXPECT_GE(odr_loads(t, p).max_load(), b.value - 1e-9);
}

TEST(ImprovedBound, AppliesToUniformPlacements) {
  Torus t(3, 4);
  const BoundValue b = improved_bound(t, linear_placement(t));
  EXPECT_TRUE(b.applicable);
  EXPECT_DOUBLE_EQ(b.value, improved_lower_bound(1.0, 4, 3));
}

TEST(ImprovedBound, ScalesWithMultiplicity) {
  Torus t(3, 4);
  const BoundValue b1 = improved_bound(t, multiple_linear_placement(t, 1));
  const BoundValue b2 = improved_bound(t, multiple_linear_placement(t, 2));
  EXPECT_DOUBLE_EQ(b2.value, 4.0 * b1.value);  // c doubles, bound is c^2
}

TEST(ImprovedBound, RejectsNonUniformPlacements) {
  Torus t(2, 4);
  // Three nodes of one row: non-uniform along both dimensions.
  EXPECT_FALSE(improved_bound(t, Placement(t, {0, 1, 2}, "bad")).applicable);
  Torus mixed(Radices{3, 4});
  const Placement p(mixed, {0, 5}, "mixed");
  EXPECT_FALSE(improved_bound(mixed, p).applicable);
}

TEST(ImprovedBound, OneUniformDimensionSuffices) {
  // The paper's remark after Theorem 1: uniformity along a single
  // dimension already yields the 4k^{d-1} bisection.  A full row of T_4^2
  // is uniform along dim 1 only — still applicable.
  Torus t(2, 4);
  EXPECT_TRUE(improved_bound(t, clustered_placement(t, 4)).applicable);
}

TEST(AllBounds, BestIsTheMaxOfApplicable) {
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const auto bounds = all_bounds(t, p);
  ASSERT_EQ(bounds.size(), 4u);
  double expected = 0.0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
    if (bounds[i].applicable) expected = std::max(expected, bounds[i].value);
  EXPECT_DOUBLE_EQ(bounds.back().value, expected);
  EXPECT_DOUBLE_EQ(best_lower_bound(t, p), expected);
}

TEST(AllBounds, MeasuredLoadsRespectBest) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 5, 6}) {
      Torus t(d, k);
      for (i32 tt = 1; tt <= 2; ++tt) {
        const Placement p = multiple_linear_placement(t, tt);
        const double bound = best_lower_bound(t, p);
        EXPECT_GE(odr_loads(t, p).max_load(), bound - 1e-9)
            << "d=" << d << " k=" << k << " t=" << tt;
        EXPECT_GE(udr_loads(t, p).max_load(), bound - 1e-9)
            << "d=" << d << " k=" << k << " t=" << tt;
      }
    }
}

// --- optimal size (eq. 9) -----------------------------------------------------

TEST(OptimalSize, CeilingMatchesFormula) {
  Torus t(3, 4);
  EXPECT_DOUBLE_EQ(placement_size_ceiling(t, 0.5),
                   max_placement_size(0.5, 4, 3));
}

TEST(OptimalSize, LinearPlacementsFitUnderTheCeiling) {
  // With the measured c1 = 1/2 for ODR on linear placements, eq. (9)
  // allows up to 12d * (1/2) * k^{d-1} = 6d k^{d-1} processors; the linear
  // placement's k^{d-1} is comfortably below.
  for (i32 d = 2; d <= 4; ++d) {
    Torus t(d, 4);
    const Placement p = linear_placement(t);
    EXPECT_LT(static_cast<double>(p.size()), placement_size_ceiling(t, 0.5));
  }
}

TEST(OptimalSize, FittedCoefficientIsTheWorstRatio) {
  std::vector<ScalingPoint> pts{{4, 16, 8.0}, {6, 36, 18.0}, {8, 64, 40.0}};
  EXPECT_DOUBLE_EQ(fitted_load_coefficient(pts), 40.0 / 64.0);
  EXPECT_THROW(fitted_load_coefficient({}), Error);
}

TEST(OptimalSize, LinearityDetector) {
  // Constant ratio: linear.
  std::vector<ScalingPoint> linear{{4, 16, 8.0}, {6, 36, 18.0}, {8, 64, 32.0}};
  EXPECT_TRUE(is_load_linear(linear));
  // Ratio doubling with size: not linear.
  std::vector<ScalingPoint> quad{{4, 16, 8.0}, {6, 36, 40.0}, {8, 64, 150.0}};
  EXPECT_FALSE(is_load_linear(quad));
  EXPECT_THROW(is_load_linear({{4, 16, 8.0}}), Error);
  EXPECT_THROW(is_load_linear(linear, 0.5), Error);
}

TEST(OptimalSize, FullPopulationFailsLinearity) {
  // The motivating fact: fully populated tori have superlinear load.
  std::vector<ScalingPoint> pts;
  for (i32 k : {4, 6, 8, 10}) {
    Torus t(2, k);
    const Placement p = full_population(t);
    pts.push_back({k, p.size(), odr_loads(t, p).max_load()});
  }
  EXPECT_FALSE(is_load_linear(pts));
}

TEST(OptimalSize, LinearPlacementPassesLinearity) {
  std::vector<ScalingPoint> pts;
  for (i32 k : {4, 6, 8, 10}) {
    Torus t(2, k);
    const Placement p = linear_placement(t);
    pts.push_back({k, p.size(), odr_loads(t, p).max_load()});
  }
  EXPECT_TRUE(is_load_linear(pts));
}

}  // namespace
}  // namespace tp
