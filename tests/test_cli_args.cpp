// Tests for the CLI option parser.

#include <gtest/gtest.h>

#include "tools/cli_args.h"

namespace tp::cli {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(CliArgs, ParsesSpaceAndEqualsForms) {
  std::vector<std::string> storage{"prog", "cmd", "--d", "3", "--k=8"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"d", "k"});
  EXPECT_TRUE(args.has("d"));
  EXPECT_EQ(args.get_int("d", 0), 3);
  EXPECT_EQ(args.get_int("k", 0), 8);
  EXPECT_FALSE(args.has("t"));
  EXPECT_EQ(args.get_int("t", 7), 7);
  EXPECT_EQ(args.get("missing", "x"), "x");
}

TEST(CliArgs, CollectsPositionals) {
  std::vector<std::string> storage{"prog", "cmd", "pos1", "--d", "2", "pos2"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"d"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(CliArgs, RejectsUnknownOptions) {
  std::vector<std::string> storage{"prog", "cmd", "--bogus", "1"};
  auto argv = argv_of(storage);
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data(), 2, {"d"}),
               Error);
}

TEST(CliArgs, RejectsMissingValue) {
  std::vector<std::string> storage{"prog", "cmd", "--d"};
  auto argv = argv_of(storage);
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data(), 2, {"d"}),
               Error);
}

TEST(CliArgs, EqualsFormWithStringValue) {
  std::vector<std::string> storage{"prog", "cmd", "--placement=linear:2"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"placement"});
  EXPECT_EQ(args.get("placement"), "linear:2");
}

}  // namespace
}  // namespace tp::cli
