// Tests for the CLI option parser.

#include <gtest/gtest.h>

#include "tools/cli_args.h"

namespace tp::cli {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(CliArgs, ParsesSpaceAndEqualsForms) {
  std::vector<std::string> storage{"prog", "cmd", "--d", "3", "--k=8"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"d", "k"});
  EXPECT_TRUE(args.has("d"));
  EXPECT_EQ(args.get_int("d", 0), 3);
  EXPECT_EQ(args.get_int("k", 0), 8);
  EXPECT_FALSE(args.has("t"));
  EXPECT_EQ(args.get_int("t", 7), 7);
  EXPECT_EQ(args.get("missing", "x"), "x");
}

TEST(CliArgs, CollectsPositionals) {
  std::vector<std::string> storage{"prog", "cmd", "pos1", "--d", "2", "pos2"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"d"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(CliArgs, RejectsUnknownOptions) {
  std::vector<std::string> storage{"prog", "cmd", "--bogus", "1"};
  auto argv = argv_of(storage);
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data(), 2, {"d"}),
               Error);
}

TEST(CliArgs, RejectsMissingValue) {
  std::vector<std::string> storage{"prog", "cmd", "--d"};
  auto argv = argv_of(storage);
  EXPECT_THROW(Args(static_cast<int>(argv.size()), argv.data(), 2, {"d"}),
               Error);
}

TEST(CliArgs, EqualsFormWithStringValue) {
  std::vector<std::string> storage{"prog", "cmd", "--placement=linear:2"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"placement"});
  EXPECT_EQ(args.get("placement"), "linear:2");
}

TEST(CliArgs, FlagsNeverConsumeTheNextToken) {
  std::vector<std::string> storage{"prog", "cmd", "--verbose", "--d", "3"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {"d"},
            {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int("d", 0), 3);  // not eaten by --verbose
}

TEST(CliArgs, FlagWithEqualsValueAndBareFallback) {
  std::vector<std::string> storage{"prog", "cmd", "--top=5"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {}, {"top"});
  EXPECT_EQ(args.get_int("top", 10), 5);

  std::vector<std::string> bare_storage{"prog", "cmd", "--top"};
  auto bare_argv = argv_of(bare_storage);
  Args bare(static_cast<int>(bare_argv.size()), bare_argv.data(), 2, {},
            {"top"});
  EXPECT_TRUE(bare.has("top"));
  EXPECT_EQ(bare.get_int("top", 10), 10);  // bare flag -> fallback value
}

TEST(CliArgs, MalformedOptionsThrowUsageErrorSpecifically) {
  // The distinct exception type is what maps bad command lines to exit
  // code 2 instead of 3 — pin it, not just the Error base.
  std::vector<std::string> unknown_storage{"prog", "cmd", "--bogus", "1"};
  auto unknown_argv = argv_of(unknown_storage);
  EXPECT_THROW(Args(static_cast<int>(unknown_argv.size()),
                    unknown_argv.data(), 2, {"d"}),
               UsageError);

  std::vector<std::string> missing_storage{"prog", "cmd", "--d"};
  auto missing_argv = argv_of(missing_storage);
  EXPECT_THROW(Args(static_cast<int>(missing_argv.size()),
                    missing_argv.data(), 2, {"d"}),
               UsageError);
}

TEST(CliExitCodes, UsageErrorExitsTwo) {
  const int rc = run_guarded(0, nullptr, [](int, char**) -> int {
    throw UsageError("unknown option --bogus");
  });
  EXPECT_EQ(rc, kExitUsage);
  EXPECT_EQ(rc, 2);
}

TEST(CliExitCodes, InternalRequireFailureExitsThree) {
  const int rc = run_guarded(0, nullptr, [](int, char**) -> int {
    TP_REQUIRE(false, "simulated internal invariant failure");
    return 0;
  });
  EXPECT_EQ(rc, kExitInternal);
  EXPECT_EQ(rc, 3);
}

TEST(CliExitCodes, NormalReturnPassesThrough) {
  const int rc = run_guarded(0, nullptr, [](int, char**) { return 0; });
  EXPECT_EQ(rc, kExitOk);
}

TEST(CliArgs, BareFlagAtEndOfLine) {
  std::vector<std::string> storage{"prog", "cmd", "--measured"};
  auto argv = argv_of(storage);
  Args args(static_cast<int>(argv.size()), argv.data(), 2, {},
            {"measured"});
  EXPECT_TRUE(args.has("measured"));
}

}  // namespace
}  // namespace tp::cli
