// Tests for the core public API: the placement planner, the linear-load
// verifier, and router construction.

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/core/verifier.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Planner, MakeRouterNames) {
  EXPECT_EQ(make_router(RouterKind::Odr)->name(), "ODR");
  EXPECT_EQ(make_router(RouterKind::Udr)->name(), "UDR");
  EXPECT_EQ(make_router(RouterKind::Adaptive)->name(), "ADAPTIVE");
}

TEST(Planner, OdrPlanPredictsInteriorFormAt3D) {
  Torus t(3, 8);
  const PlacementPlan plan = plan_placement(t, 1, RouterKind::Odr);
  EXPECT_EQ(plan.placement.size(), 64);
  EXPECT_TRUE(plan.prediction_exact);
  EXPECT_DOUBLE_EQ(plan.predicted_emax, odr_linear_emax(8, 3));
  EXPECT_GT(plan.lower_bound, 0.0);
  EXPECT_FALSE(plan.summary.empty());
}

TEST(Planner, MeasuredLoadWithinPredictedBound) {
  for (RouterKind kind : {RouterKind::Odr, RouterKind::Udr}) {
    for (i32 tt = 1; tt <= 2; ++tt) {
      Torus t(3, 4);
      const PlacementPlan plan = plan_placement(t, tt, kind);
      const double measured = measure_emax(t, plan);
      if (!plan.prediction_exact) {
        EXPECT_LE(measured, plan.predicted_emax + 1e-9);
      }
      EXPECT_GE(measured, plan.lower_bound - 1e-9);
    }
  }
}

TEST(Planner, TwoDimensionalPlanUsesUpperBound) {
  Torus t(2, 6);
  const PlacementPlan plan = plan_placement(t, 1, RouterKind::Odr);
  EXPECT_FALSE(plan.prediction_exact);  // closed form needs d >= 3
  EXPECT_DOUBLE_EQ(plan.predicted_emax, odr_linear_emax_upper(6, 2));
}

TEST(Planner, AdaptiveKindMeasures) {
  Torus t(2, 4);
  const PlacementPlan plan = plan_placement(t, 1, RouterKind::Adaptive);
  const double measured = measure_emax(t, plan);
  EXPECT_GT(measured, 0.0);
  EXPECT_LE(measured, plan.predicted_emax + 1e-9);
}

TEST(Planner, ValidatesArguments) {
  Torus t(2, 4);
  EXPECT_THROW(plan_placement(t, 0), Error);
  EXPECT_THROW(plan_placement(t, 5), Error);
  Torus mixed(Radices{3, 4});
  EXPECT_THROW(plan_placement(mixed, 1), Error);
}

TEST(Planner, MeasureLoadsMatchesDirectCalls) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  EXPECT_LT(measure_loads(t, p, RouterKind::Odr).max_abs_diff(odr_loads(t, p)),
            1e-12);
  EXPECT_LT(measure_loads(t, p, RouterKind::Udr).max_abs_diff(udr_loads(t, p)),
            1e-12);
  EXPECT_LT(measure_loads(t, p, RouterKind::Adaptive)
                .max_abs_diff(adaptive_loads(t, p)),
            1e-12);
}

TEST(Verifier, CertifiesLinearPlacementFamily) {
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  const VerificationReport report =
      verify_linear_load(2, {4, 6, 8, 10}, family, RouterKind::Odr);
  EXPECT_TRUE(report.linear);
  EXPECT_DOUBLE_EQ(report.c1, 0.5);  // floor(k/2) / k = 1/2 for even k
  EXPECT_EQ(report.points.size(), 4u);
  EXPECT_EQ(report.router_name, "ODR");
  EXPECT_EQ(report.family_name, "linear(c=0)");
}

TEST(Verifier, RejectsFullPopulationFamily) {
  const auto family = [](const Torus& torus) {
    return full_population(torus);
  };
  const VerificationReport report =
      verify_linear_load(2, {4, 6, 8, 10}, family, RouterKind::Odr);
  EXPECT_FALSE(report.linear);
}

TEST(Verifier, UdrFamilyIsLinearToo) {
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  const VerificationReport report =
      verify_linear_load(2, {4, 6, 8}, family, RouterKind::Udr);
  EXPECT_TRUE(report.linear);
  EXPECT_LE(report.c1, 0.5 + 1e-9);
}

TEST(Verifier, LinearFamilyIsDimensionIndependent) {
  // The paper's Section 2 "desirable case": with the linear placement and
  // ODR, the load coefficient c1 = 1/2 does not grow with d.
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  const DimensionReport report = verify_dimension_independence(
      {2, 3, 4}, {4, 6}, family, RouterKind::Odr);
  EXPECT_TRUE(report.d_independent);
  EXPECT_NEAR(report.worst_c1, 0.5, 1e-9);
  ASSERT_EQ(report.per_dimension.size(), 3u);
  for (const VerificationReport& vr : report.per_dimension)
    EXPECT_NEAR(vr.c1, 0.5, 1e-9);
}

TEST(Verifier, FullPopulationIsNotDimensionIndependent) {
  const auto family = [](const Torus& torus) {
    return full_population(torus);
  };
  const DimensionReport report = verify_dimension_independence(
      {2, 3}, {4, 6, 8}, family, RouterKind::Odr);
  EXPECT_FALSE(report.d_independent);
}

TEST(Verifier, DimensionIndependenceValidation) {
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  EXPECT_THROW(
      verify_dimension_independence({}, {4}, family, RouterKind::Odr),
      Error);
  EXPECT_THROW(
      verify_dimension_independence({2}, {4}, family, RouterKind::Odr, 0.5),
      Error);
}

TEST(Verifier, NeedsAtLeastOneK) {
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  EXPECT_THROW(verify_linear_load(2, {}, family, RouterKind::Odr), Error);
}

}  // namespace
}  // namespace tp
