// Tests for the channel-dependency-graph deadlock analysis:
//   * cycle detector sanity
//   * on a torus, even ODR's *physical* CDG is cyclic (the wrap-around)
//   * with dateline virtual channels ODR becomes deadlock-free
//   * UDR stays cyclic even with datelines (the cost of unordered
//     dimension correction)

#include <gtest/gtest.h>

#include "src/placement/placement.h"
#include "src/routing/deadlock.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"

namespace tp {
namespace {

TEST(HasCycle, DetectorSanity) {
  ChannelGraph acyclic;
  acyclic.adj = {{1}, {2}, {}};
  EXPECT_FALSE(has_cycle(acyclic));
  EXPECT_EQ(acyclic.num_dependencies(), 2);

  ChannelGraph cyclic;
  cyclic.adj = {{1}, {2}, {0}};
  EXPECT_TRUE(has_cycle(cyclic));

  ChannelGraph self_loop;
  self_loop.adj = {{0}};
  EXPECT_TRUE(has_cycle(self_loop));

  ChannelGraph empty;
  EXPECT_FALSE(has_cycle(empty));

  ChannelGraph diamond;  // acyclic despite converging paths
  diamond.adj = {{1, 2}, {3}, {3}, {}};
  EXPECT_FALSE(has_cycle(diamond));
}

TEST(PhysicalCdg, OdrIsCyclicOnTheTorus) {
  // The wrap-around closes each ring: full population guarantees paths all
  // the way around, so the physical CDG has a cycle even for ODR.
  Torus t(2, 4);
  OdrRouter odr;
  const Placement p = full_population(t);
  EXPECT_TRUE(has_cycle(physical_channel_graph(t, p, odr)));
}

TEST(DatelineCdg, OdrIsDeadlockFree) {
  OdrRouter odr;
  for (i32 d = 1; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      const Placement p = full_population(t);
      EXPECT_TRUE(deadlock_free_with_datelines(t, p, odr))
          << "d=" << d << " k=" << k;
    }
}

TEST(DatelineCdg, OdrOnLinearPlacementsIsDeadlockFree) {
  OdrRouter odr;
  for (i32 k : {4, 5, 6}) {
    Torus t(3, k);
    EXPECT_TRUE(deadlock_free_with_datelines(t, linear_placement(t), odr))
        << "k=" << k;
  }
}

TEST(DatelineCdg, CustomOrderOdrIsAlsoDeadlockFree) {
  // Any fixed dimension order is deadlock-free — the order just relabels
  // the dimension hierarchy.
  Torus t(3, 4);
  OdrRouter reversed(SmallVec<i32>{2, 1, 0});
  EXPECT_TRUE(
      deadlock_free_with_datelines(t, full_population(t), reversed));
}

TEST(DatelineCdg, UdrIsCyclic) {
  // Unordered correction lets dimension i wait on j and vice versa: the
  // dateline scheme cannot break those cross-dimension cycles.
  Torus t(2, 4);
  UdrRouter udr;
  EXPECT_FALSE(deadlock_free_with_datelines(t, full_population(t), udr));
}

TEST(DatelineCdg, UdrOnOneDimensionalTorusIsFine) {
  // With a single dimension UDR degenerates to ODR.
  Torus t(1, 6);
  UdrRouter udr;
  EXPECT_TRUE(deadlock_free_with_datelines(t, full_population(t), udr));
}

TEST(Cdg, DependencyCountsAreReasonable) {
  Torus t(2, 4);
  OdrRouter odr;
  const Placement p = linear_placement(t);
  const ChannelGraph physical = physical_channel_graph(t, p, odr);
  const ChannelGraph dateline = dateline_channel_graph(t, p, odr);
  EXPECT_EQ(static_cast<i64>(physical.adj.size()), t.num_directed_edges());
  EXPECT_EQ(static_cast<i64>(dateline.adj.size()),
            2 * t.num_directed_edges());
  EXPECT_GT(physical.num_dependencies(), 0);
  // Splitting channels never loses dependencies.
  EXPECT_GE(dateline.num_dependencies(), physical.num_dependencies());
}

}  // namespace
}  // namespace tp
