// Tests for the edge-disjoint-path fault-tolerance metric.

#include <gtest/gtest.h>

#include "src/placement/placement.h"
#include "src/routing/adaptive.h"
#include "src/routing/disjoint.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Disjoint, OdrIsAlwaysOne) {
  Torus t(3, 5);
  OdrRouter odr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  for (NodeId q : {t.node_id(Coord{1, 0, 0}), t.node_id(Coord{1, 2, 0}),
                   t.node_id(Coord{2, 1, 2})})
    EXPECT_EQ(max_edge_disjoint_paths(t, odr, p, q), 1);
}

TEST(Disjoint, UdrEqualsNumberOfDifferingDimensions) {
  // The s! UDR paths funnel through s distinct first links, so exactly s
  // of them are pairwise edge-disjoint.
  Torus t(3, 5);
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  EXPECT_EQ(max_edge_disjoint_paths(t, udr, p, t.node_id(Coord{2, 0, 0})),
            1);
  EXPECT_EQ(max_edge_disjoint_paths(t, udr, p, t.node_id(Coord{2, 1, 0})),
            2);
  EXPECT_EQ(max_edge_disjoint_paths(t, udr, p, t.node_id(Coord{2, 1, 1})),
            3);
}

TEST(Disjoint, AdaptiveMatchesUdrWithoutTies) {
  // Without tie dimensions the source still has only s usable outgoing
  // links, so fully adaptive routing cannot beat s either.
  Torus t(2, 5);
  AdaptiveMinimalRouter adaptive;
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0});
  const NodeId q = t.node_id(Coord{2, 1});
  EXPECT_EQ(max_edge_disjoint_paths(t, adaptive, p, q), 2);
  EXPECT_EQ(max_edge_disjoint_paths(t, udr, p, q), 2);
}

TEST(Disjoint, TiesDoubleTheAdaptiveConnectivity) {
  // A tie dimension contributes both directions: with both coordinates at
  // distance k/2 the adaptive set has 2s disjoint routes.
  Torus t(2, 4);
  AdaptiveMinimalRouter adaptive;
  const NodeId p = t.node_id(Coord{0, 0});
  const NodeId q = t.node_id(Coord{2, 2});  // ties in both dimensions
  EXPECT_EQ(max_edge_disjoint_paths(t, adaptive, p, q), 4);
  // UDR with the canonical tie-break keeps one direction per dim: still 2.
  UdrRouter udr;
  EXPECT_EQ(max_edge_disjoint_paths(t, udr, p, q), 2);
  // ... and with both directions allowed it matches adaptive.
  UdrRouter both(TieBreak::BothDirections);
  EXPECT_EQ(max_edge_disjoint_paths(t, both, p, q), 4);
}

TEST(Disjoint, SelfPairIsZero) {
  Torus t(2, 4);
  OdrRouter odr;
  EXPECT_EQ(max_edge_disjoint_paths(t, odr, 3, 3), 0);
}

TEST(Disjoint, PlacementConnectivity) {
  // Two distinct processors of a 2-D linear placement can never share a
  // coordinate (sharing one forces equality through the placement
  // equation), so every pair differs in both dimensions: UDR's guaranteed
  // survivable failure count over the whole placement is 2, while ODR's
  // single path yields 1.  In 3-D pairs *can* share one coordinate, so
  // the worst case stays 2.
  for (i32 k : {4, 5}) {
    Torus t(2, k);
    const Placement p = linear_placement(t);
    EXPECT_EQ(placement_disjoint_connectivity(t, p, OdrRouter()), 1);
    EXPECT_EQ(placement_disjoint_connectivity(t, p, UdrRouter()), 2);
  }
  Torus t3(3, 4);
  EXPECT_EQ(
      placement_disjoint_connectivity(t3, linear_placement(t3), UdrRouter()),
      2);
}

TEST(Disjoint, Validation) {
  Torus t(2, 4);
  OdrRouter odr;
  EXPECT_THROW(max_edge_disjoint_paths(t, odr, -1, 0), Error);
  const Placement single(t, {0}, "one");
  EXPECT_THROW(placement_disjoint_connectivity(t, single, odr), Error);
}

}  // namespace
}  // namespace tp
