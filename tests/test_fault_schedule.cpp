// Dynamic fault timelines (FaultSchedule / FaultClock) and the
// simulators' retry/reroute recovery built on top of them.

#include <gtest/gtest.h>

#include <vector>

#include "src/obs/linkprobe.h"
#include "src/placement/placement.h"
#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/simulate/adaptive_sim.h"
#include "src/simulate/fault_schedule.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"
#include "src/simulate/wormhole.h"
#include "src/util/error.h"

namespace tp {
namespace {

EdgeId wire_of(const Torus& t, NodeId node, i32 dim) {
  return t.undirected_id(t.edge_id(node, dim, Dir::Pos));
}

TEST(FaultSchedule, FromEventsSortsStablyAndValidates) {
  Torus t(2, 3);
  const EdgeId w0 = wire_of(t, 0, 0);
  const EdgeId w1 = wire_of(t, 0, 1);
  const FaultSchedule s = FaultSchedule::from_events(
      t, {{7, w1, FaultEventKind::Repair},
          {2, w0, FaultEventKind::Fail},
          {7, w0, FaultEventKind::Fail},
          {2, w1, FaultEventKind::Fail}});
  ASSERT_EQ(static_cast<i64>(s.events().size()), 4);
  // Sorted by cycle; same-cycle events keep their given order.
  EXPECT_EQ(s.events()[0].wire, w0);
  EXPECT_EQ(s.events()[1].wire, w1);
  EXPECT_EQ(s.events()[2].wire, w1);
  EXPECT_EQ(s.events()[3].wire, w0);
  EXPECT_EQ(s.last_cycle(), 7);
  EXPECT_EQ(s.num_failures(), 3);
  EXPECT_EQ(s.num_repairs(), 1);

  // Negative cycles and non-canonical wires are rejected.
  EXPECT_THROW(
      FaultSchedule::from_events(t, {{-1, w0, FaultEventKind::Fail}}), Error);
  const EdgeId non_canonical = t.reverse_edge(w0) == w0
                                   ? w0 + 1  // unreachable on a torus
                                   : t.reverse_edge(w0);
  if (t.undirected_id(non_canonical) != non_canonical) {
    EXPECT_THROW(FaultSchedule::from_events(
                     t, {{0, non_canonical, FaultEventKind::Fail}}),
                 Error);
  }
  EXPECT_THROW(FaultSchedule::from_events(
                   t, {{0, t.num_directed_edges(), FaultEventKind::Fail}}),
               Error);
}

TEST(FaultSchedule, EmptyScheduleDisablesRecovery) {
  const FaultSchedule empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.last_cycle(), 0);
  RecoveryConfig recovery;
  EXPECT_FALSE(recovery.enabled());
  recovery.schedule = &empty;
  EXPECT_FALSE(recovery.enabled());
}

TEST(FaultSchedule, SingleWireIsOnePermanentFailure) {
  Torus t(2, 4);
  const EdgeId w = wire_of(t, 3, 1);
  const FaultSchedule s = FaultSchedule::single_wire(t, w, 5);
  ASSERT_EQ(static_cast<i64>(s.events().size()), 1);
  EXPECT_EQ(s.events()[0].cycle, 5);
  EXPECT_EQ(s.events()[0].wire, w);
  EXPECT_EQ(s.events()[0].kind, FaultEventKind::Fail);
  EXPECT_EQ(s.num_repairs(), 0);
  // A non-canonical id is canonicalized, not rejected.
  const FaultSchedule via_rev = FaultSchedule::single_wire(t, t.reverse_edge(w));
  EXPECT_EQ(via_rev.events()[0].wire, w);
}

TEST(FaultSchedule, BernoulliIsDeterministicAndWellFormed) {
  Torus t(2, 4);
  const FaultSchedule a = FaultSchedule::bernoulli(t, 0.05, 0.2, 50, 11);
  const FaultSchedule b = FaultSchedule::bernoulli(t, 0.05, 0.2, 50, 11);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].cycle, b.events()[i].cycle);
    EXPECT_EQ(a.events()[i].wire, b.events()[i].wire);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
  i64 prev = 0;
  for (const FaultEvent& ev : a.events()) {
    EXPECT_GE(ev.cycle, prev);
    EXPECT_LT(ev.cycle, 50);
    EXPECT_EQ(t.undirected_id(ev.wire), ev.wire);
    prev = ev.cycle;
  }
  // Rate 0 is silence; rate 1 with no repair fails every wire exactly once.
  EXPECT_TRUE(FaultSchedule::bernoulli(t, 0.0, 0.0, 50, 1).empty());
  const FaultSchedule all = FaultSchedule::bernoulli(t, 1.0, 0.0, 50, 1);
  EXPECT_EQ(all.num_failures(), t.num_undirected_edges());
  EXPECT_EQ(all.num_repairs(), 0);
  EXPECT_THROW(FaultSchedule::bernoulli(t, 1.5, 0.0, 10, 1), Error);
  EXPECT_THROW(FaultSchedule::bernoulli(t, 0.1, -0.1, 10, 1), Error);
  EXPECT_THROW(FaultSchedule::bernoulli(t, 0.1, 0.1, -1, 1), Error);
}

TEST(FaultSchedule, PeriodicAlternatesFailAndRepairPerWire) {
  Torus t(1, 6);
  const i64 mtbf = 7, mttr = 3, horizon = 40;
  const FaultSchedule s = FaultSchedule::periodic(t, mtbf, mttr, horizon, 3);
  const FaultSchedule same = FaultSchedule::periodic(t, mtbf, mttr, horizon, 3);
  EXPECT_EQ(s.events().size(), same.events().size());
  // Per wire the timeline strictly alternates Fail, Repair, Fail, ...
  // with the configured outage length.
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e) {
    if (t.undirected_id(e) != e) continue;
    std::vector<FaultEvent> mine;
    for (const FaultEvent& ev : s.events())
      if (ev.wire == e) mine.push_back(ev);
    ASSERT_FALSE(mine.empty());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const bool expect_fail = i % 2 == 0;
      EXPECT_EQ(mine[i].kind == FaultEventKind::Fail, expect_fail);
      if (i > 0 && expect_fail) {
        EXPECT_EQ(mine[i].cycle - mine[i - 1].cycle, mtbf);
      }
      if (!expect_fail) {
        EXPECT_EQ(mine[i].cycle - mine[i - 1].cycle, mttr);
      }
    }
  }
  EXPECT_THROW(FaultSchedule::periodic(t, 0, 1, 10, 1), Error);
  EXPECT_THROW(FaultSchedule::periodic(t, 1, 0, 10, 1), Error);
}

TEST(FaultClock, ReplaysEventsAndBumpsEpochOnlyOnChange) {
  Torus t(2, 3);
  const EdgeId w0 = wire_of(t, 0, 0);
  const EdgeId w1 = wire_of(t, 0, 1);
  const FaultSchedule s = FaultSchedule::from_events(
      t, {{2, w1, FaultEventKind::Fail},
          {5, w0, FaultEventKind::Fail},
          {7, w1, FaultEventKind::Repair},
          {7, w0, FaultEventKind::Fail}});  // redundant: w0 already dead

  FaultClock clock(t, s);
  EXPECT_EQ(clock.next_event_cycle(), 2);
  EXPECT_FALSE(clock.advance_to(1));
  EXPECT_EQ(clock.epoch(), 0u);
  EXPECT_EQ(clock.dead_wires(), 0);

  EXPECT_TRUE(clock.advance_to(2));
  EXPECT_EQ(clock.epoch(), 1u);
  EXPECT_EQ(clock.dead_wires(), 1);
  EXPECT_TRUE(clock.is_dead(w1));
  EXPECT_TRUE(clock.is_dead(t.reverse_edge(w1)));  // wire = both directions
  EXPECT_FALSE(clock.is_dead(w0));
  EXPECT_EQ(clock.next_event_cycle(), 5);

  EXPECT_TRUE(clock.advance_to(6));
  EXPECT_EQ(clock.epoch(), 2u);
  EXPECT_EQ(clock.dead_wires(), 2);

  // Cycle 7 repairs w1 and replays a redundant fail of w0 (a no-op that
  // must not distort the counters).
  EXPECT_TRUE(clock.advance_to(10));
  EXPECT_EQ(clock.epoch(), 3u);
  EXPECT_EQ(clock.dead_wires(), 1);
  EXPECT_FALSE(clock.is_dead(w1));
  EXPECT_TRUE(clock.is_dead(w0));
  EXPECT_EQ(clock.fails_applied(), 2);
  EXPECT_EQ(clock.repairs_applied(), 1);
  EXPECT_EQ(clock.next_event_cycle(), -1);
  EXPECT_FALSE(clock.advance_to(99));
  EXPECT_EQ(clock.epoch(), 3u);
}

TEST(FaultClock, InitialFaultSetCountsAsDead) {
  Torus t(2, 3);
  const EdgeId w = wire_of(t, 1, 0);
  EdgeSet initial(t);
  initial.insert(w);
  initial.insert(t.reverse_edge(w));
  const FaultSchedule empty;
  FaultClock clock(t, empty, &initial);
  EXPECT_TRUE(clock.is_dead(w));
  EXPECT_EQ(clock.dead_wires(), 1);
  EXPECT_EQ(clock.epoch(), 0u);
}

TEST(Recovery, NonEmptyScheduleRequiresRerouteRouter) {
  Torus t(2, 3);
  const FaultSchedule s = FaultSchedule::single_wire(t, wire_of(t, 0, 0));
  SimConfig config;
  config.recovery.schedule = &s;
  EXPECT_THROW(NetworkSim(t, nullptr, config), Error);
  EXPECT_THROW(
      AdaptiveNetworkSim(t, AdaptivePolicy::RandomMinimal, nullptr, nullptr,
                         config.recovery),
      Error);
  WormholeConfig wh;
  wh.recovery.schedule = &s;
  EXPECT_THROW(WormholeSim(t, wh), Error);
}

TEST(Recovery, NetworkSimEmptyScheduleMatchesFaultFreeBitForBit) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const TrafficResult traffic = complete_exchange_traffic(t, p, udr, 5);

  obs::LinkProbe plain_probe(t.num_directed_edges(), t.dims());
  SimConfig plain_config;
  plain_config.probe = &plain_probe;
  const SimMetrics plain =
      NetworkSim(t, nullptr, plain_config).run(traffic.messages);

  const FaultSchedule empty;
  obs::LinkProbe rec_probe(t.num_directed_edges(), t.dims());
  SimConfig rec_config;
  rec_config.probe = &rec_probe;
  rec_config.recovery.schedule = &empty;
  rec_config.recovery.reroute_router = &udr;
  const SimMetrics rec =
      NetworkSim(t, nullptr, rec_config).run(traffic.messages);

  EXPECT_EQ(plain.cycles, rec.cycles);
  EXPECT_EQ(plain.delivered, rec.delivered);
  EXPECT_EQ(plain.max_queue_depth, rec.max_queue_depth);
  EXPECT_EQ(plain.max_link_forwards, rec.max_link_forwards);
  EXPECT_EQ(plain.link_forwards, rec.link_forwards);
  EXPECT_EQ(rec.dropped, 0);
  EXPECT_EQ(rec.retries, 0);
  EXPECT_EQ(rec.fail_events, 0);
  ASSERT_EQ(plain_probe.links().size(), rec_probe.links().size());
  for (std::size_t i = 0; i < plain_probe.links().size(); ++i)
    EXPECT_EQ(plain_probe.links()[i].forwards, rec_probe.links()[i].forwards);
}

TEST(Recovery, NetworkSimReroutesAroundAMidRunFault) {
  // UDR gives every s=2 pair two edge-disjoint paths: killing one wire
  // mid-run forces reroutes but loses nothing.
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const TrafficResult traffic = complete_exchange_traffic(t, p, udr, 7);
  ASSERT_GT(traffic.messages.size(), 0u);
  const EdgeId w = t.undirected_id(traffic.messages[0].path.edges[0]);
  const FaultSchedule s = FaultSchedule::single_wire(t, w, 0);

  SimConfig config;
  config.recovery.schedule = &s;
  config.recovery.reroute_router = &udr;
  const SimMetrics m = NetworkSim(t, nullptr, config).run(traffic.messages);
  EXPECT_EQ(m.delivered, m.injected);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_GE(m.rerouted, 1);
  EXPECT_EQ(m.fail_events, 1);
  EXPECT_EQ(m.repair_events, 0);
}

TEST(Recovery, NetworkSimRetriesAcrossARepair) {
  // ODR's unique path dies at cycle 0 and comes back at cycle 6: the
  // message must wait out backoffs and still deliver.
  Torus t(2, 3);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{1, 1});
  const Path path = odr.canonical_path(t, src, dst);
  const EdgeId w = t.undirected_id(path.edges[0]);
  const FaultSchedule s = FaultSchedule::from_events(
      t, {{0, w, FaultEventKind::Fail}, {6, w, FaultEventKind::Repair}});

  SimConfig config;
  config.recovery.schedule = &s;
  config.recovery.reroute_router = &odr;
  const SimMetrics m = NetworkSim(t, nullptr, config).run({{path, 0}});
  EXPECT_EQ(m.delivered, 1);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_GE(m.retries, 1);
  EXPECT_EQ(m.fail_events, 1);
  EXPECT_EQ(m.repair_events, 1);
}

TEST(Recovery, NetworkSimDropsWhenEveryPathStaysDead) {
  Torus t(2, 3);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{1, 1});
  const Path path = odr.canonical_path(t, src, dst);
  const FaultSchedule s =
      FaultSchedule::single_wire(t, t.undirected_id(path.edges[0]));

  SimConfig config;
  config.recovery.schedule = &s;
  config.recovery.reroute_router = &odr;
  config.recovery.max_retries = 3;
  const SimMetrics m = NetworkSim(t, nullptr, config).run({{path, 0}});
  EXPECT_EQ(m.delivered, 0);
  EXPECT_EQ(m.dropped, 1);  // dropped, never crashed
  EXPECT_EQ(m.injected, 1);
}

TEST(Recovery, AdaptiveSimEmptyScheduleMatchesFaultFreeBitForBit) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  std::vector<Demand> demands;
  for (NodeId a : p.nodes())
    for (NodeId b : p.nodes())
      if (a != b) demands.push_back({a, b, 0});

  AdaptiveMinimalRouter adaptive;
  for (AdaptivePolicy policy :
       {AdaptivePolicy::RandomMinimal, AdaptivePolicy::LeastQueue}) {
    obs::LinkProbe plain_probe(t.num_directed_edges(), t.dims());
    const SimMetrics plain =
        AdaptiveNetworkSim(t, policy, nullptr, &plain_probe).run(demands, 9);

    const FaultSchedule empty;
    RecoveryConfig recovery;
    recovery.schedule = &empty;
    recovery.reroute_router = &adaptive;
    obs::LinkProbe rec_probe(t.num_directed_edges(), t.dims());
    const SimMetrics rec =
        AdaptiveNetworkSim(t, policy, nullptr, &rec_probe, recovery)
            .run(demands, 9);

    EXPECT_EQ(plain.cycles, rec.cycles);
    EXPECT_EQ(plain.delivered, rec.delivered);
    EXPECT_EQ(plain.max_queue_depth, rec.max_queue_depth);
    ASSERT_EQ(plain_probe.links().size(), rec_probe.links().size());
    for (std::size_t i = 0; i < plain_probe.links().size(); ++i)
      EXPECT_EQ(plain_probe.links()[i].forwards,
                rec_probe.links()[i].forwards);
  }
}

TEST(Recovery, AdaptiveSimSurvivesEverySingleWireFault) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  std::vector<Demand> demands;
  for (NodeId a : p.nodes())
    for (NodeId b : p.nodes())
      if (a != b) demands.push_back({a, b, 0});

  AdaptiveMinimalRouter adaptive;
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e) {
    if (t.undirected_id(e) != e) continue;
    const FaultSchedule s = FaultSchedule::single_wire(t, e);
    RecoveryConfig recovery;
    recovery.schedule = &s;
    recovery.reroute_router = &adaptive;
    const SimMetrics m =
        AdaptiveNetworkSim(t, AdaptivePolicy::LeastQueue, nullptr, nullptr,
                           recovery)
            .run(demands, 3);
    EXPECT_EQ(m.delivered, static_cast<i64>(demands.size()))
        << "wire " << e;
    EXPECT_EQ(m.dropped, 0) << "wire " << e;
  }
}

TEST(Recovery, WormholeEmptyScheduleMatchesFaultFreeBitForBit) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const TrafficResult traffic = complete_exchange_traffic(t, p, udr, 3);
  std::vector<Path> paths;
  for (const SimMessage& m : traffic.messages) paths.push_back(m.path);

  WormholeConfig plain;
  const WormholeResult a = WormholeSim(t, plain).run(paths);

  const FaultSchedule empty;
  WormholeConfig rec = plain;
  rec.recovery.schedule = &empty;
  rec.recovery.reroute_router = &udr;
  const WormholeResult b = WormholeSim(t, rec).run(paths);

  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.flits_moved, b.flits_moved);
  EXPECT_EQ(b.dropped, 0);
  EXPECT_EQ(b.retries, 0);
}

TEST(Recovery, WormholeTearsDownAndRetransmitsOverAFreshPath) {
  // The worm's first wire dies at cycle 1 (mid-transmission); teardown
  // frees the VCs and the retry resamples a surviving UDR path.
  Torus t(2, 4);
  OdrRouter odr;
  UdrRouter udr;
  const Path path = odr.canonical_path(t, 0, t.node_id(Coord{1, 1}));
  const FaultSchedule s =
      FaultSchedule::single_wire(t, t.undirected_id(path.edges[0]), 1);

  WormholeConfig config;
  config.message_flits = 4;
  config.recovery.schedule = &s;
  config.recovery.reroute_router = &udr;
  const WormholeResult r = WormholeSim(t, config).run({path});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.delivered, 1);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_GE(r.retries, 1);
  EXPECT_GE(r.rerouted, 1);
  EXPECT_EQ(r.fail_events, 1);
}

TEST(Recovery, WormholeDropsWhenNoPathSurvives) {
  // On a ring every pair has one minimal path; a permanent mid-path fault
  // exhausts the retry budget and the message is dropped, not deadlocked.
  Torus t(1, 6);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 0, 2);
  const FaultSchedule s =
      FaultSchedule::single_wire(t, t.undirected_id(path.edges[1]), 1);

  WormholeConfig config;
  config.message_flits = 3;
  config.recovery.schedule = &s;
  config.recovery.reroute_router = &odr;
  config.recovery.max_retries = 2;
  const WormholeResult r = WormholeSim(t, config).run({path});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.delivered, 0);
  EXPECT_EQ(r.dropped, 1);
}

}  // namespace
}  // namespace tp
