// Tests for the closed-form expressions of src/load/formulas.h: hand-checked
// values, domain enforcement, and the relations between bounds the paper
// derives (e.g. the improved bound overtaking the Blaum bound as d grows).

#include <gtest/gtest.h>

#include "src/load/formulas.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Formulas, BlaumBoundValues) {
  // d = 2: (|P|-1)/4, d = 3: (|P|-1)/6, as in the paper's introduction.
  EXPECT_DOUBLE_EQ(blaum_lower_bound(9, 2), 2.0);
  EXPECT_DOUBLE_EQ(blaum_lower_bound(25, 2), 6.0);
  EXPECT_DOUBLE_EQ(blaum_lower_bound(13, 3), 2.0);
  EXPECT_THROW(blaum_lower_bound(0, 2), Error);
}

TEST(Formulas, SeparatorBoundReducesToBlaum) {
  // |S| = 1 and |dS| = 4d recovers (|P|-1)/2d (the paper's observation).
  for (i32 d = 1; d <= 4; ++d)
    for (i64 p = 2; p <= 20; p += 3)
      EXPECT_DOUBLE_EQ(separator_lower_bound(1, p, 4 * d),
                       blaum_lower_bound(p, d));
}

TEST(Formulas, SeparatorBoundValidation) {
  EXPECT_THROW(separator_lower_bound(5, 4, 8), Error);   // |S| > |P|
  EXPECT_THROW(separator_lower_bound(1, 4, 0), Error);   // empty boundary
}

TEST(Formulas, BisectionBoundValue) {
  // eq. (8): 2 (|P|/2)^2 / width.
  EXPECT_DOUBLE_EQ(bisection_lower_bound(8, 16), 2.0);
  EXPECT_DOUBLE_EQ(bisection_lower_bound(10, 4), 12.5);
}

TEST(Formulas, ImprovedBoundValue) {
  // c^2 k^{d-1} / 8 with c = 1: k^{d-1}/8.
  EXPECT_DOUBLE_EQ(improved_lower_bound(1.0, 8, 3), 8.0);
  EXPECT_DOUBLE_EQ(improved_lower_bound(2.0, 4, 2), 2.0);
}

TEST(Formulas, ImprovedBeatsBlaumForLargeD) {
  // With |P| = k^{d-1}, Blaum gives (k^{d-1}-1)/2d while improved gives
  // k^{d-1}/8: improved wins once 2d >= 8, i.e. d >= 4 (at d = 4 the -1
  // tips the comparison); for smaller d Blaum is stronger.  This is the
  // paper's Section 4 punchline.
  const i32 k = 4;
  for (i32 d = 2; d <= 7; ++d) {
    const i64 p = powi(k, d - 1);
    const double blaum = blaum_lower_bound(p, d);
    const double improved = improved_lower_bound(1.0, k, d);
    if (d >= 4) {
      EXPECT_GT(improved, blaum) << "d=" << d;
    } else {
      EXPECT_LE(improved, blaum) << "d=" << d;
    }
  }
}

TEST(Formulas, BisectionWidthBounds) {
  EXPECT_EQ(uniform_bisection_width(8, 3), 4 * 64);
  EXPECT_EQ(bisection_width_upper_bound(8, 3), 6 * 3 * 64);
  EXPECT_EQ(sweep_separator_upper_bound(8, 3), 2 * 3 * 64);
  // Theorem 1's width is always within Corollary 1's bound.
  for (i32 d = 1; d <= 5; ++d)
    for (i32 k = 2; k <= 8; ++k)
      EXPECT_LE(uniform_bisection_width(k, d),
                bisection_width_upper_bound(k, d));
}

TEST(Formulas, MaxPlacementSize) {
  // eq. (9): 12 d c1 k^{d-1}.
  EXPECT_DOUBLE_EQ(max_placement_size(1.0, 4, 2), 96.0);
  EXPECT_DOUBLE_EQ(max_placement_size(0.5, 4, 3), 288.0);
}

TEST(Formulas, FullTorusLoadBound) {
  EXPECT_DOUBLE_EQ(full_torus_load_lower_bound(4, 2), 8.0);
  EXPECT_DOUBLE_EQ(full_torus_load_lower_bound(8, 3), 512.0);  // 8^4 / 8
}

TEST(Formulas, OdrClosedFormValues) {
  // Even k: k^{d-1}/8 + k^{d-2}/4.
  EXPECT_DOUBLE_EQ(odr_linear_emax(8, 3), 10.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax(4, 3), 3.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax(4, 4), 12.0);
  // Odd k: k^{d-1}/8 - k^{d-3}/8.
  EXPECT_DOUBLE_EQ(odr_linear_emax(5, 3), 3.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax(7, 3), 6.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax(5, 4), 15.0);
  // Domain: the paper's counting needs an interior dimension.
  EXPECT_THROW(odr_linear_emax(4, 2), Error);
}

TEST(Formulas, OdrOverallMaxValues) {
  EXPECT_DOUBLE_EQ(odr_linear_emax_overall(8, 3), 32.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax_overall(5, 3), 10.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax_overall(6, 2), 3.0);
  EXPECT_DOUBLE_EQ(odr_linear_emax_overall(4, 4), 32.0);
  EXPECT_THROW(odr_linear_emax_overall(4, 1), Error);
}

TEST(Formulas, OdrOverallDominatesInterior) {
  for (i32 d = 3; d <= 5; ++d)
    for (i32 k = 3; k <= 9; ++k)
      EXPECT_GE(odr_linear_emax_overall(k, d), odr_linear_emax(k, d))
          << "d=" << d << " k=" << k;
}

TEST(Formulas, UpperBoundChain) {
  // interior form <= overall <= Theorem 2's k^{d-1} <= Theorem 4's UDR bound.
  for (i32 d = 3; d <= 5; ++d)
    for (i32 k = 3; k <= 8; ++k) {
      EXPECT_LE(odr_linear_emax(k, d), odr_linear_emax_upper(k, d));
      EXPECT_LE(odr_linear_emax_overall(k, d), odr_linear_emax_upper(k, d));
      EXPECT_LE(odr_linear_emax_upper(k, d), udr_linear_emax_upper(k, d));
    }
}

TEST(Formulas, MultipleBoundsScaleWithTSquared) {
  EXPECT_DOUBLE_EQ(multiple_odr_upper(1, 4, 3), 16.0);
  EXPECT_DOUBLE_EQ(multiple_odr_upper(3, 4, 3), 144.0);
  EXPECT_DOUBLE_EQ(multiple_udr_upper(2, 4, 3), 4.0 * 4.0 * 16.0);
}

TEST(Formulas, UdrPathCount) {
  EXPECT_EQ(udr_path_count(0), 1);
  EXPECT_EQ(udr_path_count(3), 6);
  EXPECT_EQ(udr_path_count(5), 120);
}

}  // namespace
}  // namespace tp
