// Randomized property sweeps: arbitrary placements on assorted tori must
// satisfy every structural invariant regardless of shape.  Each seed runs
// the full battery on a random placement:
//
//   F1  load conservation for ODR and UDR (and adaptive on small tori)
//   F2  fast analyzers == Definition 4 oracle
//   F3  Lemma 1 (singleton and slab) bounds below measured loads
//   F4  hyperplane sweep bisects with crossings within the Appendix bound
//   F5  routing tables compile consistently and forward minimally
//   F6  simulator delivers the complete exchange, forwards == loads (ODR)

#include <gtest/gtest.h>

#include "src/bounds/slab_search.h"
#include "src/bisection/hyperplane_sweep.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/routing/odr.h"
#include "src/routing/table_router.h"
#include "src/routing/udr.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"

namespace tp {
namespace {

struct FuzzCase {
  Radices radices;
  i64 placement_size;
  u64 seed;
};

class Fuzz : public ::testing::TestWithParam<int> {
 protected:
  FuzzCase make_case() const {
    // Derive a torus shape and placement size deterministically from the
    // case index.
    const int i = GetParam();
    Xoshiro256SS rng(static_cast<u64>(i) * 7919 + 13);
    const i32 d = static_cast<i32>(2 + rng.below(2));  // 2 or 3 dims
    Radices radices;
    for (i32 dim = 0; dim < d; ++dim)
      radices.push_back(static_cast<i32>(3 + rng.below(4)));  // 3..6
    const i64 n = radix_product(radices);
    const i64 size = 2 + static_cast<i64>(rng.below(static_cast<u64>(n / 2)));
    return FuzzCase{radices, size, static_cast<u64>(i)};
  }
};

TEST_P(Fuzz, F1_Conservation) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, c.placement_size, c.seed);
  const double expected = expected_total_load(t, p);
  EXPECT_NEAR(odr_loads(t, p).total_load(), expected, 1e-9 + 1e-9 * expected);
  EXPECT_NEAR(udr_loads(t, p).total_load(), expected, 1e-9 + 1e-9 * expected);
}

TEST_P(Fuzz, F2_OracleAgreement) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, std::min<i64>(c.placement_size, 12),
                                       c.seed);
  OdrRouter odr;
  EXPECT_LT(odr_loads(t, p).max_abs_diff(reference_loads(t, p, odr)), 1e-9);
  EXPECT_LT(udr_loads(t, p).max_abs_diff(udr_loads_enumerated(t, p)), 1e-9);
}

TEST_P(Fuzz, F3_BoundsBelowLoads) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, c.placement_size, c.seed);
  const double odr_emax = odr_loads(t, p).max_load();
  const double udr_emax = udr_loads(t, p).max_load();
  const double blaum = blaum_lower_bound(p.size(), t.dims());
  EXPECT_GE(odr_emax, blaum - 1e-9);
  EXPECT_GE(udr_emax, blaum - 1e-9);
  const SlabBound slab = best_slab_bound(t, p);
  EXPECT_GE(odr_emax, slab.value - 1e-9);
  EXPECT_GE(udr_emax, slab.value - 1e-9);
}

TEST_P(Fuzz, F4_SweepBisects) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, c.placement_size, c.seed);
  const auto result = hyperplane_sweep_bisection(t, p);
  EXPECT_TRUE(result.cut.bisects(t, p));
  // Appendix bound with k = max radix (the proof's k-ary array contains
  // this mixed-radix array).
  i32 kmax = 0;
  for (i32 dim = 0; dim < t.dims(); ++dim)
    kmax = std::max(kmax, t.radix(dim));
  EXPECT_LE(result.array_crossings,
            sweep_separator_upper_bound(kmax, t.dims()));
}

TEST_P(Fuzz, F5_RoutingTablesConsistent) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, std::min<i64>(c.placement_size, 10),
                                       c.seed);
  const OdrRouter odr;
  const UdrRouter udr;
  for (const Router* router : {static_cast<const Router*>(&odr),
                               static_cast<const Router*>(&udr)}) {
    RoutingTable table(t, p, *router);
    table.verify(t);
    Xoshiro256SS rng(c.seed);
    for (NodeId src : p.nodes())
      for (NodeId dst : p.nodes()) {
        if (src == dst) continue;
        table.forward(t, src, dst, rng).verify_minimal(t);
      }
  }
}

TEST_P(Fuzz, F6_SimulatorMatchesLoads) {
  const FuzzCase c = make_case();
  Torus t(c.radices);
  const Placement p = random_placement(t, c.placement_size, c.seed);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, c.seed);
  const SimMetrics m = NetworkSim(t).run(traffic.messages);
  EXPECT_EQ(m.delivered, p.size() * (p.size() - 1));
  const LoadMap loads = odr_loads(t, p);
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e)
    EXPECT_DOUBLE_EQ(
        static_cast<double>(m.link_forwards[static_cast<std::size_t>(e)]),
        loads[e]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace tp
