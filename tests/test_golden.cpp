// Golden regression values: exact E_max of ODR and UDR on multiple linear
// placements over a (d, k, t) grid.
//
// These numbers were produced by this library's exact load analysis and
// cross-validated against the paper wherever a closed form exists (the
// t = 1 ODR values equal floor(k/2)·k^{d-2}; interior maxima equal the
// Section 6.1 forms; all values respect every lower/upper bound).  They
// pin the load analyzers against regressions: any change to routing,
// tie-breaks, or accumulation order that alters a single load will trip
// an exact comparison here.

#include <gtest/gtest.h>

#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/placement.h"

namespace tp {
namespace {

struct Golden {
  i32 d;
  i32 k;
  i32 t;
  double odr_emax;
  double udr_emax;
};

// clang-format off
constexpr Golden kGolden[] = {
      {2, 3, 1, 1, 0.5},
      {2, 3, 2, 2, 2},
      {2, 4, 1, 2, 1},
      {2, 4, 2, 6, 4},
      {2, 4, 3, 9, 7.5},
      {2, 5, 1, 2, 1},
      {2, 5, 2, 6, 4},
      {2, 5, 3, 9, 7.5},
      {2, 6, 1, 3, 1.5},
      {2, 6, 2, 10, 6},
      {2, 6, 3, 18, 12},
      {2, 7, 1, 3, 1.5},
      {2, 7, 2, 10, 6},
      {2, 7, 3, 18, 12},
      {2, 8, 1, 4, 2},
      {2, 8, 2, 14, 8},
      {2, 8, 3, 27, 16.5},
      {2, 9, 1, 4, 2},
      {2, 9, 2, 14, 8},
      {2, 9, 3, 27, 16.5},
      {2, 10, 1, 5, 2.5},
      {2, 10, 2, 18, 10},
      {2, 10, 3, 36, 21},
      {3, 3, 1, 3, 4.0 / 3.0},
      {3, 3, 2, 6, 16.0 / 3.0},
      {3, 4, 1, 8, 11.0 / 3.0},
      {3, 4, 2, 24, 44.0 / 3.0},
      {3, 4, 3, 36, 29},
      {3, 5, 1, 10, 13.0 / 3.0},
      {3, 5, 2, 30, 52.0 / 3.0},
      {3, 5, 3, 45, 34},
      {3, 6, 1, 18, 8},
      {3, 6, 2, 60, 32},
      {3, 6, 3, 108, 66},
      {3, 7, 1, 21, 9},
      {3, 7, 2, 70, 36},
      {3, 7, 3, 126, 74},
      {3, 8, 1, 32, 14},
      {3, 8, 2, 112, 56},
      {3, 8, 3, 216, 118},
      {4, 3, 1, 9, 3.75},
      {4, 3, 2, 18, 15},
      {4, 4, 1, 32, 14},
      {4, 4, 2, 96, 56},
      {4, 4, 3, 144, 114},
      {4, 5, 1, 50, 20},
      {4, 5, 2, 150, 80},
      {4, 5, 3, 225, 161.25},
};
// clang-format on

class GoldenLoads : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenLoads, OdrAndUdrEmaxExact) {
  const Golden& g = GetParam();
  Torus torus(g.d, g.k);
  const Placement p = multiple_linear_placement(torus, g.t);
  EXPECT_NEAR(odr_loads(torus, p).max_load(), g.odr_emax, 1e-9);
  EXPECT_NEAR(udr_loads(torus, p).max_load(), g.udr_emax, 1e-9);
}

TEST_P(GoldenLoads, ConjecturedUdrClosedFormMatches) {
  const Golden& g = GetParam();
  if (g.t != 1) return;
  const double conjectured = udr_linear_emax_conjectured(g.k, g.d);
  if (conjectured < 0) return;  // outside the conjecture's domain
  EXPECT_NEAR(g.udr_emax, conjectured, 1e-9)
      << "d=" << g.d << " k=" << g.k;
}

TEST(GoldenAdaptive, EmaxOnLinearPlacements) {
  // Fully adaptive minimal routing flattens further than UDR; these exact
  // values pin the corridor-multinomial analyzer.
  struct AdaptiveGolden {
    i32 d;
    i32 k;
    double emax;
  };
  // clang-format off
  constexpr AdaptiveGolden kAdaptive[] = {
      {2, 3, 0.5},
      {2, 4, 0.833333333333},
      {2, 5, 1.33333333333},
      {2, 6, 1.73333333333},
      {2, 7, 2.43333333333},
      {2, 8, 2.89047619048},
      {3, 3, 1.33333333333},
      {3, 4, 3},
      {3, 5, 5.33333333333},
  };
  // clang-format on
  for (const AdaptiveGolden& g : kAdaptive) {
    Torus t(g.d, g.k);
    const Placement p = linear_placement(t);
    const double emax = adaptive_loads(t, p).max_load();
    EXPECT_NEAR(emax, g.emax, 1e-9) << "d=" << g.d << " k=" << g.k;
    // Theorem 4's bound still covers the adaptive router (its paths are a
    // superset spreading each pair's unit of traffic).
    EXPECT_LT(emax, udr_linear_emax_upper(g.k, g.d));
  }
}

TEST(GoldenAdaptive, UniformOverPathsCanBeWorseThanUdr) {
  // Reproduction finding: spreading uniformly over *all* minimal paths is
  // not uniformly better than UDR.  The multinomial path distribution
  // concentrates traffic through the middle of each routing corridor, and
  // on 2-D tori that mid-corridor pile-up exceeds UDR's boundary-hugging
  // s! paths (e.g. T_5^2: 1.33 vs 1.0).  In 3-D the comparison flips for
  // some k (T_4^3: 3.0 vs 3.67).
  Torus t2(2, 5);
  const Placement p2 = linear_placement(t2);
  EXPECT_GT(adaptive_loads(t2, p2).max_load(),
            udr_loads(t2, p2).max_load());
  Torus t3(3, 4);
  const Placement p3 = linear_placement(t3);
  EXPECT_LT(adaptive_loads(t3, p3).max_load(),
            udr_loads(t3, p3).max_load());
}

TEST(ConjecturedUdr, HoldsBeyondTheGoldenGrid) {
  // Fresh instances not in the golden table.
  for (i32 k : {11, 12, 14}) {
    Torus t(2, k);
    EXPECT_NEAR(udr_loads(t, linear_placement(t)).max_load(),
                udr_linear_emax_conjectured(k, 2), 1e-9)
        << "k=" << k;
  }
  for (i32 k : {9, 10, 11, 12}) {  // both parities
    Torus t(3, k);
    EXPECT_NEAR(udr_loads(t, linear_placement(t)).max_load(),
                udr_linear_emax_conjectured(k, 3), 1e-9)
        << "k=" << k;
  }
}

TEST_P(GoldenLoads, GoldenValuesAreInternallyConsistent) {
  const Golden& g = GetParam();
  // UDR never exceeds ODR; both respect the Blaum bound and Theorem
  // upper bounds — so the golden table itself is sane.
  EXPECT_LE(g.udr_emax, g.odr_emax + 1e-9);
  const i64 psize = g.t * powi(g.k, g.d - 1);
  EXPECT_GE(g.udr_emax, blaum_lower_bound(psize, g.d) - 1e-9);
  EXPECT_LE(g.odr_emax, multiple_odr_upper(g.t, g.k, g.d) + 1e-9);
  EXPECT_LT(g.udr_emax, multiple_udr_upper(g.t, g.k, g.d));
  if (g.t == 1) {
    EXPECT_NEAR(g.odr_emax, odr_linear_emax_overall(g.k, g.d), 1e-9);
  }
}

std::string golden_name(const ::testing::TestParamInfo<Golden>& info) {
  std::string name = "d";
  name += std::to_string(info.param.d);
  name += "_k";
  name += std::to_string(info.param.k);
  name += "_t";
  name += std::to_string(info.param.t);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, GoldenLoads, ::testing::ValuesIn(kGolden),
                         golden_name);

}  // namespace
}  // namespace tp
