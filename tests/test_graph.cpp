// Tests for graph algorithms over tori: BFS distances, components, and
// connectivity under link removal.

#include <gtest/gtest.h>

#include "src/torus/graph.h"
#include "src/torus/torus.h"

namespace tp {
namespace {

TEST(Graph, BfsDistancesEqualLeeDistances) {
  Torus t(2, 5);
  const auto dist = bfs_distances(t, 0);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(dist[static_cast<std::size_t>(n)], t.lee_distance(0, n));
}

TEST(Graph, BfsDistancesEqualLeeDistances3D) {
  Torus t(3, 4);
  const NodeId src = t.node_id(Coord{1, 2, 3});
  const auto dist = bfs_distances(t, src);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(dist[static_cast<std::size_t>(n)], t.lee_distance(src, n));
}

TEST(Graph, TorusIsConnected) {
  EXPECT_TRUE(is_connected(Torus(2, 3)));
  EXPECT_TRUE(is_connected(Torus(3, 3)));
  EXPECT_TRUE(is_connected(Torus(Radices{2, 5})));
}

TEST(Graph, SingleRemovedLinkKeepsConnectivity) {
  Torus t(2, 4);
  EdgeSet removed(t);
  removed.insert(t.edge_id(0, 0, Dir::Pos));
  removed.insert(t.reverse_edge(t.edge_id(0, 0, Dir::Pos)));
  EXPECT_TRUE(is_connected(t, &removed));
}

TEST(Graph, RingCutIntoTwoArcs) {
  // Removing two opposite wires of a ring makes two components.
  Torus t(1, 6);
  EdgeSet removed(t);
  for (NodeId n : {NodeId{0}, NodeId{3}}) {
    const EdgeId e = t.edge_id(n, 0, Dir::Pos);
    removed.insert(e);
    removed.insert(t.reverse_edge(e));
  }
  EXPECT_EQ(num_components(t, &removed), 2);
}

TEST(Graph, IsolatingANode) {
  Torus t(2, 3);
  EdgeSet removed(t);
  for (i32 d = 0; d < 2; ++d)
    for (Dir dir : {Dir::Pos, Dir::Neg}) {
      const EdgeId e = t.edge_id(0, d, dir);
      removed.insert(e);
      removed.insert(t.reverse_edge(e));
    }
  EXPECT_EQ(num_components(t, &removed), 2);
  const auto dist = bfs_distances(t, 0, &removed);
  for (NodeId n = 1; n < t.num_nodes(); ++n)
    EXPECT_EQ(dist[static_cast<std::size_t>(n)], -1);
}

TEST(Graph, ComponentsLabelsAreDense) {
  Torus t(1, 4);
  EdgeSet removed(t);
  for (NodeId n : {NodeId{0}, NodeId{2}}) {
    const EdgeId e = t.edge_id(n, 0, Dir::Pos);
    removed.insert(e);
    removed.insert(t.reverse_edge(e));
  }
  const auto label = components(t, &removed);
  EXPECT_EQ(num_components(t, &removed), 2);
  for (i32 l : label) EXPECT_TRUE(l == 0 || l == 1);
}

TEST(Graph, EdgeSetSizeAndMembership) {
  Torus t(2, 3);
  EdgeSet s(t);
  EXPECT_EQ(s.size(), 0);
  s.insert(5);
  s.insert(7);
  s.insert(5);  // idempotent
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  s.erase(5);
  EXPECT_EQ(s.size(), 1);
  EXPECT_FALSE(s.contains(5));
}

TEST(Graph, BfsRespectsDirectedRemoval) {
  // Removing only one direction of a ring wire still leaves the long way
  // around: all nodes reachable but distances grow.
  Torus t(1, 5);
  EdgeSet removed(t);
  removed.insert(t.edge_id(0, 0, Dir::Pos));
  const auto dist = bfs_distances(t, 0, &removed);
  EXPECT_EQ(dist[1], 4);  // must go the long way
  EXPECT_EQ(dist[4], 1);
}

}  // namespace
}  // namespace tp
