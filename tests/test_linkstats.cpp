// Tests for the link-resolved telemetry stack: TimeSeries window merging,
// LinkProbe accumulation and attribution, the JSONL export round-trip,
// the imbalance/hotspot analyzer (against the paper's Figure 1 example),
// and the deterministic stats-dump merge.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/analysis/imbalance.h"
#include "src/analysis/stats_merge.h"
#include "src/core/torusplace.h"
#include "src/obs/obs.h"

namespace tp {
namespace {

// ---------------------------------------------------------------- TimeSeries

TEST(TimeSeries, RecordsIntoFixedWindows) {
  obs::TimeSeries ts(/*initial_width=*/4, /*capacity=*/8);
  ts.record(0, 10);
  ts.record(3, 20);   // same window as tick 0
  ts.record(4, 5);    // next window
  EXPECT_EQ(ts.window_width(), 4);
  EXPECT_EQ(ts.num_windows(), 2u);
  EXPECT_EQ(ts.window(0).count, 2);
  EXPECT_EQ(ts.window(0).sum, 30);
  EXPECT_EQ(ts.window(0).min, 10);
  EXPECT_EQ(ts.window(0).max, 20);
  EXPECT_EQ(ts.window(1).count, 1);
  EXPECT_EQ(ts.window_start(0), 0);
  EXPECT_EQ(ts.window_start(1), 4);
  EXPECT_EQ(ts.total_sum(), 35);
  EXPECT_EQ(ts.total_count(), 3);
}

TEST(TimeSeries, MergesAdjacentWindowsWhenFull) {
  obs::TimeSeries ts(/*initial_width=*/1, /*capacity=*/4);
  for (i64 t = 0; t < 4; ++t) ts.record(t, t + 1);  // fills all 4 windows
  EXPECT_EQ(ts.window_width(), 1);
  ts.record(4, 100);  // overflows -> pairwise merge, width doubles
  EXPECT_EQ(ts.window_width(), 2);
  EXPECT_EQ(ts.num_windows(), 3u);
  // Merged windows: {1,2}, {3,4}, then the new sample in window [4,6).
  EXPECT_EQ(ts.window(0).sum, 3);
  EXPECT_EQ(ts.window(0).count, 2);
  EXPECT_EQ(ts.window(0).min, 1);
  EXPECT_EQ(ts.window(0).max, 2);
  EXPECT_EQ(ts.window(1).sum, 7);
  EXPECT_EQ(ts.window(2).sum, 100);
  EXPECT_EQ(ts.window_start(2), 4);
  // Totals survive any number of merges.
  EXPECT_EQ(ts.total_sum(), 110);
  EXPECT_EQ(ts.total_count(), 5);
}

TEST(TimeSeries, FarFutureTickDoublesRepeatedly) {
  obs::TimeSeries ts(/*initial_width=*/1, /*capacity=*/4);
  ts.record(0, 1);
  ts.record(1000, 2);  // needs width 512 to land inside 4 windows
  EXPECT_GE(ts.window_width() * static_cast<i64>(ts.capacity()), 1001);
  EXPECT_EQ(ts.total_count(), 2);
  EXPECT_EQ(ts.total_sum(), 3);
}

TEST(TimeSeries, ClearResetsButKeepsGeometry) {
  obs::TimeSeries ts(2, 8);
  ts.record(30, 7);
  ts.clear();
  EXPECT_EQ(ts.num_windows(), 0u);
  EXPECT_EQ(ts.total_count(), 0);
  EXPECT_EQ(ts.window_width(), 2);
}

TEST(TimeSeries, RejectsBadGeometry) {
  EXPECT_THROW(obs::TimeSeries(0, 8), Error);
  EXPECT_THROW(obs::TimeSeries(1, 1), Error);
}

// ----------------------------------------------------------------- LinkProbe

TEST(LinkProbe, AccumulatesPerLinkCounters) {
  obs::LinkProbe probe(/*num_directed_edges=*/16, /*dims=*/2);
  probe.on_forward(3, 0, 2);
  probe.on_forward(3, 5, 2);
  probe.on_queue_depth(3, 0, 4);
  probe.on_queue_depth(3, 1, 2);
  probe.on_stall(7, 2, 3);
  EXPECT_EQ(probe.link(3).forwards, 2);
  EXPECT_EQ(probe.link(3).busy_cycles, 4);
  EXPECT_EQ(probe.link(3).peak_queue, 4);
  EXPECT_EQ(probe.link(7).stalls, 3);
  EXPECT_EQ(probe.total_forwards(), 2);
  EXPECT_EQ(probe.total_stalls(), 3);
  EXPECT_EQ(probe.active_links(), 2);
  probe.reset();
  EXPECT_EQ(probe.total_forwards(), 0);
  EXPECT_EQ(probe.active_links(), 0);
}

TEST(LinkProbe, AttributionMatchesTorusEncoding) {
  Torus torus(2, 4);
  obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e) {
    const Link link = torus.link(e);
    EXPECT_EQ(probe.dim_of(e), link.dim) << "edge " << e;
    EXPECT_EQ(probe.is_positive(e), link.dir == Dir::Pos) << "edge " << e;
  }
}

TEST(LinkProbe, SizeMustMatchDims) {
  // 2*dims must divide the edge count.
  EXPECT_THROW(obs::LinkProbe(15, 2), Error);
}

TEST(LinkProbe, SimulatorForwardsMatchSimMetrics) {
  Torus torus(2, 4);
  const Placement p = linear_placement(torus);
  const OdrRouter router;
  const auto traffic = complete_exchange_traffic(torus, p, router, 1);

  obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
  SimConfig config;
  config.probe = &probe;
  NetworkSim sim(torus, nullptr, config);
  const SimMetrics m = sim.run(traffic.messages);

  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    EXPECT_EQ(probe.link(e).forwards,
              m.link_forwards[static_cast<std::size_t>(e)])
        << "edge " << e;
  // Every forward lands in the forwards time series exactly once.
  EXPECT_EQ(probe.forwards_series().total_count(), probe.total_forwards());
}

// --------------------------------------------------------- JSONL round-trip

TEST(LinkExport, JsonlRoundTripsThroughParser) {
  Torus torus(2, 4);
  const Placement p = linear_placement(torus);
  const OdrRouter router;
  const auto traffic = complete_exchange_traffic(torus, p, router, 1);
  obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
  SimConfig config;
  config.probe = &probe;
  const SimMetrics m = NetworkSim(torus, nullptr, config).run(traffic.messages);

  obs::LinkExportMeta meta;
  meta.run = "test run";
  meta.cycles = m.cycles;
  meta.flits_per_message = 1;
  for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
    meta.edge_labels.push_back(torus.edge_str(e));

  std::ostringstream os;
  obs::export_link_jsonl(probe, meta, os);
  std::istringstream in(os.str());

  std::string line;
  i64 link_lines = 0, window_lines = 0, link_forwards = 0, window_sum = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    const obs::JsonValue v = obs::parse_json(line);  // throws on bad JSON
    const std::string& type = v.find("type")->as_string();
    if (type == "run") {
      saw_header = true;
      EXPECT_EQ(v.find("run")->as_string(), "test run");
      EXPECT_EQ(v.find("cycles")->as_int(), m.cycles);
      EXPECT_EQ(v.find("links")->as_int(), torus.num_directed_edges());
      EXPECT_EQ(v.find("active_links")->as_int(), probe.active_links());
      EXPECT_EQ(v.find("dims")->as_int(), 2);
    } else if (type == "link") {
      ++link_lines;
      const i64 e = v.find("edge")->as_int();
      EXPECT_EQ(v.find("forwards")->as_int(), probe.link(e).forwards);
      EXPECT_EQ(v.find("dim")->as_int(), probe.dim_of(e));
      EXPECT_EQ(v.find("dir")->as_string(),
                probe.is_positive(e) ? "+" : "-");
      EXPECT_EQ(v.find("label")->as_string(), torus.edge_str(e));
      link_forwards += v.find("forwards")->as_int();
    } else if (type == "window") {
      ++window_lines;
      window_sum += v.find("forwards")->find("sum")->as_int();
    } else {
      FAIL() << "unexpected line type " << type;
    }
  }
  EXPECT_TRUE(saw_header);
  EXPECT_EQ(link_lines, probe.active_links());  // idle links skipped
  EXPECT_GT(window_lines, 0);
  // Per-link totals and per-window sums both add up to total forwards.
  EXPECT_EQ(link_forwards, probe.total_forwards());
  EXPECT_EQ(window_sum, probe.total_forwards());
}

// ------------------------------------------------------- tracer counters

TEST(Tracer, CounterEventsCarryValues) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.counter("flow", 42, "sim");
  std::ostringstream os;
  obs::export_chrome_trace(tracer, os);
  const obs::JsonValue doc = obs::parse_json(os.str());
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "C");
  EXPECT_EQ(events[0].find("name")->as_string(), "flow");
  EXPECT_EQ(events[0].find("args")->find("value")->as_int(), 42);
}

// ----------------------------------------------------------------- imbalance

TEST(Imbalance, Figure1OdrHotspotsAreExact) {
  // The paper's Figure 1 / E1 case: ODR on T_3^2 with the linear
  // placement loads exactly 12 of the 36 directed links at 1.0 and leaves
  // the rest idle.  Known closed forms: mean 1/3, variance 2/9, so
  // CoV = sqrt(2) and max/mean = 3.
  Torus torus(2, 3);
  const Placement p = linear_placement(torus);
  const LoadMap loads = odr_loads(torus, p);

  const ImbalanceReport report = analyze_imbalance(torus, loads, 12);
  EXPECT_EQ(report.total_links, 36);
  EXPECT_EQ(report.loaded_links, 12);
  ASSERT_EQ(report.hotspots.size(), 12u);
  for (const LinkLoadEntry& h : report.hotspots) {
    EXPECT_DOUBLE_EQ(h.load, 1.0);
    EXPECT_EQ(h.dim, torus.link(h.edge).dim);
    EXPECT_FALSE(h.label.empty());
  }
  EXPECT_DOUBLE_EQ(report.max_load, 1.0);
  EXPECT_NEAR(report.mean_load, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.cov, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(report.max_to_mean, 3.0, 1e-12);

  // A smaller top-N returns only maximal links, deterministically ordered.
  const ImbalanceReport top3 = analyze_imbalance(torus, loads, 3);
  ASSERT_EQ(top3.hotspots.size(), 3u);
  EXPECT_LT(top3.hotspots[0].edge, top3.hotspots[1].edge);
  EXPECT_LT(top3.hotspots[1].edge, top3.hotspots[2].edge);
}

TEST(Imbalance, PerDimensionAggregatesSumToTotal) {
  Torus torus(2, 4);
  const Placement p = linear_placement(torus);
  const LoadMap loads = odr_loads(torus, p);
  const ImbalanceReport report = analyze_imbalance(torus, loads, 5);
  ASSERT_EQ(report.by_dim.size(), 2u);
  double total = 0.0;
  for (const DimLoadSummary& d : report.by_dim) {
    EXPECT_NEAR(d.total, d.pos_total + d.neg_total, 1e-12);
    EXPECT_LE(d.max, report.max_load);
    total += d.total;
  }
  EXPECT_NEAR(total, loads.total_load(), 1e-9);
}

TEST(Imbalance, ResidualsRankByAbsoluteDeviation) {
  Torus torus(2, 3);
  LoadMap a(torus), b(torus);
  a.add(0, 1.0);   // residual +1.0
  b.add(5, 2.5);   // residual -2.5
  a.add(7, 0.5);
  b.add(7, 0.5);   // residual 0 -> excluded
  const auto residuals = load_residuals(torus, a, b, 10);
  ASSERT_EQ(residuals.size(), 2u);
  EXPECT_EQ(residuals[0].edge, 5);
  EXPECT_DOUBLE_EQ(residuals[0].residual, -2.5);
  EXPECT_EQ(residuals[1].edge, 0);
  EXPECT_DOUBLE_EQ(residuals[1].residual, 1.0);

  EXPECT_TRUE(load_residuals(torus, a, a, 10).empty());
}

TEST(Imbalance, ProbeLoadMapMatchesAnalyticOdr) {
  // A cycle-accurate complete exchange under ODR forwards each message
  // exactly once per path link, so the probe-derived map equals the
  // analytic E(l) link for link.
  Torus torus(2, 4);
  const Placement p = linear_placement(torus);
  const OdrRouter router;
  const auto traffic = complete_exchange_traffic(torus, p, router, 1);
  obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
  SimConfig config;
  config.probe = &probe;
  NetworkSim(torus, nullptr, config).run(traffic.messages);

  const LoadMap measured = probe_load_map(torus, probe);
  const LoadMap predicted = odr_loads(torus, p);
  EXPECT_EQ(measured.max_abs_diff(predicted), 0.0);
}

TEST(Imbalance, TablesRenderOneRowPerEntry) {
  Torus torus(2, 3);
  const LoadMap loads = odr_loads(torus, linear_placement(torus));
  const ImbalanceReport report = analyze_imbalance(torus, loads, 4);
  EXPECT_EQ(hotspot_table(report).num_rows(), 4u);
  const auto residuals = load_residuals(torus, loads, LoadMap(torus), 6);
  EXPECT_EQ(residual_table(residuals).num_rows(), 6u);
}

// ---------------------------------------------------------------- stats merge

TEST(StatsMerge, SortedOutputIsInputOrderInvariant) {
  const std::string dump_a =
      R"({"counters":{"z.last":3,"a.first":1},"gauges":{"g":7}})"
      "\n"
      R"({"counters":{"m.mid":2}})"
      "\n";
  const std::string dump_b =
      R"({"histograms":{"h":{"count":2,"sum":10,"min":4,"max":6,)"
      R"("mean":5.0,"p50":5.0,"p95":6.0}}})"
      "\n";

  const std::string path_a = "stats_merge_test_a.json";
  const std::string path_b = "stats_merge_test_b.json";
  std::ofstream(path_a) << dump_a;
  std::ofstream(path_b) << dump_b;

  const Table forward = merge_stats_dumps({path_a, path_b});
  const Table reversed = merge_stats_dumps({path_b, path_a});
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  ASSERT_EQ(forward.num_rows(), 5u);
  EXPECT_EQ(forward.rows(), reversed.rows());
  // Within source+record, metrics are sorted by name even though the JSON
  // listed z.last before a.first.
  EXPECT_EQ(forward.rows()[0][3], "a.first");
  EXPECT_EQ(forward.rows()[1][3], "z.last");
  EXPECT_EQ(forward.rows()[2][3], "g");  // kind "gauge" sorts after "counter"
  EXPECT_EQ(forward.rows()[2][1], "0");
  EXPECT_EQ(forward.rows()[3][3], "m.mid");
  EXPECT_EQ(forward.rows()[3][1], "1");  // record index survives the sort
  EXPECT_EQ(forward.rows()[4][3], "h");  // dump_b sorts after dump_a
}

TEST(StatsMerge, HistogramColumnsFlattened) {
  std::istringstream in(
      R"({"histograms":{"lat":{"count":3,"sum":30,"min":5,"max":15,)"
      R"("mean":10.0,"p50":9.0,"p95":14.0}}})");
  std::vector<std::vector<std::string>> rows;
  append_stats_rows(rows, "src", in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2], "histogram");
  EXPECT_EQ(rows[0][3], "lat");
  EXPECT_EQ(rows[0][5], "3");
  EXPECT_EQ(rows[0][6], "30");
  EXPECT_EQ(rows[0][7], "5");
  EXPECT_EQ(rows[0][8], "15");
}

TEST(StatsMerge, MissingFileThrows) {
  EXPECT_THROW(merge_stats_dumps({"definitely_not_here.json"}), Error);
}

}  // namespace
}  // namespace tp
