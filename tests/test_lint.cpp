// Unit tests for the lint analysis layer (src/lint/): the scrubber and
// its lexeme scanners, the tokenizer, path classification, the
// include-graph architecture pass, the determinism pass, baselines, and
// the output formats.  The end-to-end behavior over real trees is pinned
// separately by the lint_golden / lint_arch ctests.

#include <gtest/gtest.h>

#include <sstream>

#include "src/lint/baseline.h"
#include "src/lint/determinism.h"
#include "src/lint/format.h"
#include "src/lint/include_graph.h"
#include "src/lint/lint.h"
#include "src/lint/paths.h"
#include "src/lint/rules.h"
#include "src/lint/scrub.h"
#include "src/lint/token.h"
#include "src/util/error.h"

namespace tp::lint {
namespace {

// ---------------------------------------------------------------------------
// scrub() and line_of()
// ---------------------------------------------------------------------------

TEST(Scrub, BlanksCommentsAndCollapsesStrings) {
  const std::string in =
      "int x; // mutex in a comment\n"
      "const char* s = \"std::mutex\";\n";
  const std::string out = scrub(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  // A non-empty literal keeps its quotes and collapses to "S (padded
  // with spaces to preserve every byte offset).
  const std::size_t open = in.find('"');
  EXPECT_EQ(out[open], '"');
  EXPECT_EQ(out[open + 1], 'S');
  EXPECT_EQ(out[in.rfind('"')], '"');
  // Line structure is preserved exactly.
  EXPECT_EQ(out.find('\n'), in.find('\n'));
}

TEST(Scrub, BackslashContinuedLineCommentIsAllComment) {
  // The second physical line is a continuation of the // comment — the
  // `std::mutex m;` on it must be blanked, not kept as code.  (The
  // regex-era scrubber got this wrong.)
  const std::string in =
      "// comment continues \\\n"
      "std::mutex m;\n"
      "int live;\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("live"), std::string::npos);
  // CRLF continuations too.
  const std::string crlf = scrub("// c \\\r\nstd::mutex m;\nint live;\n");
  EXPECT_EQ(crlf.find("mutex"), std::string::npos);
  EXPECT_NE(crlf.find("live"), std::string::npos);
}

TEST(Scrub, UnterminatedBlockCommentAtEofBlanksToEnd) {
  const std::string in = "int live;\n/* swallowed std::mutex";
  const std::string out = scrub(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("live"), std::string::npos);
  // Degenerate: "/*" as the entire text (the scanner must not read past
  // the end).
  EXPECT_EQ(scrub("/*"), "  ");
  EXPECT_EQ(scrub("/*x"), "   ");
}

TEST(Scrub, RawStringsCollapse) {
  const std::string in = "auto s = R\"(mutex)\";\nint live;\n";
  const std::string out = scrub(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("live"), std::string::npos);
  // Content beginning with ')' is not mistaken for an empty raw string.
  EXPECT_EQ(scrub("R\"()x)\";").find('x'), std::string::npos);
}

TEST(Scrub, LineOfClampsOutOfRangePositions) {
  const std::string text = "a\nb\nc";
  EXPECT_EQ(line_of(text, 0), 1);
  EXPECT_EQ(line_of(text, 2), 2);
  EXPECT_EQ(line_of(text, 4), 3);
  // Past-the-end and npos clamp instead of walking off the buffer.
  EXPECT_EQ(line_of(text, text.size()), 3);
  EXPECT_EQ(line_of(text, std::string::npos), 3);
}

TEST(Scrub, ScannersClampAtEof) {
  using detail::scan_char_literal;
  using detail::scan_raw_string;
  using detail::scan_string_literal;
  using detail::skip_block_comment;
  using detail::skip_line_comment;
  EXPECT_EQ(skip_line_comment("// abc", 0), 6u);
  EXPECT_EQ(skip_line_comment("// a \\", 0), 6u);  // trailing backslash
  EXPECT_EQ(skip_block_comment("/* abc", 0), 6u);
  EXPECT_EQ(scan_string_literal("\"abc", 0), 4u);
  EXPECT_EQ(scan_char_literal("'a", 0), 2u);
  EXPECT_EQ(scan_raw_string("R\"(x", 0), 4u);
  // Not actually a raw string: returns the start offset unchanged.
  EXPECT_EQ(scan_raw_string("R\"x\"", 0), 0u);
}

// ---------------------------------------------------------------------------
// tokenize()
// ---------------------------------------------------------------------------

TEST(Tokenizer, MultiCharPunctuatorsAreSingleTokens) {
  const auto toks = tokenize("std::mutex m; a->b; x <<= 2;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_TRUE(toks[0].ident("std"));
  EXPECT_TRUE(toks[1].punct("::"));
  EXPECT_TRUE(toks[2].ident("mutex"));
  std::size_t arrows = 0;
  std::size_t shifts = 0;
  for (const Token& t : toks) {
    if (t.punct("->")) ++arrows;
    if (t.punct("<<=")) ++shifts;
  }
  EXPECT_EQ(arrows, 1u);
  EXPECT_EQ(shifts, 1u);
}

TEST(Tokenizer, SplicesAndCommentsAreWhitespace) {
  const auto toks = tokenize("std /*c*/ :: \\\n mutex");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[0].ident("std"));
  EXPECT_TRUE(toks[1].punct("::"));
  EXPECT_TRUE(toks[2].ident("mutex"));
  EXPECT_EQ(toks[2].line, 2);  // the splice still advances the line count
}

TEST(Tokenizer, PreprocessorStructure) {
  const auto toks = tokenize(
      "#include <mutex>\n"
      "#include \"src/util/error.h\"\n"
      "#define N 3\n"
      "int x = N;\n");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_TRUE(toks[0].is(TokKind::kDirective, "include"));
  EXPECT_TRUE(toks[1].is(TokKind::kHeaderName, "<mutex>"));
  EXPECT_TRUE(toks[2].is(TokKind::kDirective, "include"));
  EXPECT_TRUE(toks[3].is(TokKind::kHeaderName, "\"src/util/error.h\""));
  EXPECT_TRUE(toks[4].is(TokKind::kDirective, "define"));
  EXPECT_TRUE(toks[4].pp);
  EXPECT_TRUE(toks[5].pp);  // N belongs to the directive line
  // Tokens after the directive line are not pp.
  bool saw_x = false;
  for (const Token& t : toks)
    if (t.ident("x")) {
      saw_x = true;
      EXPECT_FALSE(t.pp);
    }
  EXPECT_TRUE(saw_x);
}

TEST(Tokenizer, NumbersAndCharLiterals) {
  const auto toks = tokenize("int a = 1'000; float b = 1.5e-3; char c = 'x';");
  bool thousand = false;
  bool sci = false;
  bool ch = false;
  for (const Token& t : toks) {
    if (t.is(TokKind::kNumber, "1'000")) thousand = true;
    if (t.is(TokKind::kNumber, "1.5e-3")) sci = true;
    if (t.is(TokKind::kChar, "'x'")) ch = true;
  }
  EXPECT_TRUE(thousand);
  EXPECT_TRUE(sci);
  EXPECT_TRUE(ch);
}

TEST(Tokenizer, StringsNeverYieldIdentifierTokens) {
  const auto toks = tokenize("const char* s = \"std::mutex inside\";");
  for (const Token& t : toks) EXPECT_FALSE(t.ident("mutex"));
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

TEST(Paths, ModuleOf) {
  EXPECT_EQ(module_of("src/util/math.h"), "util");
  EXPECT_EQ(module_of("src/lint/scrub.cpp"), "lint");
  EXPECT_EQ(module_of("src/load/sub/deep.h"), "load");
  EXPECT_EQ(module_of("tools/tp_lint.cpp"), "tools");
  EXPECT_EQ(module_of("bench/micro.cpp"), "bench");
  EXPECT_EQ(module_of("tests/test_lint.cpp"), "tests");
  EXPECT_EQ(module_of("examples/demo.cpp"), "examples");
  // Unclassified: directly under src/, or outside the known trees.
  EXPECT_EQ(module_of("src/lonely.cpp"), "");
  EXPECT_EQ(module_of("docs/readme.h"), "");
  EXPECT_TRUE(is_top_module("tools"));
  EXPECT_FALSE(is_top_module("util"));
}

TEST(Paths, Scopes) {
  EXPECT_TRUE(in_src("src/load/x.cpp"));
  EXPECT_TRUE(in_util("src/util/x.h"));
  EXPECT_TRUE(in_net("src/net/socket.h"));
  EXPECT_TRUE(in_lib_or_tool("tools/x.cpp"));
  EXPECT_TRUE(in_lib_or_tool("bench/x.cpp"));
  EXPECT_FALSE(in_lib_or_tool("tests/x.cpp"));
  EXPECT_TRUE(is_header("a/b.h"));
  EXPECT_TRUE(is_header("a/b.hpp"));
  EXPECT_FALSE(is_header("a/b.cpp"));
}

// ---------------------------------------------------------------------------
// Include graph / architecture pass
// ---------------------------------------------------------------------------

TEST(IncludeGraph, QuotedIncludesOnly) {
  const auto toks = tokenize(
      "#include <vector>\n"
      "#include \"src/util/math.h\"\n"
      "#include \"src/torus/torus.h\"\n");
  const auto refs = quoted_includes(toks);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].target, "src/util/math.h");
  EXPECT_EQ(refs[0].line, 2);
  EXPECT_EQ(refs[1].target, "src/torus/torus.h");
  EXPECT_EQ(refs[1].line, 3);
}

TEST(IncludeGraph, DeclaredDagIsAcyclicAndClosed) {
  // Every module named on the right-hand side must itself be declared,
  // and following declared edges must never come back around.
  const auto& allowed = allowed_edges();
  for (const auto& [from, outs] : allowed)
    for (const std::string& to : outs)
      EXPECT_TRUE(allowed.count(to) != 0)
          << from << " -> " << to << " names an undeclared module";
  // The declared relation is a strict partial order when every edge goes
  // to a module with strictly fewer reachable modules — simple check:
  // DFS from each node must not revisit it.
  for (const auto& [start, outs] : allowed) {
    std::vector<std::string> stack(outs.begin(), outs.end());
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string m = stack.back();
      stack.pop_back();
      EXPECT_NE(m, start) << "declared DAG has a cycle through " << m;
      if (!seen.insert(m).second) continue;
      const auto it = allowed.find(m);
      if (it != allowed.end())
        stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
}

TEST(IncludeGraph, LayeringViolationIsFlagged) {
  ModuleGraph g;
  g.add_file("src/obs/bad.cpp",
             {IncludeRef{"src/service/engine.h", 3}});
  std::vector<Diagnostic> diags;
  g.check(diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "arch-layering");
  EXPECT_EQ(diags[0].file, "src/obs/bad.cpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("'obs'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'service'"), std::string::npos);
}

TEST(IncludeGraph, AllowedEdgesPass) {
  ModuleGraph g;
  g.add_file("src/service/engine.cpp",
             {IncludeRef{"src/core/planner.h", 2},
              IncludeRef{"src/util/error.h", 3}});
  g.add_file("tools/tp_lint.cpp", {IncludeRef{"src/lint/lint.h", 1}});
  std::vector<Diagnostic> diags;
  g.check(diags);
  EXPECT_TRUE(diags.empty());
}

TEST(IncludeGraph, CycleIsReportedOnce) {
  ModuleGraph g;
  g.add_file("src/obs/a.cpp", {IncludeRef{"src/service/b.h", 1}});
  g.add_file("src/service/b.cpp", {IncludeRef{"src/obs/a.h", 1}});
  std::vector<Diagnostic> diags;
  g.check(diags);
  std::size_t cycles = 0;
  for (const Diagnostic& d : diags)
    if (d.rule == "arch-cycle") {
      ++cycles;
      EXPECT_NE(d.message.find("obs -> service -> obs"),
                std::string::npos);
    }
  EXPECT_EQ(cycles, 1u);
}

TEST(IncludeGraph, UndeclaredModuleIsFlagged) {
  ModuleGraph g;
  g.add_file("src/newthing/a.cpp", {IncludeRef{"src/util/error.h", 1}});
  std::vector<Diagnostic> diags;
  g.check(diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "arch-layering");
  EXPECT_NE(diags[0].message.find("not declared"), std::string::npos);
}

TEST(IncludeGraph, DotOutputIsDeterministic) {
  ModuleGraph g;
  g.add_file("src/torus/t.cpp", {IncludeRef{"src/util/math.h", 1}});
  g.add_file("src/obs/o.cpp", {IncludeRef{"src/util/error.h", 1}});
  std::ostringstream a;
  g.write_dot(a);
  std::ostringstream b;
  g.write_dot(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("obs -> util;"), std::string::npos);
  EXPECT_NE(a.str().find("torus -> util;"), std::string::npos);
  EXPECT_NE(a.str().find("digraph"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism pass
// ---------------------------------------------------------------------------

std::vector<Diagnostic> det(const std::string& code,
                            const std::set<std::string>& extra = {}) {
  std::vector<Diagnostic> diags;
  run_determinism_pass("src/load/x.cpp", tokenize(code), extra, diags);
  return diags;
}

TEST(Determinism, RangeForOverUnorderedIntoOstream) {
  const auto diags = det(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n"
      "void dump(std::ostream& out) {\n"
      "  for (const auto& [k, v] : table) out << k;\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unordered-output");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(Determinism, NoSinkNoFinding) {
  const auto diags = det(
      "std::unordered_map<int, int> table;\n"
      "int total() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : table) s += v;\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Determinism, SortedItemsIsBlessed) {
  const auto diags = det(
      "std::unordered_map<int, int> table;\n"
      "void dump(std::ostream& out) {\n"
      "  for (const auto& [k, v] : tp::sorted_items(table)) out << k;\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Determinism, BeginCallOnUnorderedIsFlagged) {
  const auto diags = det(
      "std::unordered_set<int> seen;\n"
      "void dump(std::ostream& out) {\n"
      "  for (auto it = seen.begin(); it != seen.end(); ++it) out << *it;\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(Determinism, OrderedMapIsFine) {
  const auto diags = det(
      "std::map<int, int> table;\n"
      "void dump(std::ostream& out) {\n"
      "  for (const auto& [k, v] : table) out << k;\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Determinism, CrossFileMemberNames) {
  // The declaring header yields the trailing-underscore member name...
  const auto members = unordered_decls(
      tokenize("class C { std::unordered_map<std::string, int> index_; };"),
      /*members_only=*/true);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_TRUE(members.count("index_") != 0);
  // ...and a .cpp that never declares it still gets the finding when the
  // name arrives via the cross-file set.
  const auto diags = det(
      "void C::dump(std::ostream& out) {\n"
      "  for (const auto& [k, v] : index_) out << k;\n"
      "}\n",
      members);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(Determinism, UsingAliasOfUnorderedType) {
  const auto names = unordered_decls(
      tokenize("using Cells = std::unordered_map<int, int>; Cells cells;"),
      /*members_only=*/false);
  EXPECT_TRUE(names.count("Cells") != 0);
  EXPECT_TRUE(names.count("cells") != 0);
}

TEST(Determinism, OnlyLibAndToolPathsAreScanned) {
  std::vector<Diagnostic> diags;
  run_determinism_pass(
      "tests/test_x.cpp",
      tokenize("std::unordered_map<int, int> t;\n"
               "void dump(std::ostream& o) { for (auto& kv : t) o << 1; }\n"),
      {}, diags);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Token rules (the using-declaration false negative, end to end)
// ---------------------------------------------------------------------------

TEST(Rules, UsingDeclarationLaundersSpellingNotPrimitive) {
  std::vector<Diagnostic> diags;
  run_token_rules("src/load/x.cpp",
                  tokenize("using std::mutex;\nmutex m;\n"), diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "raw-sync");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[1].line, 2);  // the bare use the regex tool missed
}

TEST(Rules, CommentsAndStringsNeverTrip) {
  std::vector<Diagnostic> diags;
  run_token_rules("src/load/x.cpp",
                  tokenize("// std::mutex\nconst char* s = \"std::mutex\";\n"),
                  diags);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

TEST(Baseline, ParseAndApply) {
  const auto entries = parse_baseline(
      "# comment\n"
      "\n"
      "src/load/x.cpp:raw-sync: staged refactor, tracked in ROADMAP\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].file, "src/load/x.cpp");
  EXPECT_EQ(entries[0].rule, "raw-sync");

  std::vector<Diagnostic> diags;
  add(diags, "src/load/x.cpp", 3, "raw-sync");
  add(diags, "src/load/x.cpp", 9, "raw-sync");  // same (file, rule): both go
  add(diags, "src/load/y.cpp", 1, "raw-sync");  // different file: stays
  std::vector<BaselineEntry> unused;
  apply_baseline(entries, diags, unused);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/load/y.cpp");
  EXPECT_TRUE(unused.empty());
}

TEST(Baseline, StaleEntriesAreReported) {
  const auto entries =
      parse_baseline("src/gone.cpp:raw-sync: file was deleted\n");
  std::vector<Diagnostic> diags;
  std::vector<BaselineEntry> unused;
  apply_baseline(entries, diags, unused);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].file, "src/gone.cpp");
}

TEST(Baseline, RejectsMalformedInput) {
  EXPECT_THROW(parse_baseline("not a baseline line\n"), Error);
  EXPECT_THROW(parse_baseline("src/x.cpp:no-such-rule: why\n"), Error);
  // Justification is mandatory.
  EXPECT_THROW(parse_baseline("src/x.cpp:raw-sync:\n"), Error);
  EXPECT_THROW(parse_baseline("src/x.cpp:raw-sync:   \n"), Error);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

std::vector<Diagnostic> two_findings() {
  std::vector<Diagnostic> diags;
  add(diags, "src/load/x.cpp", 3, "raw-sync");
  add(diags, "src/net/y.cpp", 7, "cout-in-lib");
  return diags;
}

TEST(Format, ParseNames) {
  EXPECT_EQ(parse_format("text"), Format::kText);
  EXPECT_EQ(parse_format("json"), Format::kJson);
  EXPECT_EQ(parse_format("sarif"), Format::kSarif);
  EXPECT_THROW(parse_format("xml"), Error);
}

TEST(Format, TextMatchesHistoricalShape) {
  std::ostringstream out;
  write_text(out, two_findings());
  EXPECT_NE(out.str().find("src/load/x.cpp:3: [raw-sync] "),
            std::string::npos);
  EXPECT_NE(out.str().find("2 violation(s)\n"), std::string::npos);
  // A clean run prints nothing at all (scripts depend on empty output).
  std::ostringstream empty;
  write_text(empty, {});
  EXPECT_EQ(empty.str(), "");
}

TEST(Format, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Format, JsonCarriesSchemaAndCount) {
  std::ostringstream out;
  write_json(out, two_findings());
  EXPECT_NE(out.str().find("\"schema\": \"tp-lint/1\""), std::string::npos);
  EXPECT_NE(out.str().find("\"violations\": 2"), std::string::npos);
  EXPECT_NE(out.str().find("\"rule\": \"raw-sync\""), std::string::npos);
}

TEST(Format, SarifNamesOnlyFiredRules) {
  std::ostringstream out;
  write_sarif(out, two_findings());
  const std::string s = out.str();
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"raw-sync\""), std::string::npos);
  EXPECT_NE(s.find("{\"id\": \"raw-sync\""), std::string::npos);
  // arch-cycle never fired, so the driver rule table omits it.
  EXPECT_EQ(s.find("{\"id\": \"arch-cycle\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// scan_file / analyze plumbing
// ---------------------------------------------------------------------------

TEST(Analyze, MergesPerFileAndTreeWideFindings) {
  std::vector<FileScan> scans;
  scans.push_back(scan_file("src/obs/bad.cpp",
                            "#include \"src/service/engine.h\"\n"
                            "std::mutex g_mu;\n"));
  scans.push_back(scan_file(
      "src/service/writer.h",
      "class W { std::unordered_map<int, int> cells_; };\n"));
  scans.push_back(scan_file(
      "src/service/writer.cpp",
      "void W::dump(std::ostream& out) {\n"
      "  for (const auto& [k, v] : cells_) out << k;\n"
      "}\n"));
  const TreeResult result = analyze(scans);
  std::set<std::string> rules_hit;
  for (const Diagnostic& d : result.diags) rules_hit.insert(d.rule);
  EXPECT_TRUE(rules_hit.count("raw-sync") != 0);
  EXPECT_TRUE(rules_hit.count("arch-layering") != 0);
  EXPECT_TRUE(rules_hit.count("unordered-output") != 0);
  // Sorted by (file, line, rule).
  for (std::size_t i = 1; i < result.diags.size(); ++i)
    EXPECT_FALSE(result.diags[i] < result.diags[i - 1]);
}

}  // namespace
}  // namespace tp::lint
