// Tests for the exact load analysis (Definitions 4/5) and the paper's
// load theorems:
//   * fast analyzers agree with the literal Definition 4 oracle
//   * total-load conservation: sum_l E(l) == sum of Lee distances
//   * Theorem 2 / Section 6.1: interior-dimension ODR max equals the
//     paper's closed form exactly; overall max equals floor(k/2)k^{d-2}
//   * Theorem 3: multiple linear + ODR stays below t^2 k^{d-1}
//   * Theorem 4/5: UDR maxima below their bounds
//   * every measured E_max respects every lower bound

#include <gtest/gtest.h>

#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/placement.h"
#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"

namespace tp {
namespace {

constexpr double kTol = 1e-9;

// --- agreement with the literal Definition 4 oracle ------------------------

TEST(LoadOracle, OdrFastMatchesReference) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      OdrRouter odr;
      const LoadMap fast = odr_loads(t, p);
      const LoadMap ref = reference_loads(t, p, odr);
      EXPECT_LT(fast.max_abs_diff(ref), kTol) << "d=" << d << " k=" << k;
    }
}

TEST(LoadOracle, OdrBothTieBreakMatchesReference) {
  Torus t(2, 4);  // even k: ties are exercised
  const Placement p = linear_placement(t);
  OdrRouter both(TieBreak::BothDirections);
  const LoadMap fast = odr_loads(t, p, TieBreak::BothDirections);
  const LoadMap ref = reference_loads(t, p, both);
  EXPECT_LT(fast.max_abs_diff(ref), kTol);
}

TEST(LoadOracle, UdrSubsetWeightsMatchEnumeration) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const LoadMap fast = udr_loads(t, p);
      const LoadMap ref = udr_loads_enumerated(t, p);
      EXPECT_LT(fast.max_abs_diff(ref), kTol) << "d=" << d << " k=" << k;
    }
}

TEST(LoadOracle, UdrBothTieBreakMatchesEnumeration) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  const LoadMap fast = udr_loads(t, p, TieBreak::BothDirections);
  const LoadMap ref = udr_loads_enumerated(t, p, TieBreak::BothDirections);
  EXPECT_LT(fast.max_abs_diff(ref), kTol);
}

TEST(LoadOracle, AdaptiveMatchesReference) {
  for (i32 k : {3, 4, 5}) {
    Torus t(2, k);
    const Placement p = linear_placement(t);
    AdaptiveMinimalRouter router;
    const LoadMap fast = adaptive_loads(t, p);
    const LoadMap ref = reference_loads(t, p, router);
    EXPECT_LT(fast.max_abs_diff(ref), 1e-9) << "k=" << k;
  }
}

TEST(LoadOracle, AdaptiveMatchesReference3D) {
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  AdaptiveMinimalRouter router;
  const LoadMap fast = adaptive_loads(t, p);
  const LoadMap ref = reference_loads(t, p, router);
  EXPECT_LT(fast.max_abs_diff(ref), 1e-9);
}

TEST(LoadOracle, RandomPlacementAgreement) {
  Torus t(2, 5);
  const Placement p = random_placement(t, 8, 42);
  EXPECT_LT(odr_loads(t, p).max_abs_diff(reference_loads(t, p, OdrRouter())),
            kTol);
  EXPECT_LT(udr_loads(t, p).max_abs_diff(udr_loads_enumerated(t, p)), kTol);
}

// --- conservation ------------------------------------------------------------

TEST(LoadConservation, TotalEqualsSumOfLeeDistances) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 6}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const double expected = expected_total_load(t, p);
      EXPECT_NEAR(odr_loads(t, p).total_load(), expected, 1e-6)
          << "ODR d=" << d << " k=" << k;
      EXPECT_NEAR(udr_loads(t, p).total_load(), expected, 1e-6)
          << "UDR d=" << d << " k=" << k;
      EXPECT_NEAR(adaptive_loads(t, p).total_load(), expected, 1e-6)
          << "ADAPTIVE d=" << d << " k=" << k;
    }
}

TEST(LoadConservation, HoldsForMultipleLinearAndFull) {
  Torus t(2, 4);
  for (const Placement& p :
       {multiple_linear_placement(t, 2), full_population(t)}) {
    const double expected = expected_total_load(t, p);
    EXPECT_NEAR(odr_loads(t, p).total_load(), expected, 1e-6) << p.name();
    EXPECT_NEAR(udr_loads(t, p).total_load(), expected, 1e-6) << p.name();
  }
}

// --- Theorem 2 / Section 6.1 closed forms -----------------------------------

TEST(OdrClosedForm, InteriorDimensionMatchesPaperExactly) {
  // The paper's k^{d-1}/8 + k^{d-2}/4 (even) and k^{d-1}/8 - k^{d-3}/8
  // (odd) equal the measured maximum over interior-dimension links.
  for (i32 k = 3; k <= 8; ++k) {
    Torus t(3, k);
    const LoadMap loads = odr_loads(t, linear_placement(t));
    EXPECT_NEAR(loads.max_load_in_dim(t, 1), odr_linear_emax(k, 3), kTol)
        << "k=" << k;
  }
}

TEST(OdrClosedForm, InteriorDimensionMatchesPaperExactly4D) {
  for (i32 k : {3, 4, 5}) {
    Torus t(4, k);
    const LoadMap loads = odr_loads(t, linear_placement(t));
    EXPECT_NEAR(loads.max_load_in_dim(t, 1), odr_linear_emax(k, 4), kTol);
    EXPECT_NEAR(loads.max_load_in_dim(t, 2), odr_linear_emax(k, 4), kTol);
  }
}

TEST(OdrClosedForm, OverallMaxIsHalfKTimesKdMinus2) {
  // Reproduction finding: the overall maximum sits on first/last-dimension
  // links and equals floor(k/2) * k^{d-2} (see formulas.h).
  for (i32 d = 2; d <= 4; ++d)
    for (i32 k = 3; k <= (d == 4 ? 5 : 8); ++k) {
      Torus t(d, k);
      const LoadMap loads = odr_loads(t, linear_placement(t));
      EXPECT_NEAR(loads.max_load(), odr_linear_emax_overall(k, d), kTol)
          << "d=" << d << " k=" << k;
      // ... attained on the first and last dimensions.
      EXPECT_NEAR(loads.max_load_in_dim(t, 0),
                  odr_linear_emax_overall(k, d), kTol);
      EXPECT_NEAR(loads.max_load_in_dim(t, d - 1),
                  odr_linear_emax_overall(k, d), kTol);
    }
}

TEST(OdrClosedForm, Theorem2UpperBoundHolds) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k = 3; k <= 8; ++k) {
      Torus t(d, k);
      const LoadMap loads = odr_loads(t, linear_placement(t));
      EXPECT_LE(loads.max_load(), odr_linear_emax_upper(k, d) + kTol);
    }
}

TEST(OdrClosedForm, LoadIsLinearInPlacementSize) {
  // E_max / |P| stays bounded by 1/2 + o(1) over a k sweep (Theorem 2's
  // actual content: linearity in |P|).
  for (i32 k : {4, 6, 8, 10, 12}) {
    Torus t(3, k);
    const Placement p = linear_placement(t);
    const double ratio = odr_loads(t, p).max_load() /
                         static_cast<double>(p.size());
    EXPECT_LE(ratio, 0.5 + kTol) << "k=" << k;
    EXPECT_GE(ratio, 0.25) << "k=" << k;
  }
}

// --- Theorem 3: multiple linear + ODR ---------------------------------------

TEST(MultipleLinearOdr, BelowTSquaredBound) {
  for (i32 k : {4, 5, 6})
    for (i32 tt = 1; tt <= 3; ++tt) {
      Torus t(3, k);
      const Placement p = multiple_linear_placement(t, tt);
      const double emax = odr_loads(t, p).max_load();
      EXPECT_LE(emax, multiple_odr_upper(tt, k, 3) + kTol)
          << "k=" << k << " t=" << tt;
    }
}

TEST(MultipleLinearOdr, LoadIsLinearInPlacementSizeForFixedT) {
  // Theorem 3's content: for any *fixed* t, E_max/|P| stays bounded as k
  // grows.  Measured ratios increase mildly with k (0.75 -> 0.9 for t=2)
  // but never pass t, and the growth decelerates.
  for (i32 tt = 1; tt <= 3; ++tt) {
    double first_ratio = 0.0, last_ratio = 0.0;
    for (i32 k : {4, 6, 8, 10}) {
      Torus t(3, k);
      const Placement p = multiple_linear_placement(t, tt);
      const double ratio =
          odr_loads(t, p).max_load() / static_cast<double>(p.size());
      EXPECT_LE(ratio, static_cast<double>(tt) + kTol)
          << "t=" << tt << " k=" << k;
      if (first_ratio == 0.0) first_ratio = ratio;
      last_ratio = ratio;
    }
    EXPECT_LE(last_ratio, 2.0 * first_ratio) << "t=" << tt;
  }
}

// --- Theorems 4 and 5: UDR ---------------------------------------------------

TEST(UdrBounds, Theorem4Holds) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k = 3; k <= 6; ++k) {
      Torus t(d, k);
      const double emax = udr_loads(t, linear_placement(t)).max_load();
      EXPECT_LT(emax, udr_linear_emax_upper(k, d)) << "d=" << d << " k=" << k;
    }
}

TEST(UdrBounds, Theorem5Holds) {
  Torus t(3, 4);
  for (i32 tt = 1; tt <= 3; ++tt) {
    const double emax =
        udr_loads(t, multiple_linear_placement(t, tt)).max_load();
    EXPECT_LT(emax, multiple_udr_upper(tt, 4, 3)) << "t=" << tt;
  }
}

TEST(UdrVsOdr, UdrNeverWorseThanOdrOnLinearPlacements) {
  // Spreading each pair over s! paths flattens the worst link.
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 5, 6}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      EXPECT_LE(udr_loads(t, p).max_load(),
                odr_loads(t, p).max_load() + kTol)
          << "d=" << d << " k=" << k;
    }
}

TEST(AdaptiveVsUdr, AdaptiveFlattensFurtherOnThisInstance) {
  // NOT a general law: uniform-over-minimal-paths concentrates traffic
  // mid-corridor and can exceed UDR's peak on 2-D tori (see
  // test_golden.cpp, GoldenAdaptive.UniformOverPathsCanBeWorseThanUdr).
  // On T_4^3 the comparison favors adaptive.
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  EXPECT_LE(adaptive_loads(t, p).max_load(),
            udr_loads(t, p).max_load() + kTol);
}

// --- lower bounds respected ---------------------------------------------------

TEST(LowerBounds, BlaumBoundHoldsForEveryRouterAndPlacement) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      for (i32 tt = 1; tt <= 2; ++tt) {
        const Placement p = multiple_linear_placement(t, tt);
        const double bound = blaum_lower_bound(p.size(), d);
        EXPECT_GE(odr_loads(t, p).max_load(), bound - kTol);
        EXPECT_GE(udr_loads(t, p).max_load(), bound - kTol);
        EXPECT_GE(adaptive_loads(t, p).max_load(), bound - kTol);
      }
    }
}

TEST(LowerBounds, ImprovedBoundHoldsForUniformPlacements) {
  for (i32 k : {4, 6, 8}) {
    Torus t(3, k);
    const Placement p = linear_placement(t);
    const double bound = improved_lower_bound(1.0, k, 3);  // c = 1
    EXPECT_GE(odr_loads(t, p).max_load(), bound - kTol) << "k=" << k;
    EXPECT_GE(udr_loads(t, p).max_load(), bound - kTol) << "k=" << k;
  }
}

// --- fully populated torus (Section 1) ----------------------------------------

TEST(FullPopulation, LoadExceedsBisectionBound) {
  // Some link must carry more than k^{d+1}/8 messages.
  for (i32 k : {4, 6}) {
    Torus t(2, k);
    const double emax = odr_loads(t, full_population(t)).max_load();
    EXPECT_GT(emax, full_torus_load_lower_bound(k, 2)) << "k=" << k;
  }
}

TEST(FullPopulation, LoadIsSuperlinearInProcessorCount) {
  // E_max / |P| grows with k for the fully populated torus, while it stays
  // constant for the linear placement: the paper's motivating contrast.
  double prev_full_ratio = 0.0;
  for (i32 k : {4, 6, 8}) {
    Torus t(2, k);
    const Placement full = full_population(t);
    const double full_ratio =
        odr_loads(t, full).max_load() / static_cast<double>(full.size());
    EXPECT_GT(full_ratio, prev_full_ratio) << "k=" << k;
    prev_full_ratio = full_ratio;
  }
}

// --- LoadMap utilities ---------------------------------------------------------

TEST(LoadMap, ArgmaxAndHistogram) {
  Torus t(2, 4);
  LoadMap m(t);
  m.add(3, 2.0);
  m.add(7, 5.0);
  m.add(7, 1.0);
  EXPECT_DOUBLE_EQ(m.max_load(), 6.0);
  EXPECT_EQ(m.argmax(), std::vector<EdgeId>{7});
  EXPECT_EQ(m.num_loaded_edges(), 2);
  EXPECT_DOUBLE_EQ(m.total_load(), 8.0);
  const auto hist = m.histogram(3);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[2], 1);  // the 6.0 edge
  i64 sum = 0;
  for (i64 c : hist) sum += c;
  EXPECT_EQ(sum, t.num_directed_edges());
}

TEST(LoadMap, EmptyMap) {
  Torus t(2, 3);
  LoadMap m(t);
  EXPECT_DOUBLE_EQ(m.max_load(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_load(), 0.0);
  EXPECT_EQ(m.num_loaded_edges(), 0);
  const auto hist = m.histogram(4);
  EXPECT_EQ(hist[0], t.num_directed_edges());
}

TEST(LoadMap, MaxAbsDiffRequiresSameTorus) {
  Torus a(2, 3), b(2, 4);
  EXPECT_THROW(LoadMap(a).max_abs_diff(LoadMap(b)), Error);
}

}  // namespace
}  // namespace tp
