// Tests for the per-dimension/per-direction load profiles, including the
// tie-break asymmetry that explains the even-k behavior in E7.

#include <gtest/gtest.h>

#include "src/analysis/load_profile.h"
#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/router.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(LoadProfile, CoversEveryDimensionAndDirection) {
  Torus t(3, 4);
  const LoadMap loads = odr_loads(t, linear_placement(t));
  const auto profiles = load_profile(t, loads);
  ASSERT_EQ(profiles.size(), 6u);  // 3 dims x 2 directions
  double total = 0.0;
  for (const auto& prof : profiles) total += prof.total_load;
  EXPECT_NEAR(total, loads.total_load(), 1e-9);
}

TEST(LoadProfile, MaxOverProfilesIsEmax) {
  Torus t(2, 6);
  const LoadMap loads = odr_loads(t, linear_placement(t));
  double max_over = 0.0;
  for (const auto& prof : load_profile(t, loads))
    max_over = std::max(max_over, prof.max_load);
  EXPECT_NEAR(max_over, loads.max_load(), 1e-12);
}

TEST(LoadProfile, CanonicalTieBreakSkewsEvenK) {
  // On even k every half-way correction goes +; the + direction must
  // carry strictly more traffic.
  Torus t(2, 6);
  const LoadMap loads = odr_loads(t, linear_placement(t));
  for (i32 dim = 0; dim < 2; ++dim)
    EXPECT_GT(direction_asymmetry(t, loads, dim), 1.0) << "dim " << dim;
}

TEST(LoadProfile, OddKIsSymmetric) {
  // Odd k has no ties, and the linear placement is symmetric under
  // coordinate negation, so the directions balance exactly.
  Torus t(2, 5);
  const LoadMap loads = odr_loads(t, linear_placement(t));
  for (i32 dim = 0; dim < 2; ++dim)
    EXPECT_NEAR(direction_asymmetry(t, loads, dim), 1.0, 1e-9)
        << "dim " << dim;
}

TEST(LoadProfile, BothDirectionsTieBreakRestoresSymmetry) {
  Torus t(2, 6);
  const LoadMap loads =
      odr_loads(t, linear_placement(t), TieBreak::BothDirections);
  for (i32 dim = 0; dim < 2; ++dim)
    EXPECT_NEAR(direction_asymmetry(t, loads, dim), 1.0, 1e-9)
        << "dim " << dim;
}

TEST(LoadProfile, EmptyDimensionIsNeutral) {
  // A placement inside one subtorus row sends no dim-0 traffic under ODR
  // ... actually a single pair along dim 1 only: dim 0 stays empty.
  Torus t(2, 5);
  const Placement p(t, {t.node_id(Coord{0, 0}), t.node_id(Coord{0, 2})},
                    "pair");
  const LoadMap loads = odr_loads(t, p);
  EXPECT_DOUBLE_EQ(direction_asymmetry(t, loads, 0), 1.0);
}

TEST(LoadProfile, RejectsMismatchedTorus) {
  Torus a(2, 4), b(2, 5);
  LoadMap loads(a);
  EXPECT_THROW(load_profile(b, loads), Error);
  EXPECT_THROW(direction_asymmetry(a, loads, 5), Error);
}

}  // namespace
}  // namespace tp
