// Tests for the Section 8 generalizations: modular placements (including
// the perfect Lee code), mixed-radix diagonal placements, and their load
// behavior.

#include <gtest/gtest.h>

#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/modular.h"
#include "src/placement/uniformity.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(ModularPlacement, SizeIsNOverM) {
  Torus t(2, 10);
  const Placement p = modular_placement(t, SmallVec<i32>{1, 1}, 5);
  EXPECT_EQ(p.size(), t.num_nodes() / 5);
}

TEST(ModularPlacement, ModulusEqualKRecoversLinearPlacement) {
  Torus t(3, 4);
  const Placement mod = modular_placement(t, SmallVec<i32>{1, 1, 1}, 4, 2);
  const Placement lin = linear_placement(t, 2);
  EXPECT_EQ(mod.nodes(), lin.nodes());
}

TEST(ModularPlacement, MembersSatisfyTheCongruence) {
  Torus t(2, 15);
  const Placement p = modular_placement(t, SmallVec<i32>{1, 2}, 5, 3);
  for (NodeId n : p.nodes())
    EXPECT_EQ(mod_norm(t.coord_of(n, 0) + 2 * t.coord_of(n, 1), 5), 3);
}

TEST(ModularPlacement, Validation) {
  Torus t(2, 10);
  // m must divide every radix.
  EXPECT_THROW(modular_placement(t, SmallVec<i32>{1, 1}, 3), Error);
  // Needs a coefficient coprime to m.
  EXPECT_THROW(modular_placement(t, SmallVec<i32>{5, 10}, 5), Error);
  // Arity check.
  EXPECT_THROW(modular_placement(t, SmallVec<i32>{1}, 5), Error);
  EXPECT_THROW(modular_placement(t, SmallVec<i32>{1, 1}, 1), Error);
}

TEST(ModularPlacement, WorksOnMixedRadixWhenModulusDividesAll) {
  Torus t(Radices{10, 15});
  const Placement p = modular_placement(t, SmallVec<i32>{1, 2}, 5);
  EXPECT_EQ(p.size(), t.num_nodes() / 5);
  EXPECT_TRUE(is_uniform(t, p));
}

TEST(ModularPlacement, IsUniform) {
  Torus t(2, 10);
  EXPECT_TRUE(is_uniform(t, modular_placement(t, SmallVec<i32>{1, 2}, 5)));
  EXPECT_TRUE(is_uniform(t, modular_placement(t, SmallVec<i32>{1, 1}, 2)));
}

TEST(PerfectLee, IsAPerfectDominatingSet) {
  for (i32 k : {5, 10, 15}) {
    Torus t(2, k);
    const Placement p = perfect_lee_placement(t);
    EXPECT_EQ(p.size(), t.num_nodes() / 5) << "k=" << k;
    EXPECT_TRUE(is_perfect_dominating(t, p, 1)) << "k=" << k;
    EXPECT_TRUE(is_dominating(t, p, 1)) << "k=" << k;
  }
}

TEST(PerfectLee, RequiresFiveDividesK) {
  EXPECT_THROW(perfect_lee_placement(Torus(2, 4)), Error);
  EXPECT_THROW(perfect_lee_placement(Torus(3, 5)), Error);
}

TEST(PerfectLee, LinearPlacementIsNotPerfect) {
  Torus t(2, 5);
  EXPECT_FALSE(is_perfect_dominating(t, linear_placement(t), 1));
}

TEST(Dominating, RadiusZeroMeansFullPopulation) {
  Torus t(2, 4);
  EXPECT_TRUE(is_dominating(t, full_population(t), 0));
  EXPECT_FALSE(is_dominating(t, linear_placement(t), 0));
  // On T_4^2 the node (0,2) sits at Lee distance 2 from every diagonal
  // processor, so the linear placement dominates at radius 2 but not 1.
  EXPECT_FALSE(is_dominating(t, linear_placement(t), 1));
  EXPECT_TRUE(is_dominating(t, linear_placement(t), 2));
}

TEST(DiagonalMixed, SizeAndUniformity) {
  Torus t(Radices{4, 6, 3});
  for (i32 dim = 0; dim < 3; ++dim) {
    const Placement p = diagonal_placement_mixed(t, dim);
    EXPECT_EQ(p.size(), t.num_nodes() / t.radix(dim)) << "dim=" << dim;
    // Uniform along every dimension other than the defining one — the
    // single uniform dimension the generalized Theorem 1 needs.
    for (i32 other = 0; other < 3; ++other) {
      if (other == dim) continue;
      EXPECT_TRUE(is_uniform_along(t, p, other))
          << "dim=" << dim << " other=" << other;
    }
  }
  // Along the defining dimension, uniformity holds iff some other radix is
  // a multiple of it: true for dim 2 (radix 3 divides radix 6), false for
  // dims 0 and 1 here.
  EXPECT_FALSE(is_uniform_along(t, diagonal_placement_mixed(t, 0), 0));
  EXPECT_FALSE(is_uniform_along(t, diagonal_placement_mixed(t, 1), 1));
  EXPECT_TRUE(is_uniform_along(t, diagonal_placement_mixed(t, 2), 2));
}

TEST(DiagonalMixed, MembersSatisfyTheEquation) {
  Torus t(Radices{3, 4});
  const Placement p = diagonal_placement_mixed(t, 1, 2);
  for (NodeId n : p.nodes())
    EXPECT_EQ(t.coord_of(n, 1), mod_norm(2 + t.coord_of(n, 0), 4));
}

TEST(DiagonalMixed, ReducesToLinearOnUniformRadix) {
  // On T_k^d with dim = d-1 the defining equation p_{d-1} = c + sum others
  // is the linear placement's sum == c rearranged... with coefficient -1.
  // Verify it has the same size and uniformity (not identical node sets).
  Torus t(2, 5);
  const Placement diag = diagonal_placement_mixed(t, 1, 0);
  EXPECT_EQ(diag.size(), linear_placement(t).size());
  EXPECT_TRUE(is_uniform(t, diag));
}

TEST(DiagonalMixed, OdrLoadStaysLinearAcrossMixedRadixSweep) {
  // The paper's program carried to unequal radices: E_max/|P| bounded.
  double worst_ratio = 0.0;
  for (i32 base : {4, 6, 8}) {
    Torus t(Radices{base, base + 2});
    const Placement p = diagonal_placement_mixed(t, 1);
    const double ratio = odr_loads(t, p).max_load() /
                         static_cast<double>(p.size());
    worst_ratio = std::max(worst_ratio, ratio);
  }
  EXPECT_LE(worst_ratio, 0.75);
}

TEST(DiagonalMixed, ConservationOnMixedRadix) {
  Torus t(Radices{4, 6});
  const Placement p = diagonal_placement_mixed(t, 1);
  const double expected = expected_total_load(t, p);
  EXPECT_NEAR(odr_loads(t, p).total_load(), expected, 1e-9);
  EXPECT_NEAR(udr_loads(t, p).total_load(), expected, 1e-9);
}

TEST(DiagonalMixed, Theorem1CutAppliesOnMixedRadix) {
  // Uniform along at least one dimension, which is what the generalized
  // Theorem 1 needs for its layer-boundary bisection.
  Torus t(Radices{4, 6});
  const Placement p = diagonal_placement_mixed(t, 0);
  EXPECT_FALSE(uniform_dimensions(t, p).empty());
  EXPECT_TRUE(is_uniform_along(t, p, 1));
}

}  // namespace
}  // namespace tp
